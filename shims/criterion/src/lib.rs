//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` API surface the
//! workspace's benches use, backed by a simple calibrated wall-clock timer:
//! each benchmark is warmed up, the iteration count is doubled until one
//! sample takes long enough to time reliably, and the median of several
//! samples is reported as `ns/iter` (with iterations/sec alongside).
//! No statistics beyond that — this harness exists so `cargo bench` runs
//! hermetically offline; trend tracking lives in `repro perf --json`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-sample target time once calibrated.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);
/// Default number of measured samples per benchmark.
const DEFAULT_SAMPLES: usize = 10;

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo/criterion pass flags (--bench, --save-baseline, ...); the
        // first bare argument, if any, is a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            filter: self.filter.clone(),
            _parent: std::marker::PhantomData,
        }
    }
}

/// A named benchmark id with an optional parameter (`name/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    filter: Option<String>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples (criterion compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(2, 100);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.run(&full, &mut f);
        self
    }

    /// Run one benchmark that takes an input by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.run(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, full: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: self.samples,
            ns_per_iter: None,
        };
        f(&mut b);
        match b.ns_per_iter {
            Some(ns) if ns > 0.0 => {
                println!("{full:<44} {ns:>14.1} ns/iter {:>14.0} iter/s", 1e9 / ns);
            }
            _ => println!("{full:<44} (no measurement)"),
        }
    }

    /// Finish the group (criterion compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Times a closure; handed to each benchmark function.
pub struct Bencher {
    samples: usize,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measure `f`, recording the median ns-per-iteration.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        // Warm-up + calibration: double the batch until it takes long
        // enough to time reliably.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
                break;
            }
            let grow = if elapsed < TARGET_SAMPLE / 16 { 8 } else { 2 };
            iters = iters.saturating_mul(grow);
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        self.ns_per_iter = Some(per_iter[per_iter.len() / 2]);
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
