//! Offline stand-in for the `rayon` crate.
//!
//! The repro harness only uses `slice.par_iter().map(f).collect::<Vec<_>>()`
//! to run *independent simulations* of a parameter sweep concurrently. This
//! shim provides exactly that shape on `std::thread::scope`: the input is
//! chunked across the available cores, each chunk is mapped on its own
//! thread, and results come back in input order — the same observable
//! behaviour as rayon's indexed parallel collect.

/// The subset of `rayon::prelude` the workspace imports.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

/// A scope in which worker closures borrowing the environment can be
/// spawned — the `rayon::scope` shape, implemented on
/// [`std::thread::scope`].
///
/// The sharded simulation engine uses this for indexed dispatch over its
/// shard lanes: one long-lived spawn per lane, each borrowing its lane's
/// queue from the caller's stack, all joined when the scope ends. Unlike
/// real rayon there is no pool: every `spawn` is an OS thread, which is
/// the right trade for a handful of lane workers that each own a core.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// The scope handle passed to [`scope`] closures and spawned bodies.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn `body` on its own scoped thread; it may itself spawn onto
    /// the same scope. All spawns are joined before [`scope`] returns.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// Types whose references can be iterated in parallel (slices, arrays,
/// `Vec` via deref).
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: 'a;
    /// A parallel iterator borrowing `self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f` (run in parallel at collect time).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; runs the map on `collect`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Evaluate the map in parallel, preserving input order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let n = self.items.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let f = &self.f;
        std::thread::scope(|s| {
            for (inputs, outputs) in self.items.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (i, o) in inputs.iter().zip(outputs.iter_mut()) {
                        *o = Some(f(i));
                    }
                });
            }
        });
        out.into_iter().map(|o| o.expect("mapped")).collect()
    }
}
