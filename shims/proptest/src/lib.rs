//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API that this workspace's property
//! tests use — `proptest!`, integer-range / tuple / `collection::vec` /
//! `prop_map` / weighted `prop_oneof!` strategies, `any::<T>()`, and the
//! `prop_assert*` macros — on a deterministic splitmix64 generator. Inputs
//! are random but reproducible: each case's seed derives from the test name
//! and case index, so a failure report ("case N") is replayable. There is
//! no shrinking; a failing case panics with the case number.
//!
//! Case count defaults to 64 and can be overridden per block with
//! `#![proptest_config(ProptestConfig::with_cases(n))]` or globally with
//! the `PROPTEST_CASES` environment variable.

pub mod collection;
pub mod runner;
pub mod strategy;

/// What the workspace's tests `use proptest::prelude::*` for.
pub mod prelude {
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples fresh inputs for a configured number of
/// deterministic cases and runs the body against them.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                $body
            });
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, Box::new($strat) as $crate::strategy::BoxedStrategy<_>)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, Box::new($strat) as $crate::strategy::BoxedStrategy<_>)),+
        ])
    };
}
