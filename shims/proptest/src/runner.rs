//! Deterministic case runner and RNG.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// How many cases a `proptest!` block runs (no other knobs are modeled).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// The deterministic generator handed to strategies (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift range reduction: unbiased enough for test input
        // generation, and branch-free.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

fn fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` against `config.cases` deterministically seeded inputs.
/// A panicking case is reported with its index (replayable: seeds are a
/// pure function of the test name and case number), then re-raised.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng),
{
    let base = fnv(name);
    for case in 0..config.cases {
        let mut rng = TestRng::new(base ^ (u64::from(case)).wrapping_mul(0xA076_1D64_78BD_642F));
        let result = catch_unwind(AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("proptest {name}: failed at case {case}/{}", config.cases);
            resume_unwind(payload);
        }
    }
}
