//! Collection strategies (`proptest::collection::vec`).

use crate::runner::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Anything usable as a `vec` length specification: an exact length, an
/// exclusive range, or an inclusive range.
pub trait IntoSizeRange {
    /// Inclusive `(min, max)` length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// A strategy for vectors whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
