//! Strategies: composable random-value generators.

use crate::runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values of one type. Unlike real proptest there is no
/// value tree and no shrinking — a strategy is just a sampler.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice among boxed strategies (what `prop_oneof!` builds).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms; total weight must be nonzero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total = arms.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof needs positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < u64::from(*w) {
                return strat.sample(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights sum to total")
    }
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-range strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}
