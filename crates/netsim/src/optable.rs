//! # optable — generational in-flight operation table
//!
//! Every layer of the stack tracks *in-flight operations*: the photon
//! endpoint remembers which PWC descriptors are on the wire, the GAS layer
//! remembers which put/get/migrate requests await a completion or a
//! directory answer, and the parcel runtime remembers which user-visible
//! completions (LCO sets, driver callbacks) fire when those finish. This
//! module is the shared backbone for all of them:
//!
//! * [`OpId`] — a typed handle `{ index, generation }` that replaces the
//!   raw `u64` "ctx words" previously threaded through the protocol.
//!   The generation makes slot reuse **ABA-safe**: once an op completes,
//!   its slot can be recycled for a new op, and any late message still
//!   carrying the old handle fails the generation check instead of being
//!   misdelivered to the new op.
//! * [`OpTable`] — a generational slab: O(1) insert/lookup/remove by slot
//!   index (no hashing on the hot path), a LIFO free list, deterministic
//!   iteration in slot order (the simulator's determinism contract forbids
//!   `HashMap` iteration anywhere on an executed path).
//! * [`OpError`] — the typed failure taxonomy. Lookups return
//!   `Result<_, OpError>`; unknown or stale handles become
//!   [`OpError::UnknownOp`] / [`OpError::StaleOp`] values that the caller
//!   counts and drops (or reports to the initiator) instead of panicking.
//!   Ops that exhaust their retry budget or outlive their deadline are
//!   delivered to the initiator as [`OpError::RetriesExhausted`] /
//!   [`OpError::DeadlineExceeded`].
//! * [`OpOutcome`] / [`OutcomeCounters`] — the terminal-event taxonomy
//!   (completed, nacked, retried, deadline-exceeded, protocol-violation)
//!   and the telemetry rollup `repro ops` prints.
//!
//! # Lifecycle
//!
//! ```text
//! issued ──▶ fast path (RDMA / software msg) ──▶ completed
//!    │             │
//!    │           NACK / SwRetry (bounce)
//!    │             ▼
//!    │       directory recovery (DirQuery → DirReply)
//!    │             ▼
//!    │       exponential backoff → reissue (attempt + 1)
//!    │             │ attempts exhausted ─▶ RetriesExhausted
//!    └─ deadline sweep ────────────────▶ DeadlineExceeded
//! ```
//!
//! The sweep is what turns a *lost* completion (dropped by fault injection,
//! or a protocol bug) into a deterministic, observable outcome instead of a
//! silent hang at quiescence.

use crate::net::NackReason;
use crate::time::Time;
use std::fmt;

/// Typed handle to an in-flight operation: a slab slot plus the generation
/// the slot had when the op was inserted.
///
/// `OpId` is the wire-visible "completion word": photon carries it in
/// `PutDone`/`GetDone`/`Nack` packets, the GAS layer embeds it in its
/// software-path messages, and the parcel runtime uses it to key user
/// completions. A handle is only ever valid for the table that minted it;
/// presenting it after the op finished yields [`OpError::StaleOp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId {
    index: u32,
    generation: u32,
}

impl OpId {
    /// The "no completion requested" sentinel (all bits set). Never minted
    /// by an [`OpTable`].
    pub const NONE: OpId = OpId {
        index: u32::MAX,
        generation: u32::MAX,
    };

    /// Construct a handle from explicit parts. Mainly for tests and for
    /// layers that mint untracked correlation tokens (generation 0).
    pub const fn from_parts(index: u32, generation: u32) -> OpId {
        OpId { index, generation }
    }

    /// Reconstruct a handle from its [`raw`](OpId::raw) packing (index in
    /// the low 32 bits, generation in the high 32).
    pub const fn from_raw(raw: u64) -> OpId {
        OpId {
            index: raw as u32,
            generation: (raw >> 32) as u32,
        }
    }

    /// Pack the handle into a `u64` (for embedding in serialized parcel
    /// arguments); inverse of [`from_raw`](OpId::from_raw).
    pub const fn raw(self) -> u64 {
        (self.generation as u64) << 32 | self.index as u64
    }

    /// Slot index within the owning table.
    pub const fn index(self) -> u32 {
        self.index
    }

    /// Generation the slot had when this op was inserted.
    pub const fn generation(self) -> u32 {
        self.generation
    }

    /// Is this the [`NONE`](OpId::NONE) sentinel?
    pub const fn is_none(self) -> bool {
        self.index == u32::MAX && self.generation == u32::MAX
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "op:none")
        } else {
            write!(f, "{}g{}", self.index, self.generation)
        }
    }
}

/// Why an operation lookup or an operation itself failed.
///
/// `UnknownOp`/`StaleOp` are *message-level* errors: a packet named a handle
/// this table never minted, or one whose slot has since been recycled. The
/// receiving layer counts and drops them (no panic is reachable from a
/// malformed or late protocol message). `DeadlineExceeded`/
/// `RetriesExhausted` are *operation-level* errors, delivered to the
/// initiator through `GasWorld::gas_op_failed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpError {
    /// The handle's slot does not exist or holds no live op.
    UnknownOp { id: OpId },
    /// The handle's slot exists but has been recycled since (generation
    /// mismatch) — the classic ABA case, caught.
    StaleOp { id: OpId, current_generation: u32 },
    /// The op outlived its deadline; the per-locality sweep reclaimed it.
    DeadlineExceeded { id: OpId, age: Time, attempts: u32 },
    /// The op bounced more than `max_attempts` times (livelock guard).
    RetriesExhausted { id: OpId, attempts: u32 },
    /// A message violated the protocol state machine (e.g. a completion
    /// for a rendezvous transfer that was never initiated).
    ProtocolViolation { detail: &'static str },
}

impl OpError {
    /// The handle involved, when the error concerns a specific op.
    pub fn id(&self) -> Option<OpId> {
        match *self {
            OpError::UnknownOp { id }
            | OpError::StaleOp { id, .. }
            | OpError::DeadlineExceeded { id, .. }
            | OpError::RetriesExhausted { id, .. } => Some(id),
            OpError::ProtocolViolation { .. } => None,
        }
    }
}

impl fmt::Display for OpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            OpError::UnknownOp { id } => write!(f, "unknown op {id}"),
            OpError::StaleOp {
                id,
                current_generation,
            } => write!(f, "stale op {id} (slot now at g{current_generation})"),
            OpError::DeadlineExceeded { id, age, attempts } => {
                write!(
                    f,
                    "op {id} exceeded deadline (age {age}, {attempts} attempts)"
                )
            }
            OpError::RetriesExhausted { id, attempts } => {
                write!(f, "op {id} exhausted retries ({attempts} attempts)")
            }
            OpError::ProtocolViolation { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for OpError {}

/// Terminal event in an op's lifecycle, for telemetry and trace spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpOutcome {
    /// Completed normally (data delivered / ack received).
    Completed,
    /// Bounced off a non-owner with a NACK; recovery is in progress.
    Nacked { reason: NackReason },
    /// Re-issued after directory recovery; `attempt` counts from 1.
    Retried { attempt: u32 },
    /// Reclaimed by the deadline sweep.
    DeadlineExceeded { age: Time, attempts: u32 },
    /// Dropped on a protocol violation (stale/unknown handle, malformed
    /// message) or after exhausting its retry budget.
    ProtocolViolation,
}

/// Rollup of [`OpOutcome`]s, printed by `repro ops` and carried per
/// locality by the GAS layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounters {
    /// Ops that completed normally.
    pub completed: u64,
    /// NACK bounces observed (per bounce, not per op).
    pub nacked: u64,
    /// Re-issues after directory recovery (per retry, not per op).
    pub retried: u64,
    /// Ops reclaimed by the deadline sweep.
    pub deadline_exceeded: u64,
    /// Stale/unknown-handle messages and retry-budget exhaustions dropped.
    pub protocol_violations: u64,
}

impl OutcomeCounters {
    /// Fold one outcome into the rollup.
    pub fn record(&mut self, outcome: OpOutcome) {
        match outcome {
            OpOutcome::Completed => self.completed += 1,
            OpOutcome::Nacked { .. } => self.nacked += 1,
            OpOutcome::Retried { .. } => self.retried += 1,
            OpOutcome::DeadlineExceeded { .. } => self.deadline_exceeded += 1,
            OpOutcome::ProtocolViolation => self.protocol_violations += 1,
        }
    }

    /// Merge another rollup into this one (for cluster-wide totals).
    pub fn merge(&mut self, other: &OutcomeCounters) {
        self.completed += other.completed;
        self.nacked += other.nacked;
        self.retried += other.retried;
        self.deadline_exceeded += other.deadline_exceeded;
        self.protocol_violations += other.protocol_violations;
    }
}

impl fmt::Display for OutcomeCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "completed {} | nacked {} | retried {} | deadline-exceeded {} | protocol-violations {}",
            self.completed,
            self.nacked,
            self.retried,
            self.deadline_exceeded,
            self.protocol_violations
        )
    }
}

#[derive(Clone, Debug)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational slab of in-flight operations.
///
/// * `insert` is O(1): pop a free slot (LIFO) or grow the slot vector.
/// * `get`/`get_mut`/`remove` are O(1): index + generation compare — no
///   hashing, unlike the `HashMap<u64, _>` registries this replaced.
/// * `remove` bumps the slot's generation, so every handle the slot ever
///   minted before is detectably stale ([`OpError::StaleOp`]).
/// * `iter` walks live entries in slot-index order — deterministic, so it
///   is safe to drive scheduled work (the deadline sweep) from it.
#[derive(Clone, Debug)]
pub struct OpTable<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for OpTable<T> {
    fn default() -> OpTable<T> {
        OpTable::new()
    }
}

impl<T> OpTable<T> {
    /// An empty table.
    pub fn new() -> OpTable<T> {
        OpTable {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live (in-flight) ops.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the table empty (no op in flight)?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert an op, minting its handle.
    pub fn insert(&mut self, value: T) -> OpId {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            OpId {
                index,
                generation: slot.generation,
            }
        } else {
            let index = self.slots.len() as u32;
            assert!(index != u32::MAX, "op table overflow");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            OpId {
                index,
                generation: 0,
            }
        }
    }

    fn slot(&self, id: OpId) -> Result<&Slot<T>, OpError> {
        let slot = self
            .slots
            .get(id.index as usize)
            .ok_or(OpError::UnknownOp { id })?;
        if slot.generation != id.generation {
            return Err(OpError::StaleOp {
                id,
                current_generation: slot.generation,
            });
        }
        Ok(slot)
    }

    /// Look up a live op.
    pub fn get(&self, id: OpId) -> Result<&T, OpError> {
        self.slot(id)?
            .value
            .as_ref()
            .ok_or(OpError::UnknownOp { id })
    }

    /// Look up a live op, mutably.
    pub fn get_mut(&mut self, id: OpId) -> Result<&mut T, OpError> {
        match self.slot(id) {
            Ok(_) => {}
            Err(e) => return Err(e),
        }
        self.slots[id.index as usize]
            .value
            .as_mut()
            .ok_or(OpError::UnknownOp { id })
    }

    /// Is `id` a live op in this table?
    pub fn contains(&self, id: OpId) -> bool {
        self.get(id).is_ok()
    }

    /// Remove a live op, retiring its handle: the slot's generation is
    /// bumped so the handle (and any copy of it still in flight) can never
    /// match again.
    pub fn remove(&mut self, id: OpId) -> Result<T, OpError> {
        match self.slot(id) {
            Ok(_) => {}
            Err(e) => return Err(e),
        }
        let slot = &mut self.slots[id.index as usize];
        let value = slot.value.take().ok_or(OpError::UnknownOp { id })?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        self.live -= 1;
        Ok(value)
    }

    /// Iterate live ops in slot-index order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            slot.value.as_ref().map(|v| {
                (
                    OpId {
                        index: i as u32,
                        generation: slot.generation,
                    },
                    v,
                )
            })
        })
    }

    /// Remove every live op whose entry matches `pred`, returning the
    /// drained `(handle, entry)` pairs in slot-index order. Used by the
    /// deadline sweep and by fault injection.
    pub fn drain_filter(&mut self, mut pred: impl FnMut(OpId, &T) -> bool) -> Vec<(OpId, T)> {
        let mut out = Vec::new();
        for i in 0..self.slots.len() {
            let slot = &mut self.slots[i];
            let Some(v) = slot.value.as_ref() else {
                continue;
            };
            let id = OpId {
                index: i as u32,
                generation: slot.generation,
            };
            if pred(id, v) {
                let value = slot.value.take().expect("checked live");
                slot.generation = slot.generation.wrapping_add(1);
                self.free.push(i as u32);
                self.live -= 1;
                out.push((id, value));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = OpTable::new();
        let a = t.insert("a");
        let b = t.insert("b");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a), Ok(&"a"));
        assert_eq!(t.get(b), Ok(&"b"));
        assert_eq!(t.remove(a), Ok("a"));
        assert_eq!(t.len(), 1);
        assert!(!t.contains(a));
        assert!(t.contains(b));
    }

    #[test]
    fn reuse_bumps_generation_and_stales_old_handle() {
        let mut t = OpTable::new();
        let a = t.insert(1u32);
        t.remove(a).unwrap();
        let b = t.insert(2u32);
        // The freed slot is recycled...
        assert_eq!(b.index(), a.index());
        assert_ne!(b.generation(), a.generation());
        // ...and the old handle is now detectably stale, not misdelivered.
        assert_eq!(
            t.get(a),
            Err(OpError::StaleOp {
                id: a,
                current_generation: b.generation(),
            })
        );
        assert_eq!(t.get(b), Ok(&2));
    }

    #[test]
    fn unknown_index_is_typed_error() {
        let t = OpTable::<u8>::new();
        let bogus = OpId::from_parts(7, 0);
        assert_eq!(t.get(bogus), Err(OpError::UnknownOp { id: bogus }));
    }

    #[test]
    fn raw_roundtrip_and_none() {
        let id = OpId::from_parts(0x1234, 0x5678);
        assert_eq!(OpId::from_raw(id.raw()), id);
        assert!(OpId::NONE.is_none());
        assert!(!id.is_none());
        assert_eq!(OpId::from_raw(u64::MAX), OpId::NONE);
        assert_eq!(format!("{}", id), "4660g22136");
        assert_eq!(format!("{}", OpId::NONE), "op:none");
    }

    #[test]
    fn iteration_is_slot_ordered_and_live_only() {
        let mut t = OpTable::new();
        let a = t.insert("a");
        let b = t.insert("b");
        let c = t.insert("c");
        t.remove(b).unwrap();
        let got: Vec<_> = t.iter().collect();
        assert_eq!(got, vec![(a, &"a"), (c, &"c")]);
    }

    #[test]
    fn drain_filter_removes_matching() {
        let mut t = OpTable::new();
        let _a = t.insert(1);
        let b = t.insert(2);
        let _c = t.insert(3);
        let drained = t.drain_filter(|_, v| *v % 2 == 1);
        assert_eq!(drained.iter().map(|(_, v)| *v).collect::<Vec<_>>(), [1, 3]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b), Ok(&2));
    }

    #[test]
    fn outcome_counters_roll_up() {
        let mut c = OutcomeCounters::default();
        c.record(OpOutcome::Completed);
        c.record(OpOutcome::Completed);
        c.record(OpOutcome::Nacked {
            reason: NackReason::Miss,
        });
        c.record(OpOutcome::Retried { attempt: 1 });
        c.record(OpOutcome::DeadlineExceeded {
            age: Time::from_ns(10),
            attempts: 2,
        });
        c.record(OpOutcome::ProtocolViolation);
        assert_eq!(c.completed, 2);
        assert_eq!(c.nacked, 1);
        assert_eq!(c.retried, 1);
        assert_eq!(c.deadline_exceeded, 1);
        assert_eq!(c.protocol_violations, 1);
        let mut total = OutcomeCounters::default();
        total.merge(&c);
        total.merge(&c);
        assert_eq!(total.completed, 4);
    }

    #[test]
    fn error_display_is_informative() {
        let id = OpId::from_parts(3, 1);
        assert!(format!("{}", OpError::UnknownOp { id }).contains("3g1"));
        assert!(format!(
            "{}",
            OpError::StaleOp {
                id,
                current_generation: 2
            }
        )
        .contains("g2"));
        assert!(format!(
            "{}",
            OpError::DeadlineExceeded {
                id,
                age: Time::from_us(5),
                attempts: 4
            }
        )
        .contains("deadline"));
    }
}
