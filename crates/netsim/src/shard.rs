//! Sharded deterministic execution: N time-wheel lanes under a
//! conservative LogGP-lookahead barrier.
//!
//! The sequential [`Engine`] executes one event at a time;
//! every experiment is single-core. This module partitions the cluster's
//! localities into `N` contiguous *lanes*, each with its own time-wheel
//! and worker thread, and synchronizes them with the classic conservative
//! PDES argument specialized to our LogGP fabric:
//!
//! > Every cross-locality message incurs at least the wire latency `L`
//! > (`NetConfig::latency`) between the event that sends it and the event
//! > that receives it. Therefore, if `t_min` is the globally earliest
//! > pending event, no lane can receive a *new* event below
//! > `t_min + L` from another lane — all lanes may execute their pending
//! > events with `time < t_min + L` concurrently without ever seeing a
//! > straggler.
//!
//! The subtle part is not safety but *bit-exact determinism*: the merged
//! execution must replay the sequential engine's `(time, seq)` order —
//! including the `seq` values themselves, because the trace hash folds
//! them in. Lanes therefore do not assign sequence numbers at all. Inside
//! a window a lane orders its own newly scheduled events with provisional
//! keys (`PROV_BIT | claim`) and logs one `Action::Claim` per
//! schedule; at the window barrier the control engine merges the lane
//! logs by `(time, resolved seq)` — which *is* the sequential execution
//! order — and walks each event's logged actions in program order,
//! assigning real sequence numbers from the single global counter exactly
//! as the sequential engine would have. Cross-lane and beyond-window
//! events are staged during the window and committed with their resolved
//! sequence numbers afterwards, so between windows every queued event
//! carries its final sequential key.
//!
//! Shared wire state (the switch-contention clock, the jitter RNG, the
//! fault plane) cannot be touched concurrently. Protocol code wraps that
//! slice of each wire operation in [`Engine::defer_wire`]; on a lane whose
//! window is *wire-pure* (no jitter, no faults, no switch model — the
//! common benchmark fabric) the closure runs inline because it touches
//! nothing shared, otherwise it is logged as an `Action::Tail` and
//! replayed serially at the barrier, on the control engine, in merged
//! order — which again reproduces the sequential RNG draw order exactly.
//!
//! See `DESIGN.md` §3.5 for the full safety argument and the telemetry
//! this module records ([`ShardStats`]).

use crate::adaptive::{AdaptiveWindow, WindowController, WindowDecision};
use crate::engine::{trace_mix, Engine, EventSlot};
use crate::net::Protocol;
use crate::nic::LocalityId;
use crate::time::Time;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// High bit marking a lane-provisional queue key. A provisional event is
/// always scheduled *and popped* within the same window (its time is below
/// the window end), so provisional keys never survive a barrier. Setting
/// the top bit makes them order after every final sequence number at the
/// same instant, matching the sequential engine (a just-scheduled event
/// has a larger seq than anything already pending).
pub(crate) const PROV_BIT: u64 = 1 << 63;

/// The part an [`Engine`] plays in a sharded run.
pub(crate) enum ShardRole<S> {
    /// A plain sequential engine (the default; the only role with no
    /// box indirection on the scheduling hot path).
    Seq,
    /// One lane of a [`ShardedEngine`], executing a window concurrently.
    Lane(Box<LaneCtx<S>>),
    /// The control engine: owns the world, the global sequence counter,
    /// the RNG, and the trace hash; runs barriers, tails, and drive-phase
    /// code.
    Control(Box<ControlCtx<S>>),
}

/// One executed event in a lane's window log: its time, its queue key
/// (possibly provisional), and the exclusive end of its [`Action`] range.
pub(crate) struct Rec {
    time: Time,
    key: u64,
    end: u32,
}

/// Side effects an in-window event defers to the barrier, in program
/// order.
pub(crate) enum Action<S> {
    /// The event scheduled something: one global sequence number is due.
    Claim,
    /// A [`Engine::defer_wire`] closure to replay serially.
    Tail(EventSlot<S>),
}

pub(crate) struct LaneCtx<S> {
    /// This lane's index.
    lane: u32,
    map: ShardMap,
    /// Exclusive upper bound of the current window.
    window_end: Time,
    /// Whether `defer_wire` tails may run inline this window.
    wire_pure: bool,
    /// Dense per-window counter of schedules (provisional key source).
    claims: u32,
    /// Events executed this window.
    recs: Vec<Rec>,
    /// Deferred side effects, ranges indexed by [`Rec::end`].
    actions: Vec<Action<S>>,
    /// Events scheduled at/after `window_end` or onto another lane:
    /// `(time, destination lane, claim, event)`.
    staged: Vec<(Time, u32, u32, EventSlot<S>)>,
    /// Wall-clock nanoseconds this lane spent executing in the current
    /// window (read by the barrier for utilization telemetry).
    window_busy_ns: u64,
    /// Cumulative busy nanoseconds and events across the run.
    busy_total_ns: u64,
    events_total: u64,
}

pub(crate) struct ControlCtx<S> {
    map: ShardMap,
    /// Lane attribution for plain `schedule_at` calls on the control
    /// engine: the lane of the event being replayed/micro-stepped, or the
    /// lane named by [`ShardedEngine::drive_at`]. `None` (drive phase,
    /// tail replay) makes locality-less scheduling a hard error, which is
    /// what forces protocol tails onto `schedule_at_loc`.
    cur_lane: Option<u32>,
    /// Events routed but not yet inserted into lane queues (the control
    /// engine cannot borrow the lanes while an event borrows it):
    /// `(time, lane, seq, event)`.
    outbox: Vec<(Time, u32, u64, EventSlot<S>)>,
}

impl<S> Engine<S> {
    /// Role-aware scheduling; `loc` is the locality the event will touch
    /// (`None` = the scheduling locality's own lane).
    pub(crate) fn shard_schedule(&mut self, at: Time, loc: Option<LocalityId>, slot: EventSlot<S>) {
        match &mut self.shard {
            ShardRole::Seq => {
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(at, seq, slot);
            }
            ShardRole::Lane(ctx) => {
                let dest = loc.map_or(ctx.lane, |l| ctx.map.lane_of(l));
                let claim = ctx.claims;
                ctx.claims += 1;
                ctx.actions.push(Action::Claim);
                if dest == ctx.lane && at < ctx.window_end {
                    // Executes later this same window, on this lane: a
                    // provisional key keeps intra-lane order until the
                    // barrier resolves the real sequence number.
                    self.queue.push(at, PROV_BIT | u64::from(claim), slot);
                } else {
                    assert!(
                        dest == ctx.lane || at >= ctx.window_end,
                        "cross-shard event below the lookahead window \
                         (at={at}, window_end={}): the protocol scheduled \
                         a remote event closer than the wire latency",
                        ctx.window_end
                    );
                    ctx.staged.push((at, dest, claim, slot));
                }
            }
            ShardRole::Control(ctx) => {
                let lane = match loc {
                    Some(l) => ctx.map.lane_of(l),
                    None => ctx.cur_lane.expect(
                        "locality-less schedule on the sharded control engine \
                         outside a lane context; use schedule_at_loc (or \
                         ShardedEngine::drive_at) so the event can be routed",
                    ),
                };
                let seq = self.seq;
                self.seq += 1;
                ctx.outbox.push((at, lane, seq, slot));
            }
        }
    }

    /// Whether `defer_wire` must log its closure instead of running it.
    pub(crate) fn defers_wire(&self) -> bool {
        matches!(&self.shard, ShardRole::Lane(ctx) if !ctx.wire_pure)
    }

    pub(crate) fn push_wire_tail(&mut self, slot: EventSlot<S>) {
        match &mut self.shard {
            ShardRole::Lane(ctx) => ctx.actions.push(Action::Tail(slot)),
            _ => unreachable!("wire tail pushed outside a lane"),
        }
    }
}

/// The static locality → lane partition: contiguous, near-equal chunks.
#[derive(Clone, Copy, Debug)]
pub struct ShardMap {
    lanes: u32,
    locs: u32,
}

impl ShardMap {
    /// Partition `locs` localities into (at most) `lanes` lanes.
    pub fn new(lanes: usize, locs: usize) -> ShardMap {
        assert!(lanes >= 1, "a sharded run needs at least one lane");
        assert!(locs >= 1, "a sharded run needs at least one locality");
        ShardMap {
            lanes: lanes.min(locs) as u32,
            locs: locs as u32,
        }
    }

    /// The lane owning locality `loc`.
    #[inline]
    pub fn lane_of(&self, loc: LocalityId) -> u32 {
        debug_assert!(loc < self.locs, "locality {loc} out of range");
        ((u64::from(loc) * u64::from(self.lanes)) / u64::from(self.locs)) as u32
    }

    /// Number of lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes as usize
    }

    /// Number of localities.
    #[inline]
    pub fn locs(&self) -> usize {
        self.locs as usize
    }
}

/// Shared ownership of the world's backing data between the control
/// engine (owner) and its lane handles (aliases), without reference
/// counting or locks on the event hot path.
///
/// Exactly one `SharedState` per allocation has `owner == true` and frees
/// it on drop; handles created with [`SharedState::alias`] borrow the same
/// allocation raw. `Deref`/`DerefMut` hand out plain references.
///
/// # Safety discipline
///
/// This is the standard parallel-discrete-event aliasing pattern, and it
/// is *not* free: the compiler no longer proves exclusive access, the
/// [`SplitWorld`] contract does. Lanes may only touch per-locality state
/// of localities they own (plus read-only shared tables); everything
/// shared-mutable must be confined to barrier/tail/drive code, which the
/// sharded engine runs strictly single-threaded. The owner must outlive
/// every alias ([`ShardedEngine`] orders its fields so lane handles drop
/// first).
pub struct SharedState<T> {
    ptr: *mut T,
    owner: bool,
}

impl<T> SharedState<T> {
    /// Allocate owning shared state.
    pub fn new(value: T) -> SharedState<T> {
        SharedState {
            ptr: Box::into_raw(Box::new(value)),
            owner: true,
        }
    }

    /// Create a non-owning alias of the same allocation.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the alias never outlives the owner and
    /// that concurrent access through distinct aliases stays disjoint per
    /// the [`SplitWorld`] contract.
    pub unsafe fn alias(&self) -> SharedState<T> {
        SharedState {
            ptr: self.ptr,
            owner: false,
        }
    }
}

impl<T> Deref for SharedState<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the owner outlives all aliases (see `alias`).
        unsafe { &*self.ptr }
    }
}

impl<T> DerefMut for SharedState<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; disjointness is the SplitWorld contract.
        unsafe { &mut *self.ptr }
    }
}

impl<T> Drop for SharedState<T> {
    fn drop(&mut self) {
        if self.owner {
            // SAFETY: `ptr` came from `Box::into_raw` in `new`, and only
            // the owner frees.
            unsafe { drop(Box::from_raw(self.ptr)) };
        }
    }
}

// SAFETY: a SharedState is just a (possibly aliased) pointer to T; moving
// it across threads is safe whenever T itself is. Aliased *access* is
// governed by the SplitWorld contract, not by this impl.
unsafe impl<T: Send> Send for SharedState<T> {}

/// A world that can be split across shard lanes.
///
/// `lane_handle` returns a value of the *same* type whose accessors reach
/// the same underlying storage (typically via [`SharedState::alias`]), so
/// each lane runs an ordinary `Engine<W>` and all protocol code compiles
/// unchanged.
///
/// # Safety
///
/// Implementors promise the aliasing discipline the sharded engine cannot
/// check:
///
/// * an event executing on lane `k` only mutates state belonging to
///   localities with `map.lane_of(loc) == k` (per-locality NIC, memory,
///   endpoint, runtime tables, counters) — shared structures may at most
///   be *read*, and only if no event-time writer exists;
/// * every event closure scheduled while sharded captures only data that
///   is safe to move to another thread (the engine erases closure types,
///   so `Send` is not compiler-checked);
/// * shared-mutable wire state (fault plane, jitter RNG, switch clock) is
///   only touched inside [`Engine::defer_wire`] tails.
pub unsafe trait SplitWorld: Protocol + Send {
    /// Create the lane-`lane` handle onto this world's storage.
    fn lane_handle(&mut self, lane: u32, map: ShardMap) -> Self;
}

/// Wall-clock telemetry for a sharded run, exposed via
/// [`ShardedEngine::stats`].
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Synchronization windows executed.
    pub windows: u64,
    /// Aggregate nanoseconds the barrier spent waiting on stragglers
    /// (per-window parallel wall time minus the busiest lane's work).
    pub barrier_wait_ns: u64,
    /// Nanoseconds spent in serial barrier replay (merge + sequence
    /// resolution + deferred tails + staged commits).
    pub replay_ns: u64,
    /// Total wall nanoseconds inside `run`/`run_until`/`run_steps`.
    pub wall_ns: u64,
    /// Events executed per lane.
    pub lane_events: Vec<u64>,
    /// Busy wall nanoseconds per lane.
    pub lane_busy_ns: Vec<u64>,
    /// Windows the adaptive controller executed inline on the control
    /// thread (too shallow to amortize a thread hand-off).
    pub serial_windows: u64,
    /// Adaptive widening steps taken.
    pub widened: u64,
    /// Adaptive narrowing steps taken.
    pub narrowed: u64,
    /// Widest window multiplier the controller reached.
    pub max_mult_seen: u32,
}

impl ShardStats {
    fn new(lanes: usize) -> ShardStats {
        ShardStats {
            lane_events: vec![0; lanes],
            lane_busy_ns: vec![0; lanes],
            ..ShardStats::default()
        }
    }

    /// Per-lane utilization: busy time over total wall time, in `[0, 1]`.
    pub fn utilization(&self) -> Vec<f64> {
        let wall = self.wall_ns.max(1) as f64;
        self.lane_busy_ns.iter().map(|&b| b as f64 / wall).collect()
    }

    /// Fraction of wall time lost to synchronization (barrier waits plus
    /// serial replay), in `[0, 1]`.
    pub fn sync_overhead(&self) -> f64 {
        (self.barrier_wait_ns + self.replay_ns) as f64 / self.wall_ns.max(1) as f64
    }
}

/// The sharded counterpart of [`Engine`]: same world, same observable
/// `(time, seq)` execution and trace hash, N-way parallel windows.
///
/// Construction requires a [`SplitWorld`] and a positive wire latency
/// (the lookahead). Tracing must be disabled — the tracer is a single
/// shared buffer whose interleaving would be nondeterministic.
pub struct ShardedEngine<W: SplitWorld> {
    // Field order matters: lane engines hold aliases of the control
    // engine's world and must drop first.
    lanes: Vec<Mutex<Engine<W>>>,
    control: Engine<W>,
    map: ShardMap,
    lookahead: Time,
    /// Widest window multiplier that is provably safe on this fabric
    /// (see [`ShardedEngine::safe_window_cap`]).
    safe_cap: u32,
    /// The adaptive window controller, when enabled.
    adaptive: Option<WindowController>,
    stats: ShardStats,
}

impl<W: SplitWorld> ShardedEngine<W> {
    /// Build a sharded engine over `state` with (at most) `shards` lanes.
    pub fn new(state: W, seed: u64, shards: usize) -> ShardedEngine<W> {
        let locs = state.cluster_ref().len();
        let wire_latency = state.cluster_ref().config.latency;
        let mut lookahead = wire_latency;
        let map = ShardMap::new(shards, locs);
        // The smallest delay any *cross-lane* event can have. Shared-memory
        // domains bypass the wire: their cross-locality hops arrive after
        // the load/store cost rather than the wire latency, so the
        // conservative lookahead must shrink to match — but only hops that
        // actually cross a lane constrain the window. When every shm domain
        // falls entirely inside one lane (contiguous domains, contiguous
        // lanes — the common partition), cross-lane traffic still pays the
        // full wire latency, and the adaptive controller may widen the
        // window up to `wire_latency / lookahead` without ever admitting a
        // straggler.
        let mut min_cross_lane = wire_latency;
        if let Some(shm) = state.cluster_ref().config.shm {
            if shm.size > 1 && shm.load_store < lookahead {
                lookahead = shm.load_store;
                let domain = shm.size as usize;
                let spans_lanes = (0..locs).step_by(domain).any(|start| {
                    let end = (start + domain - 1).min(locs - 1);
                    map.lane_of(start as LocalityId) != map.lane_of(end as LocalityId)
                });
                if spans_lanes {
                    min_cross_lane = shm.load_store;
                }
            }
        }
        assert!(
            lookahead > Time::ZERO,
            "sharded execution requires a positive wire latency for lookahead"
        );
        let safe_cap =
            u32::try_from((min_cross_lane.ps() / lookahead.ps()).max(1)).unwrap_or(u32::MAX);
        assert!(
            !state.cluster_ref().tracer.is_enabled(),
            "tracing is not supported in sharded runs (shared trace buffer)"
        );
        let mut control = Engine::new(state, seed);
        control.shard = ShardRole::Control(Box::new(ControlCtx {
            map,
            cur_lane: None,
            outbox: Vec::new(),
        }));
        let lanes = (0..map.lanes() as u32)
            .map(|lane| {
                let handle = control.state.lane_handle(lane, map);
                let mut eng = Engine::new(handle, 0);
                eng.shard = ShardRole::Lane(Box::new(LaneCtx {
                    lane,
                    map,
                    window_end: Time::ZERO,
                    wire_pure: false,
                    claims: 0,
                    recs: Vec::new(),
                    actions: Vec::new(),
                    staged: Vec::new(),
                    window_busy_ns: 0,
                    busy_total_ns: 0,
                    events_total: 0,
                }));
                Mutex::new(eng)
            })
            .collect();
        ShardedEngine {
            lanes,
            control,
            map,
            lookahead,
            safe_cap,
            adaptive: None,
            stats: ShardStats::new(map.lanes()),
        }
    }

    /// The locality → lane partition.
    pub fn map(&self) -> ShardMap {
        self.map
    }

    /// Number of lanes.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// The lookahead window width (the fabric's wire latency `L`).
    pub fn lookahead(&self) -> Time {
        self.lookahead
    }

    /// Widest window multiplier that can never admit a straggler: the
    /// floor of (minimum cross-lane event delay) / (base lookahead). 1 on
    /// plain fabrics, `wire_latency / shm.load_store` when a shared-memory
    /// domain shrank the lookahead but every domain sits inside one lane.
    pub fn safe_window_cap(&self) -> u32 {
        self.safe_cap
    }

    /// Turn the adaptive window controller on. `max_mult` is clamped to
    /// [`ShardedEngine::safe_window_cap`]; widening past it would break
    /// the conservative-window argument, not just determinism.
    pub fn set_adaptive(&mut self, mut cfg: AdaptiveWindow) {
        cfg.max_mult = cfg.max_mult.clamp(1, self.safe_cap);
        self.adaptive = Some(WindowController::new(cfg));
    }

    /// The adaptive window controller's current state, when enabled
    /// (effective multiplier rendering for quiescence reports).
    pub fn window_controller(&self) -> Option<&WindowController> {
        self.adaptive.as_ref()
    }

    /// The barrier-window width the next window will use.
    pub fn effective_window(&self) -> Time {
        let mult = self.adaptive.as_ref().map_or(1, WindowController::mult);
        self.lookahead * u64::from(mult)
    }

    /// The current instant of virtual time.
    pub fn now(&self) -> Time {
        self.control.now()
    }

    /// Events executed so far (identical to the sequential count).
    pub fn events_executed(&self) -> u64 {
        self.control.events_executed()
    }

    /// Events currently pending across all lanes.
    pub fn events_pending(&mut self) -> usize {
        self.lanes
            .iter_mut()
            .map(|l| l.get_mut().expect("lane lock").events_pending())
            .sum()
    }

    /// Running `(time, seq)` trace hash — bit-identical to the sequential
    /// engine's for the same program and seed.
    pub fn trace_hash(&self) -> u64 {
        self.control.trace_hash()
    }

    /// The world (the owning copy). Only call between runs.
    pub fn state(&mut self) -> &mut W {
        &mut self.control.state
    }

    /// Shared view of the world.
    pub fn state_ref(&self) -> &W {
        &self.control.state
    }

    /// Wall-clock shard telemetry accumulated so far.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Run drive-phase code against the control engine (allocation
    /// collectives, config pokes). Plain `schedule_at` calls panic here —
    /// use [`ShardedEngine::drive_at`] when the closure schedules events.
    pub fn drive<R>(&mut self, f: impl FnOnce(&mut Engine<W>) -> R) -> R {
        self.set_cur_lane(None);
        let r = f(&mut self.control);
        self.drain_outbox();
        r
    }

    /// Run drive-phase code attributed to locality `loc`: plain schedules
    /// inside `f` (op issues, injected faults) land on `loc`'s lane.
    pub fn drive_at<R>(&mut self, loc: LocalityId, f: impl FnOnce(&mut Engine<W>) -> R) -> R {
        let lane = self.map.lane_of(loc);
        self.set_cur_lane(Some(lane));
        let r = f(&mut self.control);
        self.set_cur_lane(None);
        self.drain_outbox();
        r
    }

    /// Run until the event queues drain. Returns events executed.
    pub fn run(&mut self) -> u64 {
        self.run_windows(None)
    }

    /// Run until quiescence or until the clock would pass `deadline`
    /// (same semantics as [`Engine::run_until`]).
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        self.run_windows(Some(deadline))
    }

    /// Run at most `n` further events, one at a time, in exact global
    /// `(time, seq)` order (serial; used by workloads that interleave
    /// driver code with bounded progress).
    pub fn run_steps(&mut self, n: u64) -> u64 {
        let wall0 = Instant::now();
        let start = self.control.executed;
        let t0 = self.control.now;
        for _ in 0..n {
            if !self.step_one() {
                break;
            }
        }
        let ran = self.control.executed - start;
        crate::telemetry::record_run(ran, (self.control.now - t0).ps());
        self.stats.wall_ns += wall0.elapsed().as_nanos() as u64;
        ran
    }

    fn set_cur_lane(&mut self, lane: Option<u32>) {
        match &mut self.control.shard {
            ShardRole::Control(ctx) => ctx.cur_lane = lane,
            _ => unreachable!("control engine lost its role"),
        }
    }

    /// Move routed events from the control outbox into lane queues.
    fn drain_outbox(&mut self) {
        let outbox = match &mut self.control.shard {
            ShardRole::Control(ctx) if !ctx.outbox.is_empty() => std::mem::take(&mut ctx.outbox),
            _ => return,
        };
        for (at, lane, seq, slot) in outbox {
            self.lanes[lane as usize]
                .get_mut()
                .expect("lane lock")
                .queue
                .push(at, seq, slot);
        }
    }

    /// Pop and execute the single globally earliest event. Valid between
    /// windows, where every queued key is final.
    fn step_one(&mut self) -> bool {
        let mut best: Option<(Time, u64, usize)> = None;
        for (i, l) in self.lanes.iter_mut().enumerate() {
            let eng = l.get_mut().expect("lane lock");
            if let Some((t, k)) = eng.queue.next_key() {
                if best.is_none_or(|(bt, bk, _)| (t, k) < (bt, bk)) {
                    best = Some((t, k, i));
                }
            }
        }
        let Some((_, key, lane)) = best else {
            return false;
        };
        debug_assert_eq!(key & PROV_BIT, 0, "provisional key between windows");
        let (time, seq, slot) = self.lanes[lane]
            .get_mut()
            .expect("lane lock")
            .queue
            .pop()
            .expect("peeked event vanished");
        self.set_cur_lane(Some(lane as u32));
        let control = &mut self.control;
        control.now = time;
        control.executed += 1;
        control.trace_hash = trace_mix(control.trace_hash, time.ps());
        control.trace_hash = trace_mix(control.trace_hash, seq);
        slot.run(control);
        self.set_cur_lane(None);
        self.drain_outbox();
        true
    }

    /// The windowed parallel loop shared by `run` and `run_until`.
    fn run_windows(&mut self, deadline: Option<Time>) -> u64 {
        let wall0 = Instant::now();
        let start = self.control.executed;
        let t0 = self.control.now;
        let n = self.lanes.len();
        self.set_cur_lane(None);

        let lanes: &[Mutex<Engine<W>>] = &self.lanes;
        let control = &mut self.control;
        let stats = &mut self.stats;
        let lookahead = self.lookahead;
        let adaptive = &mut self.adaptive;

        let epoch = AtomicU64::new(0);
        let done = AtomicU64::new(0);
        let stop = AtomicBool::new(false);

        rayon::scope(|s| {
            for lane in lanes {
                let (epoch, done, stop) = (&epoch, &done, &stop);
                s.spawn(move |_| lane_worker(lane, epoch, done, stop));
            }

            let mut cur_epoch = 0u64;
            loop {
                // Global minimum pending time across lanes.
                let mut window_start: Option<Time> = None;
                for lane in lanes {
                    let mut eng = lane.lock().expect("lane lock");
                    if let Some(t) = eng.queue.next_time() {
                        window_start = Some(window_start.map_or(t, |w| w.min(t)));
                    }
                }
                let Some(ws) = window_start else { break };
                if let Some(d) = deadline {
                    if ws > d {
                        control.now = d;
                        break;
                    }
                }
                // The adaptive controller may widen the window to
                // `mult * L` (mult capped at the fabric's safe multiplier)
                // and may execute a shallow window inline. Both choices are
                // pure functions of the merged deterministic schedule, and
                // any sound window partition replays the same `(time, seq)`
                // order, so the trace hash is unaffected either way.
                let mult = adaptive.as_ref().map_or(1, WindowController::mult);
                let serial = adaptive.as_ref().is_some_and(WindowController::serial);
                let mut we = ws + lookahead * u64::from(mult);
                if let Some(d) = deadline {
                    // Never execute past the deadline; `d` itself is
                    // still eligible (pop_before is exclusive).
                    we = we.min(Time::from_ps(d.ps() + 1));
                }
                let wire_pure = control.state.cluster_ref().wire_is_pure();
                for lane in lanes {
                    let mut eng = lane.lock().expect("lane lock");
                    match &mut eng.shard {
                        ShardRole::Lane(ctx) => {
                            ctx.window_end = we;
                            ctx.wire_pure = wire_pure;
                            ctx.claims = 0;
                        }
                        _ => unreachable!("lane engine lost its role"),
                    }
                }

                let par0 = Instant::now();
                let exec0 = control.executed;
                if serial {
                    // Too shallow to amortize a thread hand-off: run each
                    // lane's window inline on this thread. The lane logs
                    // (and therefore the barrier replay) are identical to
                    // what the workers would have produced.
                    for lane in lanes {
                        let mut eng = lane.lock().expect("lane lock");
                        let busy0 = Instant::now();
                        let ran = lane_run_window(&mut eng);
                        let busy = busy0.elapsed().as_nanos() as u64;
                        if let ShardRole::Lane(ctx) = &mut eng.shard {
                            ctx.window_busy_ns = busy;
                            ctx.busy_total_ns += busy;
                            ctx.events_total += ran;
                        }
                    }
                    stats.serial_windows += 1;
                } else {
                    // Release the lanes and wait for the window to
                    // complete.
                    cur_epoch += 1;
                    epoch.store(cur_epoch, Ordering::Release);
                    let mut spins = 0u32;
                    while done.load(Ordering::Acquire) < n as u64 {
                        backoff(&mut spins);
                    }
                    done.store(0, Ordering::Relaxed);
                }
                let par_ns = par0.elapsed().as_nanos() as u64;

                let replay0 = Instant::now();
                let max_busy = replay_window(control, lanes);
                stats.windows += 1;
                if !serial {
                    stats.barrier_wait_ns += par_ns.saturating_sub(max_busy);
                }
                stats.replay_ns += replay0.elapsed().as_nanos() as u64;

                if let Some(ctrl) = adaptive.as_mut() {
                    // Both observations are global functions of the merged
                    // schedule — independent of lane count and thread
                    // timing — so the controller's decision sequence (and
                    // with it every window boundary) replays identically.
                    let executed = control.executed - exec0;
                    let pending: usize = lanes
                        .iter()
                        .map(|l| l.lock().expect("lane lock").queue.len())
                        .sum();
                    match ctrl.observe(executed, pending as u64) {
                        WindowDecision::Widened => {
                            stats.widened += 1;
                            crate::telemetry::record_window_adapt(1, 0);
                        }
                        WindowDecision::Narrowed => {
                            stats.narrowed += 1;
                            crate::telemetry::record_window_adapt(0, 1);
                        }
                        WindowDecision::Held => {}
                    }
                    stats.max_mult_seen = stats.max_mult_seen.max(ctrl.mult());
                }
            }

            stop.store(true, Ordering::Release);
            epoch.store(cur_epoch + 1, Ordering::Release);
        });

        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let eng = lane.get_mut().expect("lane lock");
            if let ShardRole::Lane(ctx) = &eng.shard {
                self.stats.lane_events[i] = ctx.events_total;
                self.stats.lane_busy_ns[i] = ctx.busy_total_ns;
            }
        }
        self.stats.wall_ns += wall0.elapsed().as_nanos() as u64;
        let ran = self.control.executed - start;
        crate::telemetry::record_run(ran, (self.control.now - t0).ps());
        ran
    }
}

/// Exponential-ish waiting: spin briefly, then start yielding.
#[inline]
fn backoff(spins: &mut u32) {
    *spins = spins.wrapping_add(1);
    if *spins & 0x3ff == 0 {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

/// One lane's worker loop: wait for an epoch tick, drain the lane's
/// window, report done. Lives for the whole `run` call.
fn lane_worker<S>(lane: &Mutex<Engine<S>>, epoch: &AtomicU64, done: &AtomicU64, stop: &AtomicBool) {
    let mut seen = 0u64;
    loop {
        let mut spins = 0u32;
        loop {
            let e = epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            backoff(&mut spins);
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        let mut eng = lane.lock().expect("lane lock");
        let busy0 = Instant::now();
        let ran = lane_run_window(&mut eng);
        let busy = busy0.elapsed().as_nanos() as u64;
        if let ShardRole::Lane(ctx) = &mut eng.shard {
            ctx.window_busy_ns = busy;
            ctx.busy_total_ns += busy;
            ctx.events_total += ran;
        }
        drop(eng);
        done.fetch_add(1, Ordering::Release);
    }
}

/// Execute every event on this lane with `time < window_end`, logging each
/// as a [`Rec`]. Newly scheduled in-window events join the same drain via
/// provisional keys.
fn lane_run_window<S>(eng: &mut Engine<S>) -> u64 {
    let window_end = match &eng.shard {
        ShardRole::Lane(ctx) => ctx.window_end,
        _ => unreachable!("lane window outside a lane engine"),
    };
    let mut ran = 0u64;
    while let Some((time, key, slot)) = eng.queue.pop_before(window_end) {
        debug_assert!(time >= eng.now, "lane causality violated");
        eng.now = time;
        eng.executed += 1;
        slot.run(eng);
        match &mut eng.shard {
            ShardRole::Lane(ctx) => ctx.recs.push(Rec {
                time,
                key,
                end: ctx.actions.len() as u32,
            }),
            _ => unreachable!("lane window outside a lane engine"),
        }
        ran += 1;
    }
    ran
}

/// One lane's window log, taken whole at the barrier: event records, the
/// action log they index into, and the staged cross-lane / cross-window
/// events.
type LaneLog<S> = (
    Vec<Rec>,
    Vec<Action<S>>,
    Vec<(Time, u32, u32, EventSlot<S>)>,
);

/// The serial barrier: merge lane logs into the sequential `(time, seq)`
/// order, assign real sequence numbers to every claim, fold the trace
/// hash, replay deferred wire tails, and commit staged cross-window /
/// cross-lane events with their resolved keys. Returns the busiest lane's
/// window wall time (for barrier-wait telemetry).
fn replay_window<S>(control: &mut Engine<S>, lanes: &[Mutex<Engine<S>>]) -> u64 {
    let n = lanes.len();
    let mut logs: Vec<LaneLog<S>> = Vec::with_capacity(n);
    let mut max_busy = 0u64;
    for lane in lanes {
        let mut eng = lane.lock().expect("lane lock");
        match &mut eng.shard {
            ShardRole::Lane(ctx) => {
                max_busy = max_busy.max(ctx.window_busy_ns);
                logs.push((
                    std::mem::take(&mut ctx.recs),
                    std::mem::take(&mut ctx.actions),
                    std::mem::take(&mut ctx.staged),
                ));
            }
            _ => unreachable!("lane engine lost its role"),
        }
    }

    // `seqs[lane][claim]` = the resolved global sequence number of that
    // lane's claim. Claims resolve strictly before any event that needs
    // them: a provisional event's parent precedes it in the same lane log,
    // and the merge preserves per-lane log order.
    let mut seqs: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut heads = vec![0usize; n];
    let mut acts = vec![0usize; n];
    loop {
        let mut best: Option<(usize, Time, u64)> = None;
        for (lane, (recs, _, _)) in logs.iter().enumerate() {
            if let Some(rec) = recs.get(heads[lane]) {
                let key = if rec.key & PROV_BIT != 0 {
                    seqs[lane][(rec.key & !PROV_BIT) as usize]
                } else {
                    rec.key
                };
                if best.is_none_or(|(_, bt, bk)| (rec.time, key) < (bt, bk)) {
                    best = Some((lane, rec.time, key));
                }
            }
        }
        let Some((lane, time, seq)) = best else { break };
        let (recs, actions, _) = &mut logs[lane];
        let end = recs[heads[lane]].end as usize;
        heads[lane] += 1;
        control.now = time;
        control.executed += 1;
        control.trace_hash = trace_mix(control.trace_hash, time.ps());
        control.trace_hash = trace_mix(control.trace_hash, seq);
        for a in &mut actions[acts[lane]..end] {
            match std::mem::replace(a, Action::Claim) {
                Action::Claim => {
                    seqs[lane].push(control.seq);
                    control.seq += 1;
                }
                Action::Tail(slot) => slot.run(control),
            }
        }
        acts[lane] = end;
    }

    // Staged events carry their claim's resolved sequence number into the
    // destination lane — after this, every queued key is final again.
    for (lane, (_, _, staged)) in logs.into_iter().enumerate() {
        for (at, dest, claim, slot) in staged {
            let seq = seqs[lane][claim as usize];
            lanes[dest as usize]
                .lock()
                .expect("lane lock")
                .queue
                .push(at, seq, slot);
        }
    }
    let outbox = match &mut control.shard {
        ShardRole::Control(ctx) => std::mem::take(&mut ctx.outbox),
        _ => unreachable!("control engine lost its role"),
    };
    for (at, lane, seq, slot) in outbox {
        lanes[lane as usize]
            .lock()
            .expect("lane lock")
            .queue
            .push(at, seq, slot);
    }
    max_busy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_partitions_contiguously() {
        let map = ShardMap::new(4, 10);
        let lanes: Vec<u32> = (0..10).map(|l| map.lane_of(l)).collect();
        assert_eq!(lanes, [0, 0, 0, 1, 1, 2, 2, 2, 3, 3]);
        // Never more lanes than localities.
        let map = ShardMap::new(8, 3);
        assert_eq!(map.lanes(), 3);
        assert_eq!(
            (0..3).map(|l| map.lane_of(l)).collect::<Vec<_>>(),
            [0, 1, 2]
        );
    }

    #[test]
    fn shared_state_aliases_one_allocation() {
        let mut owner = SharedState::new(41u64);
        // SAFETY: the alias is dropped before the owner, single thread.
        let mut alias = unsafe { owner.alias() };
        *alias += 1;
        assert_eq!(*owner, 42);
        *owner += 1;
        assert_eq!(*alias, 43);
        drop(alias);
        assert_eq!(*owner, 43);
    }

    #[test]
    fn provisional_keys_order_after_final_ones() {
        // A provisional key at the same instant must sort after every
        // final sequence number, like a fresh sequential seq would.
        assert!(PROV_BIT > u64::MAX / 2);
        assert!((PROV_BIT | 0) > 1_000_000_000);
    }
}
