//! Process-wide counters of simulation work, for wall-clock throughput
//! reporting (`repro perf`).
//!
//! Every [`Engine`](crate::Engine) run loop adds its executed-event count
//! and virtual-time advance here when it finishes — one relaxed atomic add
//! per `run*` call, nothing per event, so the hot path is untouched.
//! Harnesses take a [`snapshot`] before and after a workload and report the
//! delta as events/second; sweeps that run engines on many threads
//! (rayon) aggregate naturally.

use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS: AtomicU64 = AtomicU64::new(0);
static SIM_PS: AtomicU64 = AtomicU64::new(0);
static XLATE_LOOKUPS: AtomicU64 = AtomicU64::new(0);
static XLATE_PROBES: AtomicU64 = AtomicU64::new(0);
static XLATE_MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static AMO_EXECUTED: AtomicU64 = AtomicU64::new(0);
static AMO_NACKED: AtomicU64 = AtomicU64::new(0);
static AMO_FORWARDED: AtomicU64 = AtomicU64::new(0);
static RING_DOORBELLS: AtomicU64 = AtomicU64::new(0);
static RING_DESCS: AtomicU64 = AtomicU64::new(0);
static RING_COALESCED: AtomicU64 = AtomicU64::new(0);
static AMO_BATCHED: AtomicU64 = AtomicU64::new(0);
static SHM_OPS: AtomicU64 = AtomicU64::new(0);
static SHM_BYTES: AtomicU64 = AtomicU64::new(0);
static WINDOW_WIDENED: AtomicU64 = AtomicU64::new(0);
static WINDOW_NARROWED: AtomicU64 = AtomicU64::new(0);
static DOORBELL_BATCH_RAISED: AtomicU64 = AtomicU64::new(0);
static DOORBELL_BATCH_LOWERED: AtomicU64 = AtomicU64::new(0);
static MIGRATION_RING_DESCS: AtomicU64 = AtomicU64::new(0);
static MEMBERS_JOINED: AtomicU64 = AtomicU64::new(0);
static MEMBERS_DRAINED: AtomicU64 = AtomicU64::new(0);
static MEMBERS_CRASHED: AtomicU64 = AtomicU64::new(0);
static BLOCKS_REHOMED: AtomicU64 = AtomicU64::new(0);
static BLOCKS_RECOVERED: AtomicU64 = AtomicU64::new(0);
static STALE_XLATE_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Fold one finished engine run into the process totals.
pub(crate) fn record_run(events: u64, sim_advance_ps: u64) {
    if events > 0 {
        EVENTS.fetch_add(events, Ordering::Relaxed);
        SIM_PS.fetch_add(sim_advance_ps, Ordering::Relaxed);
    }
}

/// Fold a batch of translation-path work into the process totals.
///
/// Called by [`crate::flatmap::FlatTable`] (lookups/probes, batched
/// through per-table cells and flushed on a threshold and on drop) and by
/// the GAS layer's one-entry translation memos (`memo_hits`). `probes` is
/// the number of slots examined; `probes / lookups` is the mean probe
/// length of the flat tables.
pub fn record_translation(lookups: u64, probes: u64, memo_hits: u64) {
    if lookups > 0 {
        XLATE_LOOKUPS.fetch_add(lookups, Ordering::Relaxed);
        XLATE_PROBES.fetch_add(probes, Ordering::Relaxed);
    }
    if memo_hits > 0 {
        XLATE_MEMO_HITS.fetch_add(memo_hits, Ordering::Relaxed);
    }
}

/// Fold a batch of NIC active-operation outcomes into the process totals
/// (called by the AMO commit path in `net`).
pub fn record_amo(executed: u64, nacked: u64, forwarded: u64) {
    if executed > 0 {
        AMO_EXECUTED.fetch_add(executed, Ordering::Relaxed);
    }
    if nacked > 0 {
        AMO_NACKED.fetch_add(nacked, Ordering::Relaxed);
    }
    if forwarded > 0 {
        AMO_FORWARDED.fetch_add(forwarded, Ordering::Relaxed);
    }
}

/// Fold one descriptor-ring doorbell into the process totals (called by
/// [`crate::ring::Ring::drain`]). `coalesced` is the number of descriptors
/// that shared the doorbell with an earlier one — the saved per-op events.
pub fn record_ring(doorbells: u64, descs: u64, coalesced: u64) {
    if doorbells > 0 {
        RING_DOORBELLS.fetch_add(doorbells, Ordering::Relaxed);
        RING_DESCS.fetch_add(descs, Ordering::Relaxed);
    }
    if coalesced > 0 {
        RING_COALESCED.fetch_add(coalesced, Ordering::Relaxed);
    }
}

/// Fold AMO descriptors that shared a submission doorbell with another AMO
/// to the same responder (the PR-7 batching follow-up) into the totals.
pub fn record_amo_batched(n: u64) {
    if n > 0 {
        AMO_BATCHED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Fold intra-domain shared-memory operations (NIC and wire bypassed
/// entirely) into the process totals.
pub fn record_shm(ops: u64, bytes: u64) {
    if ops > 0 {
        SHM_OPS.fetch_add(ops, Ordering::Relaxed);
    }
    if bytes > 0 {
        SHM_BYTES.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Fold adaptive window-controller decisions into the process totals
/// (called by the shard barrier after each window).
pub fn record_window_adapt(widened: u64, narrowed: u64) {
    if widened > 0 {
        WINDOW_WIDENED.fetch_add(widened, Ordering::Relaxed);
    }
    if narrowed > 0 {
        WINDOW_NARROWED.fetch_add(narrowed, Ordering::Relaxed);
    }
}

/// Fold adaptive doorbell-controller decisions into the process totals
/// (called by [`crate::ring::Ring::drain`] when an AIMD step fires).
pub fn record_doorbell_adapt(raised: u64, lowered: u64) {
    if raised > 0 {
        DOORBELL_BATCH_RAISED.fetch_add(raised, Ordering::Relaxed);
    }
    if lowered > 0 {
        DOORBELL_BATCH_LOWERED.fetch_add(lowered, Ordering::Relaxed);
    }
}

/// Fold migration control descriptors posted through a descriptor ring
/// (instead of ad-hoc sends) into the process totals.
pub fn record_migration_ring(descs: u64) {
    if descs > 0 {
        MIGRATION_RING_DESCS.fetch_add(descs, Ordering::Relaxed);
    }
}

/// Fold membership state-machine transitions into the process totals
/// (called by the membership plane when a locality joins, finishes a
/// drain, or is declared crashed).
pub fn record_membership(joined: u64, drained: u64, crashed: u64) {
    if joined > 0 {
        MEMBERS_JOINED.fetch_add(joined, Ordering::Relaxed);
    }
    if drained > 0 {
        MEMBERS_DRAINED.fetch_add(drained, Ordering::Relaxed);
    }
    if crashed > 0 {
        MEMBERS_CRASHED.fetch_add(crashed, Ordering::Relaxed);
    }
}

/// Fold directory records re-homed to another serving locality (join
/// slices, drain hand-offs, crash take-overs) into the process totals.
pub fn record_blocks_rehomed(n: u64) {
    if n > 0 {
        BLOCKS_REHOMED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Fold blocks re-issued (zero-filled, generation-bumped) by the
/// crash-recovery policy into the process totals.
pub fn record_blocks_recovered(n: u64) {
    if n > 0 {
        BLOCKS_RECOVERED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Fold NIC translation entries dropped because they named (or forwarded
/// through) a crashed locality into the process totals.
pub fn record_stale_xlate_dropped(n: u64) {
    if n > 0 {
        STALE_XLATE_DROPPED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Totals accumulated so far (monotone; see [`Snapshot::since`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Events executed across all engines in this process.
    pub events: u64,
    /// Virtual picoseconds swept, summed over engine runs (a volume of
    /// simulated time, not a single clock: parallel sweeps each count).
    pub sim_ps: u64,
    /// Translation lookups served by the flat tables (BTT, owner cache,
    /// directory, NIC table).
    pub xlate_lookups: u64,
    /// Slots examined serving those lookups (`xlate_probes /
    /// xlate_lookups` = mean probe length).
    pub xlate_probes: u64,
    /// Translations satisfied by a one-entry last-translation memo
    /// (dependent-access workloads: chase, sssp).
    pub memo_hits: u64,
    /// Active memory operations executed at a NIC (translation + op in
    /// one visit, zero target-CPU events).
    pub amo_executed: u64,
    /// AMO requests NACKed back to their initiator.
    pub amo_nacked: u64,
    /// AMO requests re-injected through a forwarding entry.
    pub amo_forwarded: u64,
    /// Descriptor-ring doorbells rung (one per non-empty drain).
    pub ring_doorbells: u64,
    /// Descriptors that passed through rings.
    pub ring_descs: u64,
    /// Descriptors that shared a doorbell with an earlier one.
    pub ring_coalesced: u64,
    /// AMO descriptors that shared a submission doorbell with another AMO
    /// to the same responder.
    pub amo_batched: u64,
    /// Intra-domain operations short-circuited over shared memory (zero
    /// wire messages, zero NIC visits).
    pub shm_ops: u64,
    /// Payload bytes moved by those shared-memory operations.
    pub shm_bytes: u64,
    /// Barrier windows the adaptive controller widened.
    pub window_widened: u64,
    /// Barrier windows the adaptive controller narrowed.
    pub window_narrowed: u64,
    /// AIMD additive-increase steps taken by ring doorbell controllers.
    pub doorbell_batch_raised: u64,
    /// AIMD multiplicative-decrease steps taken by ring doorbell
    /// controllers.
    pub doorbell_batch_lowered: u64,
    /// Migration control messages that posted through a descriptor ring.
    pub migration_ring_descs: u64,
    /// Localities that completed a Joining → Active transition.
    pub members_joined: u64,
    /// Localities that completed a Draining → Left transition.
    pub members_drained: u64,
    /// Localities declared Crashed by the membership plane.
    pub members_crashed: u64,
    /// Directory records re-homed to another serving locality.
    pub blocks_rehomed: u64,
    /// Blocks re-issued (zeroed, generation-bumped) by crash recovery.
    pub blocks_recovered: u64,
    /// NIC translation entries dropped for naming a crashed locality.
    pub stale_xlate_dropped: u64,
}

impl Snapshot {
    /// The work done between `earlier` and `self`.
    pub fn since(self, earlier: Snapshot) -> Snapshot {
        Snapshot {
            events: self.events - earlier.events,
            sim_ps: self.sim_ps - earlier.sim_ps,
            xlate_lookups: self.xlate_lookups - earlier.xlate_lookups,
            xlate_probes: self.xlate_probes - earlier.xlate_probes,
            memo_hits: self.memo_hits - earlier.memo_hits,
            amo_executed: self.amo_executed - earlier.amo_executed,
            amo_nacked: self.amo_nacked - earlier.amo_nacked,
            amo_forwarded: self.amo_forwarded - earlier.amo_forwarded,
            ring_doorbells: self.ring_doorbells - earlier.ring_doorbells,
            ring_descs: self.ring_descs - earlier.ring_descs,
            ring_coalesced: self.ring_coalesced - earlier.ring_coalesced,
            amo_batched: self.amo_batched - earlier.amo_batched,
            shm_ops: self.shm_ops - earlier.shm_ops,
            shm_bytes: self.shm_bytes - earlier.shm_bytes,
            window_widened: self.window_widened - earlier.window_widened,
            window_narrowed: self.window_narrowed - earlier.window_narrowed,
            doorbell_batch_raised: self.doorbell_batch_raised - earlier.doorbell_batch_raised,
            doorbell_batch_lowered: self.doorbell_batch_lowered - earlier.doorbell_batch_lowered,
            migration_ring_descs: self.migration_ring_descs - earlier.migration_ring_descs,
            members_joined: self.members_joined - earlier.members_joined,
            members_drained: self.members_drained - earlier.members_drained,
            members_crashed: self.members_crashed - earlier.members_crashed,
            blocks_rehomed: self.blocks_rehomed - earlier.blocks_rehomed,
            blocks_recovered: self.blocks_recovered - earlier.blocks_recovered,
            stale_xlate_dropped: self.stale_xlate_dropped - earlier.stale_xlate_dropped,
        }
    }
}

/// Read the current process totals.
pub fn snapshot() -> Snapshot {
    Snapshot {
        events: EVENTS.load(Ordering::Relaxed),
        sim_ps: SIM_PS.load(Ordering::Relaxed),
        xlate_lookups: XLATE_LOOKUPS.load(Ordering::Relaxed),
        xlate_probes: XLATE_PROBES.load(Ordering::Relaxed),
        memo_hits: XLATE_MEMO_HITS.load(Ordering::Relaxed),
        amo_executed: AMO_EXECUTED.load(Ordering::Relaxed),
        amo_nacked: AMO_NACKED.load(Ordering::Relaxed),
        amo_forwarded: AMO_FORWARDED.load(Ordering::Relaxed),
        ring_doorbells: RING_DOORBELLS.load(Ordering::Relaxed),
        ring_descs: RING_DESCS.load(Ordering::Relaxed),
        ring_coalesced: RING_COALESCED.load(Ordering::Relaxed),
        amo_batched: AMO_BATCHED.load(Ordering::Relaxed),
        shm_ops: SHM_OPS.load(Ordering::Relaxed),
        shm_bytes: SHM_BYTES.load(Ordering::Relaxed),
        window_widened: WINDOW_WIDENED.load(Ordering::Relaxed),
        window_narrowed: WINDOW_NARROWED.load(Ordering::Relaxed),
        doorbell_batch_raised: DOORBELL_BATCH_RAISED.load(Ordering::Relaxed),
        doorbell_batch_lowered: DOORBELL_BATCH_LOWERED.load(Ordering::Relaxed),
        migration_ring_descs: MIGRATION_RING_DESCS.load(Ordering::Relaxed),
        members_joined: MEMBERS_JOINED.load(Ordering::Relaxed),
        members_drained: MEMBERS_DRAINED.load(Ordering::Relaxed),
        members_crashed: MEMBERS_CRASHED.load(Ordering::Relaxed),
        blocks_rehomed: BLOCKS_REHOMED.load(Ordering::Relaxed),
        blocks_recovered: BLOCKS_RECOVERED.load(Ordering::Relaxed),
        stale_xlate_dropped: STALE_XLATE_DROPPED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_runs_accumulate() {
        use crate::{Engine, Time};
        let before = snapshot();
        let mut eng = Engine::new(0u64, 1);
        for i in 0..100u64 {
            eng.schedule(Time::from_ns(i), |e| e.state += 1);
        }
        eng.run();
        let delta = snapshot().since(before);
        // Other tests may run engines concurrently; ours contributes at
        // least its own events and simulated span.
        assert!(delta.events >= 100);
        assert!(delta.sim_ps >= Time::from_ns(99).ps());
    }
}
