//! The discrete-event engine: a virtual clock and an event queue.
//!
//! Every behaviour in the simulator — wire transits, NIC DMA completions,
//! scheduler dispatches — is an *event*: an `FnOnce(&mut Engine<S>)`
//! executed at a scheduled instant of virtual time. The engine guarantees:
//!
//! * **causality** — events run in nondecreasing time order; scheduling in
//!   the past is a bug and panics in debug builds (clamped in release);
//! * **determinism** — ties at the same instant break by schedule order
//!   (a monotone sequence number), so a given seed and program produce an
//!   identical execution on every run and platform. A running hash of
//!   `(time, seq)` pairs ([`Engine::trace_hash`]) lets tests assert this.
//!
//! # Hot-path layout
//!
//! The engine executes hundreds of millions of events per experiment, so the
//! schedule→execute path is allocation-free for typical events:
//!
//! * closures whose captures fit three machine words are stored *inline* in
//!   the queue entry (`EventSlot`); only oversized captures fall back to a
//!   heap box, transparently;
//! * the pending set lives in a two-level calendar queue
//!   ([`TimeWheel`]) — O(1) insertion into
//!   near-future buckets instead of an O(log n) global heap — with pop order
//!   bit-for-bit identical to the old `BinaryHeap` (proved by the
//!   shadow-model proptest in `tests/timewheel_shadow.rs`);
//! * the trace hash advances by a single 64×64→128-bit multiply per word
//!   ([`trace_mix`]) rather than a byte-at-a-time FNV loop.

use crate::nic::LocalityId;
use crate::rng::Xoshiro256;
use crate::shard::ShardRole;
use crate::time::Time;
use crate::timewheel::TimeWheel;
use std::mem::{ManuallyDrop, MaybeUninit};

/// Words of inline closure storage per event. Three words cover the common
/// captures (an id, a size, a small struct, an `Rc` handle plus a word) —
/// larger closures spill to a box.
const INLINE_WORDS: usize = 3;

type Payload = MaybeUninit<[u64; INLINE_WORDS]>;

/// A type-erased `FnOnce(&mut Engine<S>)` with small-closure optimization.
///
/// The closure's captures are written directly into `payload` when they fit
/// (size ≤ 3 words, align ≤ word); otherwise `payload` holds a thin pointer
/// to a heap box. One fn pointer serves both fates a slot can meet —
/// `call(p, Some(engine))` consumes the payload and runs the closure;
/// `call(p, None)` destroys it without running (engine dropped while events
/// were still pending). Exactly one of the two happens per slot, keeping
/// each queue entry at four words of metadata.
pub(crate) struct EventSlot<S> {
    payload: Payload,
    call: unsafe fn(*mut u8, Option<&mut Engine<S>>),
}

impl<S> EventSlot<S> {
    pub(crate) fn new<F>(f: F) -> EventSlot<S>
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        // SAFETY contracts: each thunk below is only ever paired with the
        // payload representation its `new` arm wrote, and runs exactly once.
        unsafe fn call_inline<S, F: FnOnce(&mut Engine<S>)>(
            p: *mut u8,
            eng: Option<&mut Engine<S>>,
        ) {
            match eng {
                Some(eng) => ((p as *mut F).read())(eng),
                None => std::ptr::drop_in_place(p as *mut F),
            }
        }
        unsafe fn call_boxed<S, F: FnOnce(&mut Engine<S>)>(
            p: *mut u8,
            eng: Option<&mut Engine<S>>,
        ) {
            let f = Box::from_raw((p as *mut *mut F).read());
            if let Some(eng) = eng {
                f(eng);
            }
        }

        let mut payload: Payload = MaybeUninit::uninit();
        if size_of::<F>() <= size_of::<Payload>() && align_of::<F>() <= align_of::<Payload>() {
            // SAFETY: F fits the payload in size and alignment; the payload
            // is uninitialized and owned by this slot.
            unsafe { (payload.as_mut_ptr() as *mut F).write(f) };
            EventSlot {
                payload,
                call: call_inline::<S, F>,
            }
        } else {
            // SAFETY: a thin `*mut F` (one word, word-aligned) always fits.
            unsafe { (payload.as_mut_ptr() as *mut *mut F).write(Box::into_raw(Box::new(f))) };
            EventSlot {
                payload,
                call: call_boxed::<S, F>,
            }
        }
    }

    /// Consume the slot, running its closure.
    pub(crate) fn run(self, eng: &mut Engine<S>) {
        let mut this = ManuallyDrop::new(self);
        // SAFETY: `self` is wrapped in ManuallyDrop, so this call is the
        // payload's only consumer — `Drop::drop` will not also run.
        unsafe { (this.call)(this.payload.as_mut_ptr() as *mut u8, Some(eng)) }
    }
}

impl<S> Drop for EventSlot<S> {
    fn drop(&mut self) {
        // Only reached for slots never passed to `run` (pending events
        // discarded with the engine).
        // SAFETY: the payload is still initialized and consumed exactly once.
        unsafe { (self.call)(self.payload.as_mut_ptr() as *mut u8, None) }
    }
}

/// The discrete-event simulation engine, generic over the user state `S`.
///
/// `S` holds everything the simulated world contains (localities, NICs,
/// runtime schedulers, application state); events receive `&mut Engine<S>`
/// and may read the clock, mutate `state`, and schedule further events.
///
/// ```
/// use netsim::{Engine, Time};
///
/// let mut eng = Engine::new(Vec::new(), /*seed*/ 1);
/// eng.schedule(Time::from_ns(20), |e| e.state.push("second"));
/// eng.schedule(Time::from_ns(10), |e| {
///     e.state.push("first");
///     e.schedule(Time::from_ns(30), |e| e.state.push("third"));
/// });
/// eng.run();
/// assert_eq!(eng.state, ["first", "second", "third"]);
/// assert_eq!(eng.now(), Time::from_ns(40));
/// ```
pub struct Engine<S> {
    /// The simulated world. Public: events address it directly.
    pub state: S,
    pub(crate) now: Time,
    pub(crate) seq: u64,
    pub(crate) queue: TimeWheel<EventSlot<S>>,
    pub(crate) rng: Xoshiro256,
    pub(crate) executed: u64,
    pub(crate) trace_hash: u64,
    /// Which part a sharded run this engine plays, if any. Plain engines
    /// are always [`ShardRole::Seq`], which keeps every dispatch below a
    /// single-discriminant check on the hot path.
    pub(crate) shard: ShardRole<S>,
}

/// Initial trace-hash value (the FNV-1a offset basis, kept from the original
/// byte-loop hash; any nonzero constant would do).
const TRACE_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// One step of the engine's execution-trace hash: fold `value` into `hash`
/// with a single 64×64→128-bit multiply (a mum-style mix).
///
/// This replaced a byte-at-a-time FNV-1a loop (16 multiplies per event); it
/// keeps the properties the determinism tests rely on — a pure function of
/// the `(hash, value)` pair with fixed constants, so identical executions
/// hash identically on every platform, and order sensitivity, so reordered
/// executions diverge.
#[inline]
pub fn trace_mix(hash: u64, value: u64) -> u64 {
    const K: u64 = 0x9e37_79b9_7f4a_7c15; // 2^64 / phi, odd
    let m = u128::from(hash ^ value) * u128::from(K);
    (m as u64) ^ ((m >> 64) as u64) ^ hash.rotate_left(32)
}

impl<S> Engine<S> {
    /// Create an engine over `state`, seeding the deterministic PRNG.
    pub fn new(state: S, seed: u64) -> Engine<S> {
        Engine {
            state,
            now: Time::ZERO,
            seq: 0,
            queue: TimeWheel::new(),
            rng: Xoshiro256::seed_from_u64(seed),
            executed: 0,
            trace_hash: TRACE_SEED,
            shard: ShardRole::Seq,
        }
    }

    /// The current instant of virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Running [`trace_mix`] hash over the `(time, seq)` pairs of executed
    /// events.
    ///
    /// Two runs of the same program with the same seed must produce the same
    /// hash; the determinism property tests rely on this.
    #[inline]
    pub fn trace_hash(&self) -> u64 {
        self.trace_hash
    }

    /// The engine's deterministic PRNG.
    ///
    /// In a sharded run only the control engine may draw: lane engines run
    /// concurrently, so a draw there would consume the global stream in a
    /// thread-dependent order. Protocol code that needs randomness on the
    /// wire path wraps the draw in [`Engine::defer_wire`], which replays it
    /// serially at the window barrier.
    #[inline]
    pub fn rng(&mut self) -> &mut Xoshiro256 {
        assert!(
            !matches!(self.shard, ShardRole::Lane(_)),
            "engine RNG drawn inside a shard lane; wrap the draw in \
             defer_wire so it replays deterministically on the control engine"
        );
        &mut self.rng
    }

    /// Schedule `event` to run `delay` after the current instant.
    pub fn schedule<F>(&mut self, delay: Time, event: F)
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        let at = self.now + delay;
        self.schedule_at(at, event);
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past violates causality: debug builds panic,
    /// release builds clamp to `now`.
    pub fn schedule_at<F>(&mut self, at: Time, event: F)
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        if let ShardRole::Seq = self.shard {
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(at, seq, EventSlot::new(event));
        } else {
            self.shard_schedule(at, None, EventSlot::new(event));
        }
    }

    /// Schedule `event` at the absolute instant `at`, naming the locality
    /// whose state it touches.
    ///
    /// On a plain sequential engine this is exactly [`Engine::schedule_at`];
    /// the locality is advisory. In a sharded run it routes the event to the
    /// lane owning `loc`, which is how cross-shard messages find the right
    /// time-wheel. Protocol code must use this form for any event that runs
    /// on a *different* locality than the one scheduling it.
    pub fn schedule_at_loc<F>(&mut self, at: Time, loc: LocalityId, event: F)
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        if let ShardRole::Seq = self.shard {
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(at, seq, EventSlot::new(event));
        } else {
            self.shard_schedule(at, Some(loc), EventSlot::new(event));
        }
    }

    /// Run `tail` now — or, on a concurrent shard lane, defer it to the
    /// window barrier where it replays serially on the control engine.
    ///
    /// Wire-path code wraps its *shared-state* half in this: switch-port
    /// reservation, jitter draws, the fault plane. On a sequential engine
    /// the closure runs inline immediately (zero behaviour change); on a
    /// lane whose current window is wire-pure (no jitter, no faults, no
    /// switch contention model) it also runs inline, because the tail then
    /// touches nothing shared. Only impure lanes pay the deferral.
    pub fn defer_wire<F>(&mut self, tail: F)
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        if self.defers_wire() {
            self.push_wire_tail(EventSlot::new(tail));
        } else {
            tail(self);
        }
    }

    /// Execute the next pending event, if any. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some((time, seq, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "causality violated");
        self.now = time;
        self.executed += 1;
        self.trace_hash = trace_mix(self.trace_hash, time.ps());
        self.trace_hash = trace_mix(self.trace_hash, seq);
        ev.run(self);
        true
    }

    /// Run until the event queue drains (quiescence). Returns events executed.
    pub fn run(&mut self) -> u64 {
        let start = self.executed;
        let t0 = self.now;
        while self.step() {}
        let ran = self.executed - start;
        crate::telemetry::record_run(ran, (self.now - t0).ps());
        ran
    }

    /// Run until the queue drains or the clock would pass `deadline`.
    ///
    /// Events scheduled strictly after `deadline` remain pending and the
    /// clock is advanced to `deadline`; if instead the queue quiesces first,
    /// the clock stays at the last executed event.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let start = self.executed;
        let t0 = self.now;
        while let Some(next) = self.queue.next_time() {
            if next > deadline {
                self.now = deadline;
                break;
            }
            self.step();
        }
        let ran = self.executed - start;
        crate::telemetry::record_run(ran, (self.now - t0).ps());
        ran
    }

    /// Run at most `n` further events.
    pub fn run_steps(&mut self, n: u64) -> u64 {
        let start = self.executed;
        let t0 = self.now;
        while self.executed - start < n && self.step() {}
        let ran = self.executed - start;
        crate::telemetry::record_run(ran, (self.now - t0).ps());
        ran
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut eng = Engine::new(Vec::<u32>::new(), 0);
        eng.schedule(Time::from_ns(30), |e| e.state.push(3));
        eng.schedule(Time::from_ns(10), |e| e.state.push(1));
        eng.schedule(Time::from_ns(20), |e| e.state.push(2));
        eng.run();
        assert_eq!(eng.state, vec![1, 2, 3]);
        assert_eq!(eng.now(), Time::from_ns(30));
    }

    #[test]
    fn simultaneous_events_run_in_schedule_order() {
        let mut eng = Engine::new(Vec::<u32>::new(), 0);
        for i in 0..10 {
            eng.schedule(Time::from_ns(5), move |e| e.state.push(i));
        }
        eng.run();
        assert_eq!(eng.state, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng = Engine::new(0u64, 0);
        fn tick(e: &mut Engine<u64>) {
            e.state += 1;
            if e.state < 100 {
                e.schedule(Time::from_ns(1), tick);
            }
        }
        eng.schedule(Time::ZERO, tick);
        eng.run();
        assert_eq!(eng.state, 100);
        assert_eq!(eng.now(), Time::from_ns(99));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng = Engine::new(Vec::<u64>::new(), 0);
        for i in 1..=10 {
            eng.schedule(Time::from_ns(i * 10), move |e| e.state.push(i));
        }
        let ran = eng.run_until(Time::from_ns(45));
        assert_eq!(ran, 4);
        assert_eq!(eng.state, vec![1, 2, 3, 4]);
        assert_eq!(eng.now(), Time::from_ns(45));
        assert_eq!(eng.events_pending(), 6);
        eng.run();
        assert_eq!(eng.state.len(), 10);
    }

    #[test]
    fn run_until_early_quiescence_keeps_clock_at_last_event() {
        // The queue drains long before the deadline: the clock must stay at
        // the last executed event, not jump forward to the deadline.
        let mut eng = Engine::new(0u32, 0);
        eng.schedule(Time::from_ns(10), |e| e.state += 1);
        eng.schedule(Time::from_ns(25), |e| e.state += 1);
        let ran = eng.run_until(Time::from_us(1));
        assert_eq!(ran, 2);
        assert_eq!(eng.now(), Time::from_ns(25));
        assert_eq!(eng.events_pending(), 0);
        // An idle engine stays put too.
        assert_eq!(eng.run_until(Time::from_us(2)), 0);
        assert_eq!(eng.now(), Time::from_ns(25));
    }

    #[test]
    fn run_steps_limits_execution() {
        let mut eng = Engine::new(0u32, 0);
        for _ in 0..5 {
            eng.schedule(Time::ZERO, |e| e.state += 1);
        }
        assert_eq!(eng.run_steps(3), 3);
        assert_eq!(eng.state, 3);
        assert_eq!(eng.run_steps(10), 2);
        assert_eq!(eng.state, 5);
    }

    #[test]
    fn clock_does_not_go_backwards() {
        let mut eng = Engine::new((), 0);
        eng.schedule(Time::from_ns(100), |e| {
            // Scheduling with zero delay from t=100 stays at t=100.
            e.schedule(Time::ZERO, |e2| {
                assert_eq!(e2.now(), Time::from_ns(100));
            });
        });
        eng.run();
    }

    #[test]
    fn trace_hash_is_reproducible() {
        fn build() -> Engine<u64> {
            let mut eng = Engine::new(0u64, 99);
            for i in 0..50u64 {
                let jitter = eng.rng().next_below(1000);
                eng.schedule(Time::from_ps(jitter + i), move |e| {
                    e.state = e.state.wrapping_add(i);
                });
            }
            eng
        }
        let mut a = build();
        let mut b = build();
        a.run();
        b.run();
        assert_eq!(a.trace_hash(), b.trace_hash());
        assert_eq!(a.state, b.state);
    }

    #[test]
    fn trace_hash_distinguishes_schedules() {
        let mut a = Engine::new((), 0);
        a.schedule(Time::from_ns(1), |_| {});
        a.run();
        let mut b = Engine::new((), 0);
        b.schedule(Time::from_ns(2), |_| {});
        b.run();
        assert_ne!(a.trace_hash(), b.trace_hash());
    }

    #[test]
    fn state_shared_with_events_via_rc() {
        // Events may capture shared handles as well as touch `state`.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new((), 0);
        for i in 0..3 {
            let log = Rc::clone(&log);
            eng.schedule(Time::from_ns(i), move |_| log.borrow_mut().push(i));
        }
        eng.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn large_captures_fall_back_to_heap_and_still_run() {
        // 96 bytes of captures: exceeds the 24-byte inline payload, takes
        // the boxed path.
        let big = [7u64; 12];
        let mut eng = Engine::new(Vec::<u64>::new(), 0);
        eng.schedule(Time::from_ns(1), move |e| e.state.extend_from_slice(&big));
        eng.run();
        assert_eq!(eng.state, vec![7u64; 12]);
    }

    #[test]
    fn unexecuted_events_drop_their_captures() {
        // Dropping an engine with pending events must drop their captures —
        // both inline (an Rc alone) and boxed (Rc + bulky array).
        let token = Rc::new(());
        let mut eng = Engine::new((), 0);
        let t1 = Rc::clone(&token);
        eng.schedule(Time::from_ns(1), move |_| drop(t1));
        let t2 = Rc::clone(&token);
        let bulk = [0u64; 16];
        eng.schedule(Time::from_ns(2), move |_| {
            let _ = bulk;
            drop(t2);
        });
        assert_eq!(Rc::strong_count(&token), 3);
        drop(eng);
        assert_eq!(Rc::strong_count(&token), 1);
    }

    #[test]
    fn empty_engine_is_idle() {
        let mut eng = Engine::new((), 0);
        assert!(!eng.step());
        assert_eq!(eng.run(), 0);
        assert_eq!(eng.now(), Time::ZERO);
    }
}
