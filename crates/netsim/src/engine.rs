//! The discrete-event engine: a virtual clock and an event queue.
//!
//! Every behaviour in the simulator — wire transits, NIC DMA completions,
//! scheduler dispatches — is an *event*: a boxed `FnOnce(&mut Engine<S>)`
//! executed at a scheduled instant of virtual time. The engine guarantees:
//!
//! * **causality** — events run in nondecreasing time order; scheduling in
//!   the past is a bug and panics in debug builds (clamped in release);
//! * **determinism** — ties at the same instant break by schedule order
//!   (a monotone sequence number), so a given seed and program produce an
//!   identical execution on every run and platform. A running FNV-1a hash of
//!   `(time, seq)` pairs ([`Engine::trace_hash`]) lets tests assert this.

use crate::rng::Xoshiro256;
use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

type EventFn<S> = Box<dyn FnOnce(&mut Engine<S>)>;

struct Scheduled<S> {
    time: Time,
    seq: u64,
    run: EventFn<S>,
}

// Order by (time, seq) only; the closure takes no part in ordering.
impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The discrete-event simulation engine, generic over the user state `S`.
///
/// `S` holds everything the simulated world contains (localities, NICs,
/// runtime schedulers, application state); events receive `&mut Engine<S>`
/// and may read the clock, mutate `state`, and schedule further events.
///
/// ```
/// use netsim::{Engine, Time};
///
/// let mut eng = Engine::new(Vec::new(), /*seed*/ 1);
/// eng.schedule(Time::from_ns(20), |e| e.state.push("second"));
/// eng.schedule(Time::from_ns(10), |e| {
///     e.state.push("first");
///     e.schedule(Time::from_ns(30), |e| e.state.push("third"));
/// });
/// eng.run();
/// assert_eq!(eng.state, ["first", "second", "third"]);
/// assert_eq!(eng.now(), Time::from_ns(40));
/// ```
pub struct Engine<S> {
    /// The simulated world. Public: events address it directly.
    pub state: S,
    now: Time,
    seq: u64,
    queue: BinaryHeap<Scheduled<S>>,
    rng: Xoshiro256,
    executed: u64,
    trace_hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl<S> Engine<S> {
    /// Create an engine over `state`, seeding the deterministic PRNG.
    pub fn new(state: S, seed: u64) -> Engine<S> {
        Engine {
            state,
            now: Time::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            rng: Xoshiro256::seed_from_u64(seed),
            executed: 0,
            trace_hash: FNV_OFFSET,
        }
    }

    /// The current instant of virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Running FNV-1a hash over the `(time, seq)` pairs of executed events.
    ///
    /// Two runs of the same program with the same seed must produce the same
    /// hash; the determinism property tests rely on this.
    #[inline]
    pub fn trace_hash(&self) -> u64 {
        self.trace_hash
    }

    /// The engine's deterministic PRNG.
    #[inline]
    pub fn rng(&mut self) -> &mut Xoshiro256 {
        &mut self.rng
    }

    /// Schedule `event` to run `delay` after the current instant.
    pub fn schedule<F>(&mut self, delay: Time, event: F)
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        let at = self.now + delay;
        self.schedule_at(at, event);
    }

    /// Schedule `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past violates causality: debug builds panic,
    /// release builds clamp to `now`.
    pub fn schedule_at<F>(&mut self, at: Time, event: F)
    where
        F: FnOnce(&mut Engine<S>) + 'static,
    {
        debug_assert!(at >= self.now, "event scheduled in the past: {at} < {}", self.now);
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq,
            run: Box::new(event),
        });
    }

    /// Execute the next pending event, if any. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "causality violated");
        self.now = ev.time;
        self.executed += 1;
        self.trace_hash = fnv_step(self.trace_hash, ev.time.ps());
        self.trace_hash = fnv_step(self.trace_hash, ev.seq);
        (ev.run)(self);
        true
    }

    /// Run until the event queue drains (quiescence). Returns events executed.
    pub fn run(&mut self) -> u64 {
        let start = self.executed;
        while self.step() {}
        self.executed - start
    }

    /// Run until the queue drains or the clock would pass `deadline`.
    ///
    /// Events scheduled strictly after `deadline` remain pending; the clock
    /// is advanced to `deadline` if the simulation outlived it.
    pub fn run_until(&mut self, deadline: Time) -> u64 {
        let start = self.executed;
        while let Some(head) = self.queue.peek() {
            if head.time > deadline {
                self.now = deadline;
                break;
            }
            self.step();
        }
        if self.queue.is_empty() && self.now < deadline {
            // Quiesced early: the clock stays at the last event.
        }
        self.executed - start
    }

    /// Run at most `n` further events.
    pub fn run_steps(&mut self, n: u64) -> u64 {
        let mut done = 0;
        while done < n && self.step() {
            done += 1;
        }
        done
    }
}

#[inline]
fn fnv_step(mut hash: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut eng = Engine::new(Vec::<u32>::new(), 0);
        eng.schedule(Time::from_ns(30), |e| e.state.push(3));
        eng.schedule(Time::from_ns(10), |e| e.state.push(1));
        eng.schedule(Time::from_ns(20), |e| e.state.push(2));
        eng.run();
        assert_eq!(eng.state, vec![1, 2, 3]);
        assert_eq!(eng.now(), Time::from_ns(30));
    }

    #[test]
    fn simultaneous_events_run_in_schedule_order() {
        let mut eng = Engine::new(Vec::<u32>::new(), 0);
        for i in 0..10 {
            eng.schedule(Time::from_ns(5), move |e| e.state.push(i));
        }
        eng.run();
        assert_eq!(eng.state, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng = Engine::new(0u64, 0);
        fn tick(e: &mut Engine<u64>) {
            e.state += 1;
            if e.state < 100 {
                e.schedule(Time::from_ns(1), tick);
            }
        }
        eng.schedule(Time::ZERO, tick);
        eng.run();
        assert_eq!(eng.state, 100);
        assert_eq!(eng.now(), Time::from_ns(99));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng = Engine::new(Vec::<u64>::new(), 0);
        for i in 1..=10 {
            eng.schedule(Time::from_ns(i * 10), move |e| e.state.push(i));
        }
        let ran = eng.run_until(Time::from_ns(45));
        assert_eq!(ran, 4);
        assert_eq!(eng.state, vec![1, 2, 3, 4]);
        assert_eq!(eng.now(), Time::from_ns(45));
        assert_eq!(eng.events_pending(), 6);
        eng.run();
        assert_eq!(eng.state.len(), 10);
    }

    #[test]
    fn run_steps_limits_execution() {
        let mut eng = Engine::new(0u32, 0);
        for _ in 0..5 {
            eng.schedule(Time::ZERO, |e| e.state += 1);
        }
        assert_eq!(eng.run_steps(3), 3);
        assert_eq!(eng.state, 3);
        assert_eq!(eng.run_steps(10), 2);
        assert_eq!(eng.state, 5);
    }

    #[test]
    fn clock_does_not_go_backwards() {
        let mut eng = Engine::new((), 0);
        eng.schedule(Time::from_ns(100), |e| {
            // Scheduling with zero delay from t=100 stays at t=100.
            e.schedule(Time::ZERO, |e2| {
                assert_eq!(e2.now(), Time::from_ns(100));
            });
        });
        eng.run();
    }

    #[test]
    fn trace_hash_is_reproducible() {
        fn build() -> Engine<u64> {
            let mut eng = Engine::new(0u64, 99);
            for i in 0..50u64 {
                let jitter = eng.rng().next_below(1000);
                eng.schedule(Time::from_ps(jitter + i), move |e| {
                    e.state = e.state.wrapping_add(i);
                });
            }
            eng
        }
        let mut a = build();
        let mut b = build();
        a.run();
        b.run();
        assert_eq!(a.trace_hash(), b.trace_hash());
        assert_eq!(a.state, b.state);
    }

    #[test]
    fn trace_hash_distinguishes_schedules() {
        let mut a = Engine::new((), 0);
        a.schedule(Time::from_ns(1), |_| {});
        a.run();
        let mut b = Engine::new((), 0);
        b.schedule(Time::from_ns(2), |_| {});
        b.run();
        assert_ne!(a.trace_hash(), b.trace_hash());
    }

    #[test]
    fn state_shared_with_events_via_rc() {
        // Events may capture shared handles as well as touch `state`.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new((), 0);
        for i in 0..3 {
            let log = Rc::clone(&log);
            eng.schedule(Time::from_ns(i), move |_| log.borrow_mut().push(i));
        }
        eng.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_engine_is_idle() {
        let mut eng = Engine::new((), 0);
        assert!(!eng.step());
        assert_eq!(eng.run(), 0);
        assert_eq!(eng.now(), Time::ZERO);
    }
}
