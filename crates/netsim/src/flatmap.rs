//! Flat open-addressed translation tables — the GVA→physical fast path.
//!
//! Every translation structure in the stack (`Btt`, `OwnerCache`,
//! `Directory`, `XlateTable`) keys `u64` block keys to a small `Copy`
//! payload. [`FlatTable`] serves them all: one power-of-two slot array,
//! Robin-Hood linear probing over a seeded 128-bit-multiply mixer (the
//! same family as the engine's `trace_mix`), tombstone-free backward-shift
//! deletion, and payloads stored inline in the slot so a lookup is one
//! probe sequence with no second map.
//!
//! An intrusive doubly-linked recency list is threaded through the slots
//! for the LRU-bounded users (`OwnerCache`, the NIC table's live entries).
//! Entries are *listed* (on the recency list) or *unlisted* (present but
//! exempt — forwarding tombstones, directory records). Robin-Hood
//! displacement and backward-shift deletion relocate slots, so every
//! relocation is logged and the list links repaired afterwards in two
//! phases (read all final links, then write) — index translation is
//! exact, and the recency order is bit-for-bit identical to the old
//! slab-backed `LruMap`'s, which the trace-hash pins and shadow proptests
//! enforce.
//!
//! Lookup-path calls (`get`, `get_mut`, `lookup*`) count into
//! process-wide translation telemetry ([`crate::telemetry`]), batched
//! through per-table `Cell` counters and flushed on a threshold and on
//! drop, so the hot path costs two cell bumps, not an atomic.

use crate::telemetry;
use std::cell::Cell;

const NIL: u32 = u32::MAX;
/// Flush batched lookup/probe counters to the process totals this often.
const FLUSH_EVERY: u64 = 1 << 12;

/// Mix a key with the table's seed: one widening multiply by the
/// golden-ratio constant, folding the 128-bit product — `trace_mix`'s
/// family, deterministic and platform-independent.
#[inline]
fn mix(seed: u64, key: u64) -> u64 {
    const K: u64 = 0x9e37_79b9_7f4a_7c15;
    let m = u128::from(key ^ seed) * u128::from(K);
    (m as u64) ^ ((m >> 64) as u64)
}

#[derive(Clone, Copy)]
struct Slot<V: Copy> {
    key: u64,
    prev: u32,
    next: u32,
    /// Probe distance + 1; `0` marks an empty slot.
    dib: u16,
    listed: bool,
    value: V,
}

impl<V: Copy + Default> Default for Slot<V> {
    fn default() -> Slot<V> {
        Slot {
            key: 0,
            prev: NIL,
            next: NIL,
            dib: 0,
            listed: false,
            value: V::default(),
        }
    }
}

/// Outcome of [`FlatTable::insert_lru`], mirroring the old `LruMap::insert`
/// contract exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LruInsert<V> {
    /// Capacity is zero: the pair is handed straight back.
    Rejected(V),
    /// The key existed; its old value is returned and recency refreshed.
    Replaced(V),
    /// The list was full; the least-recently-used entry was evicted.
    Evicted(u64, V),
    /// Plain insertion, nothing displaced.
    Inserted,
}

/// A flat, open-addressed, optionally LRU-threaded map from `u64` keys to
/// inline `Copy` payloads. See the module docs for the design.
pub struct FlatTable<V: Copy + Default> {
    slots: Vec<Slot<V>>,
    mask: usize,
    len: usize,
    listed: usize,
    head: u32,
    tail: u32,
    seed: u64,
    lookups: Cell<u64>,
    probes: Cell<u64>,
    moves: Vec<(u32, u32)>,
}

impl<V: Copy + Default> FlatTable<V> {
    /// An empty table hashing with `seed` (no slots allocated until the
    /// first insert).
    pub fn with_seed(seed: u64) -> FlatTable<V> {
        FlatTable {
            slots: Vec::new(),
            mask: 0,
            len: 0,
            listed: 0,
            head: NIL,
            tail: NIL,
            seed,
            lookups: Cell::new(0),
            probes: Cell::new(0),
            moves: Vec::new(),
        }
    }

    /// Total entries (listed + unlisted).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries currently on the recency list.
    pub fn listed_len(&self) -> usize {
        self.listed
    }

    /// Allocated slot count (power of two; 0 before the first insert).
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        (mix(self.seed, key) as usize) & self.mask
    }

    /// Probe for `key`: `(slot index if present, slots examined)`.
    #[inline]
    fn probe(&self, key: u64) -> (Option<usize>, u64) {
        if self.slots.is_empty() {
            return (None, 1);
        }
        let mask = self.mask;
        let mut i = self.home(key);
        let mut dib: u16 = 1;
        loop {
            // SAFETY: `slots.len() == mask + 1` (power-of-two allocation)
            // and `i` is always masked, so `i < slots.len()`. This loop is
            // the hottest code in the simulator; the bounds check costs a
            // measurable fraction of a hit.
            let s = unsafe { self.slots.get_unchecked(i) };
            if s.dib == 0 || s.dib < dib {
                return (None, u64::from(dib));
            }
            if s.key == key {
                return (Some(i), u64::from(dib));
            }
            i = (i + 1) & mask;
            dib += 1;
        }
    }

    #[inline]
    fn note(&self, probes: u64) {
        self.lookups.set(self.lookups.get() + 1);
        self.probes.set(self.probes.get() + probes);
        if self.lookups.get() >= FLUSH_EVERY {
            self.flush_counters();
        }
    }

    /// Fold this table's batched lookup/probe counters into the process
    /// totals ([`telemetry::record_translation`]). Called automatically on
    /// a threshold and on drop.
    pub fn flush_counters(&self) {
        let l = self.lookups.replace(0);
        let p = self.probes.replace(0);
        if l > 0 {
            telemetry::record_translation(l, p, 0);
        }
    }

    /// Non-touching, non-counting read (diagnostics/tests — not a
    /// translation, so it stays out of the telemetry).
    pub fn peek(&self, key: u64) -> Option<&V> {
        let (found, _) = self.probe(key);
        found.map(|i| &self.slots[i].value)
    }

    /// Non-touching lookup (counts toward translation telemetry).
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        let (found, p) = self.probe(key);
        self.note(p);
        found.map(|i| &self.slots[i].value)
    }

    /// Non-touching mutable lookup (counts toward translation telemetry).
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let (found, p) = self.probe(key);
        self.note(p);
        found.map(|i| &mut self.slots[i].value)
    }

    /// Translate `key`: refresh recency when the entry is listed, count
    /// telemetry, return the payload.
    #[inline]
    pub fn lookup(&mut self, key: u64) -> Option<&mut V> {
        self.lookup_indexed(key).map(|(_, v)| v)
    }

    /// [`FlatTable::lookup`], also returning the slot index for a
    /// one-entry memo (re-validate later with [`FlatTable::lookup_at`]).
    #[inline]
    pub fn lookup_indexed(&mut self, key: u64) -> Option<(u32, &mut V)> {
        let (found, p) = self.probe(key);
        self.note(p);
        let i = found?;
        if self.slots[i].listed {
            self.move_front(i);
        }
        Some((i as u32, &mut self.slots[i].value))
    }

    /// Memoized translate: if slot `idx` still holds `key` (relocations
    /// and replacements are caught by the key check), this is a single
    /// slot read instead of a probe sequence. Recency is refreshed exactly
    /// as [`FlatTable::lookup`] would. `None` means the memo went stale —
    /// fall back to a full lookup.
    #[inline]
    pub fn lookup_at(&mut self, idx: u32, key: u64) -> Option<&mut V> {
        let i = idx as usize;
        if i >= self.slots.len() || self.slots[i].dib == 0 || self.slots[i].key != key {
            return None;
        }
        self.note(1);
        if self.slots[i].listed {
            self.move_front(i);
        }
        Some(&mut self.slots[i].value)
    }

    /// Insert or replace. New entries are unlisted; a replaced entry keeps
    /// its listed state and recency. Returns the old value.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if let (Some(i), _) = self.probe(key) {
            return Some(std::mem::replace(&mut self.slots[i].value, value));
        }
        self.insert_fresh(key, value);
        None
    }

    /// Single-probe insert-or-get: one probe sequence decides presence AND
    /// places the entry. Absent keys are inserted with `V::default()`,
    /// unlisted. Returns `(slot index, existed)`; mutate through
    /// [`FlatTable::value_at`] and list through [`FlatTable::promote_at`].
    /// Maintenance, not translation: does not count toward telemetry.
    #[inline]
    pub fn upsert(&mut self, key: u64) -> (u32, bool) {
        if let (Some(i), _) = self.probe(key) {
            return (i as u32, true);
        }
        (self.insert_fresh(key, V::default()) as u32, false)
    }

    /// Payload access by slot index (from [`FlatTable::upsert`] /
    /// [`FlatTable::lookup_indexed`]). The index must be current — any
    /// insert or remove can relocate slots.
    #[inline]
    pub fn value_at(&mut self, idx: u32) -> &mut V {
        let s = &mut self.slots[idx as usize];
        debug_assert_ne!(s.dib, 0, "value_at on an empty slot");
        &mut s.value
    }

    /// Insert with the old `LruMap` contract: zero `capacity` rejects,
    /// replacement refreshes recency, a full list evicts its tail (fully
    /// removed) before the new entry is listed at the front.
    pub fn insert_lru(&mut self, key: u64, value: V, capacity: usize) -> LruInsert<V> {
        if capacity == 0 {
            return LruInsert::Rejected(value);
        }
        if let (Some(i), _) = self.probe(key) {
            let old = std::mem::replace(&mut self.slots[i].value, value);
            if self.slots[i].listed {
                self.move_front(i);
            } else {
                self.push_front(i);
            }
            return LruInsert::Replaced(old);
        }
        let evicted = if self.listed >= capacity {
            let t = self.tail as usize;
            debug_assert_ne!(self.tail, NIL);
            let k = self.slots[t].key;
            let v = self.remove_at(t);
            Some((k, v))
        } else {
            None
        };
        let idx = self.insert_fresh(key, value);
        self.push_front(idx);
        match evicted {
            Some((k, v)) => LruInsert::Evicted(k, v),
            None => LruInsert::Inserted,
        }
    }

    /// Remove `key`, returning its value (backward-shift, no tombstones).
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let (found, _) = self.probe(key);
        found.map(|i| self.remove_at(i))
    }

    /// Put `key` at the front of the recency list (listing it if it was
    /// unlisted). Returns the payload.
    pub fn promote(&mut self, key: u64) -> Option<&mut V> {
        let (found, _) = self.probe(key);
        let i = found?;
        if self.slots[i].listed {
            self.move_front(i);
        } else {
            self.push_front(i);
        }
        Some(&mut self.slots[i].value)
    }

    /// [`FlatTable::promote`] by slot index — no probe. The index must be
    /// current (see [`FlatTable::value_at`]).
    #[inline]
    pub fn promote_at(&mut self, idx: u32) {
        let i = idx as usize;
        debug_assert_ne!(self.slots[i].dib, 0, "promote_at on an empty slot");
        if self.slots[i].listed {
            self.move_front(i);
        } else {
            self.push_front(i);
        }
    }

    /// Take `key` off the recency list, keeping the entry in the table.
    /// Returns whether the entry existed and was listed.
    pub fn unlist(&mut self, key: u64) -> bool {
        let (found, _) = self.probe(key);
        match found {
            Some(i) if self.slots[i].listed => {
                self.unlink(i);
                true
            }
            _ => false,
        }
    }

    /// Unlink the least-recently-used listed entry (it stays in the
    /// table), returning its key and payload.
    pub fn unlist_tail(&mut self) -> Option<(u64, &mut V)> {
        if self.tail == NIL {
            return None;
        }
        let t = self.tail as usize;
        self.unlink(t);
        let s = &mut self.slots[t];
        Some((s.key, &mut s.value))
    }

    /// Remove the least-recently-used listed entry outright — no probe
    /// (the tail's slot index is already known).
    pub fn remove_tail(&mut self) -> Option<(u64, V)> {
        if self.tail == NIL {
            return None;
        }
        let t = self.tail as usize;
        let k = self.slots[t].key;
        let v = self.remove_at(t);
        Some((k, v))
    }

    /// Peek the least-recently-used listed entry.
    pub fn tail(&self) -> Option<(u64, &V)> {
        if self.tail == NIL {
            return None;
        }
        let s = &self.slots[self.tail as usize];
        Some((s.key, &s.value))
    }

    /// Iterate all entries in slot order (arbitrary, deterministic for a
    /// given insertion history). The flag is the listed state.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V, bool)> {
        self.slots
            .iter()
            .filter(|s| s.dib != 0)
            .map(|s| (s.key, &s.value, s.listed))
    }

    /// Mutable [`FlatTable::iter`] (payload mutation only — no structural
    /// changes mid-iteration).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut V, bool)> {
        self.slots
            .iter_mut()
            .filter(|s| s.dib != 0)
            .map(|s| (s.key, &mut s.value, s.listed))
    }

    /// Iterate listed entries from most- to least-recently used.
    pub fn iter_lru(&self) -> impl Iterator<Item = (u64, &V)> {
        LruIter {
            table: self,
            cursor: self.head,
        }
    }

    /// Iterate all keys (slot order).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _, _)| k)
    }

    /// Drop every entry, keeping the slot allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = Slot::default();
        }
        self.len = 0;
        self.listed = 0;
        self.head = NIL;
        self.tail = NIL;
    }

    // ---- internals -----------------------------------------------------

    /// Insert a key known to be absent; returns its final slot index. The
    /// new entry is unlisted.
    fn insert_fresh(&mut self, key: u64, value: V) -> usize {
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mut moves = std::mem::take(&mut self.moves);
        moves.clear();
        let idx = self.place(key, value, NIL, NIL, false, &mut moves);
        self.repair_moves(&moves);
        self.moves = moves;
        self.len += 1;
        idx
    }

    /// Robin-Hood placement with displacement. Records every relocated
    /// resident entry in `moves` as `(old index, new index)`; link repair
    /// is the caller's job. Returns where the *new* key landed.
    fn place(
        &mut self,
        key: u64,
        value: V,
        prev: u32,
        next: u32,
        listed: bool,
        moves: &mut Vec<(u32, u32)>,
    ) -> usize {
        let mask = self.mask;
        let mut i = self.home(key);
        let mut dib: u16 = 1;
        // The carried entry: the new key first, then whatever each swap
        // displaces. `from` is the displaced entry's old index.
        let mut carry = Slot {
            key,
            prev,
            next,
            dib: 0,
            listed,
            value,
        };
        let mut from = NIL;
        let mut placed = NIL;
        loop {
            assert!(dib < u16::MAX, "flatmap probe-distance overflow");
            let s = &mut self.slots[i];
            if s.dib == 0 {
                carry.dib = dib;
                *s = carry;
                if from == NIL {
                    placed = i as u32;
                } else {
                    moves.push((from, i as u32));
                }
                debug_assert_ne!(placed, NIL);
                return placed as usize;
            }
            if s.dib < dib {
                let evicted_dib = s.dib;
                carry.dib = dib;
                let evicted = std::mem::replace(s, carry);
                if from == NIL {
                    placed = i as u32;
                } else {
                    moves.push((from, i as u32));
                }
                carry = evicted;
                from = i as u32;
                dib = evicted_dib;
            }
            i = (i + 1) & mask;
            dib += 1;
        }
    }

    /// Remove the entry at slot `i` (unlinking it first if listed), then
    /// backward-shift the following run and repair relocated links.
    fn remove_at(&mut self, i: usize) -> V {
        if self.slots[i].listed {
            self.unlink(i);
        }
        let val = self.slots[i].value;
        let mask = self.mask;
        let mut moves = std::mem::take(&mut self.moves);
        moves.clear();
        let mut cur = i;
        loop {
            let nxt = (cur + 1) & mask;
            let d = self.slots[nxt].dib;
            if d <= 1 {
                break;
            }
            self.slots[cur] = self.slots[nxt];
            self.slots[cur].dib = d - 1;
            moves.push((nxt as u32, cur as u32));
            cur = nxt;
        }
        self.slots[cur] = Slot::default();
        self.len -= 1;
        self.repair_moves(&moves);
        self.moves = moves;
        val
    }

    /// Repair recency-list links after slot relocations. Two phases: read
    /// every moved entry's final neighbor indices from the (still
    /// pre-move) stored values, then write — a moved entry's old index can
    /// equal another's new index, so no write may happen before all reads.
    fn repair_moves(&mut self, moves: &[(u32, u32)]) {
        if moves.is_empty() || self.listed == 0 {
            return;
        }
        let translate = |idx: u32| -> u32 {
            if idx == NIL {
                return NIL;
            }
            for &(o, n) in moves {
                if o == idx {
                    return n;
                }
            }
            idx
        };
        let mut fixes: Vec<(u32, u32, u32)> = Vec::with_capacity(moves.len());
        for &(_, n) in moves {
            let s = &self.slots[n as usize];
            if !s.listed {
                continue;
            }
            fixes.push((n, translate(s.prev), translate(s.next)));
        }
        for &(n, p, x) in &fixes {
            let ni = n as usize;
            self.slots[ni].prev = p;
            self.slots[ni].next = x;
        }
        for &(n, p, x) in &fixes {
            if p != NIL {
                self.slots[p as usize].next = n;
            } else {
                self.head = n;
            }
            if x != NIL {
                self.slots[x as usize].prev = n;
            } else {
                self.tail = n;
            }
        }
    }

    #[inline]
    fn unlink(&mut self, i: usize) {
        let (p, n) = (self.slots[i].prev, self.slots[i].next);
        if p != NIL {
            self.slots[p as usize].next = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.slots[n as usize].prev = p;
        } else {
            self.tail = p;
        }
        let s = &mut self.slots[i];
        s.prev = NIL;
        s.next = NIL;
        s.listed = false;
        self.listed -= 1;
    }

    #[inline]
    fn push_front(&mut self, i: usize) {
        let h = self.head;
        {
            let s = &mut self.slots[i];
            debug_assert!(!s.listed);
            s.prev = NIL;
            s.next = h;
            s.listed = true;
        }
        if h != NIL {
            self.slots[h as usize].prev = i as u32;
        } else {
            self.tail = i as u32;
        }
        self.head = i as u32;
        self.listed += 1;
    }

    #[inline]
    fn move_front(&mut self, i: usize) {
        if self.head == i as u32 {
            return;
        }
        self.unlink(i);
        self.push_front(i);
    }

    /// Double the slot array, rehashing every entry and rebuilding the
    /// recency list in its exact pre-grow order.
    fn grow(&mut self) {
        let new_cap = if self.slots.is_empty() {
            8
        } else {
            self.slots.len() * 2
        };
        let mut order: Vec<u64> = Vec::with_capacity(self.listed);
        let mut c = self.head;
        while c != NIL {
            let s = &self.slots[c as usize];
            order.push(s.key);
            c = s.next;
        }
        let old = std::mem::replace(&mut self.slots, vec![Slot::default(); new_cap]);
        self.mask = new_cap - 1;
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
        self.listed = 0;
        let mut moves = std::mem::take(&mut self.moves);
        for s in old {
            if s.dib != 0 {
                moves.clear();
                self.place(s.key, s.value, NIL, NIL, false, &mut moves);
                self.len += 1;
            }
        }
        self.moves = moves;
        for &k in order.iter().rev() {
            let (found, _) = self.probe(k);
            let i = found.expect("rehash lost a listed key");
            self.push_front(i);
        }
    }
}

impl<V: Copy + Default> Drop for FlatTable<V> {
    fn drop(&mut self) {
        self.flush_counters();
    }
}

struct LruIter<'a, V: Copy + Default> {
    table: &'a FlatTable<V>,
    cursor: u32,
}

impl<'a, V: Copy + Default> Iterator for LruIter<'a, V> {
    type Item = (u64, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let s = &self.table.slots[self.cursor as usize];
        self.cursor = s.next;
        Some((s.key, &s.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FlatTable<u64> {
        FlatTable::with_seed(0x5eed)
    }

    #[test]
    fn insert_get_remove() {
        let mut t = table();
        assert!(t.is_empty());
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(2, 20), None);
        assert_eq!(t.get(1), Some(&10));
        assert_eq!(t.get(3), None);
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.remove(1), Some(11));
        assert_eq!(t.remove(1), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut t = table();
        for k in 0..10_000u64 {
            t.insert(k * 7919, k);
        }
        assert_eq!(t.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(t.get(k * 7919), Some(&k));
        }
    }

    #[test]
    fn lru_semantics_match_old_lrumap() {
        let mut t: FlatTable<u64> = table();
        assert_eq!(t.insert_lru(1, 10, 0), LruInsert::Rejected(10));
        assert!(t.is_empty());
        assert_eq!(t.insert_lru(1, 10, 2), LruInsert::Inserted);
        assert_eq!(t.insert_lru(2, 20, 2), LruInsert::Inserted);
        // Touch 1 so 2 becomes the tail.
        assert!(t.lookup(1).is_some());
        assert_eq!(t.insert_lru(3, 30, 2), LruInsert::Evicted(2, 20));
        assert_eq!(t.insert_lru(1, 11, 2), LruInsert::Replaced(10));
        assert_eq!(t.listed_len(), 2);
        let mru: Vec<u64> = t.iter_lru().map(|(k, _)| k).collect();
        assert_eq!(mru, vec![1, 3]);
    }

    #[test]
    fn listed_and_unlisted_coexist() {
        let mut t: FlatTable<u64> = table();
        t.insert(100, 1); // unlisted
        t.insert_lru(200, 2, 8);
        assert_eq!(t.len(), 2);
        assert_eq!(t.listed_len(), 1);
        assert!(t.unlist(200));
        assert!(!t.unlist(100));
        assert_eq!(t.listed_len(), 0);
        assert!(t.promote(100).is_some());
        assert_eq!(t.listed_len(), 1);
        assert_eq!(t.tail().unwrap().0, 100);
    }

    #[test]
    fn recency_survives_heavy_displacement() {
        // Interleave listed/unlisted churn so Robin-Hood displacement and
        // backward shifts repeatedly relocate listed slots, then check the
        // recency order against a shadow list.
        let mut t: FlatTable<u64> = table();
        let mut shadow: Vec<u64> = Vec::new(); // MRU first
        let cap = 16;
        for i in 0..4_000u64 {
            let k = (i * 2_654_435_761) % 97;
            match i % 5 {
                0..=2 => {
                    match t.insert_lru(k, i, cap) {
                        LruInsert::Replaced(_) => {
                            shadow.retain(|&x| x != k);
                        }
                        LruInsert::Evicted(ek, _) => {
                            assert_eq!(shadow.pop(), Some(ek));
                        }
                        LruInsert::Inserted => {}
                        LruInsert::Rejected(_) => unreachable!(),
                    }
                    shadow.insert(0, k);
                }
                3 => {
                    let hit = t.lookup(k).is_some();
                    assert_eq!(hit, shadow.contains(&k));
                    if hit {
                        shadow.retain(|&x| x != k);
                        shadow.insert(0, k);
                    }
                }
                _ => {
                    let removed = t.remove(k).is_some();
                    assert_eq!(removed, shadow.contains(&k));
                    shadow.retain(|&x| x != k);
                }
            }
            assert_eq!(t.listed_len(), shadow.len());
        }
        let order: Vec<u64> = t.iter_lru().map(|(k, _)| k).collect();
        assert_eq!(order, shadow);
    }

    #[test]
    fn unlist_tail_keeps_entry() {
        let mut t: FlatTable<u64> = table();
        t.insert_lru(1, 10, 4);
        t.insert_lru(2, 20, 4);
        let (k, v) = t.unlist_tail().map(|(k, v)| (k, *v)).unwrap();
        assert_eq!((k, v), (1, 10));
        assert_eq!(t.listed_len(), 1);
        assert_eq!(t.get(1), Some(&10));
    }

    #[test]
    fn memo_lookup_at_validates_key() {
        let mut t: FlatTable<u64> = table();
        t.insert(7, 70);
        let (idx, _) = t.lookup_indexed(7).unwrap();
        assert_eq!(t.lookup_at(idx, 7), Some(&mut 70));
        assert_eq!(t.lookup_at(idx, 8), None);
        t.remove(7);
        assert_eq!(t.lookup_at(idx, 7), None);
        // Stale indices past a rebuild are rejected by the bounds check.
        assert_eq!(t.lookup_at(9999, 7), None);
    }

    #[test]
    fn clear_resets() {
        let mut t: FlatTable<u64> = table();
        t.insert(1, 1);
        t.insert_lru(2, 2, 4);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.listed_len(), 0);
        assert_eq!(t.get(1), None);
        t.insert(3, 3);
        assert_eq!(t.get(3), Some(&3));
    }
}
