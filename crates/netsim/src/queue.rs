//! A virtual-time multi-server resource queue.
//!
//! Models a pool of `k` identical servers (e.g. a locality's worker threads)
//! in the timestamp domain: a job arriving at `t` with service time `s`
//! occupies the earliest-available server, starting at
//! `max(t, that server's free time)`. This gives the queueing delay that
//! makes the software-AGAS path collapse under load (experiments E4/E5):
//! every remote access in that mode consumes target CPU, and the CPU is a
//! bounded resource.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pool of `k` serial servers in virtual time.
///
/// ```
/// use netsim::{ServerPool, Time};
///
/// let mut pool = ServerPool::new(2);
/// let (s1, _) = pool.admit(Time::ZERO, Time::from_us(10));
/// let (s2, _) = pool.admit(Time::ZERO, Time::from_us(10));
/// let (s3, _) = pool.admit(Time::ZERO, Time::from_us(10));
/// assert_eq!(s1, Time::ZERO);
/// assert_eq!(s2, Time::ZERO);              // second server
/// assert_eq!(s3, Time::from_us(10));       // queues behind the first
/// ```
#[derive(Clone, Debug)]
pub struct ServerPool {
    /// Min-heap of `(free-at, server index)`: `admit` pops its root instead
    /// of scanning all `k` servers. The index in the key reproduces the
    /// original linear scan's lowest-index tie-break exactly, keeping
    /// server choice — and thus every trace hash — deterministic.
    free: BinaryHeap<Reverse<(Time, u32)>>,
    all_idle: Time,
    busy_total: Time,
    jobs: u64,
}

impl ServerPool {
    /// Create a pool of `k ≥ 1` servers, all idle at time zero.
    pub fn new(k: usize) -> ServerPool {
        assert!(k >= 1, "ServerPool needs at least one server");
        assert!(k <= u32::MAX as usize, "ServerPool index space is u32");
        ServerPool {
            free: (0..k as u32).map(|i| Reverse((Time::ZERO, i))).collect(),
            all_idle: Time::ZERO,
            busy_total: Time::ZERO,
            jobs: 0,
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free.len()
    }

    /// Admit a job arriving at `arrival` needing `service` time.
    /// Returns `(start, finish)` on the chosen server.
    pub fn admit(&mut self, arrival: Time, service: Time) -> (Time, Time) {
        // Earliest-free server; ties broken by lowest index for determinism.
        let Reverse((free, idx)) = self.free.pop().expect("non-empty pool");
        let start = arrival.max(free);
        let finish = start + service;
        self.free.push(Reverse((finish, idx)));
        self.all_idle = self.all_idle.max(finish);
        self.busy_total += service;
        self.jobs += 1;
        (start, finish)
    }

    /// The earliest instant any server is free.
    pub fn earliest_free(&self) -> Time {
        self.free
            .peek()
            .map(|&Reverse((t, _))| t)
            .unwrap_or(Time::ZERO)
    }

    /// The instant all admitted work drains.
    pub fn all_idle_at(&self) -> Time {
        self.all_idle
    }

    /// Total service time admitted so far.
    pub fn busy_total(&self) -> Time {
        self.busy_total
    }

    /// Jobs admitted so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over `[0, horizon]` (can exceed 1.0 only if the horizon
    /// predates queued work; callers pass the final clock).
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon.ps() == 0 {
            return 0.0;
        }
        self.busy_total.ps() as f64 / (horizon.ps() as f64 * self.servers() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_fifo() {
        let mut p = ServerPool::new(1);
        let (s1, f1) = p.admit(Time::from_ns(0), Time::from_ns(10));
        assert_eq!((s1, f1), (Time::from_ns(0), Time::from_ns(10)));
        // Arrives while busy: waits.
        let (s2, f2) = p.admit(Time::from_ns(5), Time::from_ns(10));
        assert_eq!((s2, f2), (Time::from_ns(10), Time::from_ns(20)));
        // Arrives after drain: immediate.
        let (s3, _) = p.admit(Time::from_ns(100), Time::from_ns(1));
        assert_eq!(s3, Time::from_ns(100));
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut p = ServerPool::new(2);
        let (_, f1) = p.admit(Time::from_ns(0), Time::from_ns(10));
        let (s2, f2) = p.admit(Time::from_ns(0), Time::from_ns(10));
        assert_eq!(s2, Time::from_ns(0), "second server takes the job");
        assert_eq!(f1, f2);
        // Third job queues behind the earliest-finishing server.
        let (s3, _) = p.admit(Time::from_ns(0), Time::from_ns(5));
        assert_eq!(s3, Time::from_ns(10));
    }

    #[test]
    fn accounting() {
        let mut p = ServerPool::new(2);
        p.admit(Time::from_ns(0), Time::from_ns(10));
        p.admit(Time::from_ns(0), Time::from_ns(30));
        assert_eq!(p.jobs(), 2);
        assert_eq!(p.busy_total(), Time::from_ns(40));
        assert_eq!(p.all_idle_at(), Time::from_ns(30));
        assert_eq!(p.earliest_free(), Time::from_ns(10));
        // 40ns busy across 2 servers over 40ns horizon = 0.5 utilization.
        assert_eq!(p.utilization(Time::from_ns(40)), 0.5);
    }

    #[test]
    fn saturation_grows_queueing_delay() {
        // Offered load 2× capacity: start times must drift ever later.
        let mut p = ServerPool::new(1);
        let mut last_wait = Time::ZERO;
        for i in 0..100u64 {
            let arrival = Time::from_ns(i * 5);
            let (start, _) = p.admit(arrival, Time::from_ns(10));
            let wait = start - arrival;
            assert!(wait >= last_wait);
            last_wait = wait;
        }
        assert!(last_wait >= Time::from_ns(400));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = ServerPool::new(0);
    }
}
