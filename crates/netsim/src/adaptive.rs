//! Seed-deterministic feedback controllers for the two hottest batching
//! knobs: the shard barrier's lookahead window and the descriptor rings'
//! doorbell batch.
//!
//! Static presets leave throughput on the table whenever queue depth
//! diverges from the preset — exactly the regime interrupt moderation and
//! NIC-side batching adapt to in real hardware. Both controllers here are
//! **pure functions of (config, observed history)**: no clocks, no RNG, no
//! thread-dependent input. Feed either one the same observation sequence
//! and it emits the same decision sequence, which is what lets the shadow
//! tests prove adaptive schedules replay bit-identically at any lane
//! count (see `DESIGN.md` §3.8 for the full determinism argument).
//!
//! * [`WindowController`] — hysteresis-damped widening/narrowing of the
//!   barrier window multiplier, plus a serial-execution hint for windows
//!   too shallow to amortize a thread hand-off.
//! * [`RingController`] — AIMD adjustment of a ring's effective doorbell
//!   batch between a configured floor and ceiling, driven by an EWMA of
//!   occupancy observed at flush time.

/// Configuration of the adaptive barrier-window controller
/// ([`WindowController`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveWindow {
    /// Ceiling on the window multiplier. The sharded engine additionally
    /// clamps this to the widest *provably safe* multiplier for its
    /// fabric (see `ShardedEngine::safe_window_cap`): widening past the
    /// minimum cross-lane event delay would let a lane see an event
    /// another lane schedules inside the same window.
    pub max_mult: u32,
    /// Widen when total pending events across lanes at the barrier meet
    /// this threshold (deep queues: more work per window is available
    /// without extra barrier crossings).
    pub widen_at: u64,
    /// Narrow when a window executed at most this many events (the window
    /// ran empty; narrower windows cost nothing and bound widening drift).
    pub narrow_at: u64,
    /// Consecutive same-direction observations required before a step —
    /// the hysteresis damping that keeps one bursty window from flapping
    /// the multiplier.
    pub hysteresis: u32,
    /// Execute a window inline on the control thread (no lane hand-off)
    /// while the events-per-window EWMA is below this. Zero disables
    /// serial execution.
    pub serial_below: u64,
    /// EWMA weight = `1 / 2^ewma_shift` for the events-per-window average.
    pub ewma_shift: u32,
}

impl Default for AdaptiveWindow {
    fn default() -> AdaptiveWindow {
        AdaptiveWindow {
            max_mult: 8,
            widen_at: 256,
            narrow_at: 16,
            hysteresis: 2,
            serial_below: 8,
            ewma_shift: 2,
        }
    }
}

/// One step of the window controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowDecision {
    /// Multiplier increased by one.
    Widened,
    /// Multiplier decreased by one.
    Narrowed,
    /// No change this window.
    Held,
}

/// Hysteresis-damped controller for the shard barrier's window width.
///
/// After every window the engine reports `(executed, pending)` — events
/// the window ran and events still queued across all lanes at the
/// barrier. Both inputs are global functions of the merged deterministic
/// schedule (independent of lane count and thread timing), so the
/// controller's decision sequence is too.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowController {
    cfg: AdaptiveWindow,
    mult: u32,
    widen_streak: u32,
    narrow_streak: u32,
    /// Events-per-window EWMA in 1/16ths (fixed point).
    ewma_x16: u64,
}

impl WindowController {
    /// A controller starting at multiplier 1. `max_mult` below 1 is
    /// treated as 1 (adaptivity off).
    pub fn new(cfg: AdaptiveWindow) -> WindowController {
        WindowController {
            cfg,
            mult: 1,
            widen_streak: 0,
            narrow_streak: 0,
            ewma_x16: 0,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> AdaptiveWindow {
        self.cfg
    }

    /// Current window multiplier (effective window = `mult * L`).
    pub fn mult(&self) -> u32 {
        self.mult
    }

    /// Events-per-window EWMA, rounded down to whole events.
    pub fn ewma(&self) -> u64 {
        self.ewma_x16 >> 4
    }

    /// Should the next window run inline on the control thread?
    pub fn serial(&self) -> bool {
        self.cfg.serial_below > 0 && self.ewma_x16 < self.cfg.serial_below * 16
    }

    /// Record one finished window: `executed` events ran inside it,
    /// `pending` remain queued across all lanes at the barrier. Returns
    /// the (possibly held) decision; the caller applies `mult()` to the
    /// next window and counts telemetry off the decision.
    pub fn observe(&mut self, executed: u64, pending: u64) -> WindowDecision {
        let s = self.cfg.ewma_shift.min(16);
        self.ewma_x16 = self.ewma_x16 - (self.ewma_x16 >> s) + ((executed * 16) >> s);
        let max = self.cfg.max_mult.max(1);
        if pending >= self.cfg.widen_at {
            self.narrow_streak = 0;
            self.widen_streak += 1;
            if self.widen_streak >= self.cfg.hysteresis.max(1) && self.mult < max {
                self.widen_streak = 0;
                self.mult += 1;
                return WindowDecision::Widened;
            }
        } else if executed <= self.cfg.narrow_at {
            self.widen_streak = 0;
            self.narrow_streak += 1;
            if self.narrow_streak >= self.cfg.hysteresis.max(1) && self.mult > 1 {
                self.narrow_streak = 0;
                self.mult -= 1;
                return WindowDecision::Narrowed;
            }
        } else {
            self.widen_streak = 0;
            self.narrow_streak = 0;
        }
        if self.mult > max {
            // A config change mid-run (tests) still converges.
            self.mult = max;
        }
        WindowDecision::Held
    }
}

/// Configuration of the adaptive doorbell-batch controller
/// ([`RingController`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveRing {
    /// Smallest effective batch the controller may reach (keeps latency
    /// bounded on trickle traffic).
    pub floor: u32,
    /// Largest effective batch the controller may reach (keeps a burst
    /// from deferring its doorbell indefinitely).
    pub ceil: u32,
    /// Additive-increase step applied when a flush fills the batch.
    pub add: u32,
    /// EWMA weight = `1 / 2^ewma_shift` for flush-time occupancy.
    pub ewma_shift: u32,
}

impl Default for AdaptiveRing {
    fn default() -> AdaptiveRing {
        AdaptiveRing {
            floor: 2,
            ceil: 64,
            add: 4,
            ewma_shift: 2,
        }
    }
}

/// One step of the ring controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingDecision {
    /// Effective batch raised (additive increase).
    Raised,
    /// Effective batch lowered (multiplicative decrease).
    Lowered,
    /// No change this flush.
    Held,
}

/// AIMD controller for a descriptor ring's effective doorbell batch.
///
/// The ring reports every flush: occupancy at drain time and whether the
/// flush was forced by a full batch (producer outran the batch — raise
/// additively toward the ceiling) or fired on the moderation timer (the
/// batch never filled — if the occupancy EWMA shows the ring running
/// light, halve back toward the floor). Flush-time occupancy is a pure
/// function of the simulated schedule, so the decision sequence is too.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingController {
    cfg: AdaptiveRing,
    eff_batch: u32,
    /// Flush-occupancy EWMA in 1/16ths (fixed point).
    ewma_x16: u64,
}

impl RingController {
    /// A controller starting from the ring's configured static batch,
    /// clamped into `[floor, ceil]`.
    pub fn new(cfg: AdaptiveRing, base_batch: u32) -> RingController {
        let floor = cfg.floor.max(1);
        let ceil = cfg.ceil.max(floor);
        RingController {
            cfg,
            eff_batch: base_batch.clamp(floor, ceil),
            ewma_x16: u64::from(base_batch.clamp(floor, ceil)) * 16,
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> AdaptiveRing {
        self.cfg
    }

    /// Current effective doorbell batch (the ring's flush threshold).
    pub fn eff_batch(&self) -> u32 {
        self.eff_batch
    }

    /// Flush-occupancy EWMA, rounded down to whole descriptors.
    pub fn ewma(&self) -> u64 {
        self.ewma_x16 >> 4
    }

    /// Record one flush: `occupancy` descriptors drained, `timer` set when
    /// the moderation timer (not a full batch) forced it. Returns the
    /// (possibly held) decision.
    pub fn on_flush(&mut self, occupancy: u32, timer: bool) -> RingDecision {
        let s = self.cfg.ewma_shift.min(16);
        self.ewma_x16 = self.ewma_x16 - (self.ewma_x16 >> s) + ((u64::from(occupancy) * 16) >> s);
        let floor = self.cfg.floor.max(1);
        let ceil = self.cfg.ceil.max(floor);
        if !timer && occupancy >= self.eff_batch {
            let next = self.eff_batch.saturating_add(self.cfg.add).min(ceil);
            if next != self.eff_batch {
                self.eff_batch = next;
                return RingDecision::Raised;
            }
        } else if timer && self.ewma_x16 < u64::from(self.eff_batch) * 8 {
            // EWMA below half the batch: traffic is trickling; halve.
            let next = (self.eff_batch / 2).max(floor);
            if next != self.eff_batch {
                self.eff_batch = next;
                return RingDecision::Lowered;
            }
        }
        RingDecision::Held
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_widens_under_depth_and_narrows_when_empty() {
        let mut c = WindowController::new(AdaptiveWindow::default());
        assert_eq!(c.mult(), 1);
        // Two consecutive deep observations (hysteresis = 2) per step.
        assert_eq!(c.observe(100, 1000), WindowDecision::Held);
        assert_eq!(c.observe(100, 1000), WindowDecision::Widened);
        assert_eq!(c.mult(), 2);
        // Empty windows walk it back down.
        assert_eq!(c.observe(0, 0), WindowDecision::Held);
        assert_eq!(c.observe(0, 0), WindowDecision::Narrowed);
        assert_eq!(c.mult(), 1);
        // Never below 1.
        for _ in 0..10 {
            c.observe(0, 0);
        }
        assert_eq!(c.mult(), 1);
    }

    #[test]
    fn window_respects_max_mult() {
        let cfg = AdaptiveWindow {
            max_mult: 3,
            hysteresis: 1,
            ..AdaptiveWindow::default()
        };
        let mut c = WindowController::new(cfg);
        for _ in 0..10 {
            c.observe(1000, 1_000_000);
        }
        assert_eq!(c.mult(), 3);
    }

    #[test]
    fn window_hysteresis_damps_flapping() {
        let cfg = AdaptiveWindow {
            hysteresis: 3,
            ..AdaptiveWindow::default()
        };
        let mut c = WindowController::new(cfg);
        // Alternating deep/empty never accumulates a 3-streak.
        for _ in 0..20 {
            assert_eq!(c.observe(100, 1000), WindowDecision::Held);
            assert_eq!(c.observe(0, 0), WindowDecision::Held);
        }
        assert_eq!(c.mult(), 1);
    }

    #[test]
    fn serial_hint_follows_ewma() {
        let mut c = WindowController::new(AdaptiveWindow {
            serial_below: 8,
            ..AdaptiveWindow::default()
        });
        assert!(c.serial(), "fresh controller starts serial");
        for _ in 0..8 {
            c.observe(1000, 0);
        }
        assert!(!c.serial(), "busy windows switch to parallel");
        for _ in 0..32 {
            c.observe(0, 0);
        }
        assert!(c.serial(), "empty windows settle back to serial");
    }

    #[test]
    fn ring_aimd_raises_and_lowers_within_bounds() {
        let cfg = AdaptiveRing {
            floor: 2,
            ceil: 32,
            add: 4,
            ewma_shift: 2,
        };
        let mut c = RingController::new(cfg, 16);
        assert_eq!(c.eff_batch(), 16);
        // Full flushes raise additively to the ceiling.
        assert_eq!(c.on_flush(16, false), RingDecision::Raised);
        assert_eq!(c.eff_batch(), 20);
        for _ in 0..10 {
            c.on_flush(c.eff_batch(), false);
        }
        assert_eq!(c.eff_batch(), 32);
        // Timer flushes with a light EWMA halve to the floor.
        let mut lowered = 0;
        for _ in 0..40 {
            if c.on_flush(1, true) == RingDecision::Lowered {
                lowered += 1;
            }
        }
        assert!(lowered >= 4);
        assert_eq!(c.eff_batch(), 2);
    }

    #[test]
    fn ring_base_batch_clamped_into_bounds() {
        let cfg = AdaptiveRing {
            floor: 4,
            ceil: 8,
            add: 1,
            ewma_shift: 2,
        };
        assert_eq!(RingController::new(cfg, 1).eff_batch(), 4);
        assert_eq!(RingController::new(cfg, 100).eff_batch(), 8);
    }

    #[test]
    fn controllers_are_pure_functions_of_history() {
        // Same observation sequence → same decision sequence and state,
        // regardless of when or where the controller runs.
        let obs: Vec<(u64, u64)> = (0..200)
            .map(|i: u64| ((i * 37) % 400, (i * 91) % 2000))
            .collect();
        let run = |mut c: WindowController| {
            let mut out = Vec::new();
            for &(e, p) in &obs {
                out.push((c.observe(e, p), c.mult(), c.serial()));
            }
            out
        };
        let a = run(WindowController::new(AdaptiveWindow::default()));
        let b = run(WindowController::new(AdaptiveWindow::default()));
        assert_eq!(a, b);

        let flushes: Vec<(u32, bool)> =
            (0..200).map(|i: u32| ((i * 13) % 70, i % 3 == 0)).collect();
        let run = |mut c: RingController| {
            let mut out = Vec::new();
            for &(o, t) in &flushes {
                out.push((c.on_flush(o, t), c.eff_batch()));
            }
            out
        };
        let a = run(RingController::new(AdaptiveRing::default(), 16));
        let b = run(RingController::new(AdaptiveRing::default(), 16));
        assert_eq!(a, b);
    }
}
