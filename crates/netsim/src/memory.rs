//! Per-locality memory: a byte arena plus a power-of-two block allocator.
//!
//! Global-address-space *blocks* live in these arenas; a "physical address"
//! in the simulator is a byte offset into a locality's arena. The allocator
//! is segregated by power-of-two size class — exactly the granularity of the
//! GVA encoding's size classes — with a bump pointer for fresh storage and a
//! per-class free list for reuse (blocks are freed on migration hand-off).

use std::collections::HashMap;

/// A physical address: a byte offset into one locality's arena.
pub type PhysAddr = u64;

/// Error type for arena operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// The arena cannot grow to satisfy the request.
    OutOfMemory,
    /// An access fell outside the arena or its target allocation.
    Bounds,
}

/// A locality's memory arena and block allocator.
pub struct Memory {
    data: Vec<u8>,
    limit: usize,
    free: HashMap<u8, Vec<PhysAddr>>,
    allocated_bytes: u64,
    live_blocks: u64,
}

impl Memory {
    /// Create an arena that may grow up to `limit` bytes.
    pub fn new(limit: usize) -> Memory {
        Memory {
            data: Vec::new(),
            limit,
            free: HashMap::new(),
            allocated_bytes: 0,
            live_blocks: 0,
        }
    }

    /// Bytes currently backing live allocations.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Number of live blocks.
    pub fn live_blocks(&self) -> u64 {
        self.live_blocks
    }

    /// Total arena footprint (live + free-listed).
    pub fn footprint(&self) -> usize {
        self.data.len()
    }

    /// Allocate one block of size class `class` (block size `1 << class`
    /// bytes), zero-initialized.
    pub fn alloc_block(&mut self, class: u8) -> Result<PhysAddr, MemError> {
        let size = 1usize << class;
        let addr = if let Some(addr) = self.free.get_mut(&class).and_then(Vec::pop) {
            // Reused storage must be zeroed: a migrated-in block overwrites
            // it anyway, but fresh allocations observe zeros.
            let a = addr as usize;
            self.data[a..a + size].fill(0);
            addr
        } else {
            let addr = self.data.len() as PhysAddr;
            if self.data.len() + size > self.limit {
                return Err(MemError::OutOfMemory);
            }
            self.data.resize(self.data.len() + size, 0);
            addr
        };
        self.allocated_bytes += size as u64;
        self.live_blocks += 1;
        Ok(addr)
    }

    /// Return a block of size class `class` at `addr` to the free list.
    pub fn free_block(&mut self, addr: PhysAddr, class: u8) {
        self.free.entry(class).or_default().push(addr);
        self.allocated_bytes = self.allocated_bytes.saturating_sub(1 << class);
        self.live_blocks = self.live_blocks.saturating_sub(1);
    }

    /// Read `len` bytes starting at `addr`.
    pub fn read(&self, addr: PhysAddr, len: usize) -> Result<&[u8], MemError> {
        let a = addr as usize;
        self.data.get(a..a + len).ok_or(MemError::Bounds)
    }

    /// Copy `src` into the arena starting at `addr`.
    pub fn write(&mut self, addr: PhysAddr, src: &[u8]) -> Result<(), MemError> {
        let a = addr as usize;
        let dst = self
            .data
            .get_mut(a..a + src.len())
            .ok_or(MemError::Bounds)?;
        dst.copy_from_slice(src);
        Ok(())
    }

    /// Mutable view of `len` bytes at `addr` (action handlers operate on
    /// pinned blocks through this).
    pub fn slice_mut(&mut self, addr: PhysAddr, len: usize) -> Result<&mut [u8], MemError> {
        let a = addr as usize;
        self.data.get_mut(a..a + len).ok_or(MemError::Bounds)
    }

    /// Atomic-style read-modify-write of a little-endian `u64` cell
    /// (the GUPS update primitive).
    pub fn xor_u64(&mut self, addr: PhysAddr, val: u64) -> Result<u64, MemError> {
        let bytes = self.slice_mut(addr, 8)?;
        let mut cell = [0u8; 8];
        cell.copy_from_slice(bytes);
        let new = u64::from_le_bytes(cell) ^ val;
        bytes.copy_from_slice(&new.to_le_bytes());
        Ok(new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_zeroed_and_distinct() {
        let mut m = Memory::new(1 << 20);
        let a = m.alloc_block(6).unwrap();
        let b = m.alloc_block(6).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.read(a, 64).unwrap(), &[0u8; 64][..]);
        assert_eq!(m.live_blocks(), 2);
        assert_eq!(m.allocated_bytes(), 128);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut m = Memory::new(1 << 20);
        let a = m.alloc_block(8).unwrap();
        let payload: Vec<u8> = (0..=255).collect();
        m.write(a, &payload).unwrap();
        assert_eq!(m.read(a, 256).unwrap(), &payload[..]);
    }

    #[test]
    fn free_list_reuses_and_rezeroes() {
        let mut m = Memory::new(1 << 20);
        let a = m.alloc_block(6).unwrap();
        m.write(a, &[0xAB; 64]).unwrap();
        m.free_block(a, 6);
        assert_eq!(m.live_blocks(), 0);
        let b = m.alloc_block(6).unwrap();
        assert_eq!(a, b, "free list should hand the slot back");
        assert_eq!(m.read(b, 64).unwrap(), &[0u8; 64][..]);
    }

    #[test]
    fn free_lists_are_per_class() {
        let mut m = Memory::new(1 << 20);
        let a = m.alloc_block(6).unwrap();
        m.free_block(a, 6);
        let c = m.alloc_block(7).unwrap();
        assert_ne!(a, c, "different class must not reuse the slot");
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut m = Memory::new(100);
        assert_eq!(m.alloc_block(7), Err(MemError::OutOfMemory)); // 128 > 100
        let a = m.alloc_block(6); // 64 <= 100
        assert!(a.is_ok());
        assert_eq!(m.alloc_block(6), Err(MemError::OutOfMemory));
    }

    #[test]
    fn bounds_are_checked() {
        let mut m = Memory::new(1 << 10);
        let a = m.alloc_block(6).unwrap();
        assert_eq!(m.read(a + 60, 8), Err(MemError::Bounds));
        assert_eq!(m.write(1 << 20, &[1]), Err(MemError::Bounds));
        assert!(m.read(a, 64).is_ok());
    }

    #[test]
    fn xor_u64_read_modify_write() {
        let mut m = Memory::new(1 << 10);
        let a = m.alloc_block(6).unwrap();
        assert_eq!(m.xor_u64(a, 0xDEAD).unwrap(), 0xDEAD);
        assert_eq!(m.xor_u64(a, 0xDEAD).unwrap(), 0);
        assert_eq!(m.xor_u64(a + 64, 1), Err(MemError::Bounds));
    }
}
