//! # netsim — deterministic cluster/NIC simulator
//!
//! The hardware substrate for the `nmvgas` reproduction of *Network-Managed
//! Virtual Global Address Space for Message-driven Runtimes* (HPDC 2016).
//! The paper's experiments ran on an InfiniBand cluster whose NICs were
//! taught (via the Photon middleware) to translate *virtual* global
//! addresses; this crate substitutes a discrete-event model of that
//! hardware:
//!
//! * [`engine::Engine`] — virtual clock + event queue, bit-for-bit
//!   deterministic from a seed;
//! * [`config::NetConfig`] — LogGP cost parameters plus NIC translation
//!   costs/capacity;
//! * [`net::Cluster`] — localities, each with a [`memory::Memory`] arena and
//!   a [`nic::Nic`] whose [`nic::XlateTable`] is the paper's contribution in
//!   miniature: virtual-block → physical translation, forwarding tombstones
//!   for migrated blocks, NACKs for unknown ones;
//! * [`net::send_user`], [`net::rdma_put`], [`net::rdma_get`] — the timed
//!   operation state machines.
//!
//! Layers above implement [`net::Protocol`] to receive deliveries. See the
//! repository `DESIGN.md` for how this substitutes for the paper's testbed.

pub mod adaptive;
pub mod amo;
pub mod config;
pub mod engine;
pub mod faults;
pub mod flatmap;
pub mod lru;
pub mod memory;
pub mod net;
pub mod nic;
pub mod optable;
pub mod queue;
pub mod ring;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod timewheel;
pub mod trace;

pub use adaptive::{
    AdaptiveRing, AdaptiveWindow, RingController, RingDecision, WindowController, WindowDecision,
};
pub use amo::{AmoCache, AmoKey, AmoOp, AmoResult};
pub use config::{NetConfig, ShmDomain};
pub use engine::Engine;
pub use faults::{
    apply_corruption, FaultClass, FaultPlan, FaultPlane, FaultRates, FaultStats, FaultVerdict,
    LinkFlap, Partition,
};
pub use flatmap::{FlatTable, LruInsert};
pub use memory::{MemError, Memory, PhysAddr};
pub use net::{
    rdma_amo, rdma_get, rdma_put, send_user, send_user_classed, AmoReq, Cluster, Envelope, GetReq,
    Locality, NackReason, OpKind, Packet, Protocol, PutReq, RdmaTarget,
};
pub use nic::{LocalityId, Nic, Xlate, XlateEntry, XlateTable};
pub use optable::{OpError, OpId, OpOutcome, OpTable, OutcomeCounters};
pub use queue::ServerPool;
pub use ring::{Desc, DescSnapshot, PushOutcome, Ring, RingConfig, RingSet, RingStats};
pub use shard::{ShardMap, ShardStats, ShardedEngine, SharedState, SplitWorld};
pub use stats::{Counters, LogHistogram, TimeWeighted};
pub use time::Time;
pub use timewheel::TimeWheel;
pub use trace::{TraceEvent, TraceKind, Tracer};
