//! NIC-executed active memory operations (AMOs).
//!
//! The paper's translation table already lets the NIC resolve a virtual
//! block address with no target-CPU involvement; this module pushes simple
//! data-centric operations into that same access-completion path ("Active
//! Access" style): fetch-and-add, compare-and-swap, masked-put, and small
//! gather/scatter execute **at the NIC** against the translated physical
//! words — one NIC visit does translation *and* the operation, and the
//! target CPU schedules zero events on the hot path.
//!
//! AMOs are not idempotent (a replayed fetch-and-add double-counts), so
//! exactly-once semantics under retry/duplication comes from a per-NIC
//! **responder cache** ([`AmoCache`]): each executed AMO is remembered
//! under a retry-stable key (initiator locality + the initiator's
//! GAS-level op id), and a replayed request re-emits the cached result
//! instead of re-executing. Cache entries travel with their block on
//! migration so a retry that chases a forward still deduplicates.

use std::collections::{HashMap, VecDeque};

use crate::nic::LocalityId;

/// The operation a NIC executes against a translated virtual address.
///
/// All word operands are 8-byte little-endian words. `Scatter`/`Gather`
/// offsets are byte offsets **within the target block** (absolute, not
/// relative to the request's own offset), keeping the wire format simple.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AmoOp {
    /// `old = *word; *word = old + operand` (wrapping); returns `old`.
    FetchAdd {
        /// Value added to the target word.
        operand: u64,
    },
    /// `old = *word; if old == expected { *word = desired }`; returns
    /// `old` and whether the swap applied.
    CompareSwap {
        /// Value the target word must hold for the swap to apply.
        expected: u64,
        /// Value written on a successful compare.
        desired: u64,
    },
    /// `old = *word; *word = (old & !mask) | (value & mask)`; returns
    /// `old`. A 0xFF..FF mask is a plain atomic put.
    MaskedPut {
        /// Bits of the target word replaced by `value`.
        mask: u64,
        /// Replacement bits (only those under `mask` land).
        value: u64,
    },
    /// Write each `(offset, value)` word into the block, in order.
    Scatter {
        /// `(byte offset within block, word value)` pairs.
        writes: Vec<(u64, u64)>,
    },
    /// Read the word at each offset; results come back in request order.
    Gather {
        /// Byte offsets within the block to read.
        offsets: Vec<u64>,
    },
}

impl AmoOp {
    /// Short label for traces and bench rows.
    pub fn label(&self) -> &'static str {
        match self {
            AmoOp::FetchAdd { .. } => "fadd",
            AmoOp::CompareSwap { .. } => "cas",
            AmoOp::MaskedPut { .. } => "mput",
            AmoOp::Scatter { .. } => "scatter",
            AmoOp::Gather { .. } => "gather",
        }
    }

    /// Whether every word this op touches (given the request's base
    /// `offset`) lies inside a block of `len` bytes. The NIC checks this
    /// against the translated entry before executing; the software
    /// handler checks it against the block class.
    pub fn bounds_ok(&self, offset: u64, len: u64) -> bool {
        let word_ok = |off: u64| off.checked_add(8).is_some_and(|end| end <= len);
        match self {
            AmoOp::FetchAdd { .. } | AmoOp::CompareSwap { .. } | AmoOp::MaskedPut { .. } => {
                word_ok(offset)
            }
            AmoOp::Scatter { writes } => writes.iter().all(|&(off, _)| word_ok(off)),
            AmoOp::Gather { offsets } => offsets.iter().all(|&off| word_ok(off)),
        }
    }

    /// Number of payload words the request carries on the wire (used for
    /// sanity caps; AMO requests are control-sized).
    pub fn wire_words(&self) -> usize {
        match self {
            AmoOp::FetchAdd { .. } | AmoOp::MaskedPut { .. } => 1,
            AmoOp::CompareSwap { .. } => 2,
            AmoOp::Scatter { writes } => 2 * writes.len(),
            AmoOp::Gather { offsets } => offsets.len(),
        }
    }

    /// Whether the op can modify memory. Non-mutating AMOs (gathers,
    /// zero-operand fetch-adds, zero-mask masked-puts) are idempotent
    /// reads: a retried execution simply re-reads, so they never consume
    /// responder-cache slots — crucial so that high-rate polling reads
    /// cannot evict the cached completions that guard exactly-once
    /// semantics for genuine mutations.
    pub fn mutates(&self) -> bool {
        match self {
            AmoOp::FetchAdd { operand } => *operand != 0,
            AmoOp::CompareSwap { .. } | AmoOp::Scatter { .. } => true,
            AmoOp::MaskedPut { mask, .. } => *mask != 0,
            AmoOp::Gather { .. } => false,
        }
    }

    /// Number of memory words the op reads or writes when it executes
    /// (drives the modeled DMA time and the software copy charge).
    pub fn touched_words(&self) -> usize {
        match self {
            AmoOp::FetchAdd { .. } | AmoOp::CompareSwap { .. } | AmoOp::MaskedPut { .. } => 1,
            AmoOp::Scatter { writes } => writes.len().max(1),
            AmoOp::Gather { offsets } => offsets.len().max(1),
        }
    }
}

/// What an executed AMO returns to its initiator.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AmoResult {
    /// Prior value of the target word (word ops; zero for scatter/gather).
    pub old: u64,
    /// Whether the op mutated memory (`false` only for a failed
    /// compare-and-swap).
    pub applied: bool,
    /// Gathered word values, in request order (empty otherwise).
    pub values: Vec<u64>,
}

/// Retry-stable identity of an AMO: the initiating locality plus the raw
/// generational id of the initiator's *GAS-level* pending op. Transport
/// attempts (photon op ids) change across retries; this key does not, so
/// the responder cache deduplicates across both fault-plane duplication
/// and deadline-driven re-issue.
pub type AmoKey = (LocalityId, u64);

#[derive(Clone, Debug)]
struct CachedAmo {
    block: u64,
    result: AmoResult,
}

/// Default bound on remembered completions per NIC.
pub const AMO_CACHE_CAP: usize = 1024;

/// Per-NIC responder cache giving AMOs exactly-once semantics.
///
/// Bounded FIFO: once full, the oldest remembered completion is evicted.
/// The bound must comfortably exceed the initiator-side retry window
/// (in-flight ops × max attempts); at the default 1024 it does by orders
/// of magnitude. Entries are keyed by [`AmoKey`] and tagged with the
/// block they executed against so [`AmoCache::take_for_block`] can ship
/// them alongside a migrating block.
#[derive(Default)]
pub struct AmoCache {
    map: HashMap<AmoKey, CachedAmo>,
    fifo: VecDeque<AmoKey>,
    cap: usize,
}

impl AmoCache {
    /// A cache remembering up to `cap` completions.
    pub fn new(cap: usize) -> AmoCache {
        AmoCache {
            map: HashMap::new(),
            fifo: VecDeque::new(),
            cap,
        }
    }

    /// The result previously produced for `key`, if still remembered.
    pub fn lookup(&self, key: AmoKey) -> Option<&AmoResult> {
        self.map.get(&key).map(|c| &c.result)
    }

    /// Remember the result of an executed AMO. Re-installing an existing
    /// key refreshes the stored result without growing the FIFO.
    pub fn install(&mut self, key: AmoKey, block: u64, result: AmoResult) {
        if let Some(c) = self.map.get_mut(&key) {
            c.block = block;
            c.result = result;
            return;
        }
        if self.cap == 0 {
            return;
        }
        while self.fifo.len() >= self.cap {
            if let Some(old) = self.fifo.pop_front() {
                self.map.remove(&old);
            }
        }
        self.fifo.push_back(key);
        self.map.insert(key, CachedAmo { block, result });
    }

    /// Extract every remembered completion for `block`, in deterministic
    /// (installation) order — called when the block migrates away so the
    /// new owner inherits the dedup state.
    pub fn take_for_block(&mut self, block: u64) -> Vec<(AmoKey, AmoResult)> {
        let mut out = Vec::new();
        self.fifo.retain(|key| {
            let matches = matches!(self.map.get(key), Some(c) if c.block == block);
            if matches {
                if let Some(c) = self.map.remove(key) {
                    out.push((*key, c.result));
                }
            }
            !matches
        });
        out
    }

    /// Adopt completions shipped with an arriving block (the counterpart
    /// of [`AmoCache::take_for_block`]).
    pub fn absorb(&mut self, block: u64, entries: Vec<(AmoKey, AmoResult)>) {
        for (key, result) in entries {
            self.install(key, block, result);
        }
    }

    /// Remembered completions currently held.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }
}

fn read_word(block: &[u8], offset: u64) -> u64 {
    let o = offset as usize;
    u64::from_le_bytes(block[o..o + 8].try_into().expect("bounds checked"))
}

fn write_word(block: &mut [u8], offset: u64, value: u64) {
    let o = offset as usize;
    block[o..o + 8].copy_from_slice(&value.to_le_bytes());
}

/// Apply `op` to a block's bytes at `offset`. The caller must have
/// validated bounds with [`AmoOp::bounds_ok`] first — both the NIC commit
/// path and the software handler do, against the translated length and
/// the block class respectively.
pub fn execute(op: &AmoOp, block: &mut [u8], offset: u64) -> AmoResult {
    match op {
        AmoOp::FetchAdd { operand } => {
            let old = read_word(block, offset);
            write_word(block, offset, old.wrapping_add(*operand));
            AmoResult {
                old,
                applied: true,
                values: Vec::new(),
            }
        }
        AmoOp::CompareSwap { expected, desired } => {
            let old = read_word(block, offset);
            let applied = old == *expected;
            if applied {
                write_word(block, offset, *desired);
            }
            AmoResult {
                old,
                applied,
                values: Vec::new(),
            }
        }
        AmoOp::MaskedPut { mask, value } => {
            let old = read_word(block, offset);
            write_word(block, offset, (old & !mask) | (value & mask));
            AmoResult {
                old,
                applied: true,
                values: Vec::new(),
            }
        }
        AmoOp::Scatter { writes } => {
            for &(off, value) in writes {
                write_word(block, off, value);
            }
            AmoResult {
                old: 0,
                applied: true,
                values: Vec::new(),
            }
        }
        AmoOp::Gather { offsets } => AmoResult {
            old: 0,
            applied: true,
            values: offsets.iter().map(|&off| read_word(block, off)).collect(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_add_returns_old_and_adds() {
        let mut b = vec![0u8; 64];
        write_word(&mut b, 8, 40);
        let r = execute(&AmoOp::FetchAdd { operand: 2 }, &mut b, 8);
        assert_eq!(
            r,
            AmoResult {
                old: 40,
                applied: true,
                values: vec![]
            }
        );
        assert_eq!(read_word(&b, 8), 42);
        // Wrapping, not overflow.
        write_word(&mut b, 8, u64::MAX);
        let r = execute(&AmoOp::FetchAdd { operand: 3 }, &mut b, 8);
        assert_eq!(r.old, u64::MAX);
        assert_eq!(read_word(&b, 8), 2);
    }

    #[test]
    fn compare_swap_applies_only_on_match() {
        let mut b = vec![0u8; 64];
        write_word(&mut b, 0, 7);
        let miss = execute(
            &AmoOp::CompareSwap {
                expected: 9,
                desired: 1,
            },
            &mut b,
            0,
        );
        assert_eq!((miss.old, miss.applied), (7, false));
        assert_eq!(read_word(&b, 0), 7, "failed CAS must not write");
        let hit = execute(
            &AmoOp::CompareSwap {
                expected: 7,
                desired: 1,
            },
            &mut b,
            0,
        );
        assert_eq!((hit.old, hit.applied), (7, true));
        assert_eq!(read_word(&b, 0), 1);
    }

    #[test]
    fn masked_put_merges_bits() {
        let mut b = vec![0u8; 64];
        write_word(&mut b, 16, 0xFFFF_0000_FFFF_0000);
        let r = execute(
            &AmoOp::MaskedPut {
                mask: 0x0000_FFFF_0000_0000,
                value: 0x0000_ABCD_0000_0000,
            },
            &mut b,
            16,
        );
        assert_eq!(r.old, 0xFFFF_0000_FFFF_0000);
        assert_eq!(read_word(&b, 16), 0xFFFF_ABCD_FFFF_0000);
    }

    #[test]
    fn scatter_gather_round_trip() {
        let mut b = vec![0u8; 64];
        let w = execute(
            &AmoOp::Scatter {
                writes: vec![(0, 11), (24, 22), (56, 33)],
            },
            &mut b,
            0,
        );
        assert!(w.applied);
        let r = execute(
            &AmoOp::Gather {
                offsets: vec![56, 0, 24],
            },
            &mut b,
            0,
        );
        assert_eq!(r.values, vec![33, 11, 22], "gather preserves request order");
    }

    #[test]
    fn bounds_checks_cover_every_touched_word() {
        let op = AmoOp::FetchAdd { operand: 1 };
        assert!(op.bounds_ok(56, 64));
        assert!(!op.bounds_ok(57, 64), "word straddles the block end");
        assert!(!op.bounds_ok(u64::MAX - 3, u64::MAX), "offset overflow");
        let sc = AmoOp::Scatter {
            writes: vec![(0, 1), (64, 2)],
        };
        assert!(!sc.bounds_ok(0, 64));
        assert!(sc.bounds_ok(0, 72));
        let ga = AmoOp::Gather {
            offsets: vec![0, 56],
        };
        assert!(ga.bounds_ok(0, 64));
        assert!(!ga.bounds_ok(0, 63));
    }

    #[test]
    fn only_mutating_ops_need_replay_protection() {
        assert!(AmoOp::FetchAdd { operand: 1 }.mutates());
        assert!(!AmoOp::FetchAdd { operand: 0 }.mutates(), "atomic read");
        assert!(AmoOp::CompareSwap {
            expected: 0,
            desired: 0
        }
        .mutates());
        assert!(AmoOp::MaskedPut { mask: 1, value: 1 }.mutates());
        assert!(!AmoOp::MaskedPut { mask: 0, value: 7 }.mutates());
        assert!(AmoOp::Scatter { writes: vec![] }.mutates());
        assert!(!AmoOp::Gather { offsets: vec![0] }.mutates());
    }

    #[test]
    fn cache_deduplicates_by_key() {
        let mut c = AmoCache::new(8);
        let key = (3u32, 0x1234u64);
        assert!(c.lookup(key).is_none());
        c.install(
            key,
            42,
            AmoResult {
                old: 7,
                applied: true,
                values: vec![],
            },
        );
        assert_eq!(c.lookup(key).unwrap().old, 7);
        // Re-install refreshes rather than duplicating.
        c.install(
            key,
            42,
            AmoResult {
                old: 9,
                applied: true,
                values: vec![],
            },
        );
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(key).unwrap().old, 9);
    }

    #[test]
    fn cache_evicts_fifo_at_capacity() {
        let mut c = AmoCache::new(2);
        for i in 0..3u64 {
            c.install(
                (0, i),
                i,
                AmoResult {
                    old: i,
                    applied: true,
                    values: vec![],
                },
            );
        }
        assert_eq!(c.len(), 2);
        assert!(c.lookup((0, 0)).is_none(), "oldest entry evicted");
        assert!(c.lookup((0, 1)).is_some());
        assert!(c.lookup((0, 2)).is_some());
    }

    #[test]
    fn take_for_block_extracts_in_install_order() {
        let mut c = AmoCache::new(8);
        c.install(
            (0, 1),
            5,
            AmoResult {
                old: 1,
                applied: true,
                values: vec![],
            },
        );
        c.install(
            (1, 2),
            9,
            AmoResult {
                old: 2,
                applied: true,
                values: vec![],
            },
        );
        c.install(
            (2, 3),
            5,
            AmoResult {
                old: 3,
                applied: true,
                values: vec![],
            },
        );
        let moved = c.take_for_block(5);
        assert_eq!(
            moved.iter().map(|(k, r)| (*k, r.old)).collect::<Vec<_>>(),
            vec![((0, 1), 1), ((2, 3), 3)]
        );
        assert_eq!(c.len(), 1, "block-9 entry stays");
        assert!(c.lookup((1, 2)).is_some());
        // Absorb on the destination reinstates dedup state.
        let mut d = AmoCache::new(8);
        d.absorb(5, moved);
        assert_eq!(d.lookup((0, 1)).unwrap().old, 1);
        assert_eq!(d.lookup((2, 3)).unwrap().old, 3);
    }

    #[test]
    fn zero_capacity_cache_remembers_nothing() {
        let mut c = AmoCache::new(0);
        c.install((0, 1), 5, AmoResult::default());
        assert!(c.lookup((0, 1)).is_none());
        assert!(c.is_empty());
    }
}
