//! A two-level calendar/time-wheel event queue.
//!
//! The engine's hot path is `push` + `pop` of timestamped events. A single
//! `BinaryHeap` pays an O(log n) sift in the *total* number of pending
//! events on every pop, with cache-hostile strided access; discrete-event
//! workloads, however, schedule overwhelmingly into the near future. This
//! queue exploits that:
//!
//! * **level 0 — the wheel**: virtual time is quantized into `2^GRAIN_LOG2`
//!   picosecond buckets; the next `SLOTS` quanta each own an unsorted
//!   `Vec`. A push inside that horizon is an O(1) `Vec::push`; an occupancy
//!   bitmap finds the next nonempty bucket in a few word scans.
//! * **level 1 — the current quantum**: when the wheel advances to a
//!   bucket, the bucket `Vec` is swapped into place (recycling capacity,
//!   copying nothing) and sorted *descending* by `(time, seq)` once, so
//!   pops are plain `Vec::pop` calls off the tail — no per-event heap
//!   sifting. Events scheduled *into* the active quantum (zero-delay
//!   reschedules) land in a small side-heap; each pop takes whichever head
//!   is earlier, so ordering holds even while the quantum drains.
//! * **overflow heap**: events beyond the wheel horizon go to an ordinary
//!   heap and merge back quantum-by-quantum as the wheel reaches them.
//!
//! Pop order is strictly ascending `(time, seq)` — bit-for-bit the order a
//! single `BinaryHeap` would produce (`tests/timewheel_shadow.rs` proves
//! this against a reference model) — so the engine's determinism guarantee
//! is unchanged.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the bucket width in picoseconds: 2^13 ps ≈ 8.2 ns, matching the
/// o/g-scale gaps of the LogGP cost model so near-future events spread
/// across buckets instead of piling into one.
const GRAIN_LOG2: u32 = 13;

/// Buckets in the wheel; with the grain above the horizon is ≈ 8.4 µs of
/// virtual time. Must be a power of two.
const SLOTS: usize = 1024;

/// Occupancy-bitmap words.
const WORDS: usize = SLOTS / 64;

#[inline]
fn quantum(t: Time) -> u64 {
    t.ps() >> GRAIN_LOG2
}

struct Entry<T> {
    time: Time,
    seq: u64,
    value: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.time, self.seq)
    }
}

// Order by (time, seq) only, inverted so `BinaryHeap` (a max-heap) pops the
// earliest entry first. The value takes no part in ordering.
impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// A priority queue of `(Time, seq, T)` entries that pops in strictly
/// ascending `(time, seq)` order, optimized for near-future insertion.
///
/// ```
/// use netsim::{TimeWheel, Time};
///
/// let mut q = TimeWheel::new();
/// q.push(Time::from_ns(20), 0, "late");
/// q.push(Time::from_ns(5), 1, "early");
/// q.push(Time::from_ns(5), 2, "tie breaks by seq");
/// assert_eq!(q.pop(), Some((Time::from_ns(5), 1, "early")));
/// assert_eq!(q.pop(), Some((Time::from_ns(5), 2, "tie breaks by seq")));
/// assert_eq!(q.pop(), Some((Time::from_ns(20), 0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct TimeWheel<T> {
    /// The active quantum's events, sorted descending by `(time, seq)`:
    /// `cur.pop()` yields them in ascending order.
    cur: Vec<Entry<T>>,
    /// Events pushed into the active quantum after it was sorted.
    extra: BinaryHeap<Entry<T>>,
    /// The active quantum index (`time >> GRAIN_LOG2`).
    cur_q: u64,
    /// Unsorted near-future buckets; slot `q % SLOTS` holds quantum `q`
    /// for `cur_q < q < cur_q + SLOTS`.
    slots: Box<[Vec<Entry<T>>]>,
    /// One bit per slot: set iff the slot's `Vec` is nonempty.
    occupied: [u64; WORDS],
    /// Events beyond the wheel horizon.
    overflow: BinaryHeap<Entry<T>>,
    len: usize,
}

impl<T> TimeWheel<T> {
    /// An empty queue starting at the origin of time.
    pub fn new() -> TimeWheel<T> {
        TimeWheel {
            cur: Vec::new(),
            extra: BinaryHeap::new(),
            cur_q: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Pending entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an entry. `seq` must be unique per queue (the engine's
    /// schedule counter); `(time, seq)` must be `>=` every entry already
    /// popped, or pop order is unspecified.
    pub fn push(&mut self, time: Time, seq: u64, value: T) {
        // `cur_q` lags real time only while the queue is empty; the first
        // pop's advance re-syncs it, so no re-anchoring is needed here.
        let q = quantum(time);
        self.len += 1;
        let entry = Entry { time, seq, value };
        let dq = q.wrapping_sub(self.cur_q);
        if dq.wrapping_sub(1) < SLOTS as u64 - 1 {
            // 1 <= q - cur_q < SLOTS: inside the wheel horizon.
            let s = (q % SLOTS as u64) as usize;
            self.slots[s].push(entry);
            self.occupied[s / 64] |= 1 << (s % 64);
        } else if q <= self.cur_q {
            // Active-quantum push. `cur` is sorted descending and popped
            // from the back; an entry earlier than the tail extends that
            // order for free (a self-rescheduling event chain hits this on
            // every push). Only out-of-order entries need the side-heap.
            match self.cur.last() {
                Some(c) if entry.key() > c.key() => self.extra.push(entry),
                _ => self.cur.push(entry),
            }
        } else {
            self.overflow.push(entry);
        }
    }

    /// The earliest pending `(time, seq)`'s time, if any. Advances the
    /// wheel's internal cursor but removes nothing.
    #[inline]
    pub fn next_time(&mut self) -> Option<Time> {
        loop {
            match (self.cur.last(), self.extra.peek()) {
                (Some(c), Some(x)) => return Some(c.time.min(x.time)),
                (Some(c), None) => return Some(c.time),
                (None, Some(x)) => return Some(x.time),
                (None, None) => {
                    if !self.advance() {
                        return None;
                    }
                }
            }
        }
    }

    /// The earliest pending `(time, seq)` key, if any. Advances the wheel's
    /// internal cursor but removes nothing.
    ///
    /// The sharded engine's micro-stepper uses this to find the globally
    /// next event across lanes without disturbing any queue.
    #[inline]
    pub fn next_key(&mut self) -> Option<(Time, u64)> {
        loop {
            match (self.cur.last(), self.extra.peek()) {
                (Some(c), Some(x)) => return Some(c.key().min(x.key())),
                (Some(c), None) => return Some(c.key()),
                (None, Some(x)) => return Some(x.key()),
                (None, None) => {
                    if !self.advance() {
                        return None;
                    }
                }
            }
        }
    }

    /// Remove and return the earliest entry only if its time is strictly
    /// below `limit`; otherwise leave the queue untouched.
    ///
    /// This is the shard lane's window loop: drain everything below the
    /// lookahead horizon, stop at the first entry beyond it.
    #[inline]
    pub fn pop_before(&mut self, limit: Time) -> Option<(Time, u64, T)> {
        if self.next_time()? >= limit {
            return None;
        }
        self.pop()
    }

    /// Remove and return the earliest entry by `(time, seq)`.
    #[inline]
    pub fn pop(&mut self) -> Option<(Time, u64, T)> {
        let from_extra = loop {
            match (self.cur.last(), self.extra.peek()) {
                (Some(c), Some(x)) => break x.key() < c.key(),
                (Some(_), None) => break false,
                (None, Some(_)) => break true,
                (None, None) => {
                    if !self.advance() {
                        return None;
                    }
                }
            }
        };
        let e = if from_extra {
            self.extra.pop()?
        } else {
            self.cur.pop()?
        };
        self.len -= 1;
        Some((e.time, e.seq, e.value))
    }

    /// Advance to the next quantum that has events (the active one is
    /// drained), sorting its wheel bucket in place and merging any overflow
    /// entries of the same quantum. Returns `false` if nothing is pending.
    fn advance(&mut self) -> bool {
        let wheel_next = self.next_wheel_quantum();
        let over_next = self.overflow.peek().map(|e| quantum(e.time));
        let next_q = match (wheel_next, over_next) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return false,
        };
        self.cur_q = next_q;
        if wheel_next == Some(next_q) {
            let s = (next_q % SLOTS as u64) as usize;
            self.occupied[s / 64] &= !(1 << (s % 64));
            // Swap, don't drain: the bucket becomes `cur` wholesale and the
            // spent `cur` allocation recycles as the empty bucket.
            std::mem::swap(&mut self.cur, &mut self.slots[s]);
            if self.cur.len() > 1 {
                // One descending sort per quantum beats a per-event heap
                // sift. Kept as `sort_unstable_by`: the clippy-preferred
                // `sort_unstable_by_key(|e| Reverse(e.key()))` benched
                // ~1.6x slower on the substrate microbench.
                #[allow(clippy::unnecessary_sort_by)]
                self.cur.sort_unstable_by(|a, b| b.key().cmp(&a.key()));
            }
        }
        while self
            .overflow
            .peek()
            .is_some_and(|e| quantum(e.time) == next_q)
        {
            let e = self.overflow.pop().expect("peeked");
            self.extra.push(e);
        }
        debug_assert!(
            !self.cur.is_empty() || !self.extra.is_empty(),
            "advance found no events"
        );
        true
    }

    /// The smallest quantum `> cur_q` with a nonempty wheel bucket.
    fn next_wheel_quantum(&self) -> Option<u64> {
        let base = (self.cur_q % SLOTS as u64) as usize;
        // Pending wheel quanta lie in (cur_q, cur_q + SLOTS), i.e. slot
        // offsets 1..SLOTS from `base`: scan bits (base+1..SLOTS), then the
        // wrapped range (0..base]. Slot `base` itself cannot be occupied —
        // its quantum was drained when the wheel advanced onto it.
        let s = self
            .scan(base + 1, SLOTS)
            .or_else(|| self.scan(0, base + 1))?;
        let offset = ((s + SLOTS - base) % SLOTS) as u64;
        debug_assert!(offset > 0, "occupied bit on the active slot");
        Some(self.cur_q + offset)
    }

    /// Index of the first set occupancy bit in `[lo, hi)`, scanning a word
    /// at a time.
    fn scan(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi {
            return None;
        }
        let last = (hi - 1) / 64;
        for w in lo / 64..=last {
            let mut word = self.occupied[w];
            let word_lo = w * 64;
            if word_lo < lo {
                word &= !0 << (lo - word_lo);
            }
            if word_lo + 64 > hi {
                word &= (1 << (hi - word_lo)) - 1;
            }
            if word != 0 {
                return Some(word_lo + word.trailing_zeros() as usize);
            }
        }
        None
    }
}

impl<T> Default for TimeWheel<T> {
    fn default() -> TimeWheel<T> {
        TimeWheel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_seq_order() {
        let mut q = TimeWheel::new();
        // Same instant: seq breaks the tie, regardless of push order.
        q.push(Time::from_ns(10), 5, ());
        q.push(Time::from_ns(10), 2, ());
        q.push(Time::from_ns(3), 9, ());
        assert_eq!(q.next_time(), Some(Time::from_ns(3)));
        assert_eq!(q.pop(), Some((Time::from_ns(3), 9, ())));
        assert_eq!(q.pop(), Some((Time::from_ns(10), 2, ())));
        assert_eq!(q.pop(), Some((Time::from_ns(10), 5, ())));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = TimeWheel::new();
        // Far beyond the wheel horizon (≈ 8.4 µs): lands in overflow.
        q.push(Time::from_ms(5), 0, "far");
        q.push(Time::from_ns(1), 1, "near");
        // Horizon-crossing pushes after the wheel re-anchors still order.
        assert_eq!(q.pop(), Some((Time::from_ns(1), 1, "near")));
        q.push(Time::from_ms(5), 2, "far tie");
        assert_eq!(q.pop(), Some((Time::from_ms(5), 0, "far")));
        assert_eq!(q.pop(), Some((Time::from_ms(5), 2, "far tie")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = TimeWheel::new();
        let mut seq = 0u64;
        let mut push = |q: &mut TimeWheel<u64>, t: u64| {
            q.push(Time::from_ps(t), seq, seq);
            seq += 1;
        };
        for i in 0..100 {
            push(&mut q, i * 977 % 50_000);
        }
        let mut last = (Time::ZERO, 0u64);
        let mut popped = 0;
        while let Some((t, s, _)) = q.pop() {
            assert!((t, s) > last || popped == 0, "order violated at {t}/{s}");
            last = (t, s);
            popped += 1;
            // Re-push into the active quantum now and then (a zero-delay
            // reschedule): must sort after already-popped entries.
            if popped % 7 == 0 && popped < 120 {
                q.push(t, 1000 + popped, 0);
            }
        }
        // 100 originals plus one reschedule per 7th pop (reschedules count
        // toward further reschedules): n = 100 + n/7 ⇒ n = 116.
        assert_eq!(popped, 116);
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut q = TimeWheel::new();
        assert_eq!(q.len(), 0);
        for i in 0..10u64 {
            q.push(Time::from_us(i * 3), i, i);
        }
        assert_eq!(q.len(), 10);
        q.pop();
        assert_eq!(q.len(), 9);
        while q.pop().is_some() {}
        assert_eq!(q.len(), 0);
        assert_eq!(q.next_time(), None);
    }
}
