//! Measurement infrastructure: counters, log-scale histograms, and
//! time-weighted utilization accumulators.
//!
//! Experiment E10 ("protocol operations per memput") is read directly off
//! these counters; every other experiment reports simulated time plus the
//! relevant counter deltas.

use crate::time::Time;
use std::fmt;

/// Per-locality protocol counters.
///
/// Incremented by the NIC/network models and by the upper layers (runtime
/// scheduler, GAS). All counts are cumulative since construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Two-sided user messages injected.
    pub msgs_sent: u64,
    /// Two-sided user messages delivered to software.
    pub msgs_recv: u64,
    /// Payload bytes injected (all operation kinds).
    pub bytes_sent: u64,
    /// RDMA put operations initiated.
    pub rdma_puts: u64,
    /// RDMA get operations initiated.
    pub rdma_gets: u64,
    /// NIC-executed active operations initiated.
    pub rdma_amos: u64,
    /// NIC translation-table hits at this locality's NIC.
    pub xlate_hits: u64,
    /// NIC translation-table misses (→ NACK to initiator).
    pub xlate_misses: u64,
    /// Operations retransmitted by this NIC via a forwarding entry.
    pub xlate_forwards: u64,
    /// NIC translation-table evictions (capacity pressure).
    pub xlate_evictions: u64,
    /// NACK control messages sent by this NIC.
    pub nacks_sent: u64,
    /// NACKs received by initiators at this locality.
    pub nacks_recv: u64,
    /// Control messages (acks, RTS/CTS, directory traffic) sent.
    pub ctrl_sent: u64,
    /// Software message-handler invocations (target CPU involvement —
    /// the quantity the network-managed design drives to zero).
    pub sw_handler_runs: u64,
    /// Directory (home) lookups served at this locality.
    pub dir_lookups: u64,
    /// Blocks migrated away from this locality.
    pub migrations_out: u64,
    /// Blocks migrated into this locality.
    pub migrations_in: u64,
    /// Active memory operations executed at this locality's NIC (no
    /// target-CPU involvement).
    pub amo_executed: u64,
    /// AMO requests NACKed by this NIC (translation miss / bounds / TTL).
    pub amo_nacked: u64,
    /// AMO requests this NIC re-injected via a forwarding entry.
    pub amo_forwarded: u64,
    /// AMO requests answered from the responder cache (a duplicated or
    /// retried request whose execution already happened — the
    /// exactly-once machinery working).
    pub amo_replays: u64,
    /// Cumulative CPU busy time of this locality's workers.
    pub cpu_busy: Time,
    /// Cumulative NIC transmit-port busy time.
    pub nic_tx_busy: Time,
    /// Cumulative NIC receive-port busy time.
    pub nic_rx_busy: Time,
}

impl Counters {
    /// Element-wise accumulate `other` into `self` (cluster-wide totals).
    pub fn merge(&mut self, other: &Counters) {
        self.msgs_sent += other.msgs_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_sent += other.bytes_sent;
        self.rdma_puts += other.rdma_puts;
        self.rdma_gets += other.rdma_gets;
        self.rdma_amos += other.rdma_amos;
        self.xlate_hits += other.xlate_hits;
        self.xlate_misses += other.xlate_misses;
        self.xlate_forwards += other.xlate_forwards;
        self.xlate_evictions += other.xlate_evictions;
        self.nacks_sent += other.nacks_sent;
        self.nacks_recv += other.nacks_recv;
        self.ctrl_sent += other.ctrl_sent;
        self.sw_handler_runs += other.sw_handler_runs;
        self.dir_lookups += other.dir_lookups;
        self.migrations_out += other.migrations_out;
        self.migrations_in += other.migrations_in;
        self.amo_executed += other.amo_executed;
        self.amo_nacked += other.amo_nacked;
        self.amo_forwarded += other.amo_forwarded;
        self.amo_replays += other.amo_replays;
        self.cpu_busy += other.cpu_busy;
        self.nic_tx_busy += other.nic_tx_busy;
        self.nic_rx_busy += other.nic_rx_busy;
    }

    /// Total network operations (one- plus two-sided) initiated.
    pub fn ops_initiated(&self) -> u64 {
        self.msgs_sent + self.rdma_puts + self.rdma_gets + self.rdma_amos
    }
}

/// A base-2 logarithmic histogram of `u64` samples (latencies in ps,
/// message sizes in bytes, queue depths, ...).
#[derive(Clone, Debug)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, sample: u64) {
        let bucket = 64 - sample.leading_zeros() as usize; // 0 for sample==0
        self.buckets[bucket.min(63)] += 1;
        self.count += 1;
        self.sum += sample;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate quantile `q ∈ [0,1]` from bucket boundaries: returns the
    /// upper edge of the bucket containing the q-th sample.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(if i == 0 { 0 } else { 1u64 << i.min(63) });
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} max={}",
            self.count,
            self.mean(),
            self.min().unwrap_or(0),
            self.max().unwrap_or(0)
        )
    }
}

/// Accumulates a time-weighted integral of a step function (queue depth,
/// outstanding ops) so its time-average can be reported.
#[derive(Clone, Debug, Default)]
pub struct TimeWeighted {
    last_change: Time,
    level: u64,
    integral: u128, // level × picoseconds
}

impl TimeWeighted {
    /// A fresh accumulator at level 0, time 0.
    pub fn new() -> TimeWeighted {
        TimeWeighted::default()
    }

    /// Record that the level changed to `level` at instant `now`.
    pub fn set(&mut self, now: Time, level: u64) {
        debug_assert!(now >= self.last_change);
        self.integral += self.level as u128 * (now.ps() - self.last_change.ps()) as u128;
        self.last_change = now;
        self.level = level;
    }

    /// Adjust the level by a delta at instant `now`.
    pub fn add(&mut self, now: Time, delta: i64) {
        let level = (self.level as i64 + delta).max(0) as u64;
        self.set(now, level);
    }

    /// Current level.
    pub fn level(&self) -> u64 {
        self.level
    }

    /// The time-average level over `[0, now]`.
    pub fn average(&self, now: Time) -> f64 {
        if now.ps() == 0 {
            return self.level as f64;
        }
        let total = self.integral
            + self.level as u128 * (now.ps().saturating_sub(self.last_change.ps())) as u128;
        total as f64 / now.ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_adds() {
        let mut a = Counters {
            msgs_sent: 3,
            bytes_sent: 100,
            cpu_busy: Time::from_ns(5),
            ..Counters::default()
        };
        let b = Counters {
            msgs_sent: 2,
            rdma_puts: 7,
            cpu_busy: Time::from_ns(10),
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(a.msgs_sent, 5);
        assert_eq!(a.rdma_puts, 7);
        assert_eq!(a.bytes_sent, 100);
        assert_eq!(a.cpu_busy, Time::from_ns(15));
        assert_eq!(a.ops_initiated(), 12);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 4, 8] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 3.75);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(8));
    }

    #[test]
    fn histogram_empty() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = LogHistogram::new();
        for i in 0..1000u64 {
            h.record(i);
        }
        let q50 = h.quantile(0.5).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q50 <= q99);
        assert!(q99 <= 1024);
    }

    #[test]
    fn histogram_merge() {
        let mut a = LogHistogram::new();
        a.record(10);
        let mut b = LogHistogram::new();
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1000));
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.set(Time::from_ns(0), 2);
        tw.set(Time::from_ns(10), 4);
        // 2 for 10ns, then 4 for 10ns => average 3 at t=20ns.
        assert_eq!(tw.average(Time::from_ns(20)), 3.0);
        assert_eq!(tw.level(), 4);
    }

    #[test]
    fn time_weighted_add_clamps_at_zero() {
        let mut tw = TimeWeighted::new();
        tw.add(Time::from_ns(1), -5);
        assert_eq!(tw.level(), 0);
        tw.add(Time::from_ns(2), 3);
        assert_eq!(tw.level(), 3);
    }
}
