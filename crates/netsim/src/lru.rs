//! A slab-backed LRU map used for the NIC translation table and the
//! source-side translation caches.
//!
//! Capacity-bounded: inserting into a full map evicts the least-recently-used
//! entry and returns it, which the NIC model surfaces as a translation-table
//! eviction (experiment E6 sweeps this capacity). Implemented as a
//! `HashMap<K, index>` plus an intrusive doubly-linked list threaded through a
//! slab of nodes — O(1) insert/lookup/touch/evict with no per-operation
//! allocation once warm.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: u32 = u32::MAX;

struct Node<K, V> {
    key: K,
    // `None` only while the slot sits on the free list.
    value: Option<V>,
    prev: u32,
    next: u32,
}

/// A least-recently-used map with a fixed capacity.
///
/// ```
/// use netsim::lru::LruMap;
///
/// let mut lru = LruMap::new(2);
/// lru.insert("a", 1);
/// lru.insert("b", 2);
/// lru.get(&"a");                         // refresh "a"
/// let evicted = lru.insert("c", 3);      // evicts the LRU: "b"
/// assert_eq!(evicted, Some(("b", 2)));
/// ```
pub struct LruMap<K, V> {
    map: HashMap<K, u32>,
    slab: Vec<Node<K, V>>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// Create a map holding at most `capacity` entries (`0` means the map
    /// rejects all inserts — the "no NIC table" ablation).
    pub fn new(capacity: usize) -> LruMap<K, V> {
        LruMap {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn detach(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.slab[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let n = &mut self.slab[idx as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    /// Look up `key`, marking it most-recently-used on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.detach(idx);
            self.attach_front(idx);
        }
        self.slab[idx as usize].value.as_ref()
    }

    /// Mutable lookup, marking the entry most-recently-used on hit.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.detach(idx);
            self.attach_front(idx);
        }
        self.slab[idx as usize].value.as_mut()
    }

    /// Look up without disturbing recency (for diagnostics).
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.slab[idx as usize].value.as_ref()
    }

    /// Insert or replace. Returns the evicted `(key, value)` if the map was
    /// full, or `None`. Inserting into a zero-capacity map returns the pair
    /// straight back.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return Some((key, value));
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx as usize].value = Some(value);
            if self.head != idx {
                self.detach(idx);
                self.attach_front(idx);
            }
            return None;
        }
        if self.map.len() >= self.capacity {
            // Evict the LRU entry and reuse its slot for the new pair.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let node = &mut self.slab[victim as usize];
            let old_key = std::mem::replace(&mut node.key, key.clone());
            let old_val = node.value.take().expect("live node without value");
            node.value = Some(value);
            self.map.remove(&old_key);
            self.map.insert(key, victim);
            self.attach_front(victim);
            return Some((old_key, old_val));
        }
        let idx = if let Some(idx) = self.free.pop() {
            let node = &mut self.slab[idx as usize];
            node.key = key.clone();
            node.value = Some(value);
            idx
        } else {
            let idx = self.slab.len() as u32;
            self.slab.push(Node {
                key: key.clone(),
                value: Some(value),
                prev: NIL,
                next: NIL,
            });
            idx
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        None
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        self.slab[idx as usize].value.take()
    }

    /// Iterate entries from most- to least-recently used.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        LruIter {
            lru: self,
            cursor: self.head,
        }
    }

    /// Remove every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

struct LruIter<'a, K, V> {
    lru: &'a LruMap<K, V>,
    cursor: u32,
}

impl<'a, K: Eq + Hash + Clone, V> Iterator for LruIter<'a, K, V> {
    type Item = (&'a K, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let node = &self.lru.slab[self.cursor as usize];
        self.cursor = node.next;
        Some((
            &node.key,
            node.value.as_ref().expect("live node without value"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut lru = LruMap::new(4);
        assert!(lru.insert(1, "a").is_none());
        assert!(lru.insert(2, "b").is_none());
        assert_eq!(lru.get(&1), Some(&"a"));
        assert_eq!(lru.get(&3), None);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn eviction_is_lru_order() {
        let mut lru = LruMap::new(3);
        lru.insert(1, 10);
        lru.insert(2, 20);
        lru.insert(3, 30);
        // Touch 1 so 2 becomes the LRU.
        assert_eq!(lru.get(&1), Some(&10));
        let evicted = lru.insert(4, 40);
        assert_eq!(evicted, Some((2, 20)));
        assert!(lru.get(&2).is_none());
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn replace_does_not_evict() {
        let mut lru = LruMap::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        assert!(lru.insert(1, 11).is_none());
        assert_eq!(lru.get(&1), Some(&11));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn zero_capacity_rejects() {
        let mut lru = LruMap::new(0);
        assert_eq!(lru.insert(1, 10), Some((1, 10)));
        assert!(lru.is_empty());
    }

    #[test]
    fn remove_then_reuse_slot() {
        let mut lru: LruMap<u32, String> = LruMap::new(2);
        lru.insert(1, "one".to_string());
        lru.insert(2, "two".to_string());
        assert_eq!(lru.remove(&1), Some("one".to_string()));
        assert_eq!(lru.len(), 1);
        assert!(lru.insert(3, "three".to_string()).is_none());
        assert_eq!(lru.get(&3), Some(&"three".to_string()));
        assert_eq!(lru.get(&2), Some(&"two".to_string()));
    }

    #[test]
    fn remove_missing_is_none() {
        let mut lru: LruMap<u32, u32> = LruMap::new(2);
        assert_eq!(lru.remove(&9), None);
        lru.insert(1, 1);
        assert_eq!(lru.remove(&9), None);
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn iter_most_recent_first() {
        let mut lru = LruMap::new(3);
        lru.insert(1, 'a');
        lru.insert(2, 'b');
        lru.insert(3, 'c');
        lru.get(&1);
        let keys: Vec<u32> = lru.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 2]);
    }

    #[test]
    fn heavy_churn_matches_shadow_model() {
        let mut lru = LruMap::new(16);
        let mut shadow: Vec<(u64, u64)> = Vec::new(); // MRU at front
        for i in 0..10_000u64 {
            let k = i % 37;
            if let Some(pos) = shadow.iter().position(|&(sk, _)| sk == k) {
                shadow.remove(pos);
            }
            shadow.insert(0, (k, i));
            if shadow.len() > 16 {
                shadow.pop();
            }
            lru.insert(k, i);
            assert!(lru.len() <= 16);
        }
        for (k, v) in &shadow {
            assert_eq!(lru.peek(k), Some(v));
        }
        assert_eq!(lru.len(), shadow.len());
    }

    #[test]
    fn clear_resets() {
        let mut lru = LruMap::new(4);
        lru.insert(1, 1);
        lru.insert(2, 2);
        lru.clear();
        assert!(lru.is_empty());
        assert!(lru.get(&1).is_none());
        lru.insert(3, 3);
        assert_eq!(lru.get(&3), Some(&3));
    }
}
