//! Cost-model parameters for the simulated cluster.
//!
//! The network follows the LogGP family: per-message wire latency `L`, CPU
//! send/receive overheads `o`, an inter-message injection gap `g`, and a
//! per-byte gap `G` (the reciprocal of link bandwidth). On top of LogGP the
//! NIC model adds the parameters specific to this paper's contribution: the
//! cost of one NIC-resident virtual-address translation (`xlate_ns`), the
//! capacity of the NIC translation table, and whether a NIC holding a
//! forwarding entry for a migrated block retransmits in-flight operations or
//! NACKs them back to the initiator.

use crate::time::{Time, NS};

/// Picoseconds per byte at a given bandwidth in GB/s (decimal gigabytes).
///
/// `G = 1000 / GBps` ps/B, e.g. 6.9 GB/s ⇒ ~145 ps/B.
pub const fn ps_per_byte_from_gbps(gb_per_s_times_10: u64) -> u64 {
    // Argument is GB/s × 10 so presets can express e.g. 6.9 GB/s exactly.
    10_000 / gb_per_s_times_10
}

/// A shared-memory domain: groups of co-located localities whose
/// intra-domain puts/gets/AMOs bypass the NIC entirely.
///
/// Localities are grouped by index: localities `[k·size, (k+1)·size)` share
/// domain `k` (the usual rank-to-node mapping of `size` ranks per node).
/// An intra-domain operation pays a fixed load/store cost plus a per-byte
/// memory-copy cost and sends **zero wire messages** — the MPI-3
/// shared-memory short-circuit applied to the GAS issue path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShmDomain {
    /// Localities per domain (co-located ranks per node). `size <= 1`
    /// means every locality is alone and nothing short-circuits.
    pub size: u32,
    /// Fixed cost of one cross-process load/store access (mapping lookup +
    /// cache-coherent access), paid once per intra-domain operation.
    pub load_store: Time,
    /// Per-byte cost of the shared-memory copy, in picoseconds per byte.
    pub per_byte_ps: u64,
}

impl ShmDomain {
    /// A DDR4-class intra-node model: ~90 ns access, ~12 GB/s effective
    /// cross-socket copy bandwidth.
    pub fn node(size: u32) -> ShmDomain {
        ShmDomain {
            size,
            load_store: Time::from_ns(90),
            per_byte_ps: 83, // ~12 GB/s
        }
    }

    /// Are `a` and `b` in the same domain (and distinct processes that can
    /// still reach each other through the mapping)?
    #[inline]
    pub fn same_domain(&self, a: u32, b: u32) -> bool {
        self.size > 1 && a / self.size == b / self.size
    }

    /// Time for one intra-domain access of `n` payload bytes.
    #[inline]
    pub fn access(&self, n: u32) -> Time {
        self.load_store + Time::from_ps(n as u64 * self.per_byte_ps)
    }
}

impl Default for ShmDomain {
    fn default() -> ShmDomain {
        ShmDomain::node(4)
    }
}

/// Parameters of the simulated network, NICs, and per-locality CPU model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// One-way wire latency `L`.
    pub latency: Time,
    /// Initiator-side CPU overhead `o_send` to post any network operation.
    pub o_send: Time,
    /// Target-side CPU overhead `o_recv` charged when software handles a
    /// message (two-sided path only; one-sided RDMA never pays it).
    pub o_recv: Time,
    /// Per-message NIC injection gap `g` (serialization of the descriptor).
    pub msg_gap: Time,
    /// Per-byte gap `G`, in picoseconds per byte (reciprocal bandwidth).
    pub gap_per_byte_ps: u64,
    /// Wire size of a control message (acks, NACKs, RTS/CTS, directory ops).
    pub ctrl_bytes: u32,
    /// Header bytes added to every user message on the wire.
    pub header_bytes: u32,
    /// Latency of a loop-back delivery (same locality, no NIC involved).
    pub loopback: Time,
    /// One NIC translation-table lookup (the network-managed AGAS adder).
    pub xlate_ns: Time,
    /// Capacity of the NIC translation table, in entries. Sweeping this is
    /// experiment E6; `usize::MAX` models an unbounded table.
    pub xlate_capacity: usize,
    /// When an operation reaches a NIC holding a forwarding entry for a
    /// migrated block: retransmit toward the new owner (`true`, one extra
    /// hop) or NACK back to the initiator (`false`, ablation A3).
    pub nic_forwarding: bool,
    /// Maximum forwarding hops before the NIC gives up and NACKs.
    pub forward_ttl: u8,
    /// DMA engine cost per byte at the target (ps/B), modeling PCIe/memory
    /// copy bandwidth; applied to RDMA payloads and eager copies.
    pub dma_per_byte_ps: u64,
    /// NIC queue pairs per direction: messages occupy the earliest-free
    /// port, so rates scale with ports until the wire itself binds.
    pub nic_ports: usize,
    /// Fabric oversubscription factor `k`: the switch core's aggregate
    /// bandwidth is `n/k ×` one link (0 or 1 = full bisection, not
    /// modeled). Every non-loopback transit also reserves the shared core.
    pub oversubscription: u64,
    /// Maximum random extra wire latency per transit, in nanoseconds
    /// (0 = none). Nonzero jitter **reorders deliveries between pairs** —
    /// the failure-injection knob the protocol property tests use. Drawn
    /// from the engine's deterministic PRNG, so runs stay reproducible.
    pub jitter_ns: u64,
    /// Shared-memory domains of co-located localities (`None` = every
    /// locality is its own node and all remote traffic takes the NIC).
    /// Intra-domain puts/gets/AMOs short-circuit the fabric entirely.
    pub shm: Option<ShmDomain>,
}

impl NetConfig {
    /// 2016-era FDR InfiniBand-like fabric (the paper's testbed class):
    /// ~1 µs latency, ~6.9 GB/s per link, 150 ns CPU overheads.
    pub fn ib_fdr() -> NetConfig {
        NetConfig {
            latency: Time::from_ns(1_000),
            o_send: Time::from_ns(150),
            o_recv: Time::from_ns(200),
            msg_gap: Time::from_ns(40),
            gap_per_byte_ps: ps_per_byte_from_gbps(69), // 6.9 GB/s
            ctrl_bytes: 64,
            header_bytes: 40,
            loopback: Time::from_ns(120),
            xlate_ns: Time::from_ns(60),
            xlate_capacity: usize::MAX,
            nic_forwarding: true,
            forward_ttl: 2,
            // Placement overlaps reception on real NICs; this is only the
            // residual memory-side cost beyond the rx serialization.
            dma_per_byte_ps: 8, // ~125 GB/s
            nic_ports: 1,
            oversubscription: 1,
            jitter_ns: 0,
            shm: None,
        }
    }

    /// Commodity 10 GbE-like fabric: higher latency, lower bandwidth.
    pub fn ethernet_10g() -> NetConfig {
        NetConfig {
            latency: Time::from_ns(12_000),
            o_send: Time::from_ns(900),
            o_recv: Time::from_ns(1_200),
            msg_gap: Time::from_ns(300),
            gap_per_byte_ps: ps_per_byte_from_gbps(12), // 1.2 GB/s
            ctrl_bytes: 64,
            header_bytes: 66,
            loopback: Time::from_ns(250),
            xlate_ns: Time::from_ns(120),
            xlate_capacity: usize::MAX,
            nic_forwarding: true,
            forward_ttl: 2,
            dma_per_byte_ps: 12,
            nic_ports: 1,
            oversubscription: 1,
            jitter_ns: 0,
            shm: None,
        }
    }

    /// Cray Gemini/uGNI-class fabric (the paper group's other testbed):
    /// sub-microsecond latency, ~8 GB/s links, cheap small messages.
    pub fn cray_gemini() -> NetConfig {
        NetConfig {
            latency: Time::from_ns(700),
            o_send: Time::from_ns(120),
            o_recv: Time::from_ns(160),
            msg_gap: Time::from_ns(25),
            gap_per_byte_ps: ps_per_byte_from_gbps(80), // 8 GB/s
            ctrl_bytes: 64,
            header_bytes: 32,
            loopback: Time::from_ns(100),
            xlate_ns: Time::from_ns(60),
            xlate_capacity: usize::MAX,
            nic_forwarding: true,
            forward_ttl: 2,
            dma_per_byte_ps: 8,
            nic_ports: 1,
            oversubscription: 1,
            jitter_ns: 0,
            shm: None,
        }
    }

    /// An idealized fabric with tiny constants — useful in unit tests where
    /// hand-computing expected timestamps must stay tractable.
    pub fn ideal() -> NetConfig {
        NetConfig {
            latency: Time::from_ns(100),
            o_send: Time::from_ns(10),
            o_recv: Time::from_ns(10),
            msg_gap: Time::from_ns(10),
            gap_per_byte_ps: NS, // 1 ns/B = 1 GB/s
            ctrl_bytes: 8,
            header_bytes: 0,
            loopback: Time::from_ns(20),
            xlate_ns: Time::from_ns(5),
            xlate_capacity: usize::MAX,
            nic_forwarding: true,
            forward_ttl: 2,
            dma_per_byte_ps: 0,
            nic_ports: 1,
            oversubscription: 1,
            jitter_ns: 0,
            shm: None,
        }
    }

    /// Wire serialization time of `n` payload bytes plus per-message costs,
    /// i.e. the period a NIC port is busy injecting or extracting a message.
    #[inline]
    pub fn serialize(&self, n: u32) -> Time {
        let bytes = n as u64 + self.header_bytes as u64;
        self.msg_gap + Time::from_ps(bytes * self.gap_per_byte_ps)
    }

    /// Serialization time of a control message.
    #[inline]
    pub fn serialize_ctrl(&self) -> Time {
        self.serialize(self.ctrl_bytes)
    }

    /// Target-side DMA time for `n` bytes.
    #[inline]
    pub fn dma(&self, n: u32) -> Time {
        Time::from_ps(n as u64 * self.dma_per_byte_ps)
    }

    /// Asymptotic link bandwidth in bytes per second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        1e12 / self.gap_per_byte_ps as f64
    }
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig::ib_fdr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_conversion() {
        // 6.9 GB/s => 10000/69 = 144 ps/B (integer floor).
        assert_eq!(ps_per_byte_from_gbps(69), 144);
        // 1 GB/s => 1000 ps/B.
        assert_eq!(ps_per_byte_from_gbps(10), 1000);
    }

    #[test]
    fn serialize_accounts_for_header_and_gap() {
        let cfg = NetConfig::ideal();
        // ideal: header 0, gap 10ns, 1 ns/B.
        assert_eq!(cfg.serialize(0), Time::from_ns(10));
        assert_eq!(cfg.serialize(100), Time::from_ns(110));
    }

    #[test]
    fn fdr_is_faster_than_ethernet() {
        let ib = NetConfig::ib_fdr();
        let eth = NetConfig::ethernet_10g();
        assert!(ib.latency < eth.latency);
        assert!(ib.serialize(4096) < eth.serialize(4096));
        assert!(ib.bandwidth_bytes_per_sec() > eth.bandwidth_bytes_per_sec());
    }

    #[test]
    fn dma_scales_linearly() {
        let cfg = NetConfig::ib_fdr();
        assert_eq!(cfg.dma(0), Time::ZERO);
        assert_eq!(cfg.dma(2000).ps(), 2 * cfg.dma(1000).ps());
    }

    #[test]
    fn gemini_is_lower_latency_higher_bandwidth_than_fdr() {
        let ib = NetConfig::ib_fdr();
        let cray = NetConfig::cray_gemini();
        assert!(cray.latency < ib.latency);
        assert!(cray.bandwidth_bytes_per_sec() > ib.bandwidth_bytes_per_sec());
    }

    #[test]
    fn default_is_fdr() {
        assert_eq!(NetConfig::default(), NetConfig::ib_fdr());
    }
}
