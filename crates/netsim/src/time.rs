//! Simulated time.
//!
//! The simulator's clock is a 64-bit count of **picoseconds**. Integer
//! picoseconds keep every cost computation exact (the per-byte wire gap of a
//! 2016-era FDR InfiniBand link is ~145 ps/B, which does not round to a whole
//! nanosecond), which in turn keeps the simulation bit-for-bit deterministic
//! across platforms. A `u64` of picoseconds covers ~213 days of simulated
//! time, far beyond any experiment in this repository.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// One nanosecond, in picoseconds.
pub const NS: u64 = 1_000;
/// One microsecond, in picoseconds.
pub const US: u64 = 1_000_000;
/// One millisecond, in picoseconds.
pub const MS: u64 = 1_000_000_000;
/// One second, in picoseconds.
pub const SEC: u64 = 1_000_000_000_000;

/// A point on (or a span of) the simulated timeline, in picoseconds.
///
/// `Time` is used both as an absolute timestamp and as a duration; the
/// arithmetic provided (saturating on subtraction, checked-in-debug on
/// addition) is shared by both uses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The origin of the simulated timeline.
    pub const ZERO: Time = Time(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * NS)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * US)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * MS)
    }

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// The raw picosecond count.
    #[inline]
    pub const fn ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in (truncated) whole nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / NS
    }

    /// This instant expressed in fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / US as f64
    }

    /// This instant expressed in fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / NS as f64
    }

    /// This instant expressed in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SEC as f64
    }

    /// Saturating difference `self - other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        Time(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == u64::MAX {
            write!(f, "never")
        } else if ps >= SEC {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ps >= MS {
            write!(f, "{:.3}ms", ps as f64 / MS as f64)
        } else if ps >= US {
            write!(f, "{:.3}us", ps as f64 / US as f64)
        } else if ps >= NS {
            write!(f, "{:.3}ns", ps as f64 / NS as f64)
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_ms(2_500).as_secs_f64(), 2.5);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!(a + b, Time::from_ns(14));
        assert_eq!(a - b, Time::from_ns(6));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a * 3, Time::from_ns(30));
        assert_eq!(a / 2, Time::from_ns(5));
    }

    #[test]
    fn min_max() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(a), a);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Time::from_ps(7)), "7ps");
        assert_eq!(format!("{}", Time::from_ns(5)), "5.000ns");
        assert_eq!(format!("{}", Time::from_us(3)), "3.000us");
        assert_eq!(format!("{}", Time::from_ms(2)), "2.000ms");
        assert_eq!(format!("{}", Time::MAX), "never");
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time::from_ns(1), Time::from_ns(2), Time::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Time::from_ns(6));
    }
}
