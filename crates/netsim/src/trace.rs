//! Structured execution tracing.
//!
//! When enabled, the cluster records a timeline of protocol-level events
//! (injections, deliveries, NIC translations, NACKs, forwards). The trace
//! is what the `trace_timeline` example prints, what debugging a protocol
//! change starts from, and the simulator's stand-in for the
//! instrumentation stack (APEX) the original runtime shipped with.
//!
//! Tracing is off by default and costs one branch per potential event.

use crate::nic::LocalityId;
use crate::optable::OpId;
use crate::time::Time;
use std::fmt;

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A two-sided message entered the fabric.
    MsgInject {
        /// Sender.
        src: LocalityId,
        /// Receiver.
        dst: LocalityId,
        /// Payload bytes.
        bytes: u32,
    },
    /// A two-sided message reached software.
    MsgDeliver {
        /// Sender.
        src: LocalityId,
        /// Receiver.
        dst: LocalityId,
    },
    /// A one-sided put entered the fabric.
    PutInject {
        /// Initiator.
        src: LocalityId,
        /// Believed owner.
        dst: LocalityId,
        /// Payload bytes.
        bytes: u32,
    },
    /// A one-sided get request entered the fabric.
    GetInject {
        /// Initiator.
        src: LocalityId,
        /// Believed owner.
        dst: LocalityId,
        /// Bytes requested.
        bytes: u32,
    },
    /// A NIC-executed active operation entered the fabric.
    AmoInject {
        /// Initiator.
        src: LocalityId,
        /// Believed owner.
        dst: LocalityId,
    },
    /// A NIC translated a virtual block (hit).
    XlateHit {
        /// The translating NIC's locality.
        at: LocalityId,
        /// Block key.
        block: u64,
    },
    /// A NIC missed its table.
    XlateMiss {
        /// The missing NIC's locality.
        at: LocalityId,
        /// Block key.
        block: u64,
    },
    /// A NIC forwarded an op via a tombstone.
    XlateForward {
        /// The forwarding NIC's locality.
        at: LocalityId,
        /// Next hop.
        next: LocalityId,
        /// Block key.
        block: u64,
    },
    /// A NACK went back to an initiator.
    Nack {
        /// NACKing NIC.
        from: LocalityId,
        /// Initiator.
        to: LocalityId,
    },
    /// A one-sided operation completed at its initiator.
    Completion {
        /// The initiator.
        at: LocalityId,
    },
    /// A tracked GAS operation was issued: its trace span opens.
    OpSpanOpen {
        /// The initiating locality.
        at: LocalityId,
        /// The op-table handle.
        op: OpId,
    },
    /// A tracked GAS operation reached its outcome: its trace span closes.
    OpSpanClose {
        /// The initiating locality.
        at: LocalityId,
        /// The op-table handle.
        op: OpId,
        /// Completed normally (`true`) or failed — deadline exceeded,
        /// retries exhausted (`false`).
        ok: bool,
    },
    /// A descriptor-ring doorbell rang: one batch of descriptors entered
    /// the fabric under a single submission event.
    Doorbell {
        /// The ringing locality.
        at: LocalityId,
        /// The peer the ring points at.
        peer: LocalityId,
        /// Descriptors in the batch.
        descs: u32,
    },
    /// An intra-domain operation bypassed the NIC over shared memory.
    ShmOp {
        /// Initiator.
        src: LocalityId,
        /// Co-located target.
        dst: LocalityId,
        /// Payload bytes.
        bytes: u32,
    },
}

/// A timestamped trace record.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// When it happened.
    pub t: Time,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>12}  ", format!("{}", self.t))?;
        match self.kind {
            TraceKind::MsgInject { src, dst, bytes } => {
                write!(f, "msg   {src} → {dst}  ({bytes} B)")
            }
            TraceKind::MsgDeliver { src, dst } => write!(f, "deliver {src} → {dst}"),
            TraceKind::PutInject { src, dst, bytes } => {
                write!(f, "put   {src} → {dst}  ({bytes} B)")
            }
            TraceKind::GetInject { src, dst, bytes } => {
                write!(f, "get   {src} → {dst}  ({bytes} B)")
            }
            TraceKind::AmoInject { src, dst } => {
                write!(f, "amo   {src} → {dst}")
            }
            TraceKind::XlateHit { at, block } => {
                write!(f, "xlate HIT   @{at}  block {block:#x}")
            }
            TraceKind::XlateMiss { at, block } => {
                write!(f, "xlate MISS  @{at}  block {block:#x}")
            }
            TraceKind::XlateForward { at, next, block } => {
                write!(f, "xlate FWD   @{at} → {next}  block {block:#x}")
            }
            TraceKind::Nack { from, to } => write!(f, "nack  {from} → {to}"),
            TraceKind::Completion { at } => write!(f, "done  @{at}"),
            TraceKind::OpSpanOpen { at, op } => write!(f, "span+ @{at}  op {op}"),
            TraceKind::OpSpanClose { at, op, ok } => {
                write!(
                    f,
                    "span- @{at}  op {op}  {}",
                    if ok { "ok" } else { "FAIL" }
                )
            }
            TraceKind::Doorbell { at, peer, descs } => {
                write!(f, "ring  @{at} → {peer}  ({descs} descs)")
            }
            TraceKind::ShmOp { src, dst, bytes } => {
                write!(f, "shm   {src} → {dst}  ({bytes} B)")
            }
        }
    }
}

/// The (off-by-default) trace recorder.
#[derive(Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<TraceEvent>,
    capacity: usize,
}

impl Tracer {
    /// A disabled tracer.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Start recording, keeping at most `capacity` events (oldest dropped).
    pub fn enable(&mut self, capacity: usize) {
        self.enabled = true;
        self.capacity = capacity.max(1);
        self.events.clear();
    }

    /// Stop recording (events retained for inspection).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Is recording active?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, t: Time, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.remove(0);
        }
        self.events.push(TraceEvent { t, kind });
    }

    /// The recorded timeline, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drop all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Render the timeline as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::new();
        tr.record(Time::from_ns(1), TraceKind::Completion { at: 0 });
        assert!(tr.events().is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn enabled_tracer_records_in_order() {
        let mut tr = Tracer::new();
        tr.enable(16);
        tr.record(Time::from_ns(1), TraceKind::Completion { at: 0 });
        tr.record(Time::from_ns(2), TraceKind::Nack { from: 1, to: 0 });
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.events()[0].t, Time::from_ns(1));
        let text = tr.render();
        assert!(text.contains("done"));
        assert!(text.contains("nack"));
    }

    #[test]
    fn capacity_drops_oldest() {
        let mut tr = Tracer::new();
        tr.enable(3);
        for i in 0..5 {
            tr.record(Time::from_ns(i), TraceKind::Completion { at: i as u32 });
        }
        assert_eq!(tr.events().len(), 3);
        assert_eq!(tr.events()[0].t, Time::from_ns(2));
    }

    #[test]
    fn display_formats_every_kind() {
        let kinds = [
            TraceKind::MsgInject {
                src: 0,
                dst: 1,
                bytes: 8,
            },
            TraceKind::MsgDeliver { src: 0, dst: 1 },
            TraceKind::PutInject {
                src: 0,
                dst: 1,
                bytes: 64,
            },
            TraceKind::GetInject {
                src: 0,
                dst: 1,
                bytes: 64,
            },
            TraceKind::AmoInject { src: 0, dst: 1 },
            TraceKind::XlateHit { at: 1, block: 0x40 },
            TraceKind::XlateMiss { at: 1, block: 0x40 },
            TraceKind::XlateForward {
                at: 1,
                next: 2,
                block: 0x40,
            },
            TraceKind::Nack { from: 1, to: 0 },
            TraceKind::Completion { at: 0 },
            TraceKind::OpSpanOpen {
                at: 0,
                op: OpId::from_parts(3, 1),
            },
            TraceKind::OpSpanClose {
                at: 0,
                op: OpId::from_parts(3, 1),
                ok: false,
            },
            TraceKind::Doorbell {
                at: 0,
                peer: 1,
                descs: 16,
            },
            TraceKind::ShmOp {
                src: 0,
                dst: 1,
                bytes: 64,
            },
        ];
        for k in kinds {
            let e = TraceEvent {
                t: Time::from_ns(5),
                kind: k,
            };
            assert!(!format!("{e}").is_empty());
        }
    }
}
