//! Network operations over the simulated cluster.
//!
//! Three primitive operation classes, matching what the Photon middleware
//! needs from the fabric:
//!
//! * [`send_user`] — a two-sided message delivered to the destination's
//!   software handler ([`Protocol::deliver`]); target CPU cost is charged by
//!   the layer that runs the handler.
//! * [`rdma_put`] — a one-sided write. The destination may be a raw physical
//!   address (classic registered-memory RDMA, the PGAS fast path) or a
//!   *virtual* block key + offset, translated by the **target NIC's**
//!   translation table with zero CPU involvement (the network-managed AGAS
//!   path). Stale/unknown blocks produce NACKs or NIC-level forwarding.
//! * [`rdma_get`] — the symmetric one-sided read.
//!
//! Every operation is decomposed into timed events: initiator-side CPU
//! overhead, transmit-port serialization, wire latency, receive-port
//! serialization, NIC translation, DMA, and the control-message ack/NACK on
//! the way back. Port reservations serialize per NIC, which is what produces
//! contention, bandwidth ceilings, and message-rate limits.

use crate::amo::{self, AmoKey, AmoOp, AmoResult};
use crate::config::NetConfig;
use crate::engine::Engine;
use crate::faults::{apply_corruption, FaultClass, FaultPlane, FaultVerdict};
use crate::memory::{Memory, PhysAddr};
use crate::nic::{LocalityId, Nic, Xlate, XlateEntry};
use crate::optable::OpId;
use crate::stats::Counters;
use crate::time::Time;
use crate::trace::{TraceKind, Tracer};

/// Which RDMA verb an `OpId` belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// One-sided write.
    Put,
    /// One-sided read.
    Get,
    /// NIC-executed active operation (fetch-add, CAS, masked-put,
    /// gather/scatter).
    Amo,
}

/// Why a NIC refused a one-sided operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NackReason {
    /// No translation entry for the block at the target NIC (never
    /// installed, evicted under capacity pressure, or forwarding disabled).
    Miss,
    /// The access fell outside the translated block.
    Bounds,
    /// Forwarding hops exceeded the configured TTL (migration chase).
    TtlExceeded,
}

/// Destination (or source) of a one-sided operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RdmaTarget {
    /// A raw physical address in the target's arena: the initiator resolved
    /// the placement itself (PGAS, or software-AGAS after consulting the
    /// owner's CPU).
    Phys(PhysAddr),
    /// A virtual block reference translated by the target NIC
    /// (network-managed AGAS). `block` is the GVA with offset bits masked;
    /// `offset` is the byte offset within the block.
    Virt { block: u64, offset: u64 },
}

/// What arrives at a locality: either an upper-layer message or a
/// NIC-generated notification.
#[derive(Debug)]
pub enum Packet<M> {
    /// A two-sided message from the layer above.
    User(M),
    /// An initiated put completed (remotely visible).
    PutDone { op: OpId },
    /// An initiated get completed (`local` buffer now holds the data).
    GetDone { op: OpId },
    /// An initiated active operation executed at the target NIC; `result`
    /// carries the fetched/old value(s).
    AmoDone { op: OpId, result: AmoResult },
    /// Remote-completion notification at the *target* of a put that carried
    /// a `remote_tag` (Photon's put-with-completion ledger entry).
    RemoteNote { tag: u64, len: u32 },
    /// The local NIC missed its translation table for an incoming
    /// one-sided operation (a "table miss interrupt" raised to the host so
    /// software can reinstall a resident-but-evicted entry).
    XlateMiss {
        /// The block key that missed.
        block: u64,
    },
    /// A one-sided operation bounced.
    Nack {
        op: OpId,
        kind: OpKind,
        reason: NackReason,
        /// The block key the operation addressed (0 for `Phys` targets).
        block: u64,
    },
}

/// A delivered packet plus its endpoints.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Originating locality of the packet (for NACKs/acks: the NIC that
    /// generated them).
    pub src: LocalityId,
    /// Destination locality (always the locality whose handler runs).
    pub dst: LocalityId,
    /// The payload.
    pub packet: Packet<M>,
}

/// The glue between the simulator substrate and the protocol stack above it:
/// the engine state exposes its [`Cluster`] and receives packet deliveries.
pub trait Protocol: Sized + 'static {
    /// The upper layer's message type (photon control, parcels, directory
    /// traffic, ...).
    type Msg: 'static;
    /// Mutable access to the embedded cluster.
    fn cluster(&mut self) -> &mut Cluster;
    /// Shared access to the embedded cluster.
    fn cluster_ref(&self) -> &Cluster;
    /// Invoked by the simulator when a packet reaches `env.dst`.
    fn deliver(eng: &mut Engine<Self>, env: Envelope<Self::Msg>);
}

/// One simulated node: NIC, memory arena, counters.
pub struct Locality {
    /// The node's NIC (ports + translation table).
    pub nic: Nic,
    /// The node's memory arena.
    pub mem: Memory,
    /// Protocol counters.
    pub counters: Counters,
}

/// The simulated cluster: a set of localities and the shared cost model.
pub struct Cluster {
    /// Cost-model parameters (uniform fabric).
    pub config: NetConfig,
    locs: Vec<Locality>,
    next_op: u64,
    /// The (off-by-default) execution tracer.
    pub tracer: Tracer,
    /// Shared switch-core serialization state (oversubscribed fabrics).
    switch_free: Time,
    /// Per-byte cost on the switch core (0 = full bisection, skip).
    core_ps_per_byte: u64,
    /// Installed fault-injection plane (`None` ⇒ a perfectly reliable
    /// fabric, the pre-chaos behavior, with zero decision overhead).
    pub faults: Option<FaultPlane>,
}

impl Cluster {
    /// Build a cluster of `n` localities, each with an arena limited to
    /// `mem_limit` bytes.
    pub fn new(n: usize, config: NetConfig, mem_limit: usize) -> Cluster {
        let locs = (0..n)
            .map(|_| Locality {
                nic: Nic::new(config.xlate_capacity, config.nic_ports),
                mem: Memory::new(mem_limit),
                counters: Counters::default(),
            })
            .collect();
        let core_ps_per_byte = if config.oversubscription > 1 && n > 0 {
            // Aggregate core bandwidth = n/k × link ⇒ per-byte cost scales
            // by k/n relative to one link.
            config.gap_per_byte_ps * config.oversubscription / n as u64
        } else {
            0
        };
        Cluster {
            config,
            locs,
            next_op: 0,
            tracer: Tracer::new(),
            switch_free: Time::ZERO,
            core_ps_per_byte,
            faults: None,
        }
    }

    /// Reserve the shared switch core for a `bytes`-byte transit starting
    /// no earlier than `earliest`; returns when the transit clears the
    /// core (identity when full bisection is assumed).
    pub fn switch_reserve(&mut self, earliest: Time, bytes: u32) -> Time {
        if self.core_ps_per_byte == 0 {
            return earliest;
        }
        let dur =
            Time::from_ps((bytes as u64 + self.config.header_bytes as u64) * self.core_ps_per_byte);
        let start = earliest.max(self.switch_free);
        self.switch_free = start + dur;
        self.switch_free
    }

    /// Whether the wire tail of a send — switch-core reservation, transit
    /// jitter, fault-plane verdicts — touches any shared mutable state or
    /// RNG. On a pure fabric (no jitter, no faults, full bisection) the
    /// tail is a pure function of its inputs, so the sharded engine can
    /// run it inline on concurrent lanes instead of deferring it to the
    /// barrier.
    pub fn wire_is_pure(&self) -> bool {
        self.core_ps_per_byte == 0 && self.config.jitter_ns == 0 && self.faults.is_none()
    }

    /// Number of localities.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// True for a zero-node cluster (never useful, but keeps clippy honest).
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }

    /// Shared access to locality `id`.
    pub fn loc(&self, id: LocalityId) -> &Locality {
        &self.locs[id as usize]
    }

    /// Mutable access to locality `id`.
    pub fn loc_mut(&mut self, id: LocalityId) -> &mut Locality {
        &mut self.locs[id as usize]
    }

    /// Memory arena of locality `id`.
    pub fn mem(&self, id: LocalityId) -> &Memory {
        &self.locs[id as usize].mem
    }

    /// Mutable memory arena of locality `id`.
    pub fn mem_mut(&mut self, id: LocalityId) -> &mut Memory {
        &mut self.locs[id as usize].mem
    }

    /// Allocate a fresh *untracked* operation token (generation 0, indices
    /// counting up). Substrate-level tests and layers without their own
    /// [`OpTable`](crate::optable::OpTable) use this; the protocol stack
    /// above mints tracked handles from its per-endpoint tables instead.
    pub fn alloc_op(&mut self) -> OpId {
        let op = OpId::from_parts(self.next_op as u32, 0);
        self.next_op += 1;
        op
    }

    /// Install a NIC translation entry at `loc`, counting evictions.
    pub fn install_xlate(&mut self, loc: LocalityId, block_key: u64, entry: XlateEntry) {
        let l = self.loc_mut(loc);
        if l.nic.xlate.install(block_key, entry) {
            l.counters.xlate_evictions += 1;
        }
    }

    /// Per-locality NIC port utilization over `[0, horizon]`:
    /// `(tx_busy/horizon, rx_busy/horizon)` per locality.
    pub fn nic_utilization(&self, horizon: Time) -> Vec<(f64, f64)> {
        let h = horizon.ps().max(1) as f64;
        self.locs
            .iter()
            .map(|l| {
                (
                    l.counters.nic_tx_busy.ps() as f64 / h,
                    l.counters.nic_rx_busy.ps() as f64 / h,
                )
            })
            .collect()
    }

    /// Cluster-wide counter totals.
    pub fn total_counters(&self) -> Counters {
        let mut total = Counters::default();
        for l in &self.locs {
            total.merge(&l.counters);
        }
        total
    }

    /// Reserve `loc`'s transmit port for `dur` starting no earlier than
    /// `earliest`; accounts busy time; returns the finish instant.
    fn tx(&mut self, loc: LocalityId, earliest: Time, dur: Time) -> Time {
        let l = self.loc_mut(loc);
        let (_, finish) = l.nic.tx_reserve(earliest, dur);
        l.counters.nic_tx_busy += dur;
        finish
    }

    /// Receive-port analogue of [`Cluster::tx`].
    fn rx(&mut self, loc: LocalityId, earliest: Time, dur: Time) -> Time {
        let l = self.loc_mut(loc);
        let (_, finish) = l.nic.rx_reserve(earliest, dur);
        l.counters.nic_rx_busy += dur;
        finish
    }
}

/// One wire transit's latency: the configured base plus deterministic
/// random jitter (if enabled).
fn transit<S: Protocol>(eng: &mut Engine<S>) -> Time {
    let cfg = eng.state.cluster_ref().config;
    if cfg.jitter_ns == 0 {
        return cfg.latency;
    }
    let extra = eng.rng().next_below(cfg.jitter_ns + 1);
    cfg.latency + Time::from_ns(extra)
}

/// Arrival time of a `bytes`-byte transit injected at `tx_done`: clears
/// the (possibly oversubscribed) switch core, then rides the wire.
fn fabric_arrival<S: Protocol>(eng: &mut Engine<S>, tx_done: Time, bytes: u32) -> Time {
    let cleared = eng.state.cluster().switch_reserve(tx_done, bytes);
    cleared + transit(eng)
}

/// Ask the installed fault plane (if any) what happens to one message.
/// `Bypass` traffic and fault-free clusters short-circuit to a clean
/// verdict without touching any RNG stream.
fn fault_decide<S: Protocol>(
    eng: &mut Engine<S>,
    src: LocalityId,
    dst: LocalityId,
    class: FaultClass,
    can_dup: bool,
) -> FaultVerdict {
    if class == FaultClass::Bypass {
        return FaultVerdict::CLEAN;
    }
    let now = eng.now();
    match eng.state.cluster().faults.as_mut() {
        None => FaultVerdict::CLEAN,
        Some(fp) => fp.decide(now, src, dst, class, can_dup),
    }
}

/// Spacing between a duplicated message's two copies.
fn fault_dup_delay<S: Protocol>(eng: &mut Engine<S>, src: LocalityId, dst: LocalityId) -> Time {
    match eng.state.cluster().faults.as_mut() {
        None => Time::from_us(1),
        Some(fp) => fp.dup_delay(src, dst),
    }
}

/// Rebuild a NIC-generated control packet for duplicate delivery. User
/// messages carry an opaque payload and cannot be cloned here.
fn clone_ctrl<M>(p: &Packet<M>) -> Option<Packet<M>> {
    match p {
        Packet::User(_) => None,
        Packet::PutDone { op } => Some(Packet::PutDone { op: *op }),
        Packet::GetDone { op } => Some(Packet::GetDone { op: *op }),
        Packet::AmoDone { op, result } => Some(Packet::AmoDone {
            op: *op,
            result: result.clone(),
        }),
        Packet::RemoteNote { tag, len } => Some(Packet::RemoteNote {
            tag: *tag,
            len: *len,
        }),
        Packet::XlateMiss { block } => Some(Packet::XlateMiss { block: *block }),
        Packet::Nack {
            op,
            kind,
            reason,
            block,
        } => Some(Packet::Nack {
            op: *op,
            kind: *kind,
            reason: *reason,
            block: *block,
        }),
    }
}

/// Deliver a NIC-generated control packet at `at`, subject to the fault
/// plane: it may arrive late, twice, or not at all.
fn deliver_ctrl_faulty<S: Protocol>(
    eng: &mut Engine<S>,
    at: Time,
    src: LocalityId,
    dst: LocalityId,
    packet: Packet<S::Msg>,
    class: FaultClass,
) {
    match fault_decide(eng, src, dst, class, true) {
        FaultVerdict::Drop => {}
        FaultVerdict::Deliver {
            extra_delay,
            duplicate,
            ..
        } => {
            if duplicate {
                if let Some(copy) = clone_ctrl(&packet) {
                    let spacing = fault_dup_delay(eng, src, dst);
                    deliver_at(eng, at + extra_delay + spacing, src, dst, copy);
                }
            }
            deliver_at(eng, at + extra_delay, src, dst, packet);
        }
    }
}

/// Deliver `packet` to `dst` at absolute time `at` (helper).
fn deliver_at<S: Protocol>(
    eng: &mut Engine<S>,
    at: Time,
    src: LocalityId,
    dst: LocalityId,
    packet: Packet<S::Msg>,
) {
    eng.schedule_at_loc(at, dst, move |eng| {
        if matches!(
            packet,
            Packet::PutDone { .. } | Packet::GetDone { .. } | Packet::AmoDone { .. }
        ) {
            let now = eng.now();
            eng.state
                .cluster()
                .tracer
                .record(now, TraceKind::Completion { at: dst });
        }
        S::deliver(eng, Envelope { src, dst, packet });
    });
}

/// Send a two-sided message of `wire_bytes` payload bytes from `src` to
/// `dst`. The message value `msg` is handed to [`Protocol::deliver`] when it
/// arrives (after tx serialization, wire latency, and rx serialization).
///
/// Messages sent through this entry point bypass the fault plane; traffic
/// whose protocol can survive loss declares so via [`send_user_classed`].
pub fn send_user<S: Protocol>(
    eng: &mut Engine<S>,
    src: LocalityId,
    dst: LocalityId,
    wire_bytes: u32,
    msg: S::Msg,
) {
    send_user_classed(eng, src, dst, wire_bytes, msg, FaultClass::Bypass)
}

/// [`send_user`] with an explicit [`FaultClass`]: the installed fault plane
/// may drop or delay the message (user messages are never duplicated — the
/// payload is opaque to the substrate and cannot be cloned).
pub fn send_user_classed<S: Protocol>(
    eng: &mut Engine<S>,
    src: LocalityId,
    dst: LocalityId,
    wire_bytes: u32,
    msg: S::Msg,
    class: FaultClass,
) {
    let now = eng.now();
    let cfg = eng.state.cluster().config;
    {
        let c = eng.state.cluster();
        c.tracer.record(
            now,
            TraceKind::MsgInject {
                src,
                dst,
                bytes: wire_bytes,
            },
        );
        let l = c.loc_mut(src);
        l.counters.msgs_sent += 1;
        l.counters.bytes_sent += wire_bytes as u64;
    }
    if src == dst {
        let at = now + cfg.loopback;
        eng.schedule_at(at, move |eng| {
            eng.state.cluster().loc_mut(dst).counters.msgs_recv += 1;
            S::deliver(
                eng,
                Envelope {
                    src,
                    dst,
                    packet: Packet::User(msg),
                },
            );
        });
        return;
    }
    let dur = cfg.serialize(wire_bytes);
    let tx_done = eng.state.cluster().tx(src, now + cfg.o_send, dur);
    // Everything from here on touches shared wire state (switch core,
    // jitter RNG, fault plane): on a concurrent shard lane it defers to
    // the barrier unless the fabric is wire-pure.
    eng.defer_wire(move |eng| {
        let mut arrival = fabric_arrival(eng, tx_done, wire_bytes);
        match fault_decide(eng, src, dst, class, false) {
            FaultVerdict::Drop => return,
            FaultVerdict::Deliver { extra_delay, .. } => arrival += extra_delay,
        }
        eng.schedule_at_loc(arrival, dst, move |eng| {
            let now = eng.now();
            let dur = eng.state.cluster().config.serialize(wire_bytes);
            let rx_done = eng.state.cluster().rx(dst, now, dur);
            eng.schedule_at(rx_done, move |eng| {
                let now = eng.now();
                let c = eng.state.cluster();
                c.tracer.record(now, TraceKind::MsgDeliver { src, dst });
                c.loc_mut(dst).counters.msgs_recv += 1;
                S::deliver(
                    eng,
                    Envelope {
                        src,
                        dst,
                        packet: Packet::User(msg),
                    },
                );
            });
        });
    });
}

/// A one-sided write request.
#[derive(Clone, Debug)]
pub struct PutReq {
    /// Locality whose NIC should commit the write (the believed owner).
    pub target: LocalityId,
    /// Where within the target the bytes land.
    pub dst: RdmaTarget,
    /// Payload (snapshotted at initiation, as hardware DMA would).
    pub data: Vec<u8>,
    /// Completion token.
    pub op: OpId,
    /// When set, the target locality's handler receives
    /// [`Packet::RemoteNote`] with this tag once the data is visible —
    /// Photon's put-with-completion remote ledger entry.
    pub remote_tag: Option<u64>,
    /// Remaining NIC forwarding hops.
    pub ttl: u8,
    /// How the fault plane may abuse this request and its completions.
    pub class: FaultClass,
}

/// A one-sided read request.
#[derive(Clone, Debug)]
pub struct GetReq {
    /// Locality whose NIC should source the bytes (the believed owner).
    pub target: LocalityId,
    /// Where within the target the bytes come from.
    pub src: RdmaTarget,
    /// Bytes to read.
    pub len: u32,
    /// Physical destination in the *initiator's* arena.
    pub local: PhysAddr,
    /// Completion token.
    pub op: OpId,
    /// Remaining NIC forwarding hops.
    pub ttl: u8,
    /// How the fault plane may abuse this request and its completions.
    pub class: FaultClass,
}

/// The class of a NIC-generated response to a request of class `req`:
/// exempt traffic stays exempt end to end; everything else completes as
/// [`FaultClass::Completion`].
fn response_class(req: FaultClass) -> FaultClass {
    if req == FaultClass::Bypass {
        FaultClass::Bypass
    } else {
        FaultClass::Completion
    }
}

fn block_key_of(t: &RdmaTarget) -> u64 {
    match t {
        RdmaTarget::Phys(_) => 0,
        RdmaTarget::Virt { block, .. } => *block,
    }
}

/// Initiate a one-sided write from `initiator`.
pub fn rdma_put<S: Protocol>(eng: &mut Engine<S>, initiator: LocalityId, req: PutReq) {
    let now = eng.now();
    let cfg = eng.state.cluster().config;
    {
        let c = eng.state.cluster();
        c.tracer.record(
            now,
            TraceKind::PutInject {
                src: initiator,
                dst: req.target,
                bytes: req.data.len() as u32,
            },
        );
        let l = c.loc_mut(initiator);
        l.counters.rdma_puts += 1;
        l.counters.bytes_sent += req.data.len() as u64;
    }
    if initiator == req.target {
        // Loop-back: the local NIC still performs the translation, but no
        // wire or port serialization is paid.
        let at = now + cfg.loopback;
        eng.schedule_at(at, move |eng| put_commit(eng, initiator, req, true));
        return;
    }
    let bytes = req.data.len() as u32;
    let dur = cfg.serialize(bytes);
    let tx_done = eng.state.cluster().tx(initiator, now + cfg.o_send, dur);
    let hop_src = req.target;
    eng.defer_wire(move |eng| {
        let arrival = fabric_arrival(eng, tx_done, bytes);
        schedule_put_hop(eng, initiator, hop_src, arrival, req);
    });
}

/// Schedule one wire hop of a put (initial leg or a forwarding hop),
/// routing it through the fault plane.
fn schedule_put_hop<S: Protocol>(
    eng: &mut Engine<S>,
    initiator: LocalityId,
    hop_src: LocalityId,
    arrival: Time,
    mut req: PutReq,
) {
    match fault_decide(eng, hop_src, req.target, req.class, true) {
        FaultVerdict::Drop => {}
        FaultVerdict::Deliver {
            extra_delay,
            duplicate,
            corrupt_mask,
        } => {
            if corrupt_mask != 0 {
                apply_corruption(&mut req.data, corrupt_mask);
            }
            if duplicate {
                let copy = req.clone();
                let spacing = fault_dup_delay(eng, hop_src, req.target);
                eng.schedule_at_loc(arrival + extra_delay + spacing, copy.target, move |eng| {
                    put_arrive(eng, initiator, copy)
                });
            }
            let dst = req.target;
            eng.schedule_at_loc(arrival + extra_delay, dst, move |eng| {
                put_arrive(eng, initiator, req)
            });
        }
    }
}

fn put_arrive<S: Protocol>(eng: &mut Engine<S>, initiator: LocalityId, req: PutReq) {
    let now = eng.now();
    let cfg = eng.state.cluster().config;
    let dur = cfg.serialize(req.data.len() as u32);
    let rx_done = eng.state.cluster().rx(req.target, now, dur);
    let xlate_cost = match req.dst {
        RdmaTarget::Virt { .. } => cfg.xlate_ns,
        RdmaTarget::Phys(_) => Time::ZERO,
    };
    eng.schedule_at(rx_done + xlate_cost, move |eng| {
        put_commit(eng, initiator, req, false)
    });
}

/// Translate and commit a put at its current target; generate the ack,
/// remote note, NACK, or forwarding hop.
fn put_commit<S: Protocol>(
    eng: &mut Engine<S>,
    initiator: LocalityId,
    mut req: PutReq,
    local: bool,
) {
    let now = eng.now();
    let cfg = eng.state.cluster().config;
    let target = req.target;
    let block = block_key_of(&req.dst);
    let resolved: Result<PhysAddr, NackReason> = match req.dst {
        RdmaTarget::Phys(addr) => Ok(addr),
        RdmaTarget::Virt { block, offset } => {
            let l = eng.state.cluster().loc_mut(target);
            match l.nic.xlate.lookup(block) {
                Xlate::Hit(entry) => {
                    if offset + req.data.len() as u64 <= entry.len {
                        l.counters.xlate_hits += 1;
                        eng.state
                            .cluster()
                            .tracer
                            .record(now, TraceKind::XlateHit { at: target, block });
                        Ok(entry.base + offset)
                    } else {
                        Err(NackReason::Bounds)
                    }
                }
                Xlate::Forward(next) => {
                    if cfg.nic_forwarding && req.ttl > 0 {
                        // Store-and-forward hop toward the new owner.
                        l.counters.xlate_forwards += 1;
                        eng.state.cluster().tracer.record(
                            now,
                            TraceKind::XlateForward {
                                at: target,
                                next,
                                block,
                            },
                        );
                        let bytes = req.data.len() as u32;
                        let dur = cfg.serialize(bytes);
                        let tx_done = eng.state.cluster().tx(target, now, dur);
                        req.target = next;
                        req.ttl -= 1;
                        eng.defer_wire(move |eng| {
                            let arrival = fabric_arrival(eng, tx_done, bytes);
                            schedule_put_hop(eng, initiator, target, arrival, req);
                        });
                        return;
                    } else if cfg.nic_forwarding {
                        Err(NackReason::TtlExceeded)
                    } else {
                        Err(NackReason::Miss)
                    }
                }
                Xlate::Miss => {
                    l.counters.xlate_misses += 1;
                    eng.state
                        .cluster()
                        .tracer
                        .record(now, TraceKind::XlateMiss { at: target, block });
                    deliver_at(eng, now, target, target, Packet::XlateMiss { block });
                    Err(NackReason::Miss)
                }
            }
        }
    };
    match resolved {
        Ok(addr) => {
            let write_ok = eng
                .state
                .cluster()
                .mem_mut(target)
                .write(addr, &req.data)
                .is_ok();
            if !write_ok {
                nack(
                    eng,
                    target,
                    initiator,
                    req.op,
                    OpKind::Put,
                    NackReason::Bounds,
                    block,
                    local,
                    response_class(req.class),
                );
                return;
            }
            let visible = now + cfg.dma(req.data.len() as u32);
            if let Some(tag) = req.remote_tag {
                let len = req.data.len() as u32;
                deliver_at(
                    eng,
                    visible,
                    target,
                    target,
                    Packet::RemoteNote { tag, len },
                );
            }
            let op = req.op;
            if local {
                deliver_at(eng, visible, target, initiator, Packet::PutDone { op });
            } else {
                // Hardware ack: a control message back to the initiator.
                eng.state.cluster().loc_mut(target).counters.ctrl_sent += 1;
                let ctrl = cfg.serialize_ctrl();
                let tx_done = eng.state.cluster().tx(target, visible, ctrl);
                let class = response_class(req.class);
                eng.defer_wire(move |eng| {
                    let at = fabric_arrival(eng, tx_done, cfg.ctrl_bytes);
                    deliver_ctrl_faulty(eng, at, target, initiator, Packet::PutDone { op }, class);
                });
            }
        }
        Err(reason) => nack(
            eng,
            target,
            initiator,
            req.op,
            OpKind::Put,
            reason,
            block,
            local,
            response_class(req.class),
        ),
    }
}

/// Initiate a one-sided read from `initiator`.
pub fn rdma_get<S: Protocol>(eng: &mut Engine<S>, initiator: LocalityId, req: GetReq) {
    let now = eng.now();
    let cfg = eng.state.cluster().config;
    {
        let c = eng.state.cluster();
        c.tracer.record(
            now,
            TraceKind::GetInject {
                src: initiator,
                dst: req.target,
                bytes: req.len,
            },
        );
        let l = c.loc_mut(initiator);
        l.counters.rdma_gets += 1;
        l.counters.bytes_sent += cfg.ctrl_bytes as u64;
    }
    if initiator == req.target {
        let at = now + cfg.loopback;
        eng.schedule_at(at, move |eng| get_commit(eng, initiator, req, true));
        return;
    }
    let ctrl = cfg.serialize_ctrl();
    let tx_done = eng.state.cluster().tx(initiator, now + cfg.o_send, ctrl);
    eng.defer_wire(move |eng| {
        let arrival = fabric_arrival(eng, tx_done, cfg.ctrl_bytes);
        schedule_get_hop(eng, initiator, initiator, arrival, req);
    });
}

/// Schedule one wire hop of a get request (initial leg or a forwarding
/// hop), routing it through the fault plane. Get requests are control
/// messages: corruption draws already degrade to drops in the plane.
fn schedule_get_hop<S: Protocol>(
    eng: &mut Engine<S>,
    initiator: LocalityId,
    hop_src: LocalityId,
    arrival: Time,
    req: GetReq,
) {
    match fault_decide(eng, hop_src, req.target, req.class, true) {
        FaultVerdict::Drop => {}
        FaultVerdict::Deliver {
            extra_delay,
            duplicate,
            ..
        } => {
            if duplicate {
                let copy = req.clone();
                let spacing = fault_dup_delay(eng, hop_src, req.target);
                eng.schedule_at_loc(arrival + extra_delay + spacing, copy.target, move |eng| {
                    get_arrive(eng, initiator, copy)
                });
            }
            let dst = req.target;
            eng.schedule_at_loc(arrival + extra_delay, dst, move |eng| {
                get_arrive(eng, initiator, req)
            });
        }
    }
}

fn get_arrive<S: Protocol>(eng: &mut Engine<S>, initiator: LocalityId, req: GetReq) {
    let now = eng.now();
    let cfg = eng.state.cluster().config;
    let ctrl = cfg.serialize_ctrl();
    let rx_done = eng.state.cluster().rx(req.target, now, ctrl);
    let xlate_cost = match req.src {
        RdmaTarget::Virt { .. } => cfg.xlate_ns,
        RdmaTarget::Phys(_) => Time::ZERO,
    };
    eng.schedule_at(rx_done + xlate_cost, move |eng| {
        get_commit(eng, initiator, req, false)
    });
}

fn get_commit<S: Protocol>(
    eng: &mut Engine<S>,
    initiator: LocalityId,
    mut req: GetReq,
    local: bool,
) {
    let now = eng.now();
    let cfg = eng.state.cluster().config;
    let target = req.target;
    let block = block_key_of(&req.src);
    let resolved: Result<PhysAddr, NackReason> = match req.src {
        RdmaTarget::Phys(addr) => Ok(addr),
        RdmaTarget::Virt { block, offset } => {
            let l = eng.state.cluster().loc_mut(target);
            match l.nic.xlate.lookup(block) {
                Xlate::Hit(entry) => {
                    if offset + req.len as u64 <= entry.len {
                        l.counters.xlate_hits += 1;
                        Ok(entry.base + offset)
                    } else {
                        Err(NackReason::Bounds)
                    }
                }
                Xlate::Forward(next) => {
                    if cfg.nic_forwarding && req.ttl > 0 {
                        l.counters.xlate_forwards += 1;
                        let ctrl = cfg.serialize_ctrl();
                        let tx_done = eng.state.cluster().tx(target, now, ctrl);
                        req.target = next;
                        req.ttl -= 1;
                        eng.defer_wire(move |eng| {
                            let arrival = fabric_arrival(eng, tx_done, cfg.ctrl_bytes);
                            schedule_get_hop(eng, initiator, target, arrival, req);
                        });
                        return;
                    } else if cfg.nic_forwarding {
                        Err(NackReason::TtlExceeded)
                    } else {
                        Err(NackReason::Miss)
                    }
                }
                Xlate::Miss => {
                    l.counters.xlate_misses += 1;
                    deliver_at(eng, now, target, target, Packet::XlateMiss { block });
                    Err(NackReason::Miss)
                }
            }
        }
    };
    match resolved {
        Ok(addr) => {
            let data: Vec<u8> = match eng.state.cluster().mem(target).read(addr, req.len as usize) {
                Ok(slice) => slice.to_vec(),
                Err(_) => {
                    nack(
                        eng,
                        target,
                        initiator,
                        req.op,
                        OpKind::Get,
                        NackReason::Bounds,
                        block,
                        local,
                        response_class(req.class),
                    );
                    return;
                }
            };
            let op = req.op;
            let local_addr = req.local;
            if local {
                // Local get: a DMA-speed copy within the node.
                let at = now + cfg.dma(req.len);
                eng.schedule_at(at, move |eng| {
                    eng.state
                        .cluster()
                        .mem_mut(initiator)
                        .write(local_addr, &data)
                        .expect("get local buffer out of bounds");
                    S::deliver(
                        eng,
                        Envelope {
                            src: target,
                            dst: initiator,
                            packet: Packet::GetDone { op },
                        },
                    );
                });
                return;
            }
            // Response: payload travels target → initiator.
            {
                let l = eng.state.cluster().loc_mut(target);
                l.counters.bytes_sent += req.len as u64;
                l.counters.ctrl_sent += 1;
            }
            let dur = cfg.serialize(req.len);
            let ready = now + cfg.dma(req.len);
            let tx_done = eng.state.cluster().tx(target, ready, dur);
            let len = req.len;
            let class = response_class(req.class);
            eng.defer_wire(move |eng| {
                let mut arrival = fabric_arrival(eng, tx_done, len);
                match fault_decide(eng, target, initiator, class, true) {
                    FaultVerdict::Drop => return,
                    FaultVerdict::Deliver {
                        extra_delay,
                        duplicate,
                        ..
                    } => {
                        arrival += extra_delay;
                        if duplicate {
                            // The duplicate's payload lands on a registration
                            // the initiator may have retired; model the NIC
                            // discarding the bytes while the completion event
                            // still surfaces (the op table drops it as stale).
                            let spacing = fault_dup_delay(eng, target, initiator);
                            deliver_at(
                                eng,
                                arrival + spacing,
                                target,
                                initiator,
                                Packet::GetDone { op },
                            );
                        }
                    }
                }
                eng.schedule_at_loc(arrival, initiator, move |eng| {
                    let now = eng.now();
                    let dur = eng.state.cluster().config.serialize(data.len() as u32);
                    let rx_done = eng.state.cluster().rx(initiator, now, dur);
                    eng.schedule_at(rx_done, move |eng| {
                        eng.state
                            .cluster()
                            .mem_mut(initiator)
                            .write(local_addr, &data)
                            .expect("get local buffer out of bounds");
                        S::deliver(
                            eng,
                            Envelope {
                                src: target,
                                dst: initiator,
                                packet: Packet::GetDone { op },
                            },
                        );
                    });
                });
            });
        }
        Err(reason) => nack(
            eng,
            target,
            initiator,
            req.op,
            OpKind::Get,
            reason,
            block,
            local,
            response_class(req.class),
        ),
    }
}

/// Emit a NACK control message from `target`'s NIC back to `initiator`.
#[allow(clippy::too_many_arguments)]
fn nack<S: Protocol>(
    eng: &mut Engine<S>,
    target: LocalityId,
    initiator: LocalityId,
    op: OpId,
    kind: OpKind,
    reason: NackReason,
    block: u64,
    local: bool,
    class: FaultClass,
) {
    let now = eng.now();
    let cfg = eng.state.cluster().config;
    eng.state.cluster().loc_mut(target).counters.nacks_sent += 1;
    let arrive = move |eng: &mut Engine<S>, at: Time| {
        eng.schedule_at_loc(at, initiator, move |eng| {
            let now = eng.now();
            let c = eng.state.cluster();
            c.tracer.record(
                now,
                TraceKind::Nack {
                    from: target,
                    to: initiator,
                },
            );
            c.loc_mut(initiator).counters.nacks_recv += 1;
            S::deliver(
                eng,
                Envelope {
                    src: target,
                    dst: initiator,
                    packet: Packet::Nack {
                        op,
                        kind,
                        reason,
                        block,
                    },
                },
            );
        });
    };
    if local {
        arrive(eng, now + cfg.loopback);
        return;
    }
    let ctrl = cfg.serialize_ctrl();
    let tx_done = eng.state.cluster().tx(target, now, ctrl);
    eng.defer_wire(move |eng| {
        let mut at = fabric_arrival(eng, tx_done, cfg.ctrl_bytes);
        match fault_decide(eng, target, initiator, class, true) {
            FaultVerdict::Drop => return,
            FaultVerdict::Deliver {
                extra_delay,
                duplicate,
                ..
            } => {
                at += extra_delay;
                if duplicate {
                    let spacing = fault_dup_delay(eng, target, initiator);
                    arrive(eng, at + spacing);
                }
            }
        }
        arrive(eng, at);
    });
}

/// A NIC-executed active-operation request. AMO requests are control-sized
/// on the wire (the operands ride in the request header); the target NIC
/// translates the virtual block and applies the op **in the same visit**,
/// so the target CPU schedules zero events on the hit path.
#[derive(Clone, Debug)]
pub struct AmoReq {
    /// Locality whose NIC should execute the op (the believed owner).
    pub target: LocalityId,
    /// Virtual block key the op addresses.
    pub block: u64,
    /// Byte offset of the op's target word within the block
    /// (scatter/gather carry their own per-word offsets).
    pub offset: u64,
    /// The operation the NIC executes.
    pub amo: AmoOp,
    /// Retry-stable dedup key checked against the target NIC's responder
    /// cache: the initiating locality plus the initiator's GAS-level op
    /// id, unchanged across transport retries.
    pub key: AmoKey,
    /// Completion token.
    pub op: OpId,
    /// Remaining NIC forwarding hops.
    pub ttl: u8,
    /// How the fault plane may abuse this request and its completions.
    pub class: FaultClass,
}

/// Initiate a NIC-executed active operation from `initiator`.
pub fn rdma_amo<S: Protocol>(eng: &mut Engine<S>, initiator: LocalityId, req: AmoReq) {
    let now = eng.now();
    let cfg = eng.state.cluster().config;
    {
        let c = eng.state.cluster();
        c.tracer.record(
            now,
            TraceKind::AmoInject {
                src: initiator,
                dst: req.target,
            },
        );
        let l = c.loc_mut(initiator);
        l.counters.rdma_amos += 1;
        l.counters.bytes_sent += cfg.ctrl_bytes as u64;
    }
    if initiator == req.target {
        // Loop-back: the local NIC still translates and executes, but no
        // wire or port serialization is paid.
        let at = now + cfg.loopback;
        eng.schedule_at(at, move |eng| amo_commit(eng, initiator, req, true));
        return;
    }
    let ctrl = cfg.serialize_ctrl();
    let tx_done = eng.state.cluster().tx(initiator, now + cfg.o_send, ctrl);
    eng.defer_wire(move |eng| {
        let arrival = fabric_arrival(eng, tx_done, cfg.ctrl_bytes);
        schedule_amo_hop(eng, initiator, initiator, arrival, req);
    });
}

/// Schedule one wire hop of an AMO request (initial leg or a forwarding
/// hop), routing it through the fault plane. AMO requests are control
/// messages: corruption draws already degrade to drops in the plane, so a
/// corrupted request can never execute — it vanishes and the initiator's
/// deadline machinery retries it. Duplicated requests are safe because
/// the target's responder cache replays instead of re-executing.
fn schedule_amo_hop<S: Protocol>(
    eng: &mut Engine<S>,
    initiator: LocalityId,
    hop_src: LocalityId,
    arrival: Time,
    req: AmoReq,
) {
    match fault_decide(eng, hop_src, req.target, req.class, true) {
        FaultVerdict::Drop => {}
        FaultVerdict::Deliver {
            extra_delay,
            duplicate,
            ..
        } => {
            if duplicate {
                let copy = req.clone();
                let spacing = fault_dup_delay(eng, hop_src, req.target);
                eng.schedule_at_loc(arrival + extra_delay + spacing, copy.target, move |eng| {
                    amo_arrive(eng, initiator, copy)
                });
            }
            let dst = req.target;
            eng.schedule_at_loc(arrival + extra_delay, dst, move |eng| {
                amo_arrive(eng, initiator, req)
            });
        }
    }
}

fn amo_arrive<S: Protocol>(eng: &mut Engine<S>, initiator: LocalityId, req: AmoReq) {
    let now = eng.now();
    let cfg = eng.state.cluster().config;
    let ctrl = cfg.serialize_ctrl();
    let rx_done = eng.state.cluster().rx(req.target, now, ctrl);
    // The AMO always targets a virtual block: translation cost applies.
    eng.schedule_at(rx_done + cfg.xlate_ns, move |eng| {
        amo_commit(eng, initiator, req, false)
    });
}

/// Send the `AmoDone` completion (or deliver it loop-back).
#[allow(clippy::too_many_arguments)]
fn amo_ack<S: Protocol>(
    eng: &mut Engine<S>,
    target: LocalityId,
    initiator: LocalityId,
    op: OpId,
    result: AmoResult,
    ready: Time,
    local: bool,
    class: FaultClass,
) {
    let packet = Packet::AmoDone { op, result };
    if local {
        deliver_at(eng, ready, target, initiator, packet);
        return;
    }
    let cfg = eng.state.cluster().config;
    eng.state.cluster().loc_mut(target).counters.ctrl_sent += 1;
    let ctrl = cfg.serialize_ctrl();
    let tx_done = eng.state.cluster().tx(target, ready, ctrl);
    eng.defer_wire(move |eng| {
        let at = fabric_arrival(eng, tx_done, cfg.ctrl_bytes);
        deliver_ctrl_faulty(eng, at, target, initiator, packet, class);
    });
}

/// Translate and execute an AMO at its current target NIC; generate the
/// result ack, NACK, or forwarding hop. Mirrors `put_commit` with one
/// addition: the responder cache is consulted *before* execution so a
/// duplicated or retried request re-acks its remembered result instead of
/// applying the op twice.
fn amo_commit<S: Protocol>(
    eng: &mut Engine<S>,
    initiator: LocalityId,
    mut req: AmoReq,
    local: bool,
) {
    let now = eng.now();
    let cfg = eng.state.cluster().config;
    let target = req.target;
    let block = req.block;
    if let Some(cached) = eng
        .state
        .cluster()
        .loc(target)
        .nic
        .amo
        .lookup(req.key)
        .cloned()
    {
        eng.state.cluster().loc_mut(target).counters.amo_replays += 1;
        amo_ack(
            eng,
            target,
            initiator,
            req.op,
            cached,
            now,
            local,
            response_class(req.class),
        );
        return;
    }
    let resolved: Result<XlateEntry, NackReason> = {
        let l = eng.state.cluster().loc_mut(target);
        match l.nic.xlate.lookup(block) {
            Xlate::Hit(entry) => {
                if req.amo.bounds_ok(req.offset, entry.len) {
                    l.counters.xlate_hits += 1;
                    eng.state
                        .cluster()
                        .tracer
                        .record(now, TraceKind::XlateHit { at: target, block });
                    Ok(entry)
                } else {
                    Err(NackReason::Bounds)
                }
            }
            Xlate::Forward(next) => {
                if cfg.nic_forwarding && req.ttl > 0 {
                    l.counters.xlate_forwards += 1;
                    l.counters.amo_forwarded += 1;
                    crate::telemetry::record_amo(0, 0, 1);
                    eng.state.cluster().tracer.record(
                        now,
                        TraceKind::XlateForward {
                            at: target,
                            next,
                            block,
                        },
                    );
                    let ctrl = cfg.serialize_ctrl();
                    let tx_done = eng.state.cluster().tx(target, now, ctrl);
                    req.target = next;
                    req.ttl -= 1;
                    eng.defer_wire(move |eng| {
                        let arrival = fabric_arrival(eng, tx_done, cfg.ctrl_bytes);
                        schedule_amo_hop(eng, initiator, target, arrival, req);
                    });
                    return;
                } else if cfg.nic_forwarding {
                    Err(NackReason::TtlExceeded)
                } else {
                    Err(NackReason::Miss)
                }
            }
            Xlate::Miss => {
                l.counters.xlate_misses += 1;
                eng.state
                    .cluster()
                    .tracer
                    .record(now, TraceKind::XlateMiss { at: target, block });
                deliver_at(eng, now, target, target, Packet::XlateMiss { block });
                Err(NackReason::Miss)
            }
        }
    };
    match resolved {
        Ok(entry) => {
            let executed = {
                let m = eng.state.cluster().mem_mut(target);
                m.slice_mut(entry.base, entry.len as usize)
                    .map(|bytes| amo::execute(&req.amo, bytes, req.offset))
            };
            let result = match executed {
                Ok(r) => r,
                Err(_) => {
                    eng.state.cluster().loc_mut(target).counters.amo_nacked += 1;
                    crate::telemetry::record_amo(0, 1, 0);
                    nack(
                        eng,
                        target,
                        initiator,
                        req.op,
                        OpKind::Amo,
                        NackReason::Bounds,
                        block,
                        local,
                        response_class(req.class),
                    );
                    return;
                }
            };
            {
                let l = eng.state.cluster().loc_mut(target);
                l.counters.amo_executed += 1;
                // Only mutations need replay protection; reads re-execute
                // harmlessly and must not evict entries that do need it.
                if req.amo.mutates() {
                    l.nic.amo.install(req.key, block, result.clone());
                }
            }
            crate::telemetry::record_amo(1, 0, 0);
            let words = req.amo.touched_words() as u32;
            let visible = now + cfg.dma(8 * words);
            amo_ack(
                eng,
                target,
                initiator,
                req.op,
                result,
                visible,
                local,
                response_class(req.class),
            );
        }
        Err(reason) => {
            eng.state.cluster().loc_mut(target).counters.amo_nacked += 1;
            crate::telemetry::record_amo(0, 1, 0);
            nack(
                eng,
                target,
                initiator,
                req.op,
                OpKind::Amo,
                reason,
                block,
                local,
                response_class(req.class),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::XlateEntry;

    /// Minimal protocol: log every delivered envelope with its timestamp.
    struct TestWorld {
        cluster: Cluster,
        log: Vec<(Time, LocalityId, String)>,
    }

    impl TestWorld {
        fn new(n: usize, cfg: NetConfig) -> TestWorld {
            TestWorld {
                cluster: Cluster::new(n, cfg, 1 << 24),
                log: Vec::new(),
            }
        }
    }

    impl Protocol for TestWorld {
        type Msg = String;
        fn cluster(&mut self) -> &mut Cluster {
            &mut self.cluster
        }
        fn cluster_ref(&self) -> &Cluster {
            &self.cluster
        }
        fn deliver(eng: &mut Engine<Self>, env: Envelope<String>) {
            let desc = match env.packet {
                Packet::User(s) => format!("user:{s}"),
                Packet::PutDone { op } => format!("putdone:{op}"),
                Packet::GetDone { op } => format!("getdone:{op}"),
                Packet::AmoDone { op, result } => {
                    let vals: Vec<String> = result.values.iter().map(|v| v.to_string()).collect();
                    format!(
                        "amodone:{op}:{}:{}:[{}]",
                        result.old,
                        result.applied,
                        vals.join(",")
                    )
                }
                Packet::RemoteNote { tag, len } => format!("note:{tag}:{len}"),
                Packet::XlateMiss { block } => format!("xmiss:{block}"),
                Packet::Nack { op, reason, .. } => format!("nack:{op}:{reason:?}"),
            };
            let now = eng.now();
            eng.state.log.push((now, env.dst, desc));
        }
    }

    fn engine(n: usize) -> Engine<TestWorld> {
        Engine::new(TestWorld::new(n, NetConfig::ideal()), 1)
    }

    #[test]
    fn user_message_arrival_time_matches_model() {
        let mut eng = engine(2);
        send_user(&mut eng, 0, 1, 100, "hi".into());
        eng.run();
        // ideal: o_send 10 + serialize(100)=110 + L 100 + rx 110 = 330ns.
        assert_eq!(eng.state.log.len(), 1);
        let (t, dst, ref desc) = eng.state.log[0];
        assert_eq!(dst, 1);
        assert_eq!(desc, "user:hi");
        assert_eq!(t, Time::from_ns(330));
        assert_eq!(eng.state.cluster.loc(0).counters.msgs_sent, 1);
        assert_eq!(eng.state.cluster.loc(1).counters.msgs_recv, 1);
    }

    #[test]
    fn loopback_message_is_cheap() {
        let mut eng = engine(2);
        send_user(&mut eng, 0, 0, 100, "self".into());
        eng.run();
        assert_eq!(eng.state.log[0].0, Time::from_ns(20)); // ideal loopback
    }

    #[test]
    fn back_to_back_sends_serialize_on_tx_port() {
        let mut eng = engine(2);
        send_user(&mut eng, 0, 1, 100, "a".into());
        send_user(&mut eng, 0, 1, 100, "b".into());
        eng.run();
        let t_a = eng.state.log[0].0;
        let t_b = eng.state.log[1].0;
        // Second message waits a full serialize (110ns) behind the first on
        // both ports.
        assert_eq!(t_b - t_a, Time::from_ns(110));
    }

    #[test]
    fn rdma_put_phys_writes_and_completes() {
        let mut eng = engine(2);
        let addr = eng.state.cluster.mem_mut(1).alloc_block(10).unwrap();
        let op = eng.state.cluster.alloc_op();
        rdma_put(
            &mut eng,
            0,
            PutReq {
                target: 1,
                dst: RdmaTarget::Phys(addr),
                data: vec![7u8; 16],
                op,
                remote_tag: None,
                ttl: 2,
                class: FaultClass::Request,
            },
        );
        eng.run();
        assert_eq!(
            eng.state.cluster.mem(1).read(addr, 16).unwrap(),
            &[7u8; 16][..]
        );
        assert_eq!(eng.state.log.len(), 1);
        assert_eq!(eng.state.log[0].1, 0); // completion at initiator
        assert!(eng.state.log[0].2.starts_with("putdone"));
    }

    #[test]
    fn rdma_put_virt_hit_with_remote_note() {
        let mut eng = engine(2);
        let base = eng.state.cluster.mem_mut(1).alloc_block(10).unwrap();
        eng.state.cluster.install_xlate(
            1,
            0xB10C,
            XlateEntry {
                base,
                len: 1024,
                generation: 1,
            },
        );
        let op = eng.state.cluster.alloc_op();
        rdma_put(
            &mut eng,
            0,
            PutReq {
                target: 1,
                dst: RdmaTarget::Virt {
                    block: 0xB10C,
                    offset: 64,
                },
                data: vec![9u8; 8],
                op,
                remote_tag: Some(77),
                ttl: 2,
                class: FaultClass::Request,
            },
        );
        eng.run();
        assert_eq!(
            eng.state.cluster.mem(1).read(base + 64, 8).unwrap(),
            &[9u8; 8][..]
        );
        let kinds: Vec<&str> = eng.state.log.iter().map(|(_, _, d)| d.as_str()).collect();
        assert!(kinds.contains(&"note:77:8"), "{kinds:?}");
        assert!(kinds.iter().any(|k| k.starts_with("putdone")), "{kinds:?}");
        assert_eq!(eng.state.cluster.loc(1).counters.xlate_hits, 1);
    }

    #[test]
    fn rdma_put_unknown_block_nacks_miss() {
        let mut eng = engine(2);
        let op = eng.state.cluster.alloc_op();
        rdma_put(
            &mut eng,
            0,
            PutReq {
                target: 1,
                dst: RdmaTarget::Virt {
                    block: 0xDEAD,
                    offset: 0,
                },
                data: vec![1u8; 8],
                op,
                remote_tag: None,
                ttl: 2,
                class: FaultClass::Request,
            },
        );
        eng.run();
        // The miss generates both a local table-miss interrupt at the
        // target and a NACK back to the initiator.
        let kinds: Vec<&str> = eng.state.log.iter().map(|(_, _, d)| d.as_str()).collect();
        assert!(kinds.contains(&"xmiss:57005"), "{kinds:?}"); // 0xDEAD
        assert!(
            kinds.contains(&format!("nack:{op}:Miss").as_str()),
            "{kinds:?}"
        );
        assert_eq!(eng.state.cluster.loc(1).counters.xlate_misses, 1);
        assert_eq!(eng.state.cluster.loc(1).counters.nacks_sent, 1);
        assert_eq!(eng.state.cluster.loc(0).counters.nacks_recv, 1);
    }

    #[test]
    fn rdma_put_out_of_block_nacks_bounds() {
        let mut eng = engine(2);
        let base = eng.state.cluster.mem_mut(1).alloc_block(6).unwrap();
        eng.state.cluster.install_xlate(
            1,
            5,
            XlateEntry {
                base,
                len: 64,
                generation: 1,
            },
        );
        let op = eng.state.cluster.alloc_op();
        rdma_put(
            &mut eng,
            0,
            PutReq {
                target: 1,
                dst: RdmaTarget::Virt {
                    block: 5,
                    offset: 60,
                },
                data: vec![1u8; 8],
                op,
                remote_tag: None,
                ttl: 2,
                class: FaultClass::Request,
            },
        );
        eng.run();
        assert_eq!(eng.state.log[0].2, format!("nack:{op}:Bounds"));
    }

    #[test]
    fn forwarding_chases_one_hop() {
        let mut eng = engine(3);
        // Block lives at 2; locality 1 holds a forwarding tombstone.
        let base = eng.state.cluster.mem_mut(2).alloc_block(10).unwrap();
        eng.state.cluster.install_xlate(
            2,
            0xAB,
            XlateEntry {
                base,
                len: 1024,
                generation: 2,
            },
        );
        eng.state
            .cluster
            .loc_mut(1)
            .nic
            .xlate
            .retire_to_forward(0xAB, 2);
        let op = eng.state.cluster.alloc_op();
        rdma_put(
            &mut eng,
            0,
            PutReq {
                target: 1,
                dst: RdmaTarget::Virt {
                    block: 0xAB,
                    offset: 0,
                },
                data: vec![3u8; 4],
                op,
                remote_tag: None,
                ttl: 2,
                class: FaultClass::Request,
            },
        );
        eng.run();
        assert_eq!(
            eng.state.cluster.mem(2).read(base, 4).unwrap(),
            &[3u8; 4][..]
        );
        assert_eq!(eng.state.cluster.loc(1).counters.xlate_forwards, 1);
        assert!(eng
            .state
            .log
            .iter()
            .any(|(_, _, d)| d.starts_with("putdone")));
        // The ack comes from the *final* owner.
        let done = eng
            .state
            .log
            .iter()
            .find(|(_, _, d)| d.starts_with("putdone"))
            .unwrap();
        assert_eq!(done.1, 0);
    }

    #[test]
    fn forwarding_disabled_nacks_instead() {
        let cfg = NetConfig {
            nic_forwarding: false,
            ..NetConfig::ideal()
        };
        let mut eng = Engine::new(TestWorld::new(3, cfg), 1);
        eng.state
            .cluster
            .loc_mut(1)
            .nic
            .xlate
            .retire_to_forward(0xAB, 2);
        let op = eng.state.cluster.alloc_op();
        rdma_put(
            &mut eng,
            0,
            PutReq {
                target: 1,
                dst: RdmaTarget::Virt {
                    block: 0xAB,
                    offset: 0,
                },
                data: vec![3u8; 4],
                op,
                remote_tag: None,
                ttl: 2,
                class: FaultClass::Request,
            },
        );
        eng.run();
        assert_eq!(eng.state.log[0].2, format!("nack:{op}:Miss"));
        assert_eq!(eng.state.cluster.loc(1).counters.xlate_forwards, 0);
    }

    #[test]
    fn forwarding_ttl_exhaustion() {
        let mut eng = engine(3);
        // A forwarding loop 1 → 2 → 1 must terminate by TTL.
        eng.state
            .cluster
            .loc_mut(1)
            .nic
            .xlate
            .retire_to_forward(0xAB, 2);
        eng.state
            .cluster
            .loc_mut(2)
            .nic
            .xlate
            .retire_to_forward(0xAB, 1);
        let op = eng.state.cluster.alloc_op();
        rdma_put(
            &mut eng,
            0,
            PutReq {
                target: 1,
                dst: RdmaTarget::Virt {
                    block: 0xAB,
                    offset: 0,
                },
                data: vec![3u8; 4],
                op,
                remote_tag: None,
                ttl: 2,
                class: FaultClass::Request,
            },
        );
        eng.run();
        assert_eq!(eng.state.log[0].2, format!("nack:{op}:TtlExceeded"));
        let total = eng.state.cluster.total_counters();
        assert_eq!(total.xlate_forwards, 2);
    }

    #[test]
    fn rdma_get_round_trips_data() {
        let mut eng = engine(2);
        let remote = eng.state.cluster.mem_mut(1).alloc_block(10).unwrap();
        eng.state
            .cluster
            .mem_mut(1)
            .write(remote, &[5u8; 32])
            .unwrap();
        eng.state.cluster.install_xlate(
            1,
            0xCC,
            XlateEntry {
                base: remote,
                len: 1024,
                generation: 1,
            },
        );
        let local = eng.state.cluster.mem_mut(0).alloc_block(10).unwrap();
        let op = eng.state.cluster.alloc_op();
        rdma_get(
            &mut eng,
            0,
            GetReq {
                target: 1,
                src: RdmaTarget::Virt {
                    block: 0xCC,
                    offset: 0,
                },
                len: 32,
                local,
                op,
                ttl: 2,
                class: FaultClass::Request,
            },
        );
        eng.run();
        assert_eq!(
            eng.state.cluster.mem(0).read(local, 32).unwrap(),
            &[5u8; 32][..]
        );
        assert!(eng
            .state
            .log
            .iter()
            .any(|(_, l, d)| *l == 0 && d.starts_with("getdone")));
    }

    #[test]
    fn rdma_get_miss_nacks() {
        let mut eng = engine(2);
        let local = eng.state.cluster.mem_mut(0).alloc_block(8).unwrap();
        let op = eng.state.cluster.alloc_op();
        rdma_get(
            &mut eng,
            0,
            GetReq {
                target: 1,
                src: RdmaTarget::Virt {
                    block: 0xF00,
                    offset: 0,
                },
                len: 8,
                local,
                op,
                ttl: 2,
                class: FaultClass::Request,
            },
        );
        eng.run();
        let kinds: Vec<&str> = eng.state.log.iter().map(|(_, _, d)| d.as_str()).collect();
        assert!(
            kinds.contains(&format!("nack:{op}:Miss").as_str()),
            "{kinds:?}"
        );
    }

    #[test]
    fn local_put_and_get_work() {
        let mut eng = engine(1);
        let base = eng.state.cluster.mem_mut(0).alloc_block(8).unwrap();
        eng.state.cluster.install_xlate(
            0,
            1,
            XlateEntry {
                base,
                len: 256,
                generation: 1,
            },
        );
        let op = eng.state.cluster.alloc_op();
        rdma_put(
            &mut eng,
            0,
            PutReq {
                target: 0,
                dst: RdmaTarget::Virt {
                    block: 1,
                    offset: 8,
                },
                data: vec![0xEE; 4],
                op,
                remote_tag: Some(1),
                ttl: 2,
                class: FaultClass::Request,
            },
        );
        eng.run();
        assert_eq!(
            eng.state.cluster.mem(0).read(base + 8, 4).unwrap(),
            &[0xEE; 4][..]
        );
        assert!(eng
            .state
            .log
            .iter()
            .any(|(_, _, d)| d.starts_with("putdone")));
        assert!(eng.state.log.iter().any(|(_, _, d)| d == "note:1:4"));
    }

    fn amo_req(target: LocalityId, block: u64, offset: u64, amo: AmoOp, op: OpId) -> AmoReq {
        AmoReq {
            target,
            block,
            offset,
            amo,
            key: (0, op.raw()),
            op,
            ttl: 2,
            class: FaultClass::Request,
        }
    }

    fn seed_word(eng: &mut Engine<TestWorld>, loc: LocalityId, addr: PhysAddr, val: u64) {
        eng.state
            .cluster
            .mem_mut(loc)
            .write(addr, &val.to_le_bytes())
            .unwrap();
    }

    fn read_word(eng: &Engine<TestWorld>, loc: LocalityId, addr: PhysAddr) -> u64 {
        u64::from_le_bytes(
            eng.state.cluster.mem(loc).read(addr, 8).unwrap()[..8]
                .try_into()
                .unwrap(),
        )
    }

    #[test]
    fn amo_fetch_add_executes_at_nic_without_target_events() {
        let mut eng = engine(2);
        let base = eng.state.cluster.mem_mut(1).alloc_block(10).unwrap();
        eng.state.cluster.install_xlate(
            1,
            0xA1,
            XlateEntry {
                base,
                len: 1024,
                generation: 1,
            },
        );
        seed_word(&mut eng, 1, base + 16, 40);
        let op = eng.state.cluster.alloc_op();
        rdma_amo(
            &mut eng,
            0,
            amo_req(1, 0xA1, 16, AmoOp::FetchAdd { operand: 2 }, op),
        );
        eng.run();
        assert_eq!(read_word(&eng, 1, base + 16), 42);
        // One completion, at the initiator, carrying the old value.
        assert_eq!(eng.state.log.len(), 1);
        let (_, dst, ref desc) = eng.state.log[0];
        assert_eq!(dst, 0);
        assert_eq!(desc, &format!("amodone:{op}:40:true:[]"));
        // Zero target-CPU involvement: no software deliveries at 1, and
        // the hot path charges the NIC, not the message handler.
        assert!(eng.state.log.iter().all(|&(_, d, _)| d != 1));
        let t = eng.state.cluster.loc(1).counters.clone();
        assert_eq!(t.sw_handler_runs, 0);
        assert_eq!(t.amo_executed, 1);
        assert_eq!(t.xlate_hits, 1);
        assert_eq!(eng.state.cluster.loc(0).counters.rdma_amos, 1);
    }

    #[test]
    fn amo_cas_success_and_failure() {
        let mut eng = engine(2);
        let base = eng.state.cluster.mem_mut(1).alloc_block(10).unwrap();
        eng.state.cluster.install_xlate(
            1,
            7,
            XlateEntry {
                base,
                len: 1024,
                generation: 1,
            },
        );
        seed_word(&mut eng, 1, base, 5);
        let op1 = eng.state.cluster.alloc_op();
        rdma_amo(
            &mut eng,
            0,
            amo_req(
                1,
                7,
                0,
                AmoOp::CompareSwap {
                    expected: 9,
                    desired: 100,
                },
                op1,
            ),
        );
        eng.run();
        assert_eq!(read_word(&eng, 1, base), 5, "failed CAS must not write");
        assert_eq!(
            eng.state.log[0].2,
            format!("amodone:{op1}:5:false:[]"),
            "failed CAS still completes, with applied=false"
        );
        let op2 = eng.state.cluster.alloc_op();
        rdma_amo(
            &mut eng,
            0,
            amo_req(
                1,
                7,
                0,
                AmoOp::CompareSwap {
                    expected: 5,
                    desired: 100,
                },
                op2,
            ),
        );
        eng.run();
        assert_eq!(read_word(&eng, 1, base), 100);
        assert_eq!(eng.state.log[1].2, format!("amodone:{op2}:5:true:[]"));
        assert_eq!(eng.state.cluster.loc(1).counters.amo_executed, 2);
    }

    #[test]
    fn amo_masked_put_and_gather_scatter() {
        let mut eng = engine(2);
        let base = eng.state.cluster.mem_mut(1).alloc_block(10).unwrap();
        eng.state.cluster.install_xlate(
            1,
            9,
            XlateEntry {
                base,
                len: 1024,
                generation: 1,
            },
        );
        let op1 = eng.state.cluster.alloc_op();
        rdma_amo(
            &mut eng,
            0,
            amo_req(
                1,
                9,
                8,
                AmoOp::MaskedPut {
                    mask: 0xFF,
                    value: 0x42,
                },
                op1,
            ),
        );
        let op2 = eng.state.cluster.alloc_op();
        rdma_amo(
            &mut eng,
            0,
            amo_req(
                1,
                9,
                0,
                AmoOp::Scatter {
                    writes: vec![(32, 11), (40, 22)],
                },
                op2,
            ),
        );
        eng.run();
        assert_eq!(read_word(&eng, 1, base + 8), 0x42);
        assert_eq!(read_word(&eng, 1, base + 32), 11);
        let op3 = eng.state.cluster.alloc_op();
        rdma_amo(
            &mut eng,
            0,
            amo_req(
                1,
                9,
                0,
                AmoOp::Gather {
                    offsets: vec![40, 32, 8],
                },
                op3,
            ),
        );
        eng.run();
        assert_eq!(
            eng.state.log.last().unwrap().2,
            format!("amodone:{op3}:0:true:[22,11,66]")
        );
    }

    #[test]
    fn amo_unknown_block_nacks_miss_and_raises_interrupt() {
        let mut eng = engine(2);
        let op = eng.state.cluster.alloc_op();
        rdma_amo(
            &mut eng,
            0,
            amo_req(1, 0xDEAD, 0, AmoOp::FetchAdd { operand: 1 }, op),
        );
        eng.run();
        let kinds: Vec<&str> = eng.state.log.iter().map(|(_, _, d)| d.as_str()).collect();
        assert!(kinds.contains(&"xmiss:57005"), "{kinds:?}");
        assert!(
            kinds.contains(&format!("nack:{op}:Miss").as_str()),
            "{kinds:?}"
        );
        assert_eq!(eng.state.cluster.loc(1).counters.amo_nacked, 1);
        assert_eq!(eng.state.cluster.loc(1).counters.amo_executed, 0);
    }

    #[test]
    fn amo_out_of_block_nacks_bounds() {
        let mut eng = engine(2);
        let base = eng.state.cluster.mem_mut(1).alloc_block(6).unwrap();
        eng.state.cluster.install_xlate(
            1,
            5,
            XlateEntry {
                base,
                len: 64,
                generation: 1,
            },
        );
        let op = eng.state.cluster.alloc_op();
        rdma_amo(
            &mut eng,
            0,
            amo_req(1, 5, 60, AmoOp::FetchAdd { operand: 1 }, op),
        );
        eng.run();
        assert_eq!(eng.state.log[0].2, format!("nack:{op}:Bounds"));
        assert_eq!(eng.state.cluster.loc(1).counters.amo_nacked, 1);
    }

    #[test]
    fn amo_forwarding_chases_to_new_owner() {
        let mut eng = engine(3);
        let base = eng.state.cluster.mem_mut(2).alloc_block(10).unwrap();
        eng.state.cluster.install_xlate(
            2,
            0xAB,
            XlateEntry {
                base,
                len: 1024,
                generation: 2,
            },
        );
        eng.state
            .cluster
            .loc_mut(1)
            .nic
            .xlate
            .retire_to_forward(0xAB, 2);
        seed_word(&mut eng, 2, base, 10);
        let op = eng.state.cluster.alloc_op();
        rdma_amo(
            &mut eng,
            0,
            amo_req(1, 0xAB, 0, AmoOp::FetchAdd { operand: 1 }, op),
        );
        eng.run();
        assert_eq!(read_word(&eng, 2, base), 11, "op executed at new owner");
        assert_eq!(eng.state.cluster.loc(1).counters.amo_forwarded, 1);
        assert_eq!(eng.state.cluster.loc(2).counters.amo_executed, 1);
        assert_eq!(
            eng.state.log[0].2,
            format!("amodone:{op}:10:true:[]"),
            "completion comes from the final owner"
        );
    }

    #[test]
    fn amo_forwarding_ttl_exhaustion() {
        let mut eng = engine(3);
        eng.state
            .cluster
            .loc_mut(1)
            .nic
            .xlate
            .retire_to_forward(0xAB, 2);
        eng.state
            .cluster
            .loc_mut(2)
            .nic
            .xlate
            .retire_to_forward(0xAB, 1);
        let op = eng.state.cluster.alloc_op();
        rdma_amo(
            &mut eng,
            0,
            amo_req(1, 0xAB, 0, AmoOp::FetchAdd { operand: 1 }, op),
        );
        eng.run();
        assert_eq!(eng.state.log[0].2, format!("nack:{op}:TtlExceeded"));
        assert_eq!(eng.state.cluster.total_counters().amo_forwarded, 2);
    }

    #[test]
    fn amo_duplicate_request_executes_once() {
        // A retried request reuses its dedup key: the second delivery must
        // replay the cached result, not re-execute (a re-executed
        // fetch-add would double-count).
        let mut eng = engine(2);
        let base = eng.state.cluster.mem_mut(1).alloc_block(10).unwrap();
        eng.state.cluster.install_xlate(
            1,
            3,
            XlateEntry {
                base,
                len: 1024,
                generation: 1,
            },
        );
        seed_word(&mut eng, 1, base, 100);
        let op = eng.state.cluster.alloc_op();
        let req = amo_req(1, 3, 0, AmoOp::FetchAdd { operand: 1 }, op);
        rdma_amo(&mut eng, 0, req.clone());
        eng.run();
        rdma_amo(&mut eng, 0, req);
        eng.run();
        assert_eq!(
            read_word(&eng, 1, base),
            101,
            "second delivery must not apply"
        );
        let t = eng.state.cluster.loc(1).counters.clone();
        assert_eq!(t.amo_executed, 1);
        assert_eq!(t.amo_replays, 1);
        // Both completions carry the same old value.
        let descs: Vec<&str> = eng.state.log.iter().map(|(_, _, d)| d.as_str()).collect();
        assert_eq!(
            descs,
            vec![
                format!("amodone:{op}:100:true:[]").as_str(),
                format!("amodone:{op}:100:true:[]").as_str(),
            ]
        );
    }

    #[test]
    fn amo_loopback_executes_locally() {
        let mut eng = engine(1);
        let base = eng.state.cluster.mem_mut(0).alloc_block(8).unwrap();
        eng.state.cluster.install_xlate(
            0,
            1,
            XlateEntry {
                base,
                len: 256,
                generation: 1,
            },
        );
        let op = eng.state.cluster.alloc_op();
        rdma_amo(
            &mut eng,
            0,
            amo_req(0, 1, 0, AmoOp::FetchAdd { operand: 7 }, op),
        );
        eng.run();
        assert_eq!(read_word(&eng, 0, base), 7);
        assert_eq!(eng.state.log[0].2, format!("amodone:{op}:0:true:[]"));
    }

    #[test]
    fn oversubscription_throttles_disjoint_pairs() {
        // Two disjoint pairs send simultaneously. Full bisection: they do
        // not interact. 2:1 oversubscription on a 4-node fabric: the core
        // carries only 2 links' worth of aggregate bandwidth.
        let run = |oversub: u64| {
            let cfg = NetConfig {
                oversubscription: oversub,
                ..NetConfig::ideal()
            };
            let mut eng = Engine::new(TestWorld::new(4, cfg), 1);
            send_user(&mut eng, 0, 1, 60_000, "a".into());
            send_user(&mut eng, 2, 3, 60_000, "b".into());
            eng.run();
            eng.state.log.iter().map(|&(t, _, _)| t).max().unwrap()
        };
        let full = run(1);
        let half = run(4); // aggregate = 4/4 = 1 link for both flows
        assert!(half > full, "full={full} half={half}");
    }

    #[test]
    fn larger_put_takes_longer() {
        let run_one = |size: u32| {
            let mut eng = engine(2);
            let addr = eng.state.cluster.mem_mut(1).alloc_block(22).unwrap();
            let op = eng.state.cluster.alloc_op();
            rdma_put(
                &mut eng,
                0,
                PutReq {
                    target: 1,
                    dst: RdmaTarget::Phys(addr),
                    data: vec![0u8; size as usize],
                    op,
                    remote_tag: None,
                    ttl: 2,
                    class: FaultClass::Request,
                },
            );
            eng.run();
            eng.state.log[0].0
        };
        let small = run_one(8);
        let big = run_one(65_536);
        assert!(big > small * 10, "{small} vs {big}");
    }
}
