//! Descriptor rings: the unified submission/completion issue path.
//!
//! Real NICs do not take one doorbell per operation. The initiator posts
//! descriptors into a bounded submission ring and rings the doorbell once
//! per *batch*; the NIC likewise coalesces completions and raises one
//! moderated interrupt for many finished descriptors. This module models
//! that shape once, so every layer that used to batch ad hoc (photon's
//! per-op sends, `parcel-rt`'s bespoke coalescer) issues through the same
//! abstraction:
//!
//! * [`Ring`] — one bounded per-peer ring: descriptors accumulate until a
//!   batch-size, byte-budget, or occupancy limit forces a flush
//!   ([`PushOutcome::Flush`]), or until a caller-scheduled doorbell/
//!   moderation timer fires. Timers are invalidated by *epoch*: every
//!   [`Ring::drain`] bumps the epoch, so a timer armed against a ring that
//!   has since flushed finds a stale epoch and does nothing — exactly the
//!   arm-once/flush-cancels semantics a real moderation timer has, without
//!   any event cancellation machinery.
//! * [`RingSet`] — the per-(locality, peer) collection, deterministic
//!   iteration order, with pooled occupancy/doorbell/coalesce statistics
//!   and stuck-descriptor snapshots for quiescence reports.
//!
//! The ring layer is pure bookkeeping: it never touches the engine. Callers
//! (photon, parcel-rt) schedule the doorbell/moderation events on their own
//! lane and drain when they fire, which keeps the sharded engine's
//! lane-aliasing contract intact.

use crate::adaptive::{AdaptiveRing, RingController, RingDecision};
use crate::nic::LocalityId;
use crate::telemetry;
use crate::time::Time;
use std::collections::BTreeMap;

/// Configuration of the descriptor-ring issue path.
///
/// `None` at the embedding layer (photon/parcel-rt) means rings are off and
/// every operation is its own doorbell — the pre-ring schedules, kept
/// bit-identical for the golden trace pins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingConfig {
    /// Bounded ring occupancy, in descriptors. A push that fills the ring
    /// forces a flush regardless of the batch threshold.
    pub depth: usize,
    /// Descriptor count that rings the doorbell (submission batch size).
    pub doorbell_batch: usize,
    /// Longest a partially filled submission ring waits before ringing its
    /// doorbell anyway.
    pub doorbell_delay: Time,
    /// Completion-coalescing moderation window: completions buffer at most
    /// this long before the coalesced interrupt fires.
    pub moderation: Time,
    /// Byte budget per batch: a push that brings buffered payload bytes to
    /// or above this flushes, bounding added latency for bulk traffic.
    pub max_bytes: u32,
    /// Occupancy-driven AIMD adjustment of the effective doorbell batch
    /// (see [`RingController`]). `None` (the default) pins the batch at
    /// `doorbell_batch` — the static schedules the golden pins cover.
    pub adaptive: Option<AdaptiveRing>,
}

impl Default for RingConfig {
    fn default() -> RingConfig {
        RingConfig {
            depth: 256,
            doorbell_batch: 16,
            doorbell_delay: Time::from_us(5),
            moderation: Time::from_us(1),
            max_bytes: 8192,
            adaptive: None,
        }
    }
}

/// One posted descriptor: the payload plus the accounting the ring keeps.
#[derive(Clone, Debug)]
pub struct Desc<T> {
    /// The operation being carried (a request struct, a parcel, …).
    pub item: T,
    /// Wire-relevant payload size, for the byte budget.
    pub bytes: u32,
    /// Human-readable descriptor kind, for stuck-descriptor reports.
    pub kind: &'static str,
    /// When the descriptor was posted (for age reporting).
    pub enqueued: Time,
}

/// What a [`Ring::push`] asks its caller to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// A flush condition hit (batch size, byte budget, or full ring):
    /// drain now and issue the batch under one doorbell.
    Flush,
    /// First descriptor of a fresh batch: schedule the doorbell/moderation
    /// timer against this epoch. A later drain invalidates it.
    Armed(u64),
    /// Buffered behind an already-armed timer; nothing to do.
    Buffered,
}

/// Per-ring counters (doorbells, descriptors, coalescing win, high water).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Doorbell events rung (one per drain).
    pub doorbells: u64,
    /// Descriptors that passed through the ring.
    pub descs: u64,
    /// Descriptors that shared a doorbell with an earlier one — the saved
    /// per-op events (`descs - doorbells` over non-empty drains).
    pub coalesced: u64,
    /// Highest occupancy ever observed.
    pub max_occupancy: usize,
}

impl RingStats {
    fn absorb(&mut self, other: &RingStats) {
        self.doorbells += other.doorbells;
        self.descs += other.descs;
        self.coalesced += other.coalesced;
        self.max_occupancy = self.max_occupancy.max(other.max_occupancy);
    }
}

/// A stuck-descriptor report line (quiescence diagnostics).
#[derive(Clone, Copy, Debug)]
pub struct DescSnapshot {
    /// The peer the ring points at.
    pub peer: LocalityId,
    /// Descriptor kind (`"put"`, `"amo"`, `"parcel"`, …).
    pub kind: &'static str,
    /// Payload bytes.
    pub bytes: u32,
    /// How long the descriptor has been waiting.
    pub age: Time,
}

impl DescSnapshot {
    /// Render for a quiescence-failure message.
    pub fn render(&self) -> String {
        format!(
            "{} desc peer={} bytes={} age={}",
            self.kind, self.peer, self.bytes, self.age
        )
    }
}

/// One bounded submission/completion ring toward a single peer.
///
/// Storage is a fixed `depth`-slot buffer addressed by free-running
/// head/tail counters (`slot = counter % depth`), so slot indices genuinely
/// wrap — the proptests drive billions of pushes through a tiny ring to
/// prove occupancy accounting survives wraparound.
#[derive(Debug)]
pub struct Ring<T> {
    cfg: RingConfig,
    slots: Vec<Option<Desc<T>>>,
    /// Pop cursor (free-running; wraps via `% depth`).
    head: u64,
    /// Push cursor (free-running; wraps via `% depth`).
    tail: u64,
    /// Buffered payload bytes.
    bytes: u64,
    /// Bumped on every drain; stale timers compare epochs and stand down.
    epoch: u64,
    /// The AIMD doorbell controller, when [`RingConfig::adaptive`] is set.
    ctrl: Option<RingController>,
    stats: RingStats,
}

impl<T> Ring<T> {
    /// An empty ring.
    pub fn new(cfg: RingConfig) -> Ring<T> {
        let depth = cfg.depth.max(1);
        let mut slots = Vec::with_capacity(depth);
        slots.resize_with(depth, || None);
        Ring {
            ctrl: cfg
                .adaptive
                .map(|a| RingController::new(a, cfg.doorbell_batch as u32)),
            cfg,
            slots,
            head: 0,
            tail: 0,
            bytes: 0,
            epoch: 0,
            stats: RingStats::default(),
        }
    }

    /// Buffered descriptor count.
    pub fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Buffered payload bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The current batch epoch (see [`Ring::timer_due`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> RingStats {
        self.stats
    }

    /// The flush threshold currently in force: the AIMD controller's
    /// effective batch when adaptive, the configured static batch
    /// otherwise.
    pub fn eff_batch(&self) -> usize {
        self.ctrl
            .as_ref()
            .map_or(self.cfg.doorbell_batch, |c| c.eff_batch() as usize)
    }

    /// The doorbell-timer delay currently in force. The adaptive
    /// controller scales the configured delay with its effective batch
    /// (a small batch should also flush sooner), never above the
    /// configured `doorbell_delay`.
    pub fn effective_delay(&self) -> Time {
        match &self.ctrl {
            Some(c) => {
                let base = self.cfg.doorbell_batch.max(1) as u64;
                let scaled = self.cfg.doorbell_delay.ps() * u64::from(c.eff_batch()) / base;
                Time::from_ps(scaled.min(self.cfg.doorbell_delay.ps())).max(Time::from_ps(1))
            }
            None => self.cfg.doorbell_delay,
        }
    }

    /// The AIMD controller's state, when adaptive.
    pub fn controller(&self) -> Option<&RingController> {
        self.ctrl.as_ref()
    }

    /// Post one descriptor. Returns what the caller must do: flush now,
    /// arm the timer for the returned epoch, or nothing.
    pub fn push(&mut self, desc: Desc<T>) -> PushOutcome {
        debug_assert!(self.len() < self.slots.len(), "ring overfull");
        let was_empty = self.is_empty();
        self.bytes += desc.bytes as u64;
        let slot = (self.tail % self.slots.len() as u64) as usize;
        self.slots[slot] = Some(desc);
        self.tail += 1;
        let occ = self.len();
        if occ > self.stats.max_occupancy {
            self.stats.max_occupancy = occ;
        }
        if occ >= self.eff_batch()
            || self.bytes >= self.cfg.max_bytes as u64
            || occ == self.slots.len()
        {
            PushOutcome::Flush
        } else if was_empty {
            PushOutcome::Armed(self.epoch)
        } else {
            PushOutcome::Buffered
        }
    }

    /// Does a timer armed against `epoch` still have work? True exactly
    /// when no drain has happened since the arm and descriptors remain.
    pub fn timer_due(&self, epoch: u64) -> bool {
        self.epoch == epoch && !self.is_empty()
    }

    /// Ring the doorbell: take every buffered descriptor, in post order,
    /// and invalidate any armed timer. Feeds the process-wide ring
    /// telemetry.
    pub fn drain(&mut self) -> Vec<Desc<T>> {
        let n = self.len();
        let eff = self.eff_batch();
        let mut out = Vec::with_capacity(n);
        while self.head != self.tail {
            let slot = (self.head % self.slots.len() as u64) as usize;
            let desc = self.slots[slot].take().expect("occupied ring slot");
            self.head += 1;
            out.push(desc);
        }
        self.bytes = 0;
        self.epoch += 1;
        if !out.is_empty() {
            self.stats.doorbells += 1;
            self.stats.descs += out.len() as u64;
            self.stats.coalesced += out.len() as u64 - 1;
            telemetry::record_ring(1, out.len() as u64, out.len() as u64 - 1);
            if let Some(c) = self.ctrl.as_mut() {
                // Infer the flush cause from occupancy: a drain at or past
                // the effective batch was producer-forced (raise); anything
                // shorter was a timer/byte-budget flush (candidate lower).
                // Occupancy at drain time is a pure function of the
                // simulated schedule, so the AIMD walk is deterministic.
                match c.on_flush(n as u32, n < eff) {
                    RingDecision::Raised => telemetry::record_doorbell_adapt(1, 0),
                    RingDecision::Lowered => telemetry::record_doorbell_adapt(0, 1),
                    RingDecision::Held => {}
                }
            }
        }
        out
    }

    /// Snapshot every waiting descriptor (post order) for stuck reports.
    pub fn snapshots(&self, peer: LocalityId, now: Time) -> Vec<DescSnapshot> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = self.head;
        while cur != self.tail {
            let slot = (cur % self.slots.len() as u64) as usize;
            let d = self.slots[slot].as_ref().expect("occupied ring slot");
            out.push(DescSnapshot {
                peer,
                kind: d.kind,
                bytes: d.bytes,
                age: now - d.enqueued,
            });
            cur += 1;
        }
        out
    }
}

/// The per-peer ring collection one locality owns.
///
/// Rings materialize lazily per peer and iterate in peer order, so every
/// walk (drain-all, snapshots, stats) is deterministic.
#[derive(Debug)]
pub struct RingSet<T> {
    cfg: RingConfig,
    rings: BTreeMap<LocalityId, Ring<T>>,
}

impl<T> RingSet<T> {
    /// An empty set; rings appear on first use.
    pub fn new(cfg: RingConfig) -> RingSet<T> {
        RingSet {
            cfg,
            rings: BTreeMap::new(),
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> RingConfig {
        self.cfg
    }

    /// The ring toward `peer`, created on first use.
    pub fn ring(&mut self, peer: LocalityId) -> &mut Ring<T> {
        let cfg = self.cfg;
        self.rings.entry(peer).or_insert_with(|| Ring::new(cfg))
    }

    /// Post a descriptor toward `peer`.
    pub fn push(&mut self, peer: LocalityId, desc: Desc<T>) -> PushOutcome {
        self.ring(peer).push(desc)
    }

    /// Drain the ring toward `peer` (empty vec if none exists).
    pub fn drain(&mut self, peer: LocalityId) -> Vec<Desc<T>> {
        match self.rings.get_mut(&peer) {
            Some(r) => r.drain(),
            None => Vec::new(),
        }
    }

    /// Is a timer armed against (`peer`, `epoch`) still live?
    pub fn timer_due(&self, peer: LocalityId, epoch: u64) -> bool {
        self.rings.get(&peer).is_some_and(|r| r.timer_due(epoch))
    }

    /// Total buffered descriptors across all peers.
    pub fn occupancy(&self) -> usize {
        self.rings.values().map(Ring::len).sum()
    }

    /// True when every ring is drained.
    pub fn is_empty(&self) -> bool {
        self.rings.values().all(Ring::is_empty)
    }

    /// Peers with a non-empty ring, in order (for drain-all sweeps).
    pub fn busy_peers(&self) -> Vec<LocalityId> {
        self.rings
            .iter()
            .filter(|(_, r)| !r.is_empty())
            .map(|(&p, _)| p)
            .collect()
    }

    /// Every waiting descriptor across all peers, peer-then-post order.
    pub fn snapshots(&self, now: Time) -> Vec<DescSnapshot> {
        let mut out = Vec::new();
        for (&peer, ring) in &self.rings {
            out.extend(ring.snapshots(peer, now));
        }
        out
    }

    /// Counters pooled over every ring in the set.
    pub fn stats(&self) -> RingStats {
        let mut total = RingStats::default();
        for ring in self.rings.values() {
            total.absorb(&ring.stats());
        }
        total
    }

    /// The doorbell-timer delay in force toward `peer` (the configured
    /// static delay until the ring materializes).
    pub fn effective_delay(&self, peer: LocalityId) -> Time {
        self.rings
            .get(&peer)
            .map_or(self.cfg.doorbell_delay, Ring::effective_delay)
    }

    /// Per-peer effective doorbell batch, in peer order — the controller
    /// state a quiescence report renders. Empty when adaptive is off.
    pub fn eff_batches(&self) -> Vec<(LocalityId, usize)> {
        self.rings
            .iter()
            .filter(|(_, r)| r.controller().is_some())
            .map(|(&p, r)| (p, r.eff_batch()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(depth: usize, batch: usize, max_bytes: u32) -> RingConfig {
        RingConfig {
            depth,
            doorbell_batch: batch,
            max_bytes,
            ..RingConfig::default()
        }
    }

    fn desc(tag: u32, bytes: u32) -> Desc<u32> {
        Desc {
            item: tag,
            bytes,
            kind: "test",
            enqueued: Time::ZERO,
        }
    }

    #[test]
    fn batch_threshold_flushes() {
        let mut r: Ring<u32> = Ring::new(cfg(8, 3, u32::MAX));
        assert_eq!(r.push(desc(0, 1)), PushOutcome::Armed(0));
        assert_eq!(r.push(desc(1, 1)), PushOutcome::Buffered);
        assert_eq!(r.push(desc(2, 1)), PushOutcome::Flush);
        let batch: Vec<u32> = r.drain().into_iter().map(|d| d.item).collect();
        assert_eq!(batch, vec![0, 1, 2]);
        assert!(r.is_empty());
    }

    #[test]
    fn byte_budget_flushes() {
        let mut r: Ring<u32> = Ring::new(cfg(8, 100, 64));
        assert_eq!(r.push(desc(0, 32)), PushOutcome::Armed(0));
        assert_eq!(r.push(desc(1, 32)), PushOutcome::Flush);
    }

    #[test]
    fn full_ring_flushes_even_below_batch() {
        let mut r: Ring<u32> = Ring::new(cfg(2, 100, u32::MAX));
        assert_eq!(r.push(desc(0, 1)), PushOutcome::Armed(0));
        assert_eq!(r.push(desc(1, 1)), PushOutcome::Flush);
    }

    #[test]
    fn drain_invalidates_timer_epoch() {
        let mut r: Ring<u32> = Ring::new(cfg(8, 3, u32::MAX));
        let PushOutcome::Armed(epoch) = r.push(desc(0, 1)) else {
            panic!("expected Armed");
        };
        assert!(r.timer_due(epoch));
        r.push(desc(1, 1));
        r.push(desc(2, 1)); // Flush threshold.
        r.drain();
        assert!(!r.timer_due(epoch), "flushed batch must cancel its timer");
        // The next batch arms a *new* epoch.
        let PushOutcome::Armed(e2) = r.push(desc(3, 1)) else {
            panic!("expected Armed");
        };
        assert_ne!(e2, epoch);
        assert!(r.timer_due(e2));
    }

    #[test]
    fn wraparound_preserves_fifo_order() {
        let mut r: Ring<u32> = Ring::new(cfg(4, 3, u32::MAX));
        let mut next = 0u32;
        for _ in 0..100 {
            r.push(desc(next, 1));
            r.push(desc(next + 1, 1));
            r.push(desc(next + 2, 1));
            let batch: Vec<u32> = r.drain().into_iter().map(|d| d.item).collect();
            assert_eq!(batch, vec![next, next + 1, next + 2]);
            next += 3;
        }
        assert_eq!(r.stats().doorbells, 100);
        assert_eq!(r.stats().descs, 300);
        assert_eq!(r.stats().coalesced, 200);
        assert_eq!(r.stats().max_occupancy, 3);
    }

    #[test]
    fn snapshots_report_age_and_kind() {
        let mut r: Ring<u32> = Ring::new(cfg(8, 100, u32::MAX));
        r.push(Desc {
            item: 7,
            bytes: 48,
            kind: "parcel",
            enqueued: Time::from_ns(100),
        });
        let snaps = r.snapshots(3, Time::from_ns(350));
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].kind, "parcel");
        assert_eq!(snaps[0].bytes, 48);
        assert_eq!(snaps[0].age, Time::from_ns(250));
        assert!(snaps[0].render().contains("peer=3"));
    }

    #[test]
    fn ringset_is_per_peer_and_deterministic() {
        let mut set: RingSet<u32> = RingSet::new(cfg(8, 100, u32::MAX));
        set.push(5, desc(50, 1));
        set.push(2, desc(20, 1));
        set.push(5, desc(51, 1));
        assert_eq!(set.occupancy(), 3);
        assert_eq!(set.busy_peers(), vec![2, 5]);
        let snaps = set.snapshots(Time::ZERO);
        assert_eq!(
            snaps.iter().map(|s| s.peer).collect::<Vec<_>>(),
            vec![2, 5, 5]
        );
        let five: Vec<u32> = set.drain(5).into_iter().map(|d| d.item).collect();
        assert_eq!(five, vec![50, 51]);
        assert!(!set.is_empty());
        set.drain(2);
        assert!(set.is_empty());
        assert_eq!(set.stats().doorbells, 2);
        assert_eq!(set.stats().descs, 3);
    }

    #[test]
    fn empty_drain_rings_no_doorbell() {
        let mut r: Ring<u32> = Ring::new(cfg(4, 2, u32::MAX));
        let before = r.epoch();
        assert!(r.drain().is_empty());
        assert_eq!(r.stats().doorbells, 0);
        // Even an empty drain bumps the epoch so a stray timer stands down.
        assert_eq!(r.epoch(), before + 1);
    }

    #[test]
    fn defaults_mirror_the_old_coalescer() {
        let c = RingConfig::default();
        assert_eq!(c.doorbell_batch, 16);
        assert_eq!(c.max_bytes, 8192);
        assert_eq!(c.doorbell_delay, Time::from_us(5));
        assert!(c.depth >= c.doorbell_batch);
        assert_eq!(c.adaptive, None, "adaptive must default off");
    }

    #[test]
    fn adaptive_ring_walks_its_batch_with_load() {
        let acfg = AdaptiveRing {
            floor: 2,
            ceil: 32,
            add: 4,
            ewma_shift: 2,
        };
        let mut r: Ring<u32> = Ring::new(RingConfig {
            doorbell_batch: 8,
            adaptive: Some(acfg),
            ..RingConfig::default()
        });
        assert_eq!(r.eff_batch(), 8);
        // Sustained full batches raise the threshold toward the ceiling…
        for round in 0..20u32 {
            let mut flushed = false;
            for i in 0..r.eff_batch() as u32 {
                flushed = r.push(desc(round * 100 + i, 1)) == PushOutcome::Flush;
            }
            assert!(flushed, "filling the effective batch must flush");
            r.drain();
        }
        assert_eq!(r.eff_batch(), 32);
        assert!(r.effective_delay() >= RingConfig::default().doorbell_delay);
        // …and trickle flushes (timer path: drain below the batch) walk it
        // back down to the floor, shrinking the timer delay with it.
        for i in 0..40u32 {
            r.push(desc(1000 + i, 1));
            r.drain();
        }
        assert_eq!(r.eff_batch(), 2);
        assert!(r.effective_delay() < RingConfig::default().doorbell_delay);
        assert!(r.controller().is_some());
    }

    #[test]
    fn static_ring_ignores_controller_paths() {
        let mut r: Ring<u32> = Ring::new(cfg(8, 3, u32::MAX));
        assert_eq!(r.eff_batch(), 3);
        assert_eq!(r.effective_delay(), r.cfg.doorbell_delay);
        assert!(r.controller().is_none());
        r.push(desc(0, 1));
        r.drain();
        assert_eq!(r.eff_batch(), 3, "static batch never moves");
    }
}
