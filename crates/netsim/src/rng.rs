//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible from a seed, so it carries
//! its own small PRNG rather than depending on an external crate whose
//! algorithm could change between versions. Two generators are provided:
//!
//! * [`SplitMix64`] — the canonical seeding/stream-splitting generator;
//! * [`Xoshiro256`] — xoshiro256\*\*, the general-purpose generator used for
//!   workload randomness (good statistical quality, 4×64-bit state).

/// SplitMix64: a tiny 64-bit generator used for seeding and key mixing.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Stateless SplitMix64 finalizer: a high-quality 64→64-bit mixing function.
///
/// Used wherever a deterministic hash of an integer is needed (GUPS index
/// streams, trace hashing) without carrying generator state around.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256\*\* by Blackman & Vigna: the simulator's workhorse generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64, per the xoshiro authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = sm.next_u64();
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway for hand-built states.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased and branch-light.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// A deterministic sampler for Zipf-distributed ranks in `[0, n)`.
///
/// Used by the skewed-access workloads (experiment E8). Implements the
/// standard inverse-CDF-by-binary-search method over precomputed cumulative
/// weights; construction is O(n), sampling O(log n).
///
/// ```
/// use netsim::rng::{Xoshiro256, Zipf};
///
/// let zipf = Zipf::new(100, 0.99);
/// let mut rng = Xoshiro256::seed_from_u64(7);
/// let hot = (0..1000).filter(|_| zipf.sample(&mut rng) == 0).count();
/// assert!(hot > 50, "rank 0 should dominate: {hot}");
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with skew exponent `theta`
    /// (`theta = 0` is uniform; ~0.99 is the YCSB default "heavy skew").
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank using randomness from `rng`.
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let u = rng.next_f64();
        // partition_point: first index whose cdf value exceeds u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 (from the public-domain C code).
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds overlap: {same}");
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn");
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_inclusive_endpoints() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.range_inclusive(3, 6);
            assert!((3..=6).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 6;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // With overwhelming probability the shuffle moved something.
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = Xoshiro256::seed_from_u64(17);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "counts not uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = Xoshiro256::seed_from_u64(19);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Under theta=0.99 the top-10 ranks absorb a large fraction of draws.
        assert!(head > n / 4, "head draws {head} of {n}");
    }

    #[test]
    fn mix64_is_injective_on_small_domain() {
        let mut outs: Vec<u64> = (0..10_000u64).map(mix64).collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 10_000);
    }
}
