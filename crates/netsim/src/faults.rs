//! Deterministic network fault injection.
//!
//! Every non-loopback message the cluster moves can be routed through a
//! [`FaultPlane`]: a seed-driven adversary that drops, duplicates, delays,
//! and corrupts traffic according to a declarative [`FaultPlan`]. Two
//! properties make it usable as a *test* instrument rather than a noise
//! generator:
//!
//! 1. **Reproducibility.** The plane owns a private [`Xoshiro256`] stream
//!    seeded from `plan.seed`, independent of the engine's RNG. A chaos run
//!    is a pure function of `(engine seed, FaultPlan)` — rerunning it
//!    yields bit-identical schedules, counters, and trace hashes.
//! 2. **Pay-for-what-you-use.** A lossless plan (all rates zero, no
//!    windows) takes a draw-free early-out in [`FaultPlane::decide`], so
//!    installing it perturbs neither the engine RNG nor the event
//!    schedule: golden trace pins recorded without a fault plane must stay
//!    bit-for-bit identical with a lossless one installed (see
//!    `crates/core/tests/faults_shadow.rs`).
//!
//! Not every message is fair game. The GAS/photon stack retransmits
//! *requests* (deadline sweep + bounce) and tolerates duplicate
//! *completions* (generation-checked [`crate::optable::OpTable`] ids), but
//! migration-protocol control traffic and photon rendezvous control
//! messages have no retransmit path — dropping them would wedge the run
//! rather than exercise recovery. [`FaultClass`] encodes which torture a
//! message can survive; senders label their traffic, the plane respects
//! the label.

use crate::nic::LocalityId;
use crate::rng::Xoshiro256;
use crate::time::Time;

/// How much abuse a message can survive, declared by its sender.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// Protocol traffic with no recovery path (migration/free control
    /// messages, photon rendezvous control, loopback). Never touched.
    Bypass,
    /// A retried request (RDMA put/get issue + forwarding hops, SwPut /
    /// SwGet / DirQuery). May be dropped, duplicated, or delayed; a
    /// corruption draw *degrades to a drop*, modeling a link-level CRC
    /// discard — one-sided data has no end-to-end checksum, so delivering
    /// it corrupted would silently poison memory.
    Request,
    /// A completion (PutDone / GetDone / Nack, get data response,
    /// SwPutAck / SwGetReply / SwRetry / DirReply). May be dropped,
    /// duplicated, or delayed; the initiator's deadline/retry machinery
    /// and generation-checked op table absorb the abuse.
    Completion,
    /// Checksummed payload bytes (parcel rendezvous data). May be delayed
    /// or *delivered corrupted* — the parcel checksum added in
    /// `parcel-rt::codec` detects it at decode. Never dropped or
    /// duplicated: photon's send path has no payload retransmit.
    Payload,
}

impl FaultClass {
    fn faultable(self) -> bool {
        !matches!(self, FaultClass::Bypass)
    }
}

/// Per-link fault probabilities and delay-spike distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRates {
    /// Probability a message is silently dropped.
    pub drop: f64,
    /// Probability a message is delivered twice (second copy re-delayed).
    pub dup: f64,
    /// Probability a message's bytes are corrupted in flight.
    pub corrupt: f64,
    /// Probability a message suffers an extra delay spike.
    pub delay_p: f64,
    /// Minimum delay spike (ns).
    pub delay_min_ns: u64,
    /// Maximum delay spike (ns).
    pub delay_max_ns: u64,
}

impl FaultRates {
    /// All-zero rates: the plane never draws for this link.
    pub const fn lossless() -> FaultRates {
        FaultRates {
            drop: 0.0,
            dup: 0.0,
            corrupt: 0.0,
            delay_p: 0.0,
            delay_min_ns: 0,
            delay_max_ns: 0,
        }
    }

    /// Uniform drop/dup/corrupt at `p` each, no delay spikes.
    pub const fn uniform(p: f64) -> FaultRates {
        FaultRates {
            drop: p,
            dup: p,
            corrupt: p,
            delay_p: 0.0,
            delay_min_ns: 0,
            delay_max_ns: 0,
        }
    }

    fn is_lossless(&self) -> bool {
        self.drop == 0.0 && self.dup == 0.0 && self.corrupt == 0.0 && self.delay_p == 0.0
    }
}

/// A scheduled total outage of one directed link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFlap {
    /// Source locality of the flapping link.
    pub src: LocalityId,
    /// Destination locality of the flapping link.
    pub dst: LocalityId,
    /// Window start (inclusive).
    pub from: Time,
    /// Window end (exclusive).
    pub to: Time,
}

/// A scheduled partition: traffic crossing between `group_a` and its
/// complement is dropped for the window's duration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Window start (inclusive).
    pub from: Time,
    /// Window end (exclusive).
    pub to: Time,
    /// One side of the cut; everything else is the other side.
    pub group_a: Vec<LocalityId>,
}

/// Declarative description of a chaos run: seed + rates + scheduled events.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the plane's private RNG stream.
    pub seed: u64,
    /// Default rates for every directed link.
    pub rates: FaultRates,
    /// Per-link overrides, replacing `rates` for that (src, dst) pair.
    pub link_rates: Vec<(LocalityId, LocalityId, FaultRates)>,
    /// Scheduled single-link outages.
    pub flaps: Vec<LinkFlap>,
    /// Scheduled cluster partitions.
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A plan that injects nothing: installing it must not perturb any
    /// schedule (verified by the shadow trace pins).
    pub fn lossless(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: FaultRates::lossless(),
            link_rates: Vec::new(),
            flaps: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Uniform drop/dup/corrupt at `p` on every link.
    pub fn uniform(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: FaultRates::uniform(p),
            link_rates: Vec::new(),
            flaps: Vec::new(),
            partitions: Vec::new(),
        }
    }
}

/// Injection counters, split by what actually happened.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faultable messages that passed through untouched.
    pub delivered: u64,
    /// Messages dropped by a rate draw.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages hit by a delay spike.
    pub delayed: u64,
    /// Payload messages delivered with corrupted bytes.
    pub corrupted: u64,
    /// Request-class corruption draws degraded to link-CRC drops.
    pub corrupt_drops: u64,
    /// Messages dropped inside a link-flap window.
    pub flap_drops: u64,
    /// Messages dropped crossing an active partition.
    pub partition_drops: u64,
}

impl FaultStats {
    /// Total messages the plane removed from the network.
    pub fn total_drops(&self) -> u64 {
        self.dropped + self.corrupt_drops + self.flap_drops + self.partition_drops
    }
}

/// What the plane decided for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Deliver, possibly late / twice / corrupted.
    Deliver {
        /// Extra latency to add to the scheduled arrival.
        extra_delay: Time,
        /// Deliver a second copy (delayed by a fresh spike draw).
        duplicate: bool,
        /// Nonzero ⇒ apply [`apply_corruption`] to the payload bytes.
        corrupt_mask: u64,
    },
    /// The message vanishes.
    Drop,
}

impl FaultVerdict {
    /// The verdict for untouched traffic.
    pub const CLEAN: FaultVerdict = FaultVerdict::Deliver {
        extra_delay: Time::ZERO,
        duplicate: false,
        corrupt_mask: 0,
    };
}

/// The live injector: a plan plus its private RNG stream and counters.
#[derive(Clone, Debug)]
pub struct FaultPlane {
    /// The installed plan.
    pub plan: FaultPlan,
    /// Injection counters.
    pub stats: FaultStats,
    rng: Xoshiro256,
    lossless: bool,
}

impl FaultPlane {
    /// Build the injector for `plan`.
    pub fn new(plan: FaultPlan) -> FaultPlane {
        let rng = Xoshiro256::seed_from_u64(plan.seed);
        let lossless = plan.rates.is_lossless()
            && plan.link_rates.iter().all(|(_, _, r)| r.is_lossless())
            && plan.flaps.is_empty()
            && plan.partitions.is_empty();
        FaultPlane {
            plan,
            stats: FaultStats::default(),
            rng,
            lossless,
        }
    }

    fn rates_for(&self, src: LocalityId, dst: LocalityId) -> FaultRates {
        for &(s, d, r) in &self.plan.link_rates {
            if s == src && d == dst {
                return r;
            }
        }
        self.plan.rates
    }

    /// Is (src, dst) severed by a flap or partition at `now`?
    fn window_drop(&self, now: Time, src: LocalityId, dst: LocalityId) -> Option<bool> {
        for f in &self.plan.flaps {
            if f.src == src && f.dst == dst && f.from <= now && now < f.to {
                return Some(true); // flap
            }
        }
        for p in &self.plan.partitions {
            if p.from <= now && now < p.to {
                let a_src = p.group_a.contains(&src);
                let a_dst = p.group_a.contains(&dst);
                if a_src != a_dst {
                    return Some(false); // partition
                }
            }
        }
        None
    }

    /// Decide the fate of one message.
    ///
    /// `can_dup` is false for messages the caller cannot clone (user
    /// messages carry an opaque `Protocol::Msg`); the dup draw is still
    /// made so the stream is independent of payload type, but the verdict
    /// suppresses the duplicate.
    pub fn decide(
        &mut self,
        now: Time,
        src: LocalityId,
        dst: LocalityId,
        class: FaultClass,
        can_dup: bool,
    ) -> FaultVerdict {
        if !class.faultable() {
            return FaultVerdict::CLEAN;
        }
        // Draw-free early-out: a lossless plan must not advance the
        // stream, so installing it is schedule-invisible.
        if self.lossless {
            self.stats.delivered += 1;
            return FaultVerdict::CLEAN;
        }
        if let Some(flap) = self.window_drop(now, src, dst) {
            if flap {
                self.stats.flap_drops += 1;
            } else {
                self.stats.partition_drops += 1;
            }
            return FaultVerdict::Drop;
        }
        let rates = self.rates_for(src, dst);
        if rates.is_lossless() {
            self.stats.delivered += 1;
            return FaultVerdict::CLEAN;
        }

        // Fixed draw order per message keeps the stream aligned across
        // verdicts: drop, corrupt, dup, delay_p (+ spike magnitude).
        let drop = self.rng.next_f64() < rates.drop;
        let corrupt = self.rng.next_f64() < rates.corrupt;
        let dup = self.rng.next_f64() < rates.dup;
        let delay = self.rng.next_f64() < rates.delay_p;
        let extra_delay = if delay && rates.delay_max_ns > 0 {
            Time::from_ns(
                self.rng
                    .range_inclusive(rates.delay_min_ns, rates.delay_max_ns),
            )
        } else {
            Time::ZERO
        };
        let corrupt_mask = if corrupt { self.rng.next_u64() | 1 } else { 0 };

        // Payload has no retransmit: never drop/dup it, but corruption is
        // delivered (the end-to-end checksum is the detector under test).
        if class == FaultClass::Payload {
            if delay {
                self.stats.delayed += 1;
            }
            if corrupt {
                self.stats.corrupted += 1;
            } else if extra_delay == Time::ZERO {
                self.stats.delivered += 1;
            }
            return FaultVerdict::Deliver {
                extra_delay,
                duplicate: false,
                corrupt_mask,
            };
        }

        if drop {
            self.stats.dropped += 1;
            return FaultVerdict::Drop;
        }
        // One-sided request/completion data has no end-to-end checksum;
        // model link-CRC discard instead of delivering poisoned bytes.
        if corrupt {
            self.stats.corrupt_drops += 1;
            return FaultVerdict::Drop;
        }
        let duplicate = dup && can_dup;
        if duplicate {
            self.stats.duplicated += 1;
        }
        if delay {
            self.stats.delayed += 1;
        }
        if !duplicate && extra_delay == Time::ZERO {
            self.stats.delivered += 1;
        }
        FaultVerdict::Deliver {
            extra_delay,
            duplicate,
            corrupt_mask,
        }
    }

    /// Permanently sever every link into and out of `dead` from `from`
    /// onward — the membership plane's crash primitive. Installs
    /// never-ending [`LinkFlap`] windows in both directions against each of
    /// the `n` localities, so every faultable message touching `dead` is
    /// dropped before any rate draw. Traffic between surviving localities
    /// keeps its exact verdict stream: flap checks precede (and never
    /// consume) RNG draws, and links whose rates are lossless still take
    /// the draw-free early-out.
    ///
    /// [`FaultClass::Bypass`] traffic still bypasses the plane; a crashed
    /// locality must discard it at its own message handler.
    pub fn sever_locality(&mut self, dead: LocalityId, n: usize, from: Time) {
        for peer in 0..n as LocalityId {
            if peer == dead {
                continue;
            }
            for (src, dst) in [(dead, peer), (peer, dead)] {
                self.plan.flaps.push(LinkFlap {
                    src,
                    dst,
                    from,
                    to: Time::MAX,
                });
            }
        }
        // The plan is no longer lossless; the early-out must not skip the
        // new flap windows.
        self.lossless = false;
    }

    /// Delay for a duplicate's second copy, drawn from the link's spike
    /// distribution (or a fixed 1 µs when the plan has no spikes) so the
    /// two copies never collapse onto the same instant.
    pub fn dup_delay(&mut self, src: LocalityId, dst: LocalityId) -> Time {
        let rates = self.rates_for(src, dst);
        if rates.delay_max_ns > 0 {
            Time::from_ns(
                self.rng
                    .range_inclusive(rates.delay_min_ns.max(1), rates.delay_max_ns),
            )
        } else {
            Time::from_us(1)
        }
    }
}

/// Deterministically flip one payload byte based on `mask` (as produced by
/// a corrupt verdict). No-op on empty payloads or a zero mask.
pub fn apply_corruption(data: &mut [u8], mask: u64) {
    if mask == 0 || data.is_empty() {
        return;
    }
    let idx = (mask as usize) % data.len();
    let flip = ((mask >> 8) as u8) | 1; // never a zero XOR
    data[idx] ^= flip;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(p: f64) -> FaultPlan {
        FaultPlan::uniform(7, p)
    }

    #[test]
    fn lossless_plan_is_draw_free_and_clean() {
        let mut fp = FaultPlane::new(FaultPlan::lossless(42));
        let mut witness = Xoshiro256::seed_from_u64(42);
        let expect = witness.next_u64();
        for i in 0..1000 {
            let v = fp.decide(Time::from_ns(i), 0, 1, FaultClass::Request, true);
            assert_eq!(v, FaultVerdict::CLEAN);
        }
        assert_eq!(fp.stats.total_drops(), 0);
        assert_eq!(fp.stats.delivered, 1000);
        // The private stream never advanced.
        assert_eq!(fp.rng.next_u64(), expect);
    }

    #[test]
    fn bypass_class_is_never_touched() {
        let mut fp = FaultPlane::new(plan(1.0));
        for i in 0..100 {
            let v = fp.decide(Time::from_ns(i), 0, 1, FaultClass::Bypass, true);
            assert_eq!(v, FaultVerdict::CLEAN);
        }
        assert_eq!(fp.stats.total_drops(), 0);
    }

    #[test]
    fn same_seed_same_verdict_stream() {
        let mut a = FaultPlane::new(plan(0.3));
        let mut b = FaultPlane::new(plan(0.3));
        for i in 0..2000 {
            let va = a.decide(Time::from_ns(i), 0, 1, FaultClass::Request, true);
            let vb = b.decide(Time::from_ns(i), 0, 1, FaultClass::Request, true);
            assert_eq!(va, vb);
        }
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.dropped > 0, "p=0.3 over 2000 draws must drop");
    }

    #[test]
    fn request_corruption_degrades_to_drop() {
        let rates = FaultRates {
            corrupt: 1.0,
            ..FaultRates::lossless()
        };
        let mut fp = FaultPlane::new(FaultPlan {
            rates,
            ..FaultPlan::lossless(9)
        });
        let v = fp.decide(Time::ZERO, 0, 1, FaultClass::Request, true);
        assert_eq!(v, FaultVerdict::Drop);
        assert_eq!(fp.stats.corrupt_drops, 1);
        assert_eq!(fp.stats.corrupted, 0);
    }

    #[test]
    fn payload_is_corrupted_but_never_dropped() {
        let rates = FaultRates {
            drop: 1.0,
            dup: 1.0,
            corrupt: 1.0,
            ..FaultRates::lossless()
        };
        let mut fp = FaultPlane::new(FaultPlan {
            rates,
            ..FaultPlan::lossless(9)
        });
        for _ in 0..50 {
            match fp.decide(Time::ZERO, 0, 1, FaultClass::Payload, true) {
                FaultVerdict::Deliver {
                    duplicate,
                    corrupt_mask,
                    ..
                } => {
                    assert!(!duplicate);
                    assert_ne!(corrupt_mask, 0);
                }
                FaultVerdict::Drop => panic!("payload must never be dropped"),
            }
        }
        assert_eq!(fp.stats.corrupted, 50);
        assert_eq!(fp.stats.total_drops(), 0);
    }

    #[test]
    fn flap_window_severs_only_its_link_and_window() {
        let mut fp = FaultPlane::new(FaultPlan {
            flaps: vec![LinkFlap {
                src: 0,
                dst: 1,
                from: Time::from_ns(100),
                to: Time::from_ns(200),
            }],
            ..FaultPlan::lossless(3)
        });
        assert_eq!(
            fp.decide(Time::from_ns(150), 0, 1, FaultClass::Request, true),
            FaultVerdict::Drop
        );
        assert_eq!(
            fp.decide(Time::from_ns(150), 1, 0, FaultClass::Request, true),
            FaultVerdict::CLEAN,
            "reverse direction unaffected"
        );
        assert_eq!(
            fp.decide(Time::from_ns(250), 0, 1, FaultClass::Request, true),
            FaultVerdict::CLEAN,
            "outside the window"
        );
        assert_eq!(fp.stats.flap_drops, 1);
    }

    #[test]
    fn sever_locality_blackholes_both_directions_forever() {
        let mut fp = FaultPlane::new(FaultPlan::lossless(42));
        let mut witness = Xoshiro256::seed_from_u64(42);
        let expect = witness.next_u64();
        fp.sever_locality(2, 4, Time::from_us(1));
        // Before the cut the links are alive.
        assert_eq!(
            fp.decide(Time::from_ns(10), 0, 2, FaultClass::Request, true),
            FaultVerdict::CLEAN
        );
        // After it, everything touching locality 2 is dropped...
        for t in [Time::from_us(1), Time::from_ms(5)] {
            assert_eq!(
                fp.decide(t, 0, 2, FaultClass::Request, true),
                FaultVerdict::Drop
            );
            assert_eq!(
                fp.decide(t, 2, 3, FaultClass::Completion, true),
                FaultVerdict::Drop
            );
        }
        // ...while survivor↔survivor traffic stays clean and draw-free.
        assert_eq!(
            fp.decide(Time::from_ms(5), 0, 1, FaultClass::Request, true),
            FaultVerdict::CLEAN
        );
        assert_eq!(
            fp.decide(Time::from_ms(5), 2, 2, FaultClass::Bypass, true),
            FaultVerdict::CLEAN,
            "bypass traffic is the crashed handler's problem, not the wire's"
        );
        assert_eq!(fp.stats.flap_drops, 4);
        assert_eq!(fp.rng.next_u64(), expect, "severing never consumes draws");
    }

    #[test]
    fn partition_severs_cross_group_traffic_both_ways() {
        let mut fp = FaultPlane::new(FaultPlan {
            partitions: vec![Partition {
                from: Time::ZERO,
                to: Time::from_us(1),
                group_a: vec![0, 1],
            }],
            ..FaultPlan::lossless(5)
        });
        assert_eq!(
            fp.decide(Time::from_ns(10), 0, 2, FaultClass::Request, true),
            FaultVerdict::Drop
        );
        assert_eq!(
            fp.decide(Time::from_ns(10), 2, 1, FaultClass::Completion, true),
            FaultVerdict::Drop
        );
        assert_eq!(
            fp.decide(Time::from_ns(10), 0, 1, FaultClass::Request, true),
            FaultVerdict::CLEAN,
            "intra-group traffic flows"
        );
        assert_eq!(fp.stats.partition_drops, 2);
    }

    #[test]
    fn link_override_replaces_default_rates() {
        let mut fp = FaultPlane::new(FaultPlan {
            rates: FaultRates {
                drop: 1.0,
                ..FaultRates::lossless()
            },
            link_rates: vec![(0, 1, FaultRates::lossless())],
            ..FaultPlan::lossless(11)
        });
        assert_eq!(
            fp.decide(Time::ZERO, 0, 1, FaultClass::Request, true),
            FaultVerdict::CLEAN,
            "override link is clean"
        );
        assert_eq!(
            fp.decide(Time::ZERO, 1, 0, FaultClass::Request, true),
            FaultVerdict::Drop,
            "default link drops"
        );
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let mut data = vec![0u8; 64];
        apply_corruption(&mut data, 0x1234_5678_9abc_def0);
        assert_eq!(data.iter().filter(|&&b| b != 0).count(), 1);
        // Deterministic: same mask, same flip.
        let mut again = vec![0u8; 64];
        apply_corruption(&mut again, 0x1234_5678_9abc_def0);
        assert_eq!(data, again);
        // Zero mask and empty payloads are no-ops.
        let mut clean = vec![1u8, 2, 3];
        apply_corruption(&mut clean, 0);
        assert_eq!(clean, vec![1, 2, 3]);
        apply_corruption(&mut [], 77);
    }

    #[test]
    fn dup_delay_is_never_zero() {
        let mut fp = FaultPlane::new(plan(0.5));
        for _ in 0..100 {
            assert!(fp.dup_delay(0, 1) > Time::ZERO);
        }
    }
}
