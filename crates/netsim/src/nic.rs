//! The simulated NIC.
//!
//! Each locality owns one NIC with a transmit port, a receive port, and —
//! the artifact this paper adds — a **virtual-address translation table**
//! ([`XlateTable`]). The table maps global-address-space *block keys* (the
//! GVA with its offset bits masked off; the GAS layer computes these) to
//! physical arena addresses. When the table holds an entry for an incoming
//! one-sided operation, the NIC translates and DMAs with **no CPU
//! involvement**; when the block has migrated away it may hold a
//! *forwarding entry* naming the new owner; otherwise the operation is
//! NACKed back to its initiator, which recovers through the home directory.
//!
//! Port timing: each port is a serial resource. Reserving it returns the
//! interval actually occupied, modeling injection/extraction contention —
//! this is what produces the bandwidth roll-off and message-rate ceilings in
//! experiments E3/E4.

use crate::lru::LruMap;
use crate::memory::PhysAddr;
use crate::time::Time;
use std::collections::HashMap;

/// Identifies a locality (a node of the simulated cluster).
pub type LocalityId = u32;

/// A live NIC translation-table entry: where a block's bytes sit in the
/// owner's arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XlateEntry {
    /// Physical base address of the block in this locality's arena.
    pub base: PhysAddr,
    /// Block length in bytes.
    pub len: u64,
    /// Generation number, bumped on every migration of the block. Lets the
    /// GAS layer discard stale NACK-triggered updates.
    pub generation: u32,
}

/// Outcome of a NIC translation lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Xlate {
    /// The block is resident here.
    Hit(XlateEntry),
    /// The block migrated; the NIC remembers where it went.
    Forward(LocalityId),
    /// Unknown block (never installed, evicted, or forward expired).
    Miss,
}

/// The NIC-resident translation table: a capacity-bounded LRU of live
/// entries plus an unbounded side table of forwarding tombstones.
///
/// Forwarding tombstones are small (16 B in hardware terms) and short-lived —
/// the GAS layer retires them once the home directory has quiesced — so they
/// are modeled outside the LRU capacity.
pub struct XlateTable {
    live: LruMap<u64, XlateEntry>,
    forwards: HashMap<u64, LocalityId>,
    // Per-entry hit telemetry (real NICs expose per-QP/per-entry counters;
    // load-balancing policies read and reset these).
    hits: HashMap<u64, u64>,
}

impl XlateTable {
    /// Create a table with space for `capacity` live entries.
    pub fn new(capacity: usize) -> XlateTable {
        XlateTable {
            live: LruMap::new(capacity),
            forwards: HashMap::new(),
            hits: HashMap::new(),
        }
    }

    /// Translate `block_key`. Touches LRU recency on hit.
    pub fn lookup(&mut self, block_key: u64) -> Xlate {
        if let Some(entry) = self.live.get(&block_key) {
            let e = *entry;
            *self.hits.entry(block_key).or_insert(0) += 1;
            return Xlate::Hit(e);
        }
        if let Some(&next) = self.forwards.get(&block_key) {
            return Xlate::Forward(next);
        }
        Xlate::Miss
    }

    /// Install (or refresh) a live entry. Returns `true` if an unrelated
    /// entry was evicted to make room (capacity pressure — experiment E6).
    pub fn install(&mut self, block_key: u64, entry: XlateEntry) -> bool {
        self.forwards.remove(&block_key);
        self.live.insert(block_key, entry).is_some()
    }

    /// Drop the live entry for `block_key`, leaving a forwarding tombstone
    /// pointing at `new_owner` (called on migration hand-off).
    pub fn retire_to_forward(&mut self, block_key: u64, new_owner: LocalityId) {
        self.live.remove(&block_key);
        self.forwards.insert(block_key, new_owner);
    }

    /// Remove any state (live or forward) for `block_key` (block freed, or
    /// forward tombstone expired).
    pub fn invalidate(&mut self, block_key: u64) {
        self.live.remove(&block_key);
        self.forwards.remove(&block_key);
        self.hits.remove(&block_key);
    }

    /// Drain the per-entry hit telemetry (counters reset to zero).
    /// Load-balancing policies poll this to find hot blocks.
    pub fn take_hit_telemetry(&mut self) -> HashMap<u64, u64> {
        std::mem::take(&mut self.hits)
    }

    /// Drop every live entry (a NIC reset / firmware fault). Forwarding
    /// tombstones survive (they live in the NIC's persistent route table in
    /// this model). Subsequent traffic misses and software reinstalls.
    pub fn flush_live(&mut self) {
        self.live.clear();
        self.hits.clear();
    }

    /// Number of live (non-forward) entries.
    pub fn live_entries(&self) -> usize {
        self.live.len()
    }

    /// Number of forwarding tombstones.
    pub fn forward_entries(&self) -> usize {
        self.forwards.len()
    }

    /// Peek a live entry without touching recency.
    pub fn peek(&self, block_key: u64) -> Option<&XlateEntry> {
        self.live.peek(&block_key)
    }
}

/// One locality's NIC: parallel tx/rx ports (hardware queue pairs) and the
/// translation table. Each port is a serial resource; a message occupies
/// the earliest-free port of its direction.
pub struct Nic {
    tx_free: Vec<Time>,
    rx_free: Vec<Time>,
    /// The network-managed translation state (the paper's contribution).
    pub xlate: XlateTable,
}

fn reserve(ports: &mut [Time], earliest: Time, dur: Time) -> (Time, Time) {
    let idx = ports
        .iter()
        .enumerate()
        .min_by_key(|&(i, &t)| (t, i))
        .map(|(i, _)| i)
        .expect("NIC with zero ports");
    let start = earliest.max(ports[idx]);
    let finish = start + dur;
    ports[idx] = finish;
    (start, finish)
}

impl Nic {
    /// A NIC with `ports` queue pairs per direction and an
    /// `xlate_capacity`-entry translation table.
    pub fn new(xlate_capacity: usize, ports: usize) -> Nic {
        assert!(ports >= 1, "NIC needs at least one port");
        Nic {
            tx_free: vec![Time::ZERO; ports],
            rx_free: vec![Time::ZERO; ports],
            xlate: XlateTable::new(xlate_capacity),
        }
    }

    /// Reserve a transmit port for `dur` starting no earlier than
    /// `earliest`; returns `(start, finish)` of the occupied interval.
    pub fn tx_reserve(&mut self, earliest: Time, dur: Time) -> (Time, Time) {
        reserve(&mut self.tx_free, earliest, dur)
    }

    /// Reserve a receive port, as [`Nic::tx_reserve`].
    pub fn rx_reserve(&mut self, earliest: Time, dur: Time) -> (Time, Time) {
        reserve(&mut self.rx_free, earliest, dur)
    }

    /// Earliest instant any transmit port is idle.
    pub fn tx_free_at(&self) -> Time {
        self.tx_free.iter().copied().min().unwrap_or(Time::ZERO)
    }

    /// Earliest instant any receive port is idle.
    pub fn rx_free_at(&self) -> Time {
        self.rx_free.iter().copied().min().unwrap_or(Time::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(base: u64, len: u64, generation: u32) -> XlateEntry {
        XlateEntry {
            base,
            len,
            generation,
        }
    }

    #[test]
    fn lookup_miss_then_hit() {
        let mut t = XlateTable::new(8);
        assert_eq!(t.lookup(42), Xlate::Miss);
        assert!(!t.install(42, entry(0x1000, 64, 1)));
        assert_eq!(t.lookup(42), Xlate::Hit(entry(0x1000, 64, 1)));
        assert_eq!(t.live_entries(), 1);
    }

    #[test]
    fn forward_tombstones() {
        let mut t = XlateTable::new(8);
        t.install(7, entry(0, 64, 1));
        t.retire_to_forward(7, 3);
        assert_eq!(t.lookup(7), Xlate::Forward(3));
        assert_eq!(t.live_entries(), 0);
        assert_eq!(t.forward_entries(), 1);
        // Re-installing (block migrated back) clears the tombstone.
        t.install(7, entry(0x40, 64, 3));
        assert_eq!(t.lookup(7), Xlate::Hit(entry(0x40, 64, 3)));
        assert_eq!(t.forward_entries(), 0);
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut t = XlateTable::new(8);
        t.install(1, entry(0, 64, 1));
        t.retire_to_forward(2, 5);
        t.invalidate(1);
        t.invalidate(2);
        assert_eq!(t.lookup(1), Xlate::Miss);
        assert_eq!(t.lookup(2), Xlate::Miss);
    }

    #[test]
    fn capacity_eviction_reports() {
        let mut t = XlateTable::new(2);
        assert!(!t.install(1, entry(0, 64, 1)));
        assert!(!t.install(2, entry(64, 64, 1)));
        // Third insert evicts LRU (key 1).
        assert!(t.install(3, entry(128, 64, 1)));
        assert_eq!(t.lookup(1), Xlate::Miss);
        assert_eq!(t.lookup(2), Xlate::Hit(entry(64, 64, 1)));
    }

    #[test]
    fn zero_capacity_table_always_misses() {
        let mut t = XlateTable::new(0);
        assert!(t.install(1, entry(0, 64, 1)));
        assert_eq!(t.lookup(1), Xlate::Miss);
    }

    #[test]
    fn multiple_ports_overlap() {
        let mut nic = Nic::new(8, 2);
        let (s1, _) = nic.tx_reserve(Time::ZERO, Time::from_ns(10));
        let (s2, _) = nic.tx_reserve(Time::ZERO, Time::from_ns(10));
        assert_eq!(s1, Time::ZERO);
        assert_eq!(s2, Time::ZERO, "second port should take the message");
        let (s3, _) = nic.tx_reserve(Time::ZERO, Time::from_ns(10));
        assert_eq!(s3, Time::from_ns(10), "third message queues");
    }

    #[test]
    fn ports_serialize() {
        let mut nic = Nic::new(8, 1);
        let (s1, f1) = nic.tx_reserve(Time::from_ns(0), Time::from_ns(10));
        assert_eq!((s1, f1), (Time::from_ns(0), Time::from_ns(10)));
        // Second reservation queues behind the first.
        let (s2, f2) = nic.tx_reserve(Time::from_ns(5), Time::from_ns(10));
        assert_eq!((s2, f2), (Time::from_ns(10), Time::from_ns(20)));
        // A later arrival after the port drained starts immediately.
        let (s3, _) = nic.tx_reserve(Time::from_ns(100), Time::from_ns(1));
        assert_eq!(s3, Time::from_ns(100));
        // rx port is independent.
        let (s4, _) = nic.rx_reserve(Time::from_ns(0), Time::from_ns(3));
        assert_eq!(s4, Time::from_ns(0));
    }

    #[test]
    fn generation_is_preserved() {
        let mut t = XlateTable::new(4);
        t.install(9, entry(0, 128, 41));
        match t.lookup(9) {
            Xlate::Hit(e) => assert_eq!(e.generation, 41),
            other => panic!("expected hit, got {other:?}"),
        }
    }
}
