//! The simulated NIC.
//!
//! Each locality owns one NIC with a transmit port, a receive port, and —
//! the artifact this paper adds — a **virtual-address translation table**
//! ([`XlateTable`]). The table maps global-address-space *block keys* (the
//! GVA with its offset bits masked off; the GAS layer computes these) to
//! physical arena addresses. When the table holds an entry for an incoming
//! one-sided operation, the NIC translates and DMAs with **no CPU
//! involvement**; when the block has migrated away it may hold a
//! *forwarding entry* naming the new owner; otherwise the operation is
//! NACKed back to its initiator, which recovers through the home directory.
//!
//! Port timing: each port is a serial resource. Reserving it returns the
//! interval actually occupied, modeling injection/extraction contention —
//! this is what produces the bandwidth roll-off and message-rate ceilings in
//! experiments E3/E4.

use crate::amo::{AmoCache, AMO_CACHE_CAP};
use crate::flatmap::FlatTable;
use crate::memory::PhysAddr;
use crate::time::Time;

/// Identifies a locality (a node of the simulated cluster).
pub type LocalityId = u32;

/// A live NIC translation-table entry: where a block's bytes sit in the
/// owner's arena.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XlateEntry {
    /// Physical base address of the block in this locality's arena.
    pub base: PhysAddr,
    /// Block length in bytes.
    pub len: u64,
    /// Generation number, bumped on every migration of the block. Lets the
    /// GAS layer discard stale NACK-triggered updates.
    pub generation: u32,
}

/// Outcome of a NIC translation lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Xlate {
    /// The block is resident here.
    Hit(XlateEntry),
    /// The block migrated; the NIC remembers where it went.
    Forward(LocalityId),
    /// Unknown block (never installed, evicted, or forward expired).
    Miss,
}

/// What a translation-table slot currently represents.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum XState {
    /// The block is resident: the slot is on the LRU recency list.
    Live,
    /// The block migrated away; the slot names the next hop.
    Forward,
    /// Neither live nor forwarding — the slot only parks an undrained hit
    /// counter (after an eviction or an expired forward) until the next
    /// telemetry drain. Lookups miss.
    #[default]
    Ghost,
}

/// One flat-table slot payload: the live entry, the forward hop, and the
/// inline per-entry hit counter, tagged by [`XState`].
#[derive(Clone, Copy, Debug, Default)]
struct XSlot {
    entry: XlateEntry,
    next_hop: LocalityId,
    hits: u64,
    state: XState,
}

/// Seed for the NIC translation table's flat map (arbitrary constant;
/// fixed so runs are deterministic).
const XLATE_SEED: u64 = 0x91C7_AB1E;

/// The NIC-resident translation table: one flat, open-addressed,
/// generation-tagged table ([`FlatTable`]) holding live entries (an exact
/// LRU bounded by `capacity`), forwarding tombstones (unbounded — they are
/// 16 B in hardware terms and short-lived), and per-entry hit counters,
/// all inline in one slot array: a translation is a single probe sequence.
///
/// Hit telemetry follows the entry through its lifecycle: it survives
/// `retire_to_forward`, eviction, and re-installation within a balancer
/// epoch (evicted/expired entries park their counter in a ghost slot until
/// [`XlateTable::take_hit_telemetry`] drains it). Only
/// [`XlateTable::invalidate`] — a block free — discards it, explicitly.
pub struct XlateTable {
    table: FlatTable<XSlot>,
    capacity: usize,
    forwards: usize,
}

impl XlateTable {
    /// Create a table with space for `capacity` live entries.
    pub fn new(capacity: usize) -> XlateTable {
        XlateTable {
            table: FlatTable::with_seed(XLATE_SEED),
            capacity,
            forwards: 0,
        }
    }

    /// Translate `block_key`. Touches LRU recency and bumps the inline hit
    /// counter on a live hit.
    #[inline]
    pub fn lookup(&mut self, block_key: u64) -> Xlate {
        match self.table.lookup(block_key) {
            Some(s) => match s.state {
                XState::Live => {
                    s.hits += 1;
                    Xlate::Hit(s.entry)
                }
                XState::Forward => Xlate::Forward(s.next_hop),
                XState::Ghost => Xlate::Miss,
            },
            None => Xlate::Miss,
        }
    }

    /// Evict the least-recently-used live entry — zero probes, the tail's
    /// slot index is known. An undrained hit counter outlives the entry as
    /// a ghost slot (the balancer still learns the block was hot here this
    /// epoch).
    fn evict_lru(&mut self) {
        let hits = match self.table.tail() {
            Some((_, s)) => {
                debug_assert_eq!(s.state, XState::Live);
                s.hits
            }
            None => return,
        };
        if hits > 0 {
            let (_, s) = self.table.unlist_tail().expect("tail vanished");
            s.state = XState::Ghost;
            s.entry = XlateEntry::default();
        } else {
            self.table.remove_tail();
        }
    }

    /// Install (or refresh) a live entry. Returns `true` if an unrelated
    /// entry was evicted to make room (capacity pressure — experiment E6).
    /// A forward tombstone or parked hit counter under the same key is
    /// absorbed: the hit counter carries over.
    pub fn install(&mut self, block_key: u64, entry: XlateEntry) -> bool {
        if self.capacity == 0 {
            // The "no NIC table" ablation: the install is rejected, but it
            // still clears any forward tombstone (parking its counter).
            if let Some(s) = self.table.get_mut(block_key) {
                if s.state == XState::Forward {
                    self.forwards -= 1;
                    if s.hits > 0 {
                        s.state = XState::Ghost;
                    } else {
                        self.table.remove(block_key);
                    }
                }
            }
            return true;
        }
        // One probe sequence places or finds the slot; listing and
        // eviction work off slot indices after that.
        let (idx, existed) = self.table.upsert(block_key);
        let s = self.table.value_at(idx);
        let was_live = existed && s.state == XState::Live;
        if existed && s.state == XState::Forward {
            self.forwards -= 1;
        }
        s.state = XState::Live;
        s.entry = entry;
        s.next_hop = 0;
        self.table.promote_at(idx);
        // The promoted entry sits at the head, so the tail (the eviction
        // victim) is the same entry the old evict-before-insert order chose.
        let mut evicted = false;
        if !was_live && self.table.listed_len() > self.capacity {
            self.evict_lru();
            evicted = true;
        }
        evicted
    }

    /// Drop the live entry for `block_key`, leaving a forwarding tombstone
    /// pointing at `new_owner` (called on migration hand-off). The entry's
    /// hit counter stays with the slot.
    pub fn retire_to_forward(&mut self, block_key: u64, new_owner: LocalityId) {
        match self.table.get_mut(block_key) {
            Some(s) => {
                if s.state != XState::Forward {
                    self.forwards += 1;
                }
                s.state = XState::Forward;
                s.next_hop = new_owner;
                s.entry = XlateEntry::default();
                self.table.unlist(block_key);
            }
            None => {
                self.table.insert(
                    block_key,
                    XSlot {
                        next_hop: new_owner,
                        state: XState::Forward,
                        ..XSlot::default()
                    },
                );
                self.forwards += 1;
            }
        }
    }

    /// Remove any state (live or forward) for `block_key` — the block was
    /// freed. This *deliberately* discards the entry's undrained hit
    /// telemetry (a freed block can no longer be balanced); the dropped
    /// count is returned so callers can audit the reset. A forward whose
    /// tombstone merely expired should use [`XlateTable::expire_forward`],
    /// which preserves the counter.
    pub fn invalidate(&mut self, block_key: u64) -> u64 {
        match self.table.remove(block_key) {
            Some(s) => {
                if s.state == XState::Forward {
                    self.forwards -= 1;
                }
                s.hits
            }
            None => 0,
        }
    }

    /// Expire a forwarding tombstone without losing telemetry: the hit
    /// counter earned while the entry was live parks in a ghost slot until
    /// the next [`XlateTable::take_hit_telemetry`] drain, so a re-install
    /// of the (still-live elsewhere) block within the same balancer epoch
    /// resumes the count. Returns whether a forward existed.
    pub fn expire_forward(&mut self, block_key: u64) -> bool {
        let Some(s) = self.table.get_mut(block_key) else {
            return false;
        };
        if s.state != XState::Forward {
            return false;
        }
        self.forwards -= 1;
        if s.hits > 0 {
            s.state = XState::Ghost;
            s.next_hop = 0;
        } else {
            self.table.remove(block_key);
        }
        true
    }

    /// Purge every forwarding tombstone whose next hop is `dead` — the hop
    /// crashed, so a forward-chain transiting it would re-inject traffic
    /// into a black hole until the TTL burned out. Counters earned while
    /// the entries were live park as ghosts (like
    /// [`XlateTable::expire_forward`]); subsequent lookups miss and recover
    /// through the home directory. Returns the number of forwards dropped.
    pub fn purge_forwards_via(&mut self, dead: LocalityId) -> u64 {
        let mut hot = Vec::new();
        let mut cold = Vec::new();
        for (key, s, _) in self.table.iter_mut() {
            if s.state == XState::Forward && s.next_hop == dead {
                if s.hits > 0 {
                    hot.push(key);
                } else {
                    cold.push(key);
                }
            }
        }
        let dropped = (hot.len() + cold.len()) as u64;
        for key in hot {
            let s = self.table.get_mut(key).expect("slot vanished");
            s.state = XState::Ghost;
            s.next_hop = 0;
            self.forwards -= 1;
        }
        for key in cold {
            self.table.remove(key);
            self.forwards -= 1;
        }
        dropped
    }

    /// Drain the per-entry hit telemetry (counters reset to zero, parked
    /// ghost counters are released), **sorted by block key** so consumers
    /// (the load balancer) see a deterministic order.
    pub fn take_hit_telemetry(&mut self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut ghosts = Vec::new();
        for (key, s, _) in self.table.iter_mut() {
            if s.hits > 0 {
                out.push((key, s.hits));
                s.hits = 0;
            }
            if s.state == XState::Ghost {
                ghosts.push(key);
            }
        }
        for key in ghosts {
            self.table.remove(key);
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Drop every live entry (a NIC reset / firmware fault) and all hit
    /// telemetry. Forwarding tombstones survive (they live in the NIC's
    /// persistent route table in this model). Subsequent traffic misses
    /// and software reinstalls.
    pub fn flush_live(&mut self) {
        let mut dead = Vec::new();
        for (key, s, _) in self.table.iter_mut() {
            match s.state {
                XState::Live | XState::Ghost => dead.push(key),
                XState::Forward => s.hits = 0,
            }
        }
        for key in dead {
            self.table.remove(key);
        }
    }

    /// Number of live (non-forward) entries.
    pub fn live_entries(&self) -> usize {
        self.table.listed_len()
    }

    /// Number of forwarding tombstones.
    pub fn forward_entries(&self) -> usize {
        self.forwards
    }

    /// Peek a live entry without touching recency.
    pub fn peek(&self, block_key: u64) -> Option<&XlateEntry> {
        match self.table.get(block_key) {
            Some(s) if s.state == XState::Live => Some(&s.entry),
            _ => None,
        }
    }
}

/// One locality's NIC: parallel tx/rx ports (hardware queue pairs) and the
/// translation table. Each port is a serial resource; a message occupies
/// the earliest-free port of its direction.
pub struct Nic {
    tx_free: Vec<Time>,
    rx_free: Vec<Time>,
    /// The network-managed translation state (the paper's contribution).
    pub xlate: XlateTable,
    /// Responder cache for NIC-executed active operations: remembers
    /// executed AMOs by retry-stable key so duplicated or retried
    /// requests re-emit the cached result instead of re-executing.
    pub amo: AmoCache,
}

fn reserve(ports: &mut [Time], earliest: Time, dur: Time) -> (Time, Time) {
    let idx = ports
        .iter()
        .enumerate()
        .min_by_key(|&(i, &t)| (t, i))
        .map(|(i, _)| i)
        .expect("NIC with zero ports");
    let start = earliest.max(ports[idx]);
    let finish = start + dur;
    ports[idx] = finish;
    (start, finish)
}

impl Nic {
    /// A NIC with `ports` queue pairs per direction and an
    /// `xlate_capacity`-entry translation table.
    pub fn new(xlate_capacity: usize, ports: usize) -> Nic {
        assert!(ports >= 1, "NIC needs at least one port");
        Nic {
            tx_free: vec![Time::ZERO; ports],
            rx_free: vec![Time::ZERO; ports],
            xlate: XlateTable::new(xlate_capacity),
            amo: AmoCache::new(AMO_CACHE_CAP),
        }
    }

    /// Reserve a transmit port for `dur` starting no earlier than
    /// `earliest`; returns `(start, finish)` of the occupied interval.
    pub fn tx_reserve(&mut self, earliest: Time, dur: Time) -> (Time, Time) {
        reserve(&mut self.tx_free, earliest, dur)
    }

    /// Reserve a receive port, as [`Nic::tx_reserve`].
    pub fn rx_reserve(&mut self, earliest: Time, dur: Time) -> (Time, Time) {
        reserve(&mut self.rx_free, earliest, dur)
    }

    /// Earliest instant any transmit port is idle.
    pub fn tx_free_at(&self) -> Time {
        self.tx_free.iter().copied().min().unwrap_or(Time::ZERO)
    }

    /// Earliest instant any receive port is idle.
    pub fn rx_free_at(&self) -> Time {
        self.rx_free.iter().copied().min().unwrap_or(Time::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(base: u64, len: u64, generation: u32) -> XlateEntry {
        XlateEntry {
            base,
            len,
            generation,
        }
    }

    #[test]
    fn lookup_miss_then_hit() {
        let mut t = XlateTable::new(8);
        assert_eq!(t.lookup(42), Xlate::Miss);
        assert!(!t.install(42, entry(0x1000, 64, 1)));
        assert_eq!(t.lookup(42), Xlate::Hit(entry(0x1000, 64, 1)));
        assert_eq!(t.live_entries(), 1);
    }

    #[test]
    fn forward_tombstones() {
        let mut t = XlateTable::new(8);
        t.install(7, entry(0, 64, 1));
        t.retire_to_forward(7, 3);
        assert_eq!(t.lookup(7), Xlate::Forward(3));
        assert_eq!(t.live_entries(), 0);
        assert_eq!(t.forward_entries(), 1);
        // Re-installing (block migrated back) clears the tombstone.
        t.install(7, entry(0x40, 64, 3));
        assert_eq!(t.lookup(7), Xlate::Hit(entry(0x40, 64, 3)));
        assert_eq!(t.forward_entries(), 0);
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut t = XlateTable::new(8);
        t.install(1, entry(0, 64, 1));
        t.retire_to_forward(2, 5);
        t.invalidate(1);
        t.invalidate(2);
        assert_eq!(t.lookup(1), Xlate::Miss);
        assert_eq!(t.lookup(2), Xlate::Miss);
    }

    #[test]
    fn purge_forwards_via_crashed_hop() {
        let mut t = XlateTable::new(8);
        // Three tombstones: two transit the doomed hop 3 (one with parked
        // telemetry), one forwards elsewhere and must survive.
        t.install(10, entry(0, 64, 1));
        t.retire_to_forward(10, 3);
        assert_eq!(t.lookup(10), Xlate::Forward(3));
        t.install(11, entry(64, 64, 1));
        assert_eq!(t.lookup(11), Xlate::Hit(entry(64, 64, 1)));
        t.retire_to_forward(11, 3);
        t.retire_to_forward(12, 5);
        assert_eq!(t.forward_entries(), 3);
        assert_eq!(t.purge_forwards_via(3), 2);
        // Chains through the dead hop now miss (initiator re-chases via the
        // home directory) instead of re-injecting toward the crashed node.
        assert_eq!(t.lookup(10), Xlate::Miss);
        assert_eq!(t.lookup(11), Xlate::Miss);
        assert_eq!(t.lookup(12), Xlate::Forward(5));
        assert_eq!(t.forward_entries(), 1);
        // The hit earned while 11 was live survives the purge as a ghost.
        assert_eq!(t.take_hit_telemetry(), vec![(11, 1)]);
        // Idempotent: nothing left to purge.
        assert_eq!(t.purge_forwards_via(3), 0);
    }

    #[test]
    fn capacity_eviction_reports() {
        let mut t = XlateTable::new(2);
        assert!(!t.install(1, entry(0, 64, 1)));
        assert!(!t.install(2, entry(64, 64, 1)));
        // Third insert evicts LRU (key 1).
        assert!(t.install(3, entry(128, 64, 1)));
        assert_eq!(t.lookup(1), Xlate::Miss);
        assert_eq!(t.lookup(2), Xlate::Hit(entry(64, 64, 1)));
    }

    #[test]
    fn zero_capacity_table_always_misses() {
        let mut t = XlateTable::new(0);
        assert!(t.install(1, entry(0, 64, 1)));
        assert_eq!(t.lookup(1), Xlate::Miss);
    }

    #[test]
    fn multiple_ports_overlap() {
        let mut nic = Nic::new(8, 2);
        let (s1, _) = nic.tx_reserve(Time::ZERO, Time::from_ns(10));
        let (s2, _) = nic.tx_reserve(Time::ZERO, Time::from_ns(10));
        assert_eq!(s1, Time::ZERO);
        assert_eq!(s2, Time::ZERO, "second port should take the message");
        let (s3, _) = nic.tx_reserve(Time::ZERO, Time::from_ns(10));
        assert_eq!(s3, Time::from_ns(10), "third message queues");
    }

    #[test]
    fn ports_serialize() {
        let mut nic = Nic::new(8, 1);
        let (s1, f1) = nic.tx_reserve(Time::from_ns(0), Time::from_ns(10));
        assert_eq!((s1, f1), (Time::from_ns(0), Time::from_ns(10)));
        // Second reservation queues behind the first.
        let (s2, f2) = nic.tx_reserve(Time::from_ns(5), Time::from_ns(10));
        assert_eq!((s2, f2), (Time::from_ns(10), Time::from_ns(20)));
        // A later arrival after the port drained starts immediately.
        let (s3, _) = nic.tx_reserve(Time::from_ns(100), Time::from_ns(1));
        assert_eq!(s3, Time::from_ns(100));
        // rx port is independent.
        let (s4, _) = nic.rx_reserve(Time::from_ns(0), Time::from_ns(3));
        assert_eq!(s4, Time::from_ns(0));
    }

    #[test]
    fn generation_is_preserved() {
        let mut t = XlateTable::new(4);
        t.install(9, entry(0, 128, 41));
        match t.lookup(9) {
            Xlate::Hit(e) => assert_eq!(e.generation, 41),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn hit_telemetry_is_sorted_by_block_key() {
        let mut t = XlateTable::new(16);
        // Install in a scrambled order so slot order != key order.
        for k in [9u64, 2, 31, 14, 5] {
            t.install(k, entry(k * 64, 64, 1));
        }
        for k in [31u64, 31, 2, 14, 14, 14, 9, 5, 5] {
            t.lookup(k);
        }
        let drained = t.take_hit_telemetry();
        assert_eq!(
            drained,
            vec![(2, 1), (5, 2), (9, 1), (14, 3), (31, 2)],
            "telemetry must drain sorted by block key"
        );
        // Counters were zeroed by the drain.
        t.lookup(9);
        assert_eq!(t.take_hit_telemetry(), vec![(9, 1)]);
    }

    #[test]
    fn hits_survive_retire_and_reinstall() {
        let mut t = XlateTable::new(8);
        t.install(7, entry(0, 64, 1));
        t.lookup(7);
        t.lookup(7);
        // Retire keeps the counter on the tombstone; reinstall resumes it.
        t.retire_to_forward(7, 3);
        t.install(7, entry(0x40, 64, 2));
        t.lookup(7);
        assert_eq!(t.take_hit_telemetry(), vec![(7, 3)]);
    }

    #[test]
    fn hits_survive_capacity_eviction() {
        let mut t = XlateTable::new(2);
        t.install(1, entry(0, 64, 1));
        t.lookup(1);
        t.install(2, entry(64, 64, 1));
        t.install(3, entry(128, 64, 1)); // evicts key 1 with 1 hit pending
        assert_eq!(t.lookup(1), Xlate::Miss);
        t.install(1, entry(0, 64, 1)); // evicts key 2 (no hits)
        t.lookup(1);
        assert_eq!(
            t.take_hit_telemetry(),
            vec![(1, 2)],
            "eviction must not lose pending hit telemetry"
        );
    }

    #[test]
    fn invalidate_reports_dropped_hits() {
        let mut t = XlateTable::new(8);
        t.install(4, entry(0, 64, 1));
        t.lookup(4);
        t.lookup(4);
        t.lookup(4);
        assert_eq!(t.invalidate(4), 3, "invalidate returns the dropped count");
        assert_eq!(t.invalidate(4), 0);
        assert!(
            t.take_hit_telemetry().is_empty(),
            "freed blocks report no telemetry"
        );
    }

    #[test]
    fn expire_forward_preserves_hit_telemetry() {
        let mut t = XlateTable::new(8);
        t.install(7, entry(0, 64, 1));
        t.lookup(7);
        t.retire_to_forward(7, 3);
        assert_eq!(t.lookup(7), Xlate::Forward(3));
        // Expiring the tombstone ends forwarding but must keep the hit
        // counter for the balancer's next drain (the old implementation
        // silently dropped it).
        assert!(t.expire_forward(7));
        assert!(!t.expire_forward(7), "already expired");
        assert_eq!(t.lookup(7), Xlate::Miss);
        assert_eq!(t.forward_entries(), 0);
        assert_eq!(t.take_hit_telemetry(), vec![(7, 1)]);
    }

    #[test]
    fn expire_forward_without_hits_frees_the_slot() {
        let mut t = XlateTable::new(8);
        t.retire_to_forward(9, 2); // tombstone for a never-hit block
        assert!(t.expire_forward(9));
        assert_eq!(t.lookup(9), Xlate::Miss);
        assert!(t.take_hit_telemetry().is_empty());
    }
}
