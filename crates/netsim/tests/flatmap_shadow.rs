//! Shadow-model equivalence suites for the flat translation table.
//!
//! Three oracles:
//! * plain map mode vs `std::collections::HashMap`;
//! * LRU mode (`insert_lru` / touching `lookup`) vs the slab
//!   [`netsim::lru::LruMap`] it replaced;
//! * the full [`netsim::nic::XlateTable`] vs a naive shadow built from the
//!   *old* implementation's three maps (live LRU + forward map + hit map).
//!
//! Plus deterministic churn pinned at `2^k - 1` and `2^k` occupancies, the
//! boundaries where Robin-Hood growth and wraparound bugs live.

use netsim::flatmap::{FlatTable, LruInsert};
use netsim::lru::LruMap;
use netsim::nic::{Xlate, XlateEntry, XlateTable};
use proptest::prelude::*;
use std::collections::HashMap;

// ----------------------------------------------------- plain-map oracle

proptest! {
    /// Unlisted mode (BTT/directory usage): insert / get / remove behave
    /// exactly like a `HashMap`, under arbitrary interleavings.
    #[test]
    fn plain_mode_matches_hashmap(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..4, 0u64..48, 0u64..1000), 0..600),
    ) {
        let mut flat: FlatTable<u64> = FlatTable::with_seed(seed);
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        for (op, k, v) in ops {
            match op {
                0 => prop_assert_eq!(flat.insert(k, v), shadow.insert(k, v)),
                1 => prop_assert_eq!(flat.get(k).copied(), shadow.get(&k).copied()),
                2 => prop_assert_eq!(flat.remove(k), shadow.remove(&k)),
                _ => {
                    if let Some(m) = flat.get_mut(k) { *m = m.wrapping_add(1); }
                    if let Some(m) = shadow.get_mut(&k) { *m = m.wrapping_add(1); }
                }
            }
            prop_assert_eq!(flat.len(), shadow.len());
        }
        let mut got: Vec<(u64, u64)> = flat.iter().map(|(k, v, _)| (k, *v)).collect();
        let mut want: Vec<(u64, u64)> = shadow.into_iter().collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}

// ----------------------------------------------------------- LRU oracle

proptest! {
    /// LRU mode matches the slab `LruMap` it replaced: same eviction
    /// victims, same touch ordering, same final MRU-first iteration.
    #[test]
    fn lru_mode_matches_lrumap(
        seed in any::<u64>(),
        cap in 1usize..12,
        ops in proptest::collection::vec((0u8..3, 0u64..24, 0u64..1000), 0..500),
    ) {
        let mut flat: FlatTable<u64> = FlatTable::with_seed(seed);
        let mut oracle: LruMap<u64, u64> = LruMap::new(cap);
        for (op, k, v) in ops {
            match op {
                0 => {
                    let got = match flat.insert_lru(k, v, cap) {
                        LruInsert::Evicted(ek, ev) => Some((ek, ev)),
                        _ => None,
                    };
                    prop_assert_eq!(got, oracle.insert(k, v));
                }
                1 => prop_assert_eq!(flat.lookup(k).map(|m| *m), oracle.get(&k).copied()),
                _ => prop_assert_eq!(flat.remove(k), oracle.remove(&k)),
            }
            prop_assert_eq!(flat.len(), oracle.len());
        }
        let got: Vec<(u64, u64)> = flat.iter_lru().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(u64, u64)> = oracle.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }
}

// ------------------------------------------------- power-of-two boundaries

/// Drive occupancy to exactly `2^k - 1` and `2^k` for each k, with full
/// verification at both plateaus, then churn back down. The growth
/// trigger, mask wraparound, and backward-shift deletion all change
/// behavior exactly at these sizes.
#[test]
fn churn_at_power_of_two_occupancies() {
    for seed in [1u64, 0x9e37_79b9, u64::MAX] {
        let mut flat: FlatTable<u64> = FlatTable::with_seed(seed);
        let mut shadow: HashMap<u64, u64> = HashMap::new();
        // Non-contiguous keys so home slots scatter and collide.
        let key = |i: u64| i.wrapping_mul(0x5851_f42d_4c95_7f2d) ^ seed;
        let mut next = 0u64;
        for k in 1..=9u32 {
            for target in [(1u64 << k) - 1, 1u64 << k] {
                while (shadow.len() as u64) < target {
                    let kk = key(next);
                    next += 1;
                    assert_eq!(flat.insert(kk, next), shadow.insert(kk, next));
                }
                assert_eq!(flat.len() as u64, target);
                for i in 0..next {
                    let kk = key(i);
                    assert_eq!(flat.get(kk).copied(), shadow.get(&kk).copied());
                }
                assert!(flat.get(!key(0)).is_none());
            }
        }
        // Churn back down through the same boundaries (no shrink: deletion
        // paths get exercised at every occupancy on the way).
        for i in 0..next {
            let kk = key(i);
            assert_eq!(flat.remove(kk), shadow.remove(&kk));
            if shadow.len().is_power_of_two() {
                for j in 0..next {
                    let kj = key(j);
                    assert_eq!(flat.get(kj).copied(), shadow.get(&kj).copied());
                }
            }
        }
        assert!(flat.is_empty());
    }
}

/// Same boundary walk in LRU mode, where every insert at capacity also
/// exercises tail eviction + backward shift under a full table.
#[test]
fn lru_churn_at_power_of_two_capacities() {
    for k in 1..=7u32 {
        for cap in [(1usize << k) - 1, 1usize << k] {
            let mut flat: FlatTable<u64> = FlatTable::with_seed(42);
            let mut oracle: LruMap<u64, u64> = LruMap::new(cap);
            for i in 0..(cap as u64 * 4) {
                let kk = (i * 7) % (cap as u64 * 2); // revisit keys: touches + replaces
                let got = match flat.insert_lru(kk, i, cap) {
                    LruInsert::Evicted(ek, ev) => Some((ek, ev)),
                    _ => None,
                };
                assert_eq!(got, oracle.insert(kk, i), "cap {cap} step {i}");
                if i % 3 == 0 {
                    assert_eq!(
                        flat.lookup(i % cap as u64).map(|m| *m),
                        oracle.get(&(i % cap as u64)).copied()
                    );
                }
            }
            let got: Vec<_> = flat.iter_lru().map(|(kk, v)| (kk, *v)).collect();
            let want: Vec<_> = oracle.iter().map(|(kk, v)| (*kk, *v)).collect();
            assert_eq!(got, want, "cap {cap}");
        }
    }
}

// ------------------------------------------------------ XlateTable oracle

/// The old `XlateTable` in miniature: a bounded MRU-first `Vec` of live
/// entries, a forward map, and a hit-counter map that outlives eviction
/// (the drain is compared sorted, as the real table now guarantees).
struct ShadowXlate {
    capacity: usize,
    live: Vec<(u64, XlateEntry)>, // MRU-first
    forwards: HashMap<u64, u32>,
    hits: HashMap<u64, u64>,
}

impl ShadowXlate {
    fn new(capacity: usize) -> ShadowXlate {
        ShadowXlate {
            capacity,
            live: Vec::new(),
            forwards: HashMap::new(),
            hits: HashMap::new(),
        }
    }

    fn lookup(&mut self, k: u64) -> Xlate {
        if let Some(pos) = self.live.iter().position(|&(lk, _)| lk == k) {
            let e = self.live.remove(pos);
            self.live.insert(0, e);
            *self.hits.entry(k).or_insert(0) += 1;
            return Xlate::Hit(e.1);
        }
        if let Some(&hop) = self.forwards.get(&k) {
            return Xlate::Forward(hop);
        }
        Xlate::Miss
    }

    fn install(&mut self, k: u64, e: XlateEntry) -> bool {
        self.forwards.remove(&k);
        if self.capacity == 0 {
            return true;
        }
        if let Some(pos) = self.live.iter().position(|&(lk, _)| lk == k) {
            self.live.remove(pos);
            self.live.insert(0, (k, e));
            return false;
        }
        self.live.insert(0, (k, e));
        if self.live.len() > self.capacity {
            self.live.pop(); // hits entry survives (orphaned), as before
            return true;
        }
        false
    }

    fn retire_to_forward(&mut self, k: u64, hop: u32) {
        self.live.retain(|&(lk, _)| lk != k);
        self.forwards.insert(k, hop);
    }

    fn invalidate(&mut self, k: u64) -> u64 {
        self.live.retain(|&(lk, _)| lk != k);
        self.forwards.remove(&k);
        self.hits.remove(&k).unwrap_or(0)
    }

    fn expire_forward(&mut self, k: u64) -> bool {
        self.forwards.remove(&k).is_some()
    }

    fn take(&mut self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self.hits.drain().filter(|&(_, n)| n > 0).collect();
        out.sort_unstable();
        out
    }

    fn flush_live(&mut self) {
        self.live.clear();
        self.hits.clear();
    }
}

fn xe(base: u64, generation: u32) -> XlateEntry {
    XlateEntry {
        base,
        len: 64,
        generation,
    }
}

proptest! {
    /// The rewritten NIC table is observationally identical to the old
    /// three-map implementation under arbitrary op interleavings, at
    /// capacities spanning "always evicting" to "never evicting".
    #[test]
    fn xlate_table_matches_shadow(
        cap in 0usize..10,
        ops in proptest::collection::vec((0u8..7, 0u64..16, 0u64..8), 0..500),
    ) {
        let mut real = XlateTable::new(cap);
        let mut shadow = ShadowXlate::new(cap);
        for (i, (op, k, aux)) in ops.into_iter().enumerate() {
            match op {
                0 => prop_assert_eq!(real.lookup(k), shadow.lookup(k), "lookup {} at step {}", k, i),
                1 => {
                    let e = xe(k * 64, aux as u32 + 1);
                    prop_assert_eq!(real.install(k, e), shadow.install(k, e), "install {} at step {}", k, i);
                }
                2 => {
                    real.retire_to_forward(k, aux as u32);
                    shadow.retire_to_forward(k, aux as u32);
                }
                3 => prop_assert_eq!(real.invalidate(k), shadow.invalidate(k), "invalidate {} at step {}", k, i),
                4 => prop_assert_eq!(real.expire_forward(k), shadow.expire_forward(k), "expire {} at step {}", k, i),
                5 => prop_assert_eq!(real.take_hit_telemetry(), shadow.take(), "take at step {}", i),
                _ => {
                    real.flush_live();
                    shadow.flush_live();
                }
            }
            prop_assert_eq!(real.live_entries(), shadow.live.len());
            prop_assert_eq!(real.forward_entries(), shadow.forwards.len());
        }
        // Final state agrees for every key ever touched.
        for k in 0..16u64 {
            prop_assert_eq!(real.peek(k).copied(), shadow.live.iter().find(|&&(lk, _)| lk == k).map(|&(_, e)| e));
        }
        prop_assert_eq!(real.take_hit_telemetry(), shadow.take());
    }
}
