//! Shadow-model equivalence: the two-level [`TimeWheel`] must pop in
//! exactly the order the seed engine's single `BinaryHeap` did, for *any*
//! schedule — that is what keeps every trace hash in the repository stable
//! across the queue swap.
//!
//! Two models are checked:
//!
//! * the raw queue against a `BinaryHeap<Reverse<(time, seq)>>`, under
//!   arbitrary interleavings of pushes (zero-delay ties, in-horizon,
//!   horizon-crossing) and pops;
//! * a full [`Engine`] run against an abstract replay of the same schedule
//!   on a reference heap, comparing executed-event counts and the running
//!   [`trace_mix`] hash — including events that re-schedule themselves at
//!   the *same instant* (zero delay) and across the wheel horizon.

use netsim::engine::trace_mix;
use netsim::{Engine, Time, TimeWheel};
use proptest::collection::vec;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Clone, Debug)]
enum Op {
    /// Push at `now + delay_ps`, where `now` is the last popped time.
    Push(u64),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Within the wheel horizon (grain 8.2 ns × 1024 slots ≈ 8.4 µs).
        4 => (0u64..6_000_000).prop_map(Op::Push),
        // Beyond the horizon: exercises the overflow heap and its merge.
        1 => (6_000_000u64..60_000_000).prop_map(Op::Push),
        // Same-instant ties: seq must break them.
        1 => Just(Op::Push(0)),
        4 => Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wheel_pops_in_heap_order(ops in vec(op_strategy(), 1..200)) {
        let mut wheel: TimeWheel<()> = TimeWheel::new();
        let mut shadow: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut wheel_hash = 0x1234_5678_9abc_def0u64;
        let mut shadow_hash = wheel_hash;

        let mut pop_both = |wheel: &mut TimeWheel<()>,
                            shadow: &mut BinaryHeap<Reverse<(u64, u64)>>,
                            now: &mut u64| {
            let got = wheel.pop().map(|(t, s, ())| (t.ps(), s));
            let want = shadow.pop().map(|Reverse(pair)| pair);
            prop_assert_eq!(got, want);
            if let Some((t, s)) = got {
                *now = t;
                wheel_hash = trace_mix(trace_mix(wheel_hash, t), s);
            }
            if let Some((t, s)) = want {
                shadow_hash = trace_mix(trace_mix(shadow_hash, t), s);
            }
        };

        for op in ops {
            match op {
                Op::Push(delay) => {
                    let at = now + delay;
                    prop_assert_eq!(wheel.next_time().is_none(), shadow.is_empty());
                    wheel.push(Time::from_ps(at), seq, ());
                    shadow.push(Reverse((at, seq)));
                    seq += 1;
                }
                Op::Pop => pop_both(&mut wheel, &mut shadow, &mut now),
            }
        }
        // Drain: every remaining entry must agree too.
        while !wheel.is_empty() || !shadow.is_empty() {
            pop_both(&mut wheel, &mut shadow, &mut now);
        }
        prop_assert_eq!(wheel_hash, shadow_hash);
    }
}

/// Reschedule step for a chain event: a pure function of the remaining
/// chain length so the engine closures and the abstract model agree.
/// Covers a same-instant (zero-delay) reschedule, an in-horizon hop, and a
/// horizon-crossing hop.
fn step_of(chain: u8) -> u64 {
    match chain % 3 {
        0 => 0,
        1 => 977_000,
        _ => 12_345_678,
    }
}

fn run_chain(e: &mut Engine<u64>, chain: u8) {
    e.state += 1;
    if chain > 0 {
        e.schedule(Time::from_ps(step_of(chain)), move |e| {
            run_chain(e, chain - 1);
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A full engine run hashes identically to a reference replay of the
    /// same schedule on a plain `BinaryHeap` — seq-for-seq, tick-for-tick.
    #[test]
    fn engine_trace_matches_heap_replay(
        entries in vec((0u64..20_000_000u64, 0u8..6u8), 1..40),
    ) {
        // Real engine: each entry seeds a self-rescheduling chain.
        let mut eng = Engine::new(0u64, 7);
        let mut model_hash = eng.trace_hash();
        for &(delay, chain) in &entries {
            eng.schedule(Time::from_ps(delay), move |e| run_chain(e, chain));
        }
        let executed = eng.run();

        // Reference model: a max-heap over Reverse<(time, seq)> replaying
        // the exact scheduling logic in the abstract.
        let mut heap: BinaryHeap<Reverse<(u64, u64, u8)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for &(delay, chain) in &entries {
            heap.push(Reverse((delay, seq, chain)));
            seq += 1;
        }
        let mut model_count = 0u64;
        let mut model_state = 0u64;
        while let Some(Reverse((t, s, chain))) = heap.pop() {
            model_hash = trace_mix(trace_mix(model_hash, t), s);
            model_count += 1;
            model_state += 1;
            if chain > 0 {
                heap.push(Reverse((t + step_of(chain), seq, chain - 1)));
                seq += 1;
            }
        }

        prop_assert_eq!(executed, model_count);
        prop_assert_eq!(eng.state, model_state);
        prop_assert_eq!(eng.trace_hash(), model_hash);
    }
}
