//! Property-based tests for the simulator substrate.

use netsim::engine::Engine;
use netsim::faults::FaultClass;
use netsim::lru::LruMap;
use netsim::net::{rdma_put, send_user, Cluster, Envelope, Packet, Protocol, PutReq, RdmaTarget};
use netsim::nic::XlateEntry;
use netsim::queue::ServerPool;
use netsim::time::Time;
use netsim::NetConfig;
use proptest::prelude::*;

// ---------------------------------------------------------------- engine

proptest! {
    /// Events always execute in nondecreasing time order, whatever the
    /// schedule, and the clock never runs backwards.
    #[test]
    fn engine_causality(delays in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut eng = Engine::new(Vec::<Time>::new(), 7);
        for d in delays {
            eng.schedule(Time::from_ps(d), move |e| {
                let now = e.now();
                e.state.push(now);
            });
        }
        eng.run();
        for w in eng.state.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// The same seed and schedule produce the same trace hash; a perturbed
    /// schedule produces a different one (with overwhelming probability).
    #[test]
    fn engine_determinism(seed in any::<u64>(), delays in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let build = |delays: &[u64], seed: u64| {
            let mut eng = Engine::new(0u64, seed);
            for &d in delays {
                eng.schedule(Time::from_ps(d), move |e| { e.state = e.state.wrapping_add(d); });
            }
            eng.run();
            (eng.trace_hash(), eng.state)
        };
        let a = build(&delays, seed);
        let b = build(&delays, seed);
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------- LRU

proptest! {
    /// The slab LRU behaves identically to a naive shadow implementation
    /// under arbitrary interleavings of insert/get/remove.
    #[test]
    fn lru_matches_shadow(
        cap in 1usize..12,
        ops in proptest::collection::vec((0u8..3, 0u64..24, 0u64..1000), 0..400),
    ) {
        let mut lru: LruMap<u64, u64> = LruMap::new(cap);
        // Shadow: Vec in MRU-first order.
        let mut shadow: Vec<(u64, u64)> = Vec::new();
        for (op, k, v) in ops {
            match op {
                0 => {
                    // insert
                    if let Some(pos) = shadow.iter().position(|&(sk, _)| sk == k) {
                        shadow.remove(pos);
                        shadow.insert(0, (k, v));
                    } else {
                        shadow.insert(0, (k, v));
                        if shadow.len() > cap {
                            let (ek, ev) = shadow.pop().unwrap();
                            let evicted = lru.insert(k, v);
                            prop_assert_eq!(evicted, Some((ek, ev)));
                            continue;
                        }
                    }
                    prop_assert_eq!(lru.insert(k, v), None);
                }
                1 => {
                    // get (touches recency)
                    let expect = shadow.iter().position(|&(sk, _)| sk == k);
                    if let Some(pos) = expect {
                        let entry = shadow.remove(pos);
                        shadow.insert(0, entry);
                        prop_assert_eq!(lru.get(&k), Some(&entry.1));
                    } else {
                        prop_assert_eq!(lru.get(&k), None);
                    }
                }
                _ => {
                    // remove
                    let expect = shadow.iter().position(|&(sk, _)| sk == k)
                        .map(|pos| shadow.remove(pos).1);
                    prop_assert_eq!(lru.remove(&k), expect);
                }
            }
            prop_assert_eq!(lru.len(), shadow.len());
        }
        // Final recency order must agree.
        let got: Vec<(u64, u64)> = lru.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, shadow);
    }
}

// ---------------------------------------------------------------- queue

proptest! {
    /// A server pool never starts a job before its arrival, never overlaps
    /// more jobs than servers, and conserves busy time.
    #[test]
    fn server_pool_invariants(
        k in 1usize..5,
        jobs in proptest::collection::vec((0u64..10_000, 1u64..500), 1..100),
    ) {
        let mut pool = ServerPool::new(k);
        let mut intervals = Vec::new();
        let mut busy = Time::ZERO;
        // Admissions must be in arrival order for the FIFO shadow to hold.
        let mut sorted = jobs.clone();
        sorted.sort();
        for (arr, dur) in &sorted {
            let arrival = Time::from_ns(*arr);
            let service = Time::from_ns(*dur);
            let (start, finish) = pool.admit(arrival, service);
            prop_assert!(start >= arrival);
            prop_assert_eq!(finish - start, service);
            intervals.push((start, finish));
            busy += service;
        }
        prop_assert_eq!(pool.busy_total(), busy);
        // At any job start, strictly fewer than k other jobs may overlap.
        for (i, &(s, _)) in intervals.iter().enumerate() {
            let overlapping = intervals
                .iter()
                .enumerate()
                .filter(|&(j, &(s2, f2))| j != i && s2 <= s && s < f2)
                .count();
            prop_assert!(overlapping < k, "{} overlapping >= {} servers", overlapping, k);
        }
    }
}

// ---------------------------------------------------------------- network

struct World {
    cluster: Cluster,
    delivered: Vec<(Time, u32, u64)>,
}

impl Protocol for World {
    type Msg = u64;
    fn cluster(&mut self) -> &mut Cluster {
        &mut self.cluster
    }
    fn cluster_ref(&self) -> &Cluster {
        &self.cluster
    }
    fn deliver(eng: &mut Engine<Self>, env: Envelope<u64>) {
        let tag = match env.packet {
            Packet::User(v) => v,
            Packet::PutDone { op } => 1_000_000 + op.raw(),
            Packet::GetDone { op } => 2_000_000 + op.raw(),
            Packet::AmoDone { op, .. } => 6_000_000 + op.raw(),
            Packet::RemoteNote { tag, .. } => 3_000_000 + tag,
            Packet::XlateMiss { block } => 5_000_000 + block,
            Packet::Nack { op, .. } => 4_000_000 + op.raw(),
        };
        let now = eng.now();
        eng.state.delivered.push((now, env.dst, tag));
    }
}

proptest! {
    /// Messages between a fixed pair are delivered FIFO (the NIC ports
    /// serialize them), and every message is delivered exactly once.
    #[test]
    fn point_to_point_fifo(count in 1usize..40, sizes in proptest::collection::vec(1u32..4096, 40)) {
        let mut eng = Engine::new(
            World { cluster: Cluster::new(2, NetConfig::ideal(), 1 << 20), delivered: Vec::new() },
            3,
        );
        for (i, &size) in sizes.iter().enumerate().take(count) {
            send_user(&mut eng, 0, 1, size, i as u64);
        }
        eng.run();
        let tags: Vec<u64> = eng.state.delivered.iter().map(|&(_, _, t)| t).collect();
        prop_assert_eq!(tags, (0..count as u64).collect::<Vec<_>>());
    }

    /// Every issued put (to a valid virtual block) eventually produces
    /// exactly one completion, and the bytes land where addressed.
    #[test]
    fn puts_complete_exactly_once(
        writes in proptest::collection::vec((0u64..16, 1usize..64), 1..50),
    ) {
        let mut eng = Engine::new(
            World { cluster: Cluster::new(3, NetConfig::ideal(), 1 << 24), delivered: Vec::new() },
            11,
        );
        let base = eng.state.cluster.mem_mut(2).alloc_block(16).unwrap();
        eng.state.cluster.install_xlate(2, 9, XlateEntry { base, len: 1 << 16, generation: 1 });
        let mut ops = Vec::new();
        for (slot, len) in &writes {
            let op = eng.state.cluster.alloc_op();
            ops.push(op.raw());
            rdma_put(&mut eng, 0, PutReq {
                target: 2,
                dst: RdmaTarget::Virt { block: 9, offset: slot * 1024 },
                data: vec![(op.raw() & 0xFF) as u8; *len],
                op,
                remote_tag: None,
                ttl: 2,
                class: FaultClass::Request,
            });
        }
        eng.run();
        let mut done: Vec<u64> = eng
            .state
            .delivered
            .iter()
            .filter(|&&(_, dst, tag)| dst == 0 && (1_000_000..2_000_000).contains(&tag))
            .map(|&(_, _, tag)| tag - 1_000_000)
            .collect();
        done.sort_unstable();
        let mut expect = ops.clone();
        expect.sort_unstable();
        prop_assert_eq!(done, expect);
    }
}

proptest! {
    /// The oversubscribed switch core conserves work: arrival order in,
    /// non-decreasing clear-out times, and total occupancy equals the sum of
    /// per-transit durations.
    #[test]
    fn switch_core_serializes(
        sizes in proptest::collection::vec(1u32..100_000, 1..40),
    ) {
        let cfg = NetConfig {
            oversubscription: 4,
            ..NetConfig::ideal()
        };
        let mut cluster = Cluster::new(4, cfg, 1 << 20);
        let mut last = Time::ZERO;
        for (i, &bytes) in sizes.iter().enumerate() {
            let cleared = cluster.switch_reserve(Time::from_ns(i as u64), bytes);
            prop_assert!(cleared >= last, "switch went backwards");
            prop_assert!(cleared >= Time::from_ns(i as u64));
            last = cleared;
        }
    }

    /// A multi-port NIC never overlaps more transmissions than it has
    /// ports, and saturates exactly at `ports × serial throughput`.
    #[test]
    fn multiport_nic_overlap_bound(
        ports in 1usize..6,
        jobs in proptest::collection::vec(1u64..500, 1..60),
    ) {
        let mut nic = netsim::Nic::new(8, ports);
        let mut intervals = Vec::new();
        for &dur in &jobs {
            let (s, f) = nic.tx_reserve(Time::ZERO, Time::from_ns(dur));
            intervals.push((s, f));
        }
        for (i, &(s, _)) in intervals.iter().enumerate() {
            let overlapping = intervals
                .iter()
                .enumerate()
                .filter(|&(j, &(s2, f2))| j != i && s2 <= s && s < f2)
                .count();
            prop_assert!(overlapping < ports, "{} overlaps >= {} ports", overlapping, ports);
        }
        // Conservation: the last finish is at least total/ports.
        let total: u64 = jobs.iter().sum();
        let makespan = intervals.iter().map(|&(_, f)| f).max().unwrap();
        prop_assert!(makespan >= Time::from_ns(total / ports as u64));
    }

    /// Wire jitter is bounded by the configured maximum: arrivals of a
    /// single message never exceed base latency + jitter + serialization.
    #[test]
    fn jitter_is_bounded(jitter in 0u64..5_000, seed in any::<u64>()) {
        let cfg = NetConfig {
            jitter_ns: jitter,
            ..NetConfig::ideal()
        };
        let mut eng = Engine::new(
            World { cluster: Cluster::new(2, cfg, 1 << 20), delivered: Vec::new() },
            seed,
        );
        send_user(&mut eng, 0, 1, 64, 1);
        eng.run();
        let (t, _, _) = eng.state.delivered[0];
        // ideal: o_send 10 + tx 74 + L 100 + rx 74 = 258ns base.
        let base = Time::from_ns(258);
        prop_assert!(t >= base, "{t} < {base}");
        prop_assert!(t <= base + Time::from_ns(jitter), "{t} exceeds jitter bound");
    }
}

// ---------------------------------------------------------------- optable

proptest! {
    /// Slab churn never resurrects a stale handle: once an `OpId` is
    /// removed, every later lookup with it fails even after its slot is
    /// reused arbitrarily many times, and live handles always return
    /// exactly their value.
    #[test]
    fn optable_churn_never_resurrects_stale_ids(
        ops in proptest::collection::vec(0u8..8, 1..400),
        seed in any::<u64>(),
    ) {
        use netsim::{OpError, OpTable};
        let mut table: OpTable<u64> = OpTable::new();
        let mut live: Vec<(netsim::OpId, u64)> = Vec::new();
        let mut retired: Vec<netsim::OpId> = Vec::new();
        let mut next_val = seed;
        for op in ops {
            match op {
                // Bias toward churn: insert on 0-2, remove on 3-5.
                0..=2 => {
                    next_val = next_val.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let id = table.insert(next_val);
                    prop_assert!(!id.is_none());
                    live.push((id, next_val));
                }
                3..=5 => {
                    if !live.is_empty() {
                        let pick = (next_val as usize) % live.len();
                        let (id, v) = live.swap_remove(pick);
                        prop_assert_eq!(table.remove(id).unwrap(), v);
                        retired.push(id);
                    }
                }
                _ => {
                    // Probe every retired handle: none may resolve.
                    for &id in &retired {
                        prop_assert!(matches!(
                            table.get(id),
                            Err(OpError::StaleOp { .. }) | Err(OpError::UnknownOp { .. })
                        ));
                        prop_assert!(table.remove(id).is_err());
                    }
                }
            }
        }
        // Final audit: live handles resolve to their values, retired never.
        prop_assert_eq!(table.len(), live.len());
        for (id, v) in live {
            prop_assert_eq!(*table.get(id).unwrap(), v);
        }
        for id in retired {
            prop_assert!(table.get(id).is_err());
        }
    }
}

// ---------------------------------------------------------------- rings

use netsim::{Desc, PushOutcome, Ring, RingConfig, RingSet};

fn rdesc(seq: u64, bytes: u32) -> Desc<u64> {
    Desc {
        item: seq,
        bytes,
        kind: "put",
        enqueued: Time::ZERO,
    }
}

proptest! {
    /// Push/drain interleavings against a naive shadow queue: FIFO order
    /// across slot wraparound, occupancy bounded by `depth`, byte
    /// accounting exact, and every flush outcome matching the configured
    /// thresholds. Tiny depths with long op streams force the free-running
    /// head/tail counters to wrap many times.
    #[test]
    fn ring_matches_shadow(
        depth in 1usize..8,
        batch in 1usize..12,
        max_bytes in 1u32..200,
        ops in proptest::collection::vec((0u8..5, 1u32..64), 0..400),
    ) {
        let cfg = RingConfig {
            depth,
            doorbell_batch: batch,
            max_bytes,
            ..RingConfig::default()
        };
        let mut ring: Ring<u64> = Ring::new(cfg);
        let mut shadow: std::collections::VecDeque<(u64, u32)> = Default::default();
        let mut next = 0u64;
        let mut delivered: Vec<u64> = Vec::new();
        let check_drain = |ring: &mut Ring<u64>,
                               shadow: &mut std::collections::VecDeque<(u64, u32)>,
                               delivered: &mut Vec<u64>| {
            for d in ring.drain() {
                let (want, wb) = shadow.pop_front().expect("ring ahead of shadow");
                prop_assert_eq!((d.item, d.bytes), (want, wb));
                delivered.push(d.item);
            }
            prop_assert!(shadow.is_empty(), "drain left shadow residue");
        };
        for (op, b) in ops {
            if op == 0 && !shadow.is_empty() {
                // A spontaneous doorbell (the moderation timer firing).
                check_drain(&mut ring, &mut shadow, &mut delivered);
            } else {
                let seq = next;
                next += 1;
                let outcome = ring.push(rdesc(seq, b));
                shadow.push_back((seq, b));
                let occ = shadow.len();
                let bytes: u64 = shadow.iter().map(|&(_, sb)| sb as u64).sum();
                let must_flush =
                    occ >= batch || bytes >= max_bytes as u64 || occ == depth;
                match outcome {
                    PushOutcome::Flush => {
                        prop_assert!(must_flush, "flush below every threshold");
                        check_drain(&mut ring, &mut shadow, &mut delivered);
                    }
                    PushOutcome::Armed(_) => {
                        prop_assert!(!must_flush, "armed past a flush threshold");
                        prop_assert_eq!(occ, 1);
                    }
                    PushOutcome::Buffered => {
                        prop_assert!(!must_flush, "buffered past a flush threshold");
                        prop_assert!(occ > 1);
                    }
                }
            }
            prop_assert_eq!(ring.len(), shadow.len());
            prop_assert!(ring.len() <= depth);
            prop_assert_eq!(
                ring.bytes(),
                shadow.iter().map(|&(_, sb)| sb as u64).sum::<u64>()
            );
        }
        check_drain(&mut ring, &mut shadow, &mut delivered);
        // Exactly-once delivery, in post order, across every wraparound.
        prop_assert_eq!(delivered, (0..next).collect::<Vec<_>>());
    }

    /// A timer armed against epoch E stays due exactly until the next
    /// drain: pushes never invalidate it, every drain does, and a due
    /// timer always has descriptors behind it.
    #[test]
    fn ring_timer_epoch_discipline(ops in proptest::collection::vec(0u8..4, 1..300)) {
        let cfg = RingConfig {
            depth: 16,
            doorbell_batch: usize::MAX,
            max_bytes: u32::MAX,
            ..RingConfig::default()
        };
        let mut ring: Ring<u64> = Ring::new(cfg);
        // (epoch the timer was armed with, has a drain happened since).
        let mut armed: Option<(u64, bool)> = None;
        for op in ops {
            if op == 3 {
                ring.drain();
                if let Some(a) = armed.as_mut() {
                    a.1 = true;
                }
            } else {
                match ring.push(rdesc(0, 1)) {
                    PushOutcome::Armed(e) => armed = Some((e, false)),
                    PushOutcome::Flush => {
                        // Full ring: the caller-contract drain.
                        ring.drain();
                        if let Some(a) = armed.as_mut() {
                            a.1 = true;
                        }
                    }
                    PushOutcome::Buffered => {}
                }
            }
            if let Some((e, drained_since)) = armed {
                prop_assert_eq!(
                    ring.timer_due(e),
                    !drained_since && !ring.is_empty(),
                    "timer_due diverged from the epoch model"
                );
            }
        }
    }

    /// The adaptive window controller is a pure function of its observed
    /// history: identical observation sequences produce identical decision
    /// sequences (and identical final state), and the multiplier never
    /// leaves `[1, max_mult]` no matter the history.
    #[test]
    fn window_controller_is_pure_and_bounded(
        max_mult in 1u32..12,
        widen_at in 1u64..2_000,
        narrow_at in 0u64..200,
        hysteresis in 0u32..5,
        serial_below in 0u64..40,
        obs in proptest::collection::vec((0u64..5_000, 0u64..10_000), 0..400),
    ) {
        use netsim::{AdaptiveWindow, WindowController};
        let cfg = AdaptiveWindow {
            max_mult,
            widen_at,
            narrow_at,
            hysteresis,
            serial_below,
            ewma_shift: 2,
        };
        let run = |cfg: AdaptiveWindow| {
            let mut c = WindowController::new(cfg);
            let mut log = Vec::new();
            for &(e, p) in &obs {
                let d = c.observe(e, p);
                log.push((d, c.mult(), c.serial(), c.ewma()));
            }
            (log, c)
        };
        let (log_a, end_a) = run(cfg);
        let (log_b, end_b) = run(cfg);
        prop_assert_eq!(&log_a, &log_b, "controller decisions depend on more than history");
        prop_assert_eq!(end_a, end_b);
        for &(_, mult, _, _) in &log_a {
            prop_assert!(mult >= 1 && mult <= max_mult.max(1), "mult {} escaped bounds", mult);
        }
    }

    /// The AIMD ring controller is likewise pure and bounded: identical
    /// flush histories give identical decision sequences, and the
    /// effective batch never leaves `[floor, ceil]`.
    #[test]
    fn ring_controller_is_pure_and_bounded(
        floor in 1u32..16,
        extra in 0u32..64,
        add in 1u32..8,
        base in 1u32..128,
        flushes in proptest::collection::vec((0u32..200, any::<bool>()), 0..400),
    ) {
        use netsim::{AdaptiveRing, RingController};
        let cfg = AdaptiveRing { floor, ceil: floor + extra, add, ewma_shift: 2 };
        let run = |cfg: AdaptiveRing| {
            let mut c = RingController::new(cfg, base);
            let mut log = Vec::new();
            for &(occ, timer) in &flushes {
                let d = c.on_flush(occ, timer);
                log.push((d, c.eff_batch(), c.ewma()));
            }
            (log, c)
        };
        let (log_a, end_a) = run(cfg);
        let (log_b, end_b) = run(cfg);
        prop_assert_eq!(&log_a, &log_b, "controller decisions depend on more than history");
        prop_assert_eq!(end_a, end_b);
        for &(_, batch, _) in &log_a {
            prop_assert!(batch >= floor && batch <= floor + extra,
                "eff_batch {} escaped [{}, {}]", batch, floor, floor + extra);
        }
    }

    /// The same push/drain schedule over a `RingSet` replays bit-identically:
    /// drain contents, doorbell/desc/coalesce counters, and occupancy peaks
    /// are pure functions of the op sequence (the determinism the moderation
    /// timers lean on).
    #[test]
    fn ringset_replays_identically(
        ops in proptest::collection::vec((0u32..5, 1u32..48), 0..300),
    ) {
        let run = |ops: &[(u32, u32)]| {
            let cfg = RingConfig {
                doorbell_batch: 4,
                ..RingConfig::default()
            };
            let mut rs: RingSet<u64> = RingSet::new(cfg);
            let mut log: Vec<(u32, u64)> = Vec::new();
            let mut seq = 0u64;
            for &(peer, b) in ops {
                seq += 1;
                if let PushOutcome::Flush = rs.push(peer, rdesc(seq, b)) {
                    for d in rs.drain(peer) {
                        log.push((peer, d.item));
                    }
                }
            }
            for peer in rs.busy_peers() {
                for d in rs.drain(peer) {
                    log.push((peer, d.item));
                }
            }
            let s = rs.stats();
            (log, s.doorbells, s.descs, s.coalesced, s.max_occupancy)
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }
}
