//! Shadow-mode equivalence: the sharded engine must replay the sequential
//! engine bit-for-bit.
//!
//! A toy [`SplitWorld`] runs the same randomly generated program — bouncing
//! messages, one-sided puts/gets, interleaved `run_steps`/`run_until`
//! driving — once on the plain sequential [`Engine`] and once per shard
//! count on [`ShardedEngine`]. At every control point the `(trace hash,
//! clock, executed count, world digest)` snapshot must be identical: the
//! trace hash folds every executed `(time, seq)` pair, so equality proves
//! the merged parallel pop order *is* the sequential order, and the world
//! digest (per-locality delivery logs + memory contents + counters + fault
//! stats) proves the events also observed identical state.
//!
//! Three fabrics cover the three tail regimes: wire-pure (tails inline on
//! the lanes), jittery (tails deferred for the RNG), and faulty (tails
//! deferred for the fault plane, including drops/dups/corruption/flaps/
//! partitions).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use netsim::engine::trace_mix;
use netsim::rng::Xoshiro256;
use netsim::shard::ShardMap;
use netsim::{
    rdma_get, rdma_put, send_user_classed, Cluster, Engine, Envelope, FaultClass, FaultPlan,
    FaultPlane, FaultRates, GetReq, LinkFlap, LocalityId, NetConfig, OpId, Packet, Partition,
    PhysAddr, Protocol, PutReq, RdmaTarget, ShardedEngine, SharedState, SplitWorld, Time,
};

/// Bytes in each locality's scratch block (memory class 12).
const BLOCK: usize = 4096;

struct ToyData {
    cluster: Cluster,
    /// Per-locality log of delivered packets (hashed). Strictly
    /// lane-disjoint: locality `d`'s handler appends only to `hits[d]`.
    hits: Vec<Vec<u64>>,
    /// Per-locality scratch block base address.
    bases: Vec<PhysAddr>,
}

/// The toy protocol world: user messages are `u64` hop counters that
/// bounce around the cluster until they decay to zero; every delivery is
/// logged into the destination's hit vector.
struct ToyWorld {
    data: SharedState<ToyData>,
}

impl Protocol for ToyWorld {
    type Msg = u64;

    fn cluster(&mut self) -> &mut Cluster {
        &mut self.data.cluster
    }

    fn cluster_ref(&self) -> &Cluster {
        &self.data.cluster
    }

    fn deliver(eng: &mut Engine<ToyWorld>, env: Envelope<u64>) {
        let now = eng.now();
        let tag = match &env.packet {
            Packet::User(v) => 0x1_0000 ^ *v,
            Packet::PutDone { op } => 0x2_0000 ^ op.raw(),
            Packet::GetDone { op } => 0x3_0000 ^ op.raw(),
            Packet::AmoDone { op, result } => 0x7_0000 ^ op.raw() ^ result.old,
            Packet::RemoteNote { tag, len } => 0x4_0000 ^ *tag ^ (u64::from(*len) << 20),
            Packet::XlateMiss { block } => 0x5_0000 ^ *block,
            Packet::Nack { op, .. } => 0x6_0000 ^ op.raw(),
        };
        let dst = env.dst;
        let h = trace_mix(trace_mix(tag, u64::from(env.src)), now.ps());
        eng.state.data.hits[dst as usize].push(h);
        if let Packet::User(hops) = env.packet {
            if hops > 0 {
                let n = eng.state.data.cluster.len() as u64;
                let next = ((u64::from(dst) + hops) % n) as LocalityId;
                let bytes = 64 + (hops % 480) as u32;
                send_user_classed(eng, dst, next, bytes, hops - 1, FaultClass::Request);
            }
        }
    }
}

// SAFETY: deliveries only mutate the destination locality's slice of the
// world — `hits[dst]`, its memory arena, its NIC and counters — and the
// destination is always owned by the executing lane. Shared wire state
// (switch clock, jitter RNG, fault plane) is reached only through the
// `defer_wire` tails inside netsim's own send/put/get paths. Every event
// closure captures only `Copy` data and owned `Vec<u8>` payloads.
unsafe impl SplitWorld for ToyWorld {
    fn lane_handle(&mut self, _lane: u32, _map: ShardMap) -> ToyWorld {
        ToyWorld {
            // SAFETY: the ShardedEngine drops lane handles before the
            // owning control world.
            data: unsafe { self.data.alias() },
        }
    }
}

fn build_world(n: usize, cfg: NetConfig, plan: Option<FaultPlan>) -> ToyWorld {
    let mut cluster = Cluster::new(n, cfg, 1 << 22);
    if let Some(p) = plan {
        cluster.faults = Some(FaultPlane::new(p));
    }
    let bases: Vec<PhysAddr> = (0..n)
        .map(|l| {
            cluster
                .loc_mut(l as LocalityId)
                .mem
                .alloc_block(12)
                .expect("scratch block")
        })
        .collect();
    ToyWorld {
        data: SharedState::new(ToyData {
            cluster,
            hits: vec![Vec::new(); n],
            bases,
        }),
    }
}

/// One step of the generated driver program.
enum Step {
    Send {
        src: LocalityId,
        dst: LocalityId,
        hops: u64,
        bytes: u32,
    },
    Put {
        src: LocalityId,
        dst: LocalityId,
        offset: u64,
        len: usize,
        op: u64,
    },
    Get {
        src: LocalityId,
        dst: LocalityId,
        offset: u64,
        len: u32,
        op: u64,
    },
    /// Exact serial micro-stepping: at most this many events.
    Steps(u64),
    /// Bounded progress: run until this absolute instant (ns).
    Until(u64),
    /// Drain to quiescence.
    Run,
}

fn gen_program(seed: u64, n: usize, count: usize) -> Vec<Step> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut steps = Vec::with_capacity(count + 1);
    let mut until_ns = 0u64;
    for i in 0..count as u64 {
        let r = rng.next_u64();
        let src = (rng.next_u64() % n as u64) as LocalityId;
        let dst = (rng.next_u64() % n as u64) as LocalityId;
        steps.push(match r % 10 {
            0..=3 => Step::Send {
                src,
                dst,
                hops: r >> 4 & 0x7,
                bytes: 32 + (r >> 8 & 0x3ff) as u32,
            },
            4..=5 => Step::Put {
                src,
                dst,
                offset: (r >> 4 & 0xf) * 240,
                len: 16 + (r >> 8 & 0x3) as usize * 16,
                op: 0x1_0000 + i,
            },
            6..=7 => Step::Get {
                src,
                dst,
                offset: (r >> 4 & 0xf) * 240,
                len: 16 + (r >> 8 & 0x3) as u32 * 16,
                op: 0x5_0000 + i,
            },
            8 => Step::Steps(1 + (r >> 4) % 40),
            _ => {
                until_ns += 500 + (r >> 4) % 4000;
                Step::Until(until_ns)
            }
        });
    }
    steps.push(Step::Run);
    steps
}

/// Everything observable about an engine at a control point.
#[derive(Debug, PartialEq, Eq, Clone)]
struct Snapshot {
    trace_hash: u64,
    now_ps: u64,
    executed: u64,
    pending: usize,
    digest: u64,
}

fn world_digest(w: &ToyWorld) -> u64 {
    let d = &*w.data;
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for hits in &d.hits {
        h = trace_mix(h, hits.len() as u64);
        for &v in hits {
            h = trace_mix(h, v);
        }
    }
    let mut dh = DefaultHasher::new();
    for (l, &base) in d.bases.iter().enumerate() {
        let mem = d
            .cluster
            .loc(l as LocalityId)
            .mem
            .read(base, BLOCK)
            .expect("scratch block readable");
        mem.hash(&mut dh);
        format!("{:?}", d.cluster.loc(l as LocalityId).counters).hash(&mut dh);
    }
    if let Some(f) = &d.cluster.faults {
        format!("{:?}", f.stats).hash(&mut dh);
    }
    trace_mix(h, dh.finish())
}

/// The common face of `Engine<ToyWorld>` and `ShardedEngine<ToyWorld>` the
/// shadow runner drives.
trait Driver {
    fn issue(&mut self, loc: LocalityId, f: Box<dyn FnOnce(&mut Engine<ToyWorld>)>);
    fn clock(&self) -> Time;
    fn go(&mut self) -> u64;
    fn go_until(&mut self, t: Time) -> u64;
    fn go_steps(&mut self, n: u64) -> u64;
    fn snapshot(&mut self) -> Snapshot;
}

impl Driver for Engine<ToyWorld> {
    fn issue(&mut self, _loc: LocalityId, f: Box<dyn FnOnce(&mut Engine<ToyWorld>)>) {
        f(self);
    }
    fn clock(&self) -> Time {
        self.now()
    }
    fn go(&mut self) -> u64 {
        self.run()
    }
    fn go_until(&mut self, t: Time) -> u64 {
        self.run_until(t)
    }
    fn go_steps(&mut self, n: u64) -> u64 {
        self.run_steps(n)
    }
    fn snapshot(&mut self) -> Snapshot {
        Snapshot {
            trace_hash: self.trace_hash(),
            now_ps: self.now().ps(),
            executed: self.events_executed(),
            pending: self.events_pending(),
            digest: world_digest(&self.state),
        }
    }
}

impl Driver for ShardedEngine<ToyWorld> {
    fn issue(&mut self, loc: LocalityId, f: Box<dyn FnOnce(&mut Engine<ToyWorld>)>) {
        self.drive_at(loc, |eng| f(eng));
    }
    fn clock(&self) -> Time {
        self.now()
    }
    fn go(&mut self) -> u64 {
        self.run()
    }
    fn go_until(&mut self, t: Time) -> u64 {
        self.run_until(t)
    }
    fn go_steps(&mut self, n: u64) -> u64 {
        self.run_steps(n)
    }
    fn snapshot(&mut self) -> Snapshot {
        Snapshot {
            trace_hash: self.trace_hash(),
            now_ps: self.now().ps(),
            executed: self.events_executed(),
            pending: self.events_pending(),
            digest: world_digest(self.state_ref()),
        }
    }
}

fn apply(d: &mut dyn Driver, bases: &[PhysAddr], step: &Step, snaps: &mut Vec<Snapshot>) {
    match *step {
        Step::Send {
            src,
            dst,
            hops,
            bytes,
        } => d.issue(
            src,
            Box::new(move |eng| {
                send_user_classed(eng, src, dst, bytes, hops, FaultClass::Request);
            }),
        ),
        Step::Put {
            src,
            dst,
            offset,
            len,
            op,
        } => {
            let base_dst = bases[dst as usize];
            let data: Vec<u8> = (0..len).map(|k| (op ^ k as u64) as u8).collect();
            d.issue(
                src,
                Box::new(move |eng| {
                    rdma_put(
                        eng,
                        src,
                        PutReq {
                            target: dst,
                            dst: RdmaTarget::Phys(base_dst + offset),
                            data,
                            op: OpId::from_raw(op),
                            remote_tag: if op % 3 == 0 { Some(op) } else { None },
                            ttl: 3,
                            class: FaultClass::Request,
                        },
                    );
                }),
            );
        }
        Step::Get {
            src,
            dst,
            offset,
            len,
            op,
        } => {
            let base_dst = bases[dst as usize];
            let base_src = bases[src as usize];
            d.issue(
                src,
                Box::new(move |eng| {
                    rdma_get(
                        eng,
                        src,
                        GetReq {
                            target: dst,
                            src: RdmaTarget::Phys(base_dst + offset),
                            len,
                            local: base_src + offset,
                            op: OpId::from_raw(op),
                            ttl: 3,
                            class: FaultClass::Request,
                        },
                    );
                }),
            );
        }
        Step::Steps(n) => {
            d.go_steps(n);
            snaps.push(d.snapshot());
        }
        Step::Until(ns) => {
            // The generated cursor can fall behind the clock after a full
            // drain; never ask the engine to run to the past.
            d.go_until(Time::from_ns(ns).max(d.clock()));
            snaps.push(d.snapshot());
        }
        Step::Run => {
            d.go();
            snaps.push(d.snapshot());
        }
    }
}

/// Run `program` sequentially and under every shard count in `shards`,
/// asserting snapshot-for-snapshot equality.
fn assert_shadow(n: usize, cfg: NetConfig, plan: Option<FaultPlan>, seed: u64, shards: &[usize]) {
    let program = gen_program(seed, n, 64);

    let world = build_world(n, cfg, plan.clone());
    let bases = world.data.bases.clone();
    let mut reference = Engine::new(world, 42);
    let mut ref_snaps = Vec::new();
    for step in &program {
        apply(&mut reference, &bases, step, &mut ref_snaps);
    }
    assert!(
        ref_snaps.last().expect("program ends with Run").pending == 0,
        "reference program did not quiesce"
    );
    assert!(
        reference.events_executed() > 0,
        "degenerate program: no events"
    );

    for &k in shards {
        let world = build_world(n, cfg, plan.clone());
        let mut sharded = ShardedEngine::new(world, 42, k);
        let mut snaps = Vec::new();
        for step in &program {
            apply(&mut sharded, &bases, step, &mut snaps);
        }
        assert_eq!(
            snaps, ref_snaps,
            "sharded run (shards={k}, seed={seed}) diverged from sequential"
        );
    }
}

fn jittery(mut cfg: NetConfig) -> NetConfig {
    cfg.jitter_ns = 400;
    cfg
}

fn chaotic_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        rates: FaultRates {
            drop: 0.02,
            dup: 0.03,
            corrupt: 0.02,
            delay_p: 0.05,
            delay_min_ns: 100,
            delay_max_ns: 2_500,
            ..FaultRates::lossless()
        },
        link_rates: vec![(
            0,
            1,
            FaultRates {
                drop: 0.2,
                ..FaultRates::lossless()
            },
        )],
        flaps: vec![LinkFlap {
            src: 1,
            dst: 2,
            from: Time::from_ns(2_000),
            to: Time::from_ns(60_000),
        }],
        partitions: vec![Partition {
            from: Time::from_ns(5_000),
            to: Time::from_ns(90_000),
            group_a: vec![0, 3],
        }],
    }
}

#[test]
fn shadow_pure_fabric_matches_sequential() {
    // ib_fdr is wire-pure: lanes run their defer_wire tails inline.
    for seed in [1, 7, 1234] {
        assert_shadow(12, NetConfig::ib_fdr(), None, seed, &[1, 2, 4, 8]);
    }
}

#[test]
fn shadow_jittery_fabric_matches_sequential() {
    // Jitter draws from the global engine RNG: tails must defer to the
    // barrier and replay in merged order.
    for seed in [3, 99] {
        assert_shadow(10, jittery(NetConfig::ideal()), None, seed, &[1, 2, 4, 8]);
    }
}

#[test]
fn shadow_faulty_fabric_matches_sequential() {
    // Drops, dups, corruption, delay spikes, a hot link, a flap, and a
    // partition — all decided on the fault plane's serial RNG stream.
    for seed in [17, 404] {
        assert_shadow(
            10,
            jittery(NetConfig::ib_fdr()),
            Some(chaotic_plan(seed ^ 0xfeed)),
            seed,
            &[2, 4, 8],
        );
    }
}

#[test]
fn shadow_lossless_plan_is_free() {
    // An installed-but-lossless plan must not move anything either.
    assert_shadow(
        8,
        NetConfig::ib_fdr(),
        Some(FaultPlan::lossless(5)),
        21,
        &[4],
    );
}

#[test]
fn shadow_more_lanes_than_localities_clamps() {
    assert_shadow(3, NetConfig::ib_fdr(), None, 11, &[8]);
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random programs over random cluster sizes: sequential and
        /// sharded executions are indistinguishable.
        #[test]
        fn random_programs_shadow(
            seed in 0u64..1_000_000,
            n in 2usize..16,
            shards in 2usize..6,
        ) {
            let faulty = seed % 2 == 1;
            let plan = faulty.then(|| chaotic_plan(seed));
            let cfg = if faulty {
                jittery(NetConfig::ib_fdr())
            } else {
                NetConfig::ib_fdr()
            };
            assert_shadow(n, cfg, plan, seed, &[shards]);
        }
    }
}
