//! Photon middleware tuning parameters.

use netsim::{RingConfig, Time};

/// Configuration of a [`crate::PhotonEndpoint`].
///
/// The defaults mirror the published Photon configuration on FDR InfiniBand:
/// a 4 KiB eager threshold, 64-deep ledgers, and an enabled registration
/// cache. Ablations A1/A2 sweep `rcache_enabled` and `eager_threshold`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhotonConfig {
    /// Two-sided messages at or below this payload size travel eagerly
    /// (data inline, one copy at the target); above it the rendezvous
    /// RTS/CTS protocol runs (two extra control latencies, zero-copy).
    pub eager_threshold: u32,
    /// Per-peer eager-ledger depth: the credit window for eager sends.
    pub ledger_slots: usize,
    /// Target-side copy cost out of the eager buffer, ps per byte.
    pub copy_per_byte_ps: u64,
    /// Target-side cost of one tag-matching pass (queue walk + descriptor
    /// handling) on the two-sided path.
    pub match_overhead: Time,
    /// Whether the registration cache is active (ablation A1). When
    /// disabled every registered-buffer RMA pays the full pin cost.
    pub rcache_enabled: bool,
    /// Registration-cache capacity, in pages.
    pub rcache_pages: usize,
    /// Fixed cost of a memory-registration (pin) syscall.
    pub reg_base: Time,
    /// Incremental cost per newly pinned page.
    pub reg_per_page: Time,
    /// Page size for registration accounting.
    pub page_bytes: u64,
    /// Descriptor-ring issue path: when set, PWC puts/gets/AMOs post into
    /// per-peer submission rings (batched doorbells) and NIC completions
    /// coalesce under the moderation timer. `None` (the default) keeps the
    /// one-doorbell-per-op schedules the golden trace pins are built on.
    pub ring: Option<RingConfig>,
}

impl Default for PhotonConfig {
    fn default() -> PhotonConfig {
        PhotonConfig {
            eager_threshold: 4096,
            ledger_slots: 64,
            copy_per_byte_ps: 25, // ~40 GB/s memcpy
            match_overhead: Time::from_ns(250),
            rcache_enabled: true,
            rcache_pages: 1 << 16,
            reg_base: Time::from_us(10),
            reg_per_page: Time::from_ns(180),
            page_bytes: 4096,
            ring: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PhotonConfig::default();
        assert!(c.eager_threshold >= 1024);
        assert!(c.ledger_slots >= 1);
        assert!(c.rcache_enabled);
        assert!(c.reg_base > Time::ZERO);
        assert!(c.ring.is_none(), "rings are strictly opt-in");
    }

    #[test]
    fn ring_config_is_opt_in() {
        let c = PhotonConfig {
            ring: Some(RingConfig::default()),
            ..PhotonConfig::default()
        };
        assert_eq!(c.ring.unwrap().doorbell_batch, 16);
    }
}
