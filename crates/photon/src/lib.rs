//! # photon — RMA middleware reproduction
//!
//! A reproduction of the Photon remote-memory-access middleware (Kissel &
//! Swany, IPDRM'16) that HPX-5's network layer — and this paper's
//! network-managed address space — is built on. Photon's defining primitive
//! is **put/get-with-completion (PWC)**: a one-sided operation that delivers
//! a *local* completion identifier to the initiator and, for puts, a
//! *remote* completion identifier into a ledger at the target, letting a
//! message-driven runtime attach rendezvous-free notifications to RDMA.
//!
//! Provided here, over the [`netsim`] substrate:
//!
//! * [`pwc_put`] / [`pwc_get`] — one-sided ops on physical *or* virtual
//!   (NIC-translated) targets, with local/remote completion callbacks;
//! * [`send`] / [`post_recv`] — two-sided tag-matched messaging with an
//!   eager path (payload inline, one copy) and a rendezvous RTS/CTS path
//!   (zero-copy RDMA) above [`PhotonConfig::eager_threshold`];
//! * credit-based flow control over per-peer eager ledgers;
//! * a registration cache ([`rcache::RegCache`]) modeling memory-pinning
//!   costs.
//!
//! The layer above implements [`PhotonWorld`]: it stores one
//! [`PhotonEndpoint`] per locality, embeds [`PhotonMsg`] in its wire enum,
//! and receives completion callbacks.

pub mod config;
pub mod matching;
pub mod rcache;

pub use config::PhotonConfig;
pub use matching::{MatchQueue, Unexpected, ANY_TAG};
pub use rcache::RegCache;

use netsim::{
    rdma_amo, rdma_get, rdma_put, send_user, AmoKey, AmoOp, AmoReq, AmoResult, Desc, DescSnapshot,
    Engine, FaultClass, GetReq, LocalityId, NackReason, OpId, OpKind, OpTable, Packet, PhysAddr,
    Protocol, PushOutcome, PutReq, RdmaTarget, Ring, RingSet, RingStats, Time, TraceKind,
};
use std::collections::{HashMap, VecDeque};

/// Tag bit reserved for Photon's internal rendezvous-completion notes.
/// Upper-layer `remote_tag`s must keep this bit clear.
pub const RDV_NOTE_BIT: u64 = 1 << 63;

/// Photon's wire-control messages, embedded into the world's message enum
/// via [`PhotonWorld::wrap`].
#[derive(Debug)]
pub enum PhotonMsg {
    /// Small message: payload travels inline, lands in the eager ledger.
    Eager {
        /// Match tag.
        tag: u64,
        /// Sender-side handle (returned by [`send`]).
        send_id: u64,
        /// Inline payload.
        data: Vec<u8>,
    },
    /// Rendezvous request-to-send for a large payload.
    Rts {
        /// Match tag.
        tag: u64,
        /// Sender-side handle.
        send_id: u64,
        /// Payload length.
        len: u32,
    },
    /// Clear-to-send: the receiver allocated and registered a landing
    /// buffer at physical address `dst`.
    Cts {
        /// Echoed sender handle.
        send_id: u64,
        /// Landing buffer in the receiver's arena.
        dst: PhysAddr,
    },
    /// One eager-ledger credit flowing back to the sender.
    CreditReturn,
}

/// Endpoint statistics (per locality).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhotonStats {
    /// Eager-path sends injected.
    pub eager_sends: u64,
    /// Rendezvous-path sends started.
    pub rdv_sends: u64,
    /// Sends that stalled waiting for eager credits.
    pub stalled_sends: u64,
    /// PWC puts initiated.
    pub pwc_puts: u64,
    /// PWC gets initiated.
    pub pwc_gets: u64,
    /// PWC active operations (NIC-executed AMOs) initiated.
    pub pwc_amos: u64,
    /// Credits returned to peers.
    pub credits_returned: u64,
    /// Completions/NACKs naming an unknown or stale [`OpId`], dropped.
    pub stale_completions: u64,
    /// Control messages that violated the protocol state machine (e.g. a
    /// CTS for an unknown rendezvous send), dropped.
    pub protocol_violations: u64,
    /// AMO descriptors that shared a submission doorbell with another AMO
    /// to the same responder (only counted with the ring path enabled).
    pub amo_batched: u64,
}

enum Pending {
    Pwc { ctx: OpId },
    RdvData { send_id: u64 },
}

/// A submission-ring descriptor payload: one not-yet-injected PWC op.
enum RingOp {
    Put(PutReq),
    Get(GetReq),
    Amo(AmoReq),
}

/// A completion buffered in the coalescing ring, waiting on the moderation
/// timer or the batch threshold.
enum CompEvent {
    /// A `PutDone`/`GetDone` naming endpoint-table handle `op`.
    Done { op: OpId },
    /// An `AmoDone` with its fetched result.
    AmoDone { op: OpId, result: AmoResult },
}

struct RdvSend {
    dst: LocalityId,
    data: Vec<u8>,
    local_src: Option<(PhysAddr, u64)>,
}

struct RdvRecv {
    src: LocalityId,
    tag: u64,
    addr: PhysAddr,
    len: u32,
    class: u8,
}

/// Per-locality Photon endpoint state.
pub struct PhotonEndpoint {
    /// Tuning parameters.
    pub cfg: PhotonConfig,
    /// Endpoint statistics.
    pub stats: PhotonStats,
    ops: OpTable<Pending>,
    rcache: RegCache,
    matching: MatchQueue,
    credits: HashMap<LocalityId, usize>,
    backlog: HashMap<LocalityId, VecDeque<(u64, u64, Vec<u8>)>>, // (tag, send_id, data)
    rdv_sends: HashMap<u64, RdvSend>,
    rdv_recvs: HashMap<u64, RdvRecv>,
    next_send_id: u64,
    remote_ledger: VecDeque<(u64, u32)>,
    /// Per-peer submission rings (`Some` iff [`PhotonConfig::ring`] is set).
    subq: Option<RingSet<RingOp>>,
    /// The completion-coalescing ring, moderated by
    /// [`netsim::RingConfig::moderation`].
    compq: Option<Ring<CompEvent>>,
}

impl PhotonEndpoint {
    /// Create an endpoint with the given configuration.
    pub fn new(cfg: PhotonConfig) -> PhotonEndpoint {
        PhotonEndpoint {
            rcache: RegCache::new(&cfg),
            stats: PhotonStats::default(),
            ops: OpTable::new(),
            matching: MatchQueue::new(),
            credits: HashMap::new(),
            backlog: HashMap::new(),
            rdv_sends: HashMap::new(),
            rdv_recvs: HashMap::new(),
            next_send_id: 0,
            remote_ledger: VecDeque::new(),
            subq: cfg.ring.map(RingSet::new),
            compq: cfg.ring.map(Ring::new),
            cfg,
        }
    }

    /// Pop the oldest unconsumed remote-completion ledger entry
    /// (`photon_probe_ledger` in the original API): `(tag, len)` of a PWC
    /// put that landed here. Entries accumulate alongside the
    /// [`PhotonWorld::pwc_remote`] callback; polling consumers drain them.
    pub fn probe_ledger(&mut self) -> Option<(u64, u32)> {
        self.remote_ledger.pop_front()
    }

    /// Unconsumed remote-ledger entries.
    pub fn ledger_depth(&self) -> usize {
        self.remote_ledger.len()
    }

    /// Registration-cache statistics: `(hits, misses)` in pages.
    pub fn rcache_stats(&self) -> (u64, u64) {
        (self.rcache.hits(), self.rcache.misses())
    }

    /// Outstanding one-sided operations.
    pub fn outstanding_ops(&self) -> usize {
        self.ops.len()
    }

    /// Fault injection: forget every in-flight one-sided op *without*
    /// delivering its completion, as if the NIC lost the control messages.
    /// Returns how many ops were dropped. The layers above only recover
    /// via their deadline sweep — exactly what the dropped-completion
    /// tests exercise.
    pub fn drop_pending_ops(&mut self) -> usize {
        self.ops.drain_filter(|_, _| true).len()
    }

    /// Retire one specific in-flight one-sided op *without* delivering its
    /// completion: the initiator has presumed it lost and is re-issuing.
    /// Any later echo of the old attempt then drops as stale instead of
    /// double-completing. Returns whether the op was still live.
    pub fn cancel_op(&mut self, op: OpId) -> bool {
        self.ops.remove(op).is_ok()
    }

    /// The matching engine (exposed for tests and diagnostics).
    pub fn match_queue(&self) -> &MatchQueue {
        &self.matching
    }

    /// Descriptors waiting in the submission and completion rings (0 with
    /// rings disabled) — drained work that has not yet entered the fabric
    /// or reached its callback.
    pub fn ring_occupancy(&self) -> usize {
        self.subq.as_ref().map_or(0, RingSet::occupancy) + self.compq.as_ref().map_or(0, Ring::len)
    }

    /// Stuck-descriptor snapshots across both rings, for quiescence
    /// reports. `loc` names this endpoint's locality (completion-ring
    /// entries are local, so they report it as their peer).
    pub fn ring_snapshots(&self, loc: LocalityId, now: Time) -> Vec<DescSnapshot> {
        let mut out = self
            .subq
            .as_ref()
            .map_or_else(Vec::new, |r| r.snapshots(now));
        if let Some(c) = &self.compq {
            out.extend(c.snapshots(loc, now));
        }
        out
    }

    /// Pooled doorbell/occupancy/coalesce counters across both rings.
    pub fn ring_stats(&self) -> RingStats {
        let mut total = self
            .subq
            .as_ref()
            .map_or_else(RingStats::default, RingSet::stats);
        if let Some(c) = &self.compq {
            let cs = c.stats();
            total.doorbells += cs.doorbells;
            total.descs += cs.descs;
            total.coalesced += cs.coalesced;
            total.max_occupancy = total.max_occupancy.max(cs.max_occupancy);
        }
        total
    }

    /// Effective doorbell batch per active submission-ring peer — the
    /// flush threshold in force right now, which an adaptive controller
    /// may have walked away from the configured `doorbell_batch`.
    pub fn sub_ring_eff_batches(&self) -> Vec<(LocalityId, usize)> {
        self.subq
            .as_ref()
            .map_or_else(Vec::new, netsim::RingSet::eff_batches)
    }

    /// Remaining eager credits toward `peer`.
    pub fn credits_to(&self, peer: LocalityId) -> usize {
        *self.credits.get(&peer).unwrap_or(&self.cfg.ledger_slots)
    }

    fn take_credit(&mut self, peer: LocalityId) -> bool {
        let slots = self.cfg.ledger_slots;
        let c = self.credits.entry(peer).or_insert(slots);
        if *c > 0 {
            *c -= 1;
            true
        } else {
            false
        }
    }

    fn return_credit(&mut self, peer: LocalityId) {
        let slots = self.cfg.ledger_slots;
        *self.credits.entry(peer).or_insert(slots) += 1;
    }
}

/// The contract between Photon and the layer above it.
pub trait PhotonWorld: Protocol {
    /// The endpoint owned by locality `loc`.
    fn endpoint(&mut self, loc: LocalityId) -> &mut PhotonEndpoint;
    /// Embed a Photon control message into the world's wire enum.
    fn wrap(msg: PhotonMsg) -> Self::Msg;

    /// An initiated PWC operation completed; `ctx` is the caller's typed
    /// op handle.
    fn pwc_complete(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId);
    /// A PWC put addressed *to this locality* became visible, carrying the
    /// initiator's `remote_tag` (Photon's remote completion ledger).
    fn pwc_remote(eng: &mut Engine<Self>, loc: LocalityId, tag: u64, len: u32);
    /// An initiated PWC operation bounced (translation miss/forward-fail).
    fn pwc_failed(
        eng: &mut Engine<Self>,
        loc: LocalityId,
        ctx: OpId,
        kind: OpKind,
        reason: NackReason,
        block: u64,
    );
    /// A two-sided message matched a posted receive and its payload is
    /// available.
    fn recv_complete(
        eng: &mut Engine<Self>,
        loc: LocalityId,
        src: LocalityId,
        tag: u64,
        data: Vec<u8>,
    );
    /// A two-sided send's payload has left the initiator (safe to reuse).
    fn send_complete(eng: &mut Engine<Self>, loc: LocalityId, send_id: u64);
    /// The local NIC raised a translation-table miss interrupt for `block`
    /// (an incoming one-sided op found no entry). Worlds running
    /// network-managed AGAS reinstall resident-but-evicted entries here;
    /// the default ignores it.
    fn xlate_miss_local(eng: &mut Engine<Self>, loc: LocalityId, block: u64) {
        let _ = (eng, loc, block);
    }
    /// An initiated PWC active operation ([`pwc_amo`]) executed at the
    /// target NIC; `result` carries the fetched/old value(s). Worlds that
    /// never issue AMOs can keep the default (which drops the result).
    fn pwc_amo_complete(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, result: AmoResult) {
        let _ = (eng, loc, ctx, result);
    }
}

fn copy_time(cfg: &PhotonConfig, len: usize) -> Time {
    Time::from_ps(len as u64 * cfg.copy_per_byte_ps)
}

fn size_class_for(len: u32) -> u8 {
    let needed = len.max(64);
    (u32::BITS - (needed - 1).leading_zeros()) as u8
}

// ------------------------------------------------------------------ rings

/// Post one PWC op into the submission ring toward `dst`, flushing or
/// arming the doorbell timer as the ring directs. Only called when
/// [`PhotonConfig::ring`] is set.
fn ring_submit<S: PhotonWorld>(
    eng: &mut Engine<S>,
    src: LocalityId,
    dst: LocalityId,
    item: RingOp,
    bytes: u32,
    kind: &'static str,
) {
    let now = eng.now();
    let rings = eng
        .state
        .endpoint(src)
        .subq
        .as_mut()
        .expect("ring_submit with rings disabled");
    let outcome = rings.push(
        dst,
        Desc {
            item,
            bytes,
            kind,
            enqueued: now,
        },
    );
    match outcome {
        PushOutcome::Flush => ring_doorbell(eng, src, dst),
        PushOutcome::Armed(epoch) => {
            // The adaptive controller scales the timer with its effective
            // batch (a small batch should also flush sooner); static rings
            // get the configured delay unchanged.
            let delay = rings.effective_delay(dst);
            eng.schedule(delay, move |eng| {
                let due = eng
                    .state
                    .endpoint(src)
                    .subq
                    .as_ref()
                    .is_some_and(|r| r.timer_due(dst, epoch));
                if due {
                    ring_doorbell(eng, src, dst);
                }
            });
        }
        PushOutcome::Buffered => {}
    }
}

/// Ring the submission doorbell toward `dst`: drain the ring and inject
/// every descriptor, in post order, under this one event.
fn ring_doorbell<S: PhotonWorld>(eng: &mut Engine<S>, src: LocalityId, dst: LocalityId) {
    let batch = match eng.state.endpoint(src).subq.as_mut() {
        Some(rings) => rings.drain(dst),
        None => return,
    };
    if batch.is_empty() {
        return;
    }
    let now = eng.now();
    eng.state.cluster().tracer.record(
        now,
        TraceKind::Doorbell {
            at: src,
            peer: dst,
            descs: batch.len() as u32,
        },
    );
    let amos = batch
        .iter()
        .filter(|d| matches!(d.item, RingOp::Amo(_)))
        .count() as u64;
    if amos >= 2 {
        eng.state.endpoint(src).stats.amo_batched += amos;
        netsim::telemetry::record_amo_batched(amos);
    }
    for desc in batch {
        match desc.item {
            RingOp::Put(req) => rdma_put(eng, src, req),
            RingOp::Get(req) => rdma_get(eng, src, req),
            RingOp::Amo(req) => rdma_amo(eng, src, req),
        }
    }
}

/// Buffer one NIC completion in the coalescing ring, flushing or arming
/// the moderation timer as the ring directs. Only called when
/// [`PhotonConfig::ring`] is set.
fn ring_coalesce_completion<S: PhotonWorld>(eng: &mut Engine<S>, at: LocalityId, ev: CompEvent) {
    let now = eng.now();
    let ring = eng
        .state
        .endpoint(at)
        .compq
        .as_mut()
        .expect("completion coalescing with rings disabled");
    let outcome = ring.push(Desc {
        item: ev,
        bytes: 0,
        kind: "completion",
        enqueued: now,
    });
    match outcome {
        PushOutcome::Flush => ring_deliver_completions(eng, at),
        PushOutcome::Armed(epoch) => {
            let moderation = eng
                .state
                .endpoint(at)
                .cfg
                .ring
                .expect("ring cfg")
                .moderation;
            eng.schedule(moderation, move |eng| {
                let due = eng
                    .state
                    .endpoint(at)
                    .compq
                    .as_ref()
                    .is_some_and(|r| r.timer_due(epoch));
                if due {
                    ring_deliver_completions(eng, at);
                }
            });
        }
        PushOutcome::Buffered => {}
    }
}

/// The coalesced interrupt: drain the completion ring and deliver every
/// buffered completion through the normal endpoint-table path.
fn ring_deliver_completions<S: PhotonWorld>(eng: &mut Engine<S>, at: LocalityId) {
    let batch = match eng.state.endpoint(at).compq.as_mut() {
        Some(ring) => ring.drain(),
        None => return,
    };
    for desc in batch {
        match desc.item {
            CompEvent::Done { op } => deliver_done(eng, at, op),
            CompEvent::AmoDone { op, result } => deliver_amo_done(eng, at, op, result),
        }
    }
}

// ------------------------------------------------------------------ PWC

/// One-sided put with completion. `ctx` returns via
/// [`PhotonWorld::pwc_complete`] (or `pwc_failed`); `remote_tag`, if set,
/// surfaces at the target via [`PhotonWorld::pwc_remote`]. `local_src`
/// describes where the payload lives in the initiator's arena for
/// registration-cost accounting (`None` = pre-registered pool).
#[allow(clippy::too_many_arguments)]
pub fn pwc_put<S: PhotonWorld>(
    eng: &mut Engine<S>,
    src: LocalityId,
    dst: LocalityId,
    target: RdmaTarget,
    data: Vec<u8>,
    ctx: OpId,
    remote_tag: Option<u64>,
    local_src: Option<(PhysAddr, u64)>,
) -> OpId {
    if let Some(tag) = remote_tag {
        assert_eq!(tag & RDV_NOTE_BIT, 0, "remote_tag bit 63 is reserved");
    }
    let ep = eng.state.endpoint(src);
    ep.stats.pwc_puts += 1;
    let cfg = ep.cfg;
    let reg_delay = match local_src {
        Some((addr, len)) => ep.rcache.register(&cfg, addr, len),
        None => Time::ZERO,
    };
    let ttl = eng.state.cluster_ref().config.forward_ttl;
    let ring_enabled = cfg.ring.is_some();
    // The wire token *is* the endpoint-table handle: the completion or
    // NACK echoes it back, and a stale echo fails the generation check.
    let op = eng.state.endpoint(src).ops.insert(Pending::Pwc { ctx });
    eng.schedule(reg_delay, move |eng| {
        let bytes = data.len() as u32;
        let req = PutReq {
            target: dst,
            dst: target,
            data,
            op,
            remote_tag,
            ttl,
            class: FaultClass::Request,
        };
        if ring_enabled {
            ring_submit(eng, src, dst, RingOp::Put(req), bytes, "put");
        } else {
            rdma_put(eng, src, req);
        }
    });
    op
}

/// One-sided get with completion: reads `len` bytes from `target` at `dst`
/// into the initiator's arena at `local`. `local_src` describes the landing
/// buffer for registration-cost accounting (`None` = pre-registered pool,
/// e.g. the runtime's scratch allocator).
#[allow(clippy::too_many_arguments)]
pub fn pwc_get<S: PhotonWorld>(
    eng: &mut Engine<S>,
    src: LocalityId,
    dst: LocalityId,
    target: RdmaTarget,
    len: u32,
    local: PhysAddr,
    ctx: OpId,
    local_src: Option<(PhysAddr, u64)>,
) -> OpId {
    let ep = eng.state.endpoint(src);
    ep.stats.pwc_gets += 1;
    let cfg = ep.cfg;
    let reg_delay = match local_src {
        Some((addr, l)) => ep.rcache.register(&cfg, addr, l),
        None => Time::ZERO,
    };
    let ttl = eng.state.cluster_ref().config.forward_ttl;
    let ring_enabled = cfg.ring.is_some();
    let op = eng.state.endpoint(src).ops.insert(Pending::Pwc { ctx });
    eng.schedule(reg_delay, move |eng| {
        let req = GetReq {
            target: dst,
            src: target,
            len,
            local,
            op,
            ttl,
            class: FaultClass::Request,
        };
        if ring_enabled {
            ring_submit(eng, src, dst, RingOp::Get(req), len, "get");
        } else {
            rdma_get(eng, src, req);
        }
    });
    op
}

/// One-sided active operation with completion: the target NIC translates
/// `block` and executes `amo` in the same visit. `ctx` returns via
/// [`PhotonWorld::pwc_amo_complete`] (or `pwc_failed` with
/// [`OpKind::Amo`]). `key` is the caller's retry-stable dedup identity —
/// it must survive re-issue (use the GAS-level op id, not this attempt's
/// wire token) so the target's responder cache can recognize a retry of
/// an already-executed op. Operands ride in the control-sized request;
/// no registration cost applies.
#[allow(clippy::too_many_arguments)]
pub fn pwc_amo<S: PhotonWorld>(
    eng: &mut Engine<S>,
    src: LocalityId,
    dst: LocalityId,
    block: u64,
    offset: u64,
    amo: AmoOp,
    key: AmoKey,
    ctx: OpId,
) -> OpId {
    let ep = eng.state.endpoint(src);
    ep.stats.pwc_amos += 1;
    let ring_enabled = ep.cfg.ring.is_some();
    let ttl = eng.state.cluster_ref().config.forward_ttl;
    let op = eng.state.endpoint(src).ops.insert(Pending::Pwc { ctx });
    let wire = 8 * amo.wire_words() as u32;
    let req = AmoReq {
        target: dst,
        block,
        offset,
        amo,
        key,
        op,
        ttl,
        class: FaultClass::Request,
    };
    if ring_enabled {
        ring_submit(eng, src, dst, RingOp::Amo(req), wire, "amo");
    } else {
        rdma_amo(eng, src, req);
    }
    op
}

// ------------------------------------------------------------------ two-sided

/// Two-sided tag-matched send. Returns the send handle; completion of the
/// local buffer arrives via [`PhotonWorld::send_complete`]. Payloads at or
/// below the eager threshold travel inline (consuming one eager credit);
/// larger payloads run the rendezvous protocol. `local_src` feeds the
/// registration cache on the rendezvous path.
pub fn send<S: PhotonWorld>(
    eng: &mut Engine<S>,
    src: LocalityId,
    dst: LocalityId,
    tag: u64,
    data: Vec<u8>,
    local_src: Option<(PhysAddr, u64)>,
) -> u64 {
    let ep = eng.state.endpoint(src);
    let send_id = ep.next_send_id;
    ep.next_send_id += 1;
    let eager_threshold = ep.cfg.eager_threshold;
    if data.len() as u32 <= eager_threshold {
        if ep.take_credit(dst) {
            ep.stats.eager_sends += 1;
            inject_eager(eng, src, dst, tag, send_id, data);
        } else {
            ep.stats.stalled_sends += 1;
            ep.backlog
                .entry(dst)
                .or_default()
                .push_back((tag, send_id, data));
        }
    } else {
        ep.stats.rdv_sends += 1;
        let len = data.len() as u32;
        ep.rdv_sends.insert(
            send_id,
            RdvSend {
                dst,
                data,
                local_src,
            },
        );
        let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
        send_user(
            eng,
            src,
            dst,
            ctrl,
            S::wrap(PhotonMsg::Rts { tag, send_id, len }),
        );
    }
    send_id
}

fn inject_eager<S: PhotonWorld>(
    eng: &mut Engine<S>,
    src: LocalityId,
    dst: LocalityId,
    tag: u64,
    send_id: u64,
    data: Vec<u8>,
) {
    let wire = data.len() as u32;
    send_user(
        eng,
        src,
        dst,
        wire,
        S::wrap(PhotonMsg::Eager { tag, send_id, data }),
    );
    // The payload is buffered/injected; the local buffer is reusable now.
    eng.schedule(Time::ZERO, move |eng| S::send_complete(eng, src, send_id));
}

/// Post a receive for `tag` (or [`ANY_TAG`]) at `loc`. Matching messages —
/// already arrived or future — surface via [`PhotonWorld::recv_complete`].
pub fn post_recv<S: PhotonWorld>(eng: &mut Engine<S>, loc: LocalityId, tag: u64) {
    if let Some(msg) = eng.state.endpoint(loc).matching.post(tag) {
        dispatch_match(eng, loc, msg);
    }
}

fn dispatch_match<S: PhotonWorld>(eng: &mut Engine<S>, loc: LocalityId, msg: Unexpected) {
    match msg {
        Unexpected::Eager { src, tag, data, .. } => consume_eager(eng, loc, src, tag, data),
        Unexpected::Rts {
            src,
            tag,
            send_id,
            len,
        } => start_rdv_recv(eng, loc, src, tag, send_id, len),
    }
}

fn consume_eager<S: PhotonWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    src: LocalityId,
    tag: u64,
    data: Vec<u8>,
) {
    let ep = eng.state.endpoint(loc);
    let copy = ep.cfg.match_overhead + copy_time(&ep.cfg, data.len());
    ep.stats.credits_returned += 1;
    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
    send_user(eng, loc, src, ctrl, S::wrap(PhotonMsg::CreditReturn));
    eng.schedule(copy, move |eng| S::recv_complete(eng, loc, src, tag, data));
}

fn start_rdv_recv<S: PhotonWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    src: LocalityId,
    tag: u64,
    send_id: u64,
    len: u32,
) {
    // The RTS went through the matching engine too.
    let match_cost = eng.state.endpoint(loc).cfg.match_overhead;
    eng.schedule(match_cost, move |eng| {
        start_rdv_recv_matched(eng, loc, src, tag, send_id, len);
    });
}

fn start_rdv_recv_matched<S: PhotonWorld>(
    eng: &mut Engine<S>,
    loc: LocalityId,
    src: LocalityId,
    tag: u64,
    send_id: u64,
    len: u32,
) {
    let class = size_class_for(len);
    let addr = eng
        .state
        .cluster()
        .mem_mut(loc)
        .alloc_block(class)
        .expect("rendezvous landing buffer allocation failed");
    eng.state.endpoint(loc).rdv_recvs.insert(
        send_id,
        RdvRecv {
            src,
            tag,
            addr,
            len,
            class,
        },
    );
    let ctrl = eng.state.cluster_ref().config.ctrl_bytes;
    send_user(
        eng,
        loc,
        src,
        ctrl,
        S::wrap(PhotonMsg::Cts { send_id, dst: addr }),
    );
}

// ------------------------------------------------------------------ dispatch

/// Handle a Photon control message delivered to `at` from `from`.
/// The world's [`Protocol::deliver`] routes `Packet::User` payloads that
/// decode to [`PhotonMsg`] here.
pub fn handle_msg<S: PhotonWorld>(
    eng: &mut Engine<S>,
    from: LocalityId,
    at: LocalityId,
    msg: PhotonMsg,
) {
    match msg {
        PhotonMsg::Eager { tag, send_id, data } => {
            let arrived = eng.state.endpoint(at).matching.arrive(Unexpected::Eager {
                src: from,
                tag,
                send_id,
                data,
            });
            if let Some(m) = arrived {
                dispatch_match(eng, at, m);
            }
        }
        PhotonMsg::Rts { tag, send_id, len } => {
            let arrived = eng.state.endpoint(at).matching.arrive(Unexpected::Rts {
                src: from,
                tag,
                send_id,
                len,
            });
            if let Some(m) = arrived {
                dispatch_match(eng, at, m);
            }
        }
        PhotonMsg::Cts { send_id, dst } => {
            let ep = eng.state.endpoint(at);
            let cfg = ep.cfg;
            let Some(rdv) = ep.rdv_sends.remove(&send_id) else {
                // A duplicate or forged CTS: count and drop.
                ep.stats.protocol_violations += 1;
                return;
            };
            debug_assert_eq!(rdv.dst, from);
            let reg_delay = match rdv.local_src {
                Some((addr, len)) => eng.state.endpoint(at).rcache.register(&cfg, addr, len),
                None => Time::ZERO,
            };
            let op = eng
                .state
                .endpoint(at)
                .ops
                .insert(Pending::RdvData { send_id });
            let data = rdv.data;
            let ttl = eng.state.cluster_ref().config.forward_ttl;
            eng.schedule(reg_delay, move |eng| {
                rdma_put(
                    eng,
                    at,
                    PutReq {
                        target: from,
                        dst: RdmaTarget::Phys(dst),
                        data,
                        op,
                        remote_tag: Some(RDV_NOTE_BIT | send_id),
                        ttl,
                        class: FaultClass::Payload,
                    },
                );
            });
        }
        PhotonMsg::CreditReturn => {
            let ep = eng.state.endpoint(at);
            ep.return_credit(from);
            // Drain at most one backlogged eager send toward that peer.
            let next = ep.backlog.get_mut(&from).and_then(VecDeque::pop_front);
            if let Some((tag, send_id, data)) = next {
                let took = eng.state.endpoint(at).take_credit(from);
                debug_assert!(took);
                eng.state.endpoint(at).stats.eager_sends += 1;
                inject_eager(eng, at, from, tag, send_id, data);
            }
        }
    }
}

/// Handle a NIC-generated packet (completion, remote note, NACK) delivered
/// to `at`. The world's [`Protocol::deliver`] routes every non-`User`
/// packet here.
pub fn handle_completion<S: PhotonWorld>(
    eng: &mut Engine<S>,
    _from: LocalityId,
    at: LocalityId,
    packet: Packet<S::Msg>,
) {
    match packet {
        Packet::PutDone { op } | Packet::GetDone { op } => {
            if eng.state.endpoint(at).compq.is_some() {
                ring_coalesce_completion(eng, at, CompEvent::Done { op });
            } else {
                deliver_done(eng, at, op);
            }
        }
        Packet::AmoDone { op, result } => {
            if eng.state.endpoint(at).compq.is_some() {
                ring_coalesce_completion(eng, at, CompEvent::AmoDone { op, result });
            } else {
                deliver_amo_done(eng, at, op, result);
            }
        }
        Packet::RemoteNote { tag, len } => {
            if tag & RDV_NOTE_BIT != 0 {
                let send_id = tag & !RDV_NOTE_BIT;
                let Some(rr) = eng.state.endpoint(at).rdv_recvs.remove(&send_id) else {
                    eng.state.endpoint(at).stats.protocol_violations += 1;
                    return;
                };
                let data = eng
                    .state
                    .cluster()
                    .mem(at)
                    .read(rr.addr, rr.len as usize)
                    .expect("rendezvous buffer vanished")
                    .to_vec();
                eng.state
                    .cluster()
                    .mem_mut(at)
                    .free_block(rr.addr, rr.class);
                S::recv_complete(eng, at, rr.src, rr.tag, data);
            } else {
                let ep = eng.state.endpoint(at);
                if ep.remote_ledger.len() >= 4096 {
                    ep.remote_ledger.pop_front();
                }
                ep.remote_ledger.push_back((tag, len));
                S::pwc_remote(eng, at, tag, len);
            }
        }
        Packet::XlateMiss { block } => S::xlate_miss_local(eng, at, block),
        Packet::Nack {
            op,
            kind,
            reason,
            block,
        } => match eng.state.endpoint(at).ops.remove(op) {
            Ok(Pending::Pwc { ctx }) => S::pwc_failed(eng, at, ctx, kind, reason, block),
            Ok(Pending::RdvData { .. }) => {
                // Rendezvous data rides on a physical target, which cannot
                // legitimately NACK — a protocol violation, not a crash.
                eng.state.endpoint(at).stats.protocol_violations += 1;
            }
            Err(_) => eng.state.endpoint(at).stats.stale_completions += 1,
        },
        Packet::User(_) => {
            panic!("handle_completion received a User packet; route it via handle_msg")
        }
    }
}

/// Deliver one `PutDone`/`GetDone` through the endpoint table.
fn deliver_done<S: PhotonWorld>(eng: &mut Engine<S>, at: LocalityId, op: OpId) {
    match eng.state.endpoint(at).ops.remove(op) {
        Ok(Pending::Pwc { ctx }) => S::pwc_complete(eng, at, ctx),
        Ok(Pending::RdvData { send_id }) => S::send_complete(eng, at, send_id),
        // Stale or unknown handle (slot already retired): a late
        // duplicate, or the op was dropped by fault injection.
        Err(_) => eng.state.endpoint(at).stats.stale_completions += 1,
    }
}

/// Deliver one `AmoDone` through the endpoint table.
fn deliver_amo_done<S: PhotonWorld>(
    eng: &mut Engine<S>,
    at: LocalityId,
    op: OpId,
    result: AmoResult,
) {
    match eng.state.endpoint(at).ops.remove(op) {
        Ok(Pending::Pwc { ctx }) => S::pwc_amo_complete(eng, at, ctx, result),
        Ok(Pending::RdvData { .. }) => {
            // Rendezvous data never issues AMOs; an AmoDone naming a
            // rendezvous op is a protocol violation, not a crash.
            eng.state.endpoint(at).stats.protocol_violations += 1;
        }
        Err(_) => eng.state.endpoint(at).stats.stale_completions += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{Cluster, Envelope, NetConfig, XlateEntry};

    enum Msg {
        P(PhotonMsg),
    }

    #[derive(Debug, PartialEq)]
    enum Event {
        PwcDone(u64),
        PwcRemote(u64, u32),
        PwcFail(u64),
        AmoDone(u64, u64),
        Recv { src: u32, tag: u64, len: usize },
        SendDone(u64),
    }

    struct World {
        cluster: Cluster,
        eps: Vec<PhotonEndpoint>,
        events: Vec<(Time, LocalityId, Event)>,
        payloads: Vec<Vec<u8>>,
    }

    impl World {
        fn new(n: usize, pcfg: PhotonConfig) -> World {
            World {
                cluster: Cluster::new(n, NetConfig::ideal(), 1 << 26),
                eps: (0..n).map(|_| PhotonEndpoint::new(pcfg)).collect(),
                events: Vec::new(),
                payloads: Vec::new(),
            }
        }
    }

    impl Protocol for World {
        type Msg = Msg;
        fn cluster(&mut self) -> &mut Cluster {
            &mut self.cluster
        }
        fn cluster_ref(&self) -> &Cluster {
            &self.cluster
        }
        fn deliver(eng: &mut Engine<Self>, env: Envelope<Msg>) {
            match env.packet {
                Packet::User(Msg::P(p)) => handle_msg(eng, env.src, env.dst, p),
                other => handle_completion(eng, env.src, env.dst, other),
            }
        }
    }

    impl PhotonWorld for World {
        fn endpoint(&mut self, loc: LocalityId) -> &mut PhotonEndpoint {
            &mut self.eps[loc as usize]
        }
        fn wrap(msg: PhotonMsg) -> Msg {
            Msg::P(msg)
        }
        fn pwc_complete(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId) {
            let now = eng.now();
            eng.state.events.push((now, loc, Event::PwcDone(ctx.raw())));
        }
        fn pwc_remote(eng: &mut Engine<Self>, loc: LocalityId, tag: u64, len: u32) {
            let now = eng.now();
            eng.state
                .events
                .push((now, loc, Event::PwcRemote(tag, len)));
        }
        fn pwc_failed(
            eng: &mut Engine<Self>,
            loc: LocalityId,
            ctx: OpId,
            _kind: OpKind,
            _reason: NackReason,
            _block: u64,
        ) {
            let now = eng.now();
            eng.state.events.push((now, loc, Event::PwcFail(ctx.raw())));
        }
        fn recv_complete(
            eng: &mut Engine<Self>,
            loc: LocalityId,
            src: LocalityId,
            tag: u64,
            data: Vec<u8>,
        ) {
            let now = eng.now();
            let len = data.len();
            eng.state.payloads.push(data);
            eng.state
                .events
                .push((now, loc, Event::Recv { src, tag, len }));
        }
        fn send_complete(eng: &mut Engine<Self>, loc: LocalityId, send_id: u64) {
            let now = eng.now();
            eng.state.events.push((now, loc, Event::SendDone(send_id)));
        }
        fn pwc_amo_complete(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, result: AmoResult) {
            let now = eng.now();
            eng.state
                .events
                .push((now, loc, Event::AmoDone(ctx.raw(), result.old)));
        }
    }

    fn world(n: usize) -> Engine<World> {
        Engine::new(World::new(n, PhotonConfig::default()), 5)
    }

    fn ring_world(n: usize, ring: netsim::RingConfig) -> Engine<World> {
        let pcfg = PhotonConfig {
            ring: Some(ring),
            ..PhotonConfig::default()
        };
        Engine::new(World::new(n, pcfg), 5)
    }

    fn events_of(eng: &Engine<World>, loc: LocalityId) -> Vec<&Event> {
        eng.state
            .events
            .iter()
            .filter(|(_, l, _)| *l == loc)
            .map(|(_, _, e)| e)
            .collect()
    }

    #[test]
    fn pwc_put_completes_with_remote_note() {
        let mut eng = world(2);
        let base = eng.state.cluster.mem_mut(1).alloc_block(12).unwrap();
        eng.state.cluster.install_xlate(
            1,
            77,
            XlateEntry {
                base,
                len: 4096,
                generation: 1,
            },
        );
        pwc_put(
            &mut eng,
            0,
            1,
            RdmaTarget::Virt {
                block: 77,
                offset: 128,
            },
            vec![0xAA; 64],
            OpId::from_raw(9),
            Some(500),
            None,
        );
        eng.run();
        assert_eq!(
            eng.state.cluster.mem(1).read(base + 128, 64).unwrap(),
            &[0xAA; 64][..]
        );
        assert_eq!(events_of(&eng, 0), vec![&Event::PwcDone(9)]);
        assert_eq!(events_of(&eng, 1), vec![&Event::PwcRemote(500, 64)]);
        assert_eq!(eng.state.eps[0].outstanding_ops(), 0);
    }

    #[test]
    fn pwc_get_completes() {
        let mut eng = world(2);
        let remote = eng.state.cluster.mem_mut(1).alloc_block(12).unwrap();
        eng.state
            .cluster
            .mem_mut(1)
            .write(remote, &[3u8; 256])
            .unwrap();
        eng.state.cluster.install_xlate(
            1,
            88,
            XlateEntry {
                base: remote,
                len: 4096,
                generation: 1,
            },
        );
        let local = eng.state.cluster.mem_mut(0).alloc_block(12).unwrap();
        pwc_get(
            &mut eng,
            0,
            1,
            RdmaTarget::Virt {
                block: 88,
                offset: 0,
            },
            256,
            local,
            OpId::from_raw(4),
            Some((local, 256)),
        );
        eng.run();
        assert_eq!(
            eng.state.cluster.mem(0).read(local, 256).unwrap(),
            &[3u8; 256][..]
        );
        assert_eq!(events_of(&eng, 0), vec![&Event::PwcDone(4)]);
    }

    #[test]
    fn pwc_put_to_unknown_block_fails() {
        let mut eng = world(2);
        pwc_put(
            &mut eng,
            0,
            1,
            RdmaTarget::Virt {
                block: 0xBAD,
                offset: 0,
            },
            vec![1; 8],
            OpId::from_raw(7),
            None,
            None,
        );
        eng.run();
        assert_eq!(events_of(&eng, 0), vec![&Event::PwcFail(7)]);
        assert_eq!(eng.state.eps[0].outstanding_ops(), 0);
    }

    #[test]
    fn eager_send_recv_round_trip() {
        let mut eng = world(2);
        post_recv(&mut eng, 1, 42);
        let id = send(&mut eng, 0, 1, 42, vec![9u8; 100], None);
        eng.run();
        assert!(events_of(&eng, 0).contains(&&Event::SendDone(id)));
        assert!(events_of(&eng, 1).contains(&&Event::Recv {
            src: 0,
            tag: 42,
            len: 100
        }));
        assert_eq!(eng.state.payloads[0], vec![9u8; 100]);
        // Credit flowed back.
        assert_eq!(
            eng.state.eps[0].credits_to(1),
            PhotonConfig::default().ledger_slots
        );
        assert_eq!(eng.state.eps[0].stats.eager_sends, 1);
        assert_eq!(eng.state.eps[0].stats.rdv_sends, 0);
    }

    #[test]
    fn unexpected_message_waits_for_post() {
        let mut eng = world(2);
        send(&mut eng, 0, 1, 13, vec![1u8; 10], None);
        eng.run();
        assert!(events_of(&eng, 1).is_empty());
        assert_eq!(eng.state.eps[1].match_queue().unexpected_len(), 1);
        post_recv(&mut eng, 1, 13);
        eng.run();
        assert!(events_of(&eng, 1).contains(&&Event::Recv {
            src: 0,
            tag: 13,
            len: 10
        }));
    }

    #[test]
    fn wildcard_recv_matches() {
        let mut eng = world(2);
        post_recv(&mut eng, 1, ANY_TAG);
        send(&mut eng, 0, 1, 0xFEED, vec![2u8; 4], None);
        eng.run();
        assert!(events_of(&eng, 1).contains(&&Event::Recv {
            src: 0,
            tag: 0xFEED,
            len: 4
        }));
    }

    #[test]
    fn large_send_uses_rendezvous_zero_copy() {
        let mut eng = world(2);
        post_recv(&mut eng, 1, 7);
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let id = send(&mut eng, 0, 1, 7, payload.clone(), None);
        eng.run();
        assert_eq!(eng.state.eps[0].stats.rdv_sends, 1);
        assert_eq!(eng.state.eps[0].stats.eager_sends, 0);
        assert!(events_of(&eng, 0).contains(&&Event::SendDone(id)));
        assert!(events_of(&eng, 1).contains(&&Event::Recv {
            src: 0,
            tag: 7,
            len: 100_000
        }));
        assert_eq!(eng.state.payloads[0], payload);
        // The landing buffer was freed.
        assert_eq!(eng.state.cluster.mem(1).live_blocks(), 0);
    }

    #[test]
    fn rendezvous_pays_handshake_at_threshold_boundary() {
        let time_for = |len: usize| {
            let mut eng = world(2);
            post_recv(&mut eng, 1, 1);
            send(&mut eng, 0, 1, 1, vec![0u8; len], None);
            eng.run();
            eng.state
                .events
                .iter()
                .find(|(_, l, e)| *l == 1 && matches!(e, Event::Recv { .. }))
                .map(|(t, _, _)| *t)
                .unwrap()
        };
        let thr = PhotonConfig::default().eager_threshold as usize;
        let eager = time_for(thr);
        let rdv = time_for(thr + 1);
        // One byte more crosses into rendezvous: two extra control latencies.
        assert!(rdv > eager + Time::from_ns(150), "eager={eager} rdv={rdv}");
    }

    #[test]
    fn eager_credit_stall_and_drain() {
        let pcfg = PhotonConfig {
            ledger_slots: 2,
            ..PhotonConfig::default()
        };
        let mut eng = Engine::new(World::new(2, pcfg), 5);
        for i in 0..5 {
            send(&mut eng, 0, 1, i, vec![i as u8; 16], None);
        }
        eng.run();
        assert_eq!(eng.state.eps[0].stats.stalled_sends, 3);
        assert_eq!(eng.state.eps[0].stats.eager_sends, 2);
        // Receiver now posts all five; credits recycle and drain the backlog.
        for _ in 0..5 {
            post_recv(&mut eng, 1, ANY_TAG);
        }
        eng.run();
        let recvs = events_of(&eng, 1)
            .iter()
            .filter(|e| matches!(e, Event::Recv { .. }))
            .count();
        assert_eq!(recvs, 5);
        assert_eq!(eng.state.eps[0].stats.eager_sends, 5);
    }

    #[test]
    fn registration_cache_amortizes_rendezvous_pins() {
        let run = |rcache_enabled: bool| {
            let pcfg = PhotonConfig {
                rcache_enabled,
                ..PhotonConfig::default()
            };
            let mut eng = Engine::new(World::new(2, pcfg), 5);
            let src_buf = eng.state.cluster.mem_mut(0).alloc_block(20).unwrap();
            // Two rendezvous sends from the same (registered) buffer.
            for round in 0..2u64 {
                post_recv(&mut eng, 1, round);
                send(
                    &mut eng,
                    0,
                    1,
                    round,
                    vec![0u8; 500_000],
                    Some((src_buf, 500_000)),
                );
                eng.run();
            }
            let now = eng.now();
            (now, eng.state.eps[0].rcache_stats())
        };
        let (t_cached, (hits, _)) = run(true);
        let (t_uncached, (hits_off, _)) = run(false);
        assert!(hits > 0);
        assert_eq!(hits_off, 0);
        assert!(t_cached < t_uncached, "{t_cached} !< {t_uncached}");
    }

    #[test]
    fn local_send_loops_back() {
        let mut eng = world(1);
        post_recv(&mut eng, 0, 3);
        send(&mut eng, 0, 0, 3, vec![5u8; 8], None);
        eng.run();
        assert!(events_of(&eng, 0).contains(&&Event::Recv {
            src: 0,
            tag: 3,
            len: 8
        }));
    }

    #[test]
    fn many_interleaved_sends_all_arrive_in_order() {
        let mut eng = world(2);
        for _ in 0..50 {
            post_recv(&mut eng, 1, ANY_TAG);
        }
        for i in 0..50u64 {
            send(&mut eng, 0, 1, i, vec![(i & 0xFF) as u8; 32], None);
        }
        eng.run();
        let tags: Vec<u64> = eng
            .state
            .events
            .iter()
            .filter_map(|(_, l, e)| match e {
                Event::Recv { tag, .. } if *l == 1 => Some(*tag),
                _ => None,
            })
            .collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn duplicated_put_ack_cannot_double_complete() {
        let mut eng = world(2);
        let addr = eng.state.cluster.mem_mut(1).alloc_block(10).unwrap();
        let op = pwc_put(
            &mut eng,
            0,
            1,
            RdmaTarget::Phys(addr),
            vec![1u8; 16],
            OpId::from_raw(4),
            None,
            None,
        );
        eng.run();
        assert_eq!(events_of(&eng, 0), vec![&Event::PwcDone(4)]);
        // A late duplicate of the hardware ack echoes a retired handle: the
        // generation check drops it instead of double-completing.
        handle_completion(&mut eng, 1, 0, Packet::<Msg>::PutDone { op });
        assert_eq!(events_of(&eng, 0), vec![&Event::PwcDone(4)]);
        assert_eq!(eng.state.eps[0].stats.stale_completions, 1);
    }

    #[test]
    fn duplicated_nack_cannot_double_fail() {
        let mut eng = world(2);
        let op = pwc_put(
            &mut eng,
            0,
            1,
            RdmaTarget::Virt {
                block: 0xBAD,
                offset: 0,
            },
            vec![1u8; 8],
            OpId::from_raw(6),
            None,
            None,
        );
        eng.run();
        assert_eq!(events_of(&eng, 0), vec![&Event::PwcFail(6)]);
        handle_completion(
            &mut eng,
            1,
            0,
            Packet::<Msg>::Nack {
                op,
                kind: OpKind::Put,
                reason: NackReason::Miss,
                block: 0xBAD,
            },
        );
        assert_eq!(events_of(&eng, 0), vec![&Event::PwcFail(6)]);
        assert_eq!(eng.state.eps[0].stats.stale_completions, 1);
    }

    #[test]
    fn fault_plane_duplication_is_absorbed_by_the_op_table() {
        use netsim::{FaultPlan, FaultPlane, FaultRates};
        let mut eng = world(2);
        // Duplicate *everything* faultable: the put request commits twice
        // (same bytes, idempotent) and each commit acks twice — three of
        // the four acks must be dropped as stale.
        eng.state.cluster.faults = Some(FaultPlane::new(FaultPlan {
            rates: FaultRates {
                dup: 1.0,
                ..FaultRates::lossless()
            },
            ..FaultPlan::lossless(99)
        }));
        let addr = eng.state.cluster.mem_mut(1).alloc_block(10).unwrap();
        pwc_put(
            &mut eng,
            0,
            1,
            RdmaTarget::Phys(addr),
            vec![7u8; 32],
            OpId::from_raw(3),
            None,
            None,
        );
        eng.run();
        assert_eq!(
            eng.state.cluster.mem(1).read(addr, 32).unwrap(),
            &[7u8; 32][..]
        );
        assert_eq!(events_of(&eng, 0), vec![&Event::PwcDone(3)]);
        assert_eq!(eng.state.eps[0].stats.stale_completions, 3);
        assert_eq!(eng.state.eps[0].outstanding_ops(), 0);
        let stats = eng.state.cluster.faults.as_ref().unwrap().stats;
        assert_eq!(stats.duplicated, 3, "one request dup + one dup per ack");
    }

    fn install_block(eng: &mut Engine<World>, loc: LocalityId, block: u64) -> PhysAddr {
        let base = eng.state.cluster.mem_mut(loc).alloc_block(12).unwrap();
        eng.state.cluster.install_xlate(
            loc,
            block,
            XlateEntry {
                base,
                len: 4096,
                generation: 1,
            },
        );
        base
    }

    #[test]
    fn ring_batches_puts_under_one_doorbell() {
        let mut eng = ring_world(
            2,
            netsim::RingConfig {
                doorbell_batch: 4,
                ..netsim::RingConfig::default()
            },
        );
        let base = install_block(&mut eng, 1, 77);
        for i in 0..4u64 {
            pwc_put(
                &mut eng,
                0,
                1,
                RdmaTarget::Virt {
                    block: 77,
                    offset: i * 64,
                },
                vec![i as u8 + 1; 64],
                OpId::from_raw(i),
                None,
                None,
            );
        }
        eng.run();
        for i in 0..4u64 {
            assert_eq!(
                eng.state.cluster.mem(1).read(base + i * 64, 64).unwrap(),
                &[i as u8 + 1; 64][..]
            );
            assert!(events_of(&eng, 0).contains(&&Event::PwcDone(i)));
        }
        let stats = eng.state.eps[0].ring_stats();
        // Four descriptors entered the fabric under a single submission
        // doorbell (completions add their own ring doorbells).
        assert!(stats.descs >= 4, "expected 4+ descs, got {stats:?}");
        assert!(stats.coalesced >= 3, "expected coalescing, got {stats:?}");
        assert_eq!(eng.state.eps[0].ring_occupancy(), 0);
        assert_eq!(eng.state.eps[0].outstanding_ops(), 0);
    }

    #[test]
    fn ring_doorbell_timer_flushes_partial_batch() {
        let mut eng = ring_world(2, netsim::RingConfig::default());
        let base = install_block(&mut eng, 1, 9);
        // Two puts: far below the 16-descriptor batch, so only the
        // doorbell_delay timer can inject them.
        for i in 0..2u64 {
            pwc_put(
                &mut eng,
                0,
                1,
                RdmaTarget::Virt {
                    block: 9,
                    offset: i * 8,
                },
                vec![0xEE; 8],
                OpId::from_raw(i),
                None,
                None,
            );
        }
        eng.run();
        assert_eq!(
            eng.state.cluster.mem(1).read(base, 8).unwrap(),
            &[0xEE; 8][..]
        );
        assert!(events_of(&eng, 0).contains(&&Event::PwcDone(0)));
        assert!(events_of(&eng, 0).contains(&&Event::PwcDone(1)));
        assert_eq!(eng.state.eps[0].ring_occupancy(), 0);
        // Ring-path latency includes the doorbell delay.
        let done_at = eng
            .state
            .events
            .iter()
            .find(|(_, l, e)| *l == 0 && matches!(e, Event::PwcDone(0)))
            .map(|(t, _, _)| *t)
            .unwrap();
        assert!(done_at >= netsim::RingConfig::default().doorbell_delay);
    }

    #[test]
    fn ring_batches_amos_and_counts_them() {
        let mut eng = ring_world(
            2,
            netsim::RingConfig {
                doorbell_batch: 3,
                ..netsim::RingConfig::default()
            },
        );
        let base = install_block(&mut eng, 1, 5);
        eng.state
            .cluster
            .mem_mut(1)
            .write(base, &7u64.to_le_bytes())
            .unwrap();
        for i in 0..3u64 {
            pwc_amo(
                &mut eng,
                0,
                1,
                5,
                0,
                AmoOp::FetchAdd { operand: 1 },
                (0, 1000 + i),
                OpId::from_raw(i),
            );
        }
        eng.run();
        let olds: Vec<u64> = eng
            .state
            .events
            .iter()
            .filter_map(|(_, l, e)| match e {
                Event::AmoDone(_, old) if *l == 0 => Some(*old),
                _ => None,
            })
            .collect();
        assert_eq!(olds, vec![7, 8, 9], "FIFO ring order preserves AMO order");
        assert_eq!(eng.state.eps[0].stats.amo_batched, 3);
        assert_eq!(eng.state.eps[0].outstanding_ops(), 0);
    }

    #[test]
    fn ring_disabled_matches_legacy_issue_path() {
        // The same workload with and without a never-batching ring: the
        // ring adds scheduling hops but must not change outcomes.
        let outcome = |ring: Option<netsim::RingConfig>| {
            let pcfg = PhotonConfig {
                ring,
                ..PhotonConfig::default()
            };
            let mut eng = Engine::new(World::new(2, pcfg), 5);
            let base = install_block(&mut eng, 1, 77);
            for i in 0..5u64 {
                pwc_put(
                    &mut eng,
                    0,
                    1,
                    RdmaTarget::Virt {
                        block: 77,
                        offset: i * 8,
                    },
                    vec![i as u8; 8],
                    OpId::from_raw(i),
                    None,
                    None,
                );
            }
            eng.run();
            let mem: Vec<u8> = eng.state.cluster.mem(1).read(base, 40).unwrap().to_vec();
            let dones = events_of(&eng, 0).len();
            (mem, dones)
        };
        let plain = outcome(None);
        let ringed = outcome(Some(netsim::RingConfig {
            doorbell_batch: 1,
            ..netsim::RingConfig::default()
        }));
        assert_eq!(plain.0, ringed.0);
        assert_eq!(plain.1, ringed.1);
    }
}

#[cfg(test)]
mod ledger_tests {
    use super::*;
    use netsim::{Cluster, Envelope, NetConfig, RdmaTarget, XlateEntry};

    struct W {
        cluster: Cluster,
        eps: Vec<PhotonEndpoint>,
    }

    impl Protocol for W {
        type Msg = PhotonMsg;
        fn cluster(&mut self) -> &mut Cluster {
            &mut self.cluster
        }
        fn cluster_ref(&self) -> &Cluster {
            &self.cluster
        }
        fn deliver(eng: &mut Engine<Self>, env: Envelope<PhotonMsg>) {
            match env.packet {
                Packet::User(p) => handle_msg(eng, env.src, env.dst, p),
                other => handle_completion(eng, env.src, env.dst, other),
            }
        }
    }

    impl PhotonWorld for W {
        fn endpoint(&mut self, loc: LocalityId) -> &mut PhotonEndpoint {
            &mut self.eps[loc as usize]
        }
        fn wrap(msg: PhotonMsg) -> PhotonMsg {
            msg
        }
        fn pwc_complete(_: &mut Engine<Self>, _: LocalityId, _: OpId) {}
        fn pwc_remote(_: &mut Engine<Self>, _: LocalityId, _: u64, _: u32) {}
        fn pwc_failed(
            _: &mut Engine<Self>,
            _: LocalityId,
            _: OpId,
            _: OpKind,
            _: NackReason,
            _: u64,
        ) {
        }
        fn recv_complete(_: &mut Engine<Self>, _: LocalityId, _: LocalityId, _: u64, _: Vec<u8>) {}
        fn send_complete(_: &mut Engine<Self>, _: LocalityId, _: u64) {}
    }

    use netsim::Engine;

    #[test]
    fn remote_ledger_accumulates_and_drains() {
        let mut eng = Engine::new(
            W {
                cluster: Cluster::new(2, NetConfig::ideal(), 1 << 20),
                eps: (0..2)
                    .map(|_| PhotonEndpoint::new(PhotonConfig::default()))
                    .collect(),
            },
            3,
        );
        let base = eng.state.cluster.mem_mut(1).alloc_block(12).unwrap();
        eng.state.cluster.install_xlate(
            1,
            5,
            XlateEntry {
                base,
                len: 4096,
                generation: 1,
            },
        );
        for tag in 0..4u64 {
            pwc_put(
                &mut eng,
                0,
                1,
                RdmaTarget::Virt {
                    block: 5,
                    offset: tag * 64,
                },
                vec![1u8; 16],
                OpId::from_raw(tag),
                Some(100 + tag),
                None,
            );
        }
        eng.run();
        assert_eq!(eng.state.eps[1].ledger_depth(), 4);
        assert_eq!(eng.state.eps[1].probe_ledger(), Some((100, 16)));
        assert_eq!(eng.state.eps[1].probe_ledger(), Some((101, 16)));
        assert_eq!(eng.state.eps[1].ledger_depth(), 2);
        assert_eq!(eng.state.eps[0].ledger_depth(), 0);
    }

    #[test]
    fn remote_ledger_is_capacity_bounded() {
        let mut eng = Engine::new(
            W {
                cluster: Cluster::new(2, NetConfig::ideal(), 1 << 24),
                eps: (0..2)
                    .map(|_| PhotonEndpoint::new(PhotonConfig::default()))
                    .collect(),
            },
            3,
        );
        let base = eng.state.cluster.mem_mut(1).alloc_block(12).unwrap();
        eng.state.cluster.install_xlate(
            1,
            5,
            XlateEntry {
                base,
                len: 4096,
                generation: 1,
            },
        );
        // Overflow the 4096-entry ring: oldest entries must be dropped,
        // never unbounded growth.
        for tag in 0..4200u64 {
            pwc_put(
                &mut eng,
                0,
                1,
                RdmaTarget::Virt {
                    block: 5,
                    offset: 0,
                },
                vec![1u8; 8],
                OpId::from_raw(tag),
                Some(tag),
                None,
            );
        }
        eng.run();
        assert_eq!(eng.state.eps[1].ledger_depth(), 4096);
        // The oldest surviving entry is 4200 - 4096 = 104.
        assert_eq!(eng.state.eps[1].probe_ledger(), Some((104, 8)));
    }
}
