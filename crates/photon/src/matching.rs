//! Two-sided tag matching (the ISIR-style baseline transport).
//!
//! Classic MPI-like semantics: receives are *posted* with a tag (or the
//! wildcard [`ANY_TAG`]); arriving messages match the oldest compatible
//! posted receive, or join the *unexpected queue* until one is posted.
//! Matching is FIFO on both sides, which preserves per-pair ordering.

use netsim::LocalityId;
use std::collections::VecDeque;

/// Matches any message tag.
pub const ANY_TAG: u64 = u64::MAX;

/// An arrived-but-unmatched message.
#[derive(Debug)]
pub enum Unexpected {
    /// An eager message carrying its payload.
    Eager {
        /// Sender locality.
        src: LocalityId,
        /// Message tag.
        tag: u64,
        /// Sender-side handle.
        send_id: u64,
        /// The payload.
        data: Vec<u8>,
    },
    /// A rendezvous request-to-send (payload still at the sender).
    Rts {
        /// Sender locality.
        src: LocalityId,
        /// Message tag.
        tag: u64,
        /// Sender-side handle, echoed in the CTS.
        send_id: u64,
        /// Payload length awaiting transfer.
        len: u32,
    },
}

impl Unexpected {
    fn tag(&self) -> u64 {
        match self {
            Unexpected::Eager { tag, .. } => *tag,
            Unexpected::Rts { tag, .. } => *tag,
        }
    }
}

/// The per-locality matching engine.
#[derive(Debug, Default)]
pub struct MatchQueue {
    posted: VecDeque<u64>,
    unexpected: VecDeque<Unexpected>,
}

fn tags_match(posted: u64, msg: u64) -> bool {
    posted == ANY_TAG || posted == msg
}

impl MatchQueue {
    /// A fresh, empty matching engine.
    pub fn new() -> MatchQueue {
        MatchQueue::default()
    }

    /// Post a receive for `tag`. If an unexpected message already matches,
    /// it is consumed and returned; otherwise the receive queues.
    pub fn post(&mut self, tag: u64) -> Option<Unexpected> {
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|u| tags_match(tag, u.tag()))
        {
            return self.unexpected.remove(pos);
        }
        self.posted.push_back(tag);
        None
    }

    /// A message arrived. If a posted receive matches, it is consumed and
    /// the message is returned to the caller for delivery; otherwise the
    /// message joins the unexpected queue and `None` is returned.
    pub fn arrive(&mut self, msg: Unexpected) -> Option<Unexpected> {
        if let Some(pos) = self.posted.iter().position(|&t| tags_match(t, msg.tag())) {
            self.posted.remove(pos);
            return Some(msg);
        }
        self.unexpected.push_back(msg);
        None
    }

    /// Outstanding posted receives.
    pub fn posted_len(&self) -> usize {
        self.posted.len()
    }

    /// Queued unexpected messages.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eager(tag: u64, send_id: u64) -> Unexpected {
        Unexpected::Eager {
            src: 0,
            tag,
            send_id,
            data: vec![],
        }
    }

    #[test]
    fn post_then_arrive_matches() {
        let mut q = MatchQueue::new();
        assert!(q.post(5).is_none());
        let m = q.arrive(eager(5, 1));
        assert!(m.is_some());
        assert_eq!(q.posted_len(), 0);
        assert_eq!(q.unexpected_len(), 0);
    }

    #[test]
    fn arrive_then_post_matches() {
        let mut q = MatchQueue::new();
        assert!(q.arrive(eager(5, 1)).is_none());
        assert_eq!(q.unexpected_len(), 1);
        let m = q.post(5);
        assert!(m.is_some());
        assert_eq!(q.unexpected_len(), 0);
    }

    #[test]
    fn wildcard_posted_matches_any_tag() {
        let mut q = MatchQueue::new();
        q.post(ANY_TAG);
        assert!(q.arrive(eager(1234, 1)).is_some());
    }

    #[test]
    fn wildcard_post_consumes_oldest_unexpected() {
        let mut q = MatchQueue::new();
        q.arrive(eager(10, 1));
        q.arrive(eager(20, 2));
        match q.post(ANY_TAG) {
            Some(Unexpected::Eager { send_id, .. }) => assert_eq!(send_id, 1),
            other => panic!("expected eager, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_tags_do_not_match() {
        let mut q = MatchQueue::new();
        q.post(5);
        assert!(q.arrive(eager(6, 1)).is_none());
        assert_eq!(q.posted_len(), 1);
        assert_eq!(q.unexpected_len(), 1);
        // The right tag still matches the posted receive.
        assert!(q.arrive(eager(5, 2)).is_some());
        // And the stranded unexpected message matches a new post.
        assert!(q.post(6).is_some());
    }

    #[test]
    fn fifo_order_among_same_tag() {
        let mut q = MatchQueue::new();
        q.arrive(eager(7, 1));
        q.arrive(eager(7, 2));
        match q.post(7) {
            Some(Unexpected::Eager { send_id, .. }) => assert_eq!(send_id, 1),
            other => panic!("{other:?}"),
        }
        match q.post(7) {
            Some(Unexpected::Eager { send_id, .. }) => assert_eq!(send_id, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rts_matches_like_eager() {
        let mut q = MatchQueue::new();
        q.post(9);
        let m = q.arrive(Unexpected::Rts {
            src: 3,
            tag: 9,
            send_id: 11,
            len: 1 << 20,
        });
        match m {
            Some(Unexpected::Rts { send_id, len, .. }) => {
                assert_eq!(send_id, 11);
                assert_eq!(len, 1 << 20);
            }
            other => panic!("{other:?}"),
        }
    }
}
