//! The registration cache.
//!
//! RDMA hardware can only address *pinned* (registered) memory, and pinning
//! is a heavyweight kernel operation. Photon keeps an LRU cache of pinned
//! pages so repeated RMA on the same buffers pays the cost once. Ablation A1
//! disables the cache to show the penalty on bandwidth-bound transfers.

use crate::config::PhotonConfig;
use netsim::lru::LruMap;
use netsim::{PhysAddr, Time};

/// Per-endpoint registration cache: a set of currently pinned pages.
pub struct RegCache {
    pages: LruMap<u64, ()>,
    hits: u64,
    misses: u64,
}

impl RegCache {
    /// Create a cache sized from `cfg`.
    pub fn new(cfg: &PhotonConfig) -> RegCache {
        RegCache {
            pages: LruMap::new(cfg.rcache_pages),
            hits: 0,
            misses: 0,
        }
    }

    /// Account a registration of `[addr, addr+len)` and return the pin
    /// delay the caller must charge before posting its RMA operation.
    ///
    /// With the cache enabled, only pages not already pinned cost anything;
    /// with it disabled, every call pays the base cost plus every page.
    pub fn register(&mut self, cfg: &PhotonConfig, addr: PhysAddr, len: u64) -> Time {
        if len == 0 {
            return Time::ZERO;
        }
        let first = addr / cfg.page_bytes;
        let last = (addr + len - 1) / cfg.page_bytes;
        let total_pages = last - first + 1;
        if !cfg.rcache_enabled {
            self.misses += total_pages;
            return cfg.reg_base + cfg.reg_per_page * total_pages;
        }
        let mut new_pages = 0u64;
        for page in first..=last {
            if self.pages.get(&page).is_some() {
                self.hits += 1;
            } else {
                self.pages.insert(page, ());
                self.misses += 1;
                new_pages += 1;
            }
        }
        if new_pages == 0 {
            Time::ZERO
        } else {
            cfg.reg_base + cfg.reg_per_page * new_pages
        }
    }

    /// Cache hits so far (page granularity).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (pages actually pinned) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PhotonConfig {
        PhotonConfig::default()
    }

    #[test]
    fn first_touch_pays_then_free() {
        let c = cfg();
        let mut rc = RegCache::new(&c);
        let d1 = rc.register(&c, 0, 8192); // 2 pages
        assert_eq!(d1, c.reg_base + c.reg_per_page * 2);
        let d2 = rc.register(&c, 0, 8192);
        assert_eq!(d2, Time::ZERO);
        assert_eq!(rc.misses(), 2);
        assert_eq!(rc.hits(), 2);
    }

    #[test]
    fn partial_overlap_pins_only_new_pages() {
        let c = cfg();
        let mut rc = RegCache::new(&c);
        rc.register(&c, 0, 4096); // page 0
        let d = rc.register(&c, 2048, 4096); // pages 0..=1, page 1 new
        assert_eq!(d, c.reg_base + c.reg_per_page);
    }

    #[test]
    fn disabled_cache_always_pays() {
        let c = PhotonConfig {
            rcache_enabled: false,
            ..cfg()
        };
        let mut rc = RegCache::new(&c);
        let d1 = rc.register(&c, 0, 4096);
        let d2 = rc.register(&c, 0, 4096);
        assert_eq!(d1, d2);
        assert!(d1 > Time::ZERO);
        assert_eq!(rc.hits(), 0);
    }

    #[test]
    fn zero_length_is_free() {
        let c = cfg();
        let mut rc = RegCache::new(&c);
        assert_eq!(rc.register(&c, 123, 0), Time::ZERO);
    }

    #[test]
    fn capacity_eviction_forces_repin() {
        let c = PhotonConfig {
            rcache_pages: 2,
            ..cfg()
        };
        let mut rc = RegCache::new(&c);
        rc.register(&c, 0, 4096); // page 0
        rc.register(&c, 4096, 4096); // page 1
        rc.register(&c, 8192, 4096); // page 2 evicts page 0
        let d = rc.register(&c, 0, 4096); // page 0 again: repin
        assert_eq!(d, c.reg_base + c.reg_per_page);
    }
}
