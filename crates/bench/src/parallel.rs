//! The parallel-scaling GUPS kernel (`repro parallel`, EXPERIMENTS.md).
//!
//! Drives the self-pumping GUPS generator in [`SimWorld`] — every put
//! completion immediately issues the next random-block put from the
//! completing locality — over network-managed AGAS on the FDR fabric,
//! once on the sequential engine and once per requested lane count on the
//! sharded engine. The fabric is wire-pure (no jitter, no faults, full
//! bisection), so lanes execute their windows fully in parallel and the
//! barrier replay is the only serial section.
//!
//! Unlike every other experiment in this crate, the measurement here is
//! **wall-clock**, not simulated time: the point is the simulator's own
//! event throughput at different lane counts. The simulated results —
//! trace hash, final clock, event and update counts — must still be
//! bit-identical across lane counts; `repro parallel` and CI gate on
//! that.

use agas::{alloc_array, Distribution, GasMode, SimWorld};
use netsim::{Engine, NetConfig, ShardedEngine, Time};
use std::time::Instant;

/// Workload shape for one parallel-scaling series.
#[derive(Clone, Copy, Debug)]
pub struct ParallelGupsConfig {
    /// Localities (= GUPS table blocks, one homed per locality).
    pub localities: usize,
    /// Pump budget per locality (total updates = localities × this).
    pub updates_per_loc: u64,
    /// Table block size class (blocks of 2^class bytes).
    pub block_class: u8,
    /// Pump RNG seed (also the engine seed).
    pub seed: u64,
}

impl Default for ParallelGupsConfig {
    fn default() -> ParallelGupsConfig {
        ParallelGupsConfig {
            localities: 256,
            updates_per_loc: 1 << 10,
            block_class: 13,
            seed: 42,
        }
    }
}

/// One measured point of the parallel series.
#[derive(Clone, Debug)]
pub struct ParallelGupsRow {
    /// Lane count (1 = the plain sequential engine, no threads).
    pub shards: usize,
    /// Localities simulated.
    pub localities: usize,
    /// Pump puts completed (equals the issued budget: lossless fabric).
    pub updates: u64,
    /// Events executed.
    pub events: u64,
    /// Execution trace hash — must match across lane counts.
    pub trace_hash: u64,
    /// Final simulated clock.
    pub sim: Time,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Synchronization windows executed (0 when sequential).
    pub windows: u64,
    /// Per-lane busy/wall utilization (empty when sequential).
    pub utilization: Vec<f64>,
    /// Fraction of wall time in barrier waits + serial replay.
    pub sync_overhead: f64,
}

impl ParallelGupsRow {
    /// Wall-clock events per second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

fn arm(world: &mut SimWorld, cfg: &ParallelGupsConfig) {
    world.data.record_events = false;
    for l in 0..cfg.localities as u32 {
        world.arm_gups(l, cfg.updates_per_loc, cfg.seed);
    }
}

/// Run the pump to quiescence at `shards` lanes (1 = sequential engine).
pub fn parallel_gups(cfg: &ParallelGupsConfig, shards: usize) -> ParallelGupsRow {
    let n = cfg.localities;
    let mut world = SimWorld::new(n, GasMode::AgasNetwork, NetConfig::ib_fdr());
    arm(&mut world, cfg);
    if shards <= 1 {
        let mut eng = Engine::new(world, cfg.seed);
        let arr = alloc_array(&mut eng, n as u64, cfg.block_class, Distribution::Cyclic);
        eng.state.set_pump_blocks(arr.blocks.clone());
        let t = Instant::now();
        for l in 0..n as u32 {
            SimWorld::pump_prime(&mut eng, l);
        }
        eng.run();
        ParallelGupsRow {
            shards: 1,
            localities: n,
            updates: eng.state.pump_completed(),
            events: eng.events_executed(),
            trace_hash: eng.trace_hash(),
            sim: eng.now(),
            wall_secs: t.elapsed().as_secs_f64(),
            windows: 0,
            utilization: Vec::new(),
            sync_overhead: 0.0,
        }
    } else {
        let mut sh = ShardedEngine::new(world, cfg.seed, shards);
        let arr = sh.drive(|e| alloc_array(e, n as u64, cfg.block_class, Distribution::Cyclic));
        sh.state().set_pump_blocks(arr.blocks.clone());
        let t = Instant::now();
        for l in 0..n as u32 {
            sh.drive_at(l, move |e| SimWorld::pump_prime(e, l));
        }
        sh.run();
        let wall_secs = t.elapsed().as_secs_f64();
        let stats = sh.stats().clone();
        ParallelGupsRow {
            shards,
            localities: n,
            updates: sh.state().pump_completed(),
            events: sh.events_executed(),
            trace_hash: sh.trace_hash(),
            sim: sh.now(),
            wall_secs,
            windows: stats.windows,
            utilization: stats.utilization(),
            sync_overhead: stats.sync_overhead(),
        }
    }
}

/// Lane counts to sweep for a `--shards max` request: powers of two up to
/// and including `max` (plus `max` itself when it is not a power of two).
pub fn shard_ladder(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut k = 1;
    while k < max {
        v.push(k);
        k *= 2;
    }
    v.push(max.max(1));
    v
}
