//! `nmvgas-cli` — run one simulated scenario from the command line.
//!
//! ```sh
//! cargo run --release -p bench --bin nmvgas-cli -- \
//!     --workload gups --mode net --locs 16 --fabric ib \
//!     --ops 4096 --window 16 --profile
//! ```
//!
//! A thin, dependency-free argument parser over the same workload kernels
//! the benchmarks use; prints the scenario's simulated results and,
//! optionally, the per-action profile and NIC utilization.

use agas::GasMode;
use netsim::{NetConfig, Time};
use parcel_rt::{RtConfig, Runtime, Transport};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse() -> Args {
        let mut flags = HashMap::new();
        let mut it = std::env::args().skip(1).peekable();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                eprintln!("unexpected argument {a:?} (flags are --name [value])");
                std::process::exit(2);
            };
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => it.next().unwrap(),
                _ => "true".to_string(),
            };
            flags.insert(name.to_string(), value);
        }
        Args { flags }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.flags.get(name) {
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for --{name}: {v:?}");
                std::process::exit(2);
            }),
            None => default,
        }
    }

    fn str(&self, name: &str, default: &str) -> String {
        self.flags
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn bool(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

fn mode_of(s: &str) -> GasMode {
    match s {
        "pgas" => GasMode::Pgas,
        "sw" | "agas-sw" => GasMode::AgasSoftware,
        "net" | "agas-net" => GasMode::AgasNetwork,
        other => {
            eprintln!("unknown --mode {other:?} (pgas | sw | net)");
            std::process::exit(2);
        }
    }
}

fn fabric_of(s: &str) -> NetConfig {
    match s {
        "ib" | "ib-fdr" => NetConfig::ib_fdr(),
        "eth" | "10gbe" => NetConfig::ethernet_10g(),
        "cray" | "gemini" => NetConfig::cray_gemini(),
        "ideal" => NetConfig::ideal(),
        other => {
            eprintln!("unknown --fabric {other:?} (ib | eth | cray | ideal)");
            std::process::exit(2);
        }
    }
}

fn builder(args: &Args) -> (usize, GasMode, NetConfig, RtConfig) {
    let locs: usize = args.get("locs", 8);
    let mode = mode_of(&args.str("mode", "net"));
    let mut net = fabric_of(&args.str("fabric", "ib"));
    net.jitter_ns = args.get("jitter-ns", 0u64);
    net.oversubscription = args.get("oversub", 1u64);
    net.nic_ports = args.get("ports", 1usize);
    if let Some(cap) = args.flags.get("xlate-capacity") {
        net.xlate_capacity = cap.parse().unwrap_or(usize::MAX);
    }
    let rt = RtConfig {
        transport: if args.str("transport", "pwc") == "isir" {
            Transport::Isir
        } else {
            Transport::Pwc
        },
        ring: args.bool("coalesce").then(netsim::RingConfig::default),
        workers: args.get("workers", 4),
        ..RtConfig::default()
    };
    (locs, mode, net, rt)
}

fn finish(rt: &Runtime, args: &Args, started: Time) {
    println!("simulated time : {}", rt.now() - started);
    let c = rt.counters();
    println!(
        "cluster totals : {} msgs, {} rdma puts, {} rdma gets, {} xlate hits, {} misses, {} cpu",
        c.msgs_sent, c.rdma_puts, c.rdma_gets, c.xlate_hits, c.xlate_misses, c.cpu_busy
    );
    let g = rt.eng.state.total_gas_stats();
    println!(
        "gas            : {} puts, {} gets, {} retries, {} migrations",
        g.puts, g.gets, g.retries, g.migrations_done
    );
    if args.bool("profile") {
        println!("action profile :");
        for (name, n, t) in rt.eng.state.action_profile() {
            println!("  {name:<20} ×{n:<8} {t}");
        }
    }
    if args.bool("utilization") {
        println!("nic utilization (tx / rx):");
        for (l, (tx, rx)) in rt
            .eng
            .state
            .cluster
            .nic_utilization(rt.now())
            .into_iter()
            .enumerate()
        {
            println!("  loc {l:<3} {:>6.1}% / {:>6.1}%", tx * 100.0, rx * 100.0);
        }
    }
}

fn main() {
    let args = Args::parse();
    let workload = args.str("workload", "gups");
    let (locs, mode, net, rtcfg) = builder(&args);
    println!(
        "workload={workload} mode={} locs={locs} fabric={} transport={:?}{}",
        mode.label(),
        args.str("fabric", "ib"),
        rtcfg.transport,
        if rtcfg.ring.is_some() {
            " +ring-batching"
        } else {
            ""
        }
    );

    match workload.as_str() {
        "gups" => {
            let cfg = workloads::gups::GupsConfig {
                cells_per_loc: args.get("cells", 1u64 << 13),
                updates_per_loc: args.get("ops", 1u64 << 10),
                window: args.get("window", 16usize),
                use_actions: args.bool("actions"),
                ..workloads::gups::GupsConfig::default()
            };
            let mut b = Runtime::builder(locs, mode).net(net);
            workloads::gups::register_actions(&mut b);
            let mut rt = b.rt_config(rtcfg).boot();
            let table = workloads::gups::alloc_table(&mut rt, &cfg);
            let t0 = rt.now();
            let res = workloads::gups::run(&mut rt, &cfg, &table);
            println!(
                "updates        : {}  ({:.2} MUPS)",
                res.updates,
                res.gups * 1e3
            );
            finish(&rt, &args, t0);
        }
        "stencil" => {
            let cfg = workloads::stencil::StencilConfig {
                px: args.get("px", 4u32),
                py: args.get("py", 4u32),
                tile: args.get("tile", 32u32),
                iters: args.get("iters", 4u32),
                flop_time: Time::from_us(args.get("flop-us", 20u64)),
            };
            let mut b = Runtime::builder(locs, mode).net(net);
            workloads::stencil::register_actions(&mut b);
            let mut rt = b.rt_config(rtcfg).boot();
            let tiles = workloads::stencil::alloc_tiles(&mut rt, &cfg);
            let t0 = rt.now();
            let res = workloads::stencil::run(&mut rt, &cfg, &tiles);
            println!("per-iteration  : {}", res.per_iter);
            finish(&rt, &args, t0);
        }
        "bfs" => {
            let cfg = workloads::bfs::BfsConfig {
                vertices: args.get("vertices", 4096u32),
                chords: args.get("chords", 3u32),
                ..workloads::bfs::BfsConfig::default()
            };
            let slot = Rc::new(RefCell::new(None));
            let mut b = Runtime::builder(locs, mode);
            workloads::bfs::register_actions(&mut b, slot.clone());
            let mut rt = b.net(net).rt_config(rtcfg).boot();
            workloads::bfs::install(&mut rt, &cfg, &slot);
            let t0 = rt.now();
            let res = workloads::bfs::run(&mut rt, &cfg, &slot);
            let got = workloads::bfs::read_labels(&rt, &slot);
            let expect = slot.borrow().as_ref().unwrap().graph.bfs_oracle(cfg.root);
            assert_eq!(got, expect, "BFS verification failed");
            println!(
                "relaxations    : {}  ({:.2} MTEPS, verified)",
                res.relaxations,
                res.teps / 1e6
            );
            finish(&rt, &args, t0);
        }
        "sssp" => {
            let cfg = workloads::sssp::SsspConfig {
                vertices: args.get("vertices", 1024u32),
                chords: args.get("chords", 2u32),
                max_weight: args.get("max-weight", 8u32),
                ..workloads::sssp::SsspConfig::default()
            };
            let slot = Rc::new(RefCell::new(None));
            let mut b = Runtime::builder(locs, mode);
            workloads::sssp::register_actions(&mut b, slot.clone());
            let mut rt = b.net(net).rt_config(rtcfg).boot();
            workloads::sssp::install(&mut rt, &cfg, &slot);
            let t0 = rt.now();
            let res = workloads::sssp::run(&mut rt, &cfg, &slot);
            let got = workloads::sssp::read_labels(&rt, &slot);
            let expect = slot.borrow().as_ref().unwrap().graph.dijkstra(cfg.root);
            assert_eq!(got, expect, "SSSP verification failed");
            println!(
                "relaxations    : {} ({:.2}x overshoot, verified)",
                res.relaxations, res.overshoot
            );
            finish(&rt, &args, t0);
        }
        "skew" => {
            let cfg = workloads::skew::SkewConfig {
                ops_per_loc: args.get("ops", 1u64 << 10),
                read_bytes: args.get("read-bytes", 4096u32),
                theta: args.get("theta", 1.05f64),
                rebalance_every: args.get("rebalance-every", 512u64),
                ..workloads::skew::SkewConfig::default()
            };
            let mut rt = Runtime::builder(locs, mode)
                .net(net)
                .rt_config(rtcfg)
                .boot();
            let data = workloads::skew::alloc_blocks(&mut rt, &cfg);
            let t0 = rt.now();
            let res = workloads::skew::run(&mut rt, &cfg, &data);
            println!(
                "reads          : {} ({:.0}/s, {} migrations)",
                res.ops, res.ops_per_sec, res.migrations
            );
            finish(&rt, &args, t0);
        }
        "transpose" => {
            let cfg = workloads::transpose::TransposeConfig {
                block_class: args.get("class", 14u8),
                rounds: args.get("rounds", 1u32),
            };
            let mut rt = Runtime::builder(locs, mode)
                .net(net)
                .rt_config(rtcfg)
                .boot();
            let arrays = workloads::transpose::setup(&mut rt, &cfg);
            let t0 = rt.now();
            let res = workloads::transpose::run(&mut rt, &cfg, &arrays);
            workloads::transpose::verify(&rt, &cfg, &arrays);
            println!(
                "moved          : {} B ({:.2} GB/s aggregate, verified)",
                res.bytes_moved, res.aggregate_gbps
            );
            finish(&rt, &args, t0);
        }
        other => {
            eprintln!(
                "unknown --workload {other:?} (gups | stencil | bfs | sssp | skew | transpose)"
            );
            std::process::exit(2);
        }
    }
}
