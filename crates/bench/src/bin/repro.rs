//! `repro` — regenerate every table and figure of the reconstructed
//! evaluation (DESIGN.md §5).
//!
//! ```sh
//! cargo run --release -p bench --bin repro -- all     # everything
//! cargo run --release -p bench --bin repro -- e1      # one experiment
//! cargo run --release -p bench --bin repro -- perf    # engine throughput
//! cargo run --release -p bench --bin repro -- chaos   # fault-injection matrix
//! cargo run --release -p bench --bin repro -- amo     # NIC active-op A/B series
//! cargo run --release -p bench --bin repro -- --json all
//! ```
//!
//! All numbers are **simulated time** on the deterministic model: rerunning
//! any experiment reproduces it bit-for-bit. Parameter sweeps run their
//! (independent) simulations in parallel with rayon.
//!
//! With `--json`, every experiment additionally emits one machine-readable
//! summary row per run as a JSON line (the only stdout lines starting with
//! `{`): experiment id, series, simulated time swept, wall-clock seconds,
//! events executed, events/second, and the translation fast-path counters
//! (`xlate_lookups`, `xlate_probes`, `memo_hits` — see EXPERIMENTS.md).
//! `perf` measures the engine's wall-clock event throughput on hot-path
//! workloads and reports the same rows; its `gups_agas_net` series drives
//! the NIC translation table and owner caches hard enough that the
//! translation counters are meaningfully nonzero.

use agas::GasMode;
use bench::*;
use netsim::{telemetry, NetConfig, Time};
use rayon::prelude::*;
use std::time::Instant;

fn header(id: &str, title: &str) {
    println!();
    println!("== {id}: {title}");
}

fn fmt_cap(c: usize) -> String {
    if c == usize::MAX {
        "unbounded".into()
    } else {
        c.to_string()
    }
}

fn e1() {
    header("E1", "memput latency vs transfer size (Fig.)");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>10}",
        "size", "PGAS", "AGAS-SW", "AGAS-NET", "NET/PGAS"
    );
    let rows: Vec<_> = SIZES
        .par_iter()
        .map(|&size| {
            let net = NetConfig::ib_fdr();
            let p = put_latency(GasMode::Pgas, size, net);
            let s = put_latency(GasMode::AgasSoftware, size, net);
            let n = put_latency(GasMode::AgasNetwork, size, net);
            (size, p, s, n)
        })
        .collect();
    for (size, p, s, n) in rows {
        println!(
            "{:>9} {:>12} {:>12} {:>12} {:>9.3}x",
            size,
            format!("{p}"),
            format!("{s}"),
            format!("{n}"),
            n.ps() as f64 / p.ps() as f64
        );
    }
}

fn e1b() {
    header("E1b", "put latency under load: mean / p99 (Fig. inset)");
    println!("{:<10} {:>12} {:>12}", "mode", "mean", "p99");
    let rows: Vec<_> = GasMode::ALL
        .par_iter()
        .map(|&m| (m, loaded_latency(m)))
        .collect();
    for (m, (mean, p99)) in rows {
        println!(
            "{:<10} {:>12} {:>12}",
            m.label(),
            format!("{mean}"),
            format!("{p99}")
        );
    }
}

fn e2() {
    header("E2", "memget latency vs transfer size (Fig.)");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>10}",
        "size", "PGAS", "AGAS-SW", "AGAS-NET", "NET/PGAS"
    );
    let rows: Vec<_> = SIZES
        .par_iter()
        .map(|&size| {
            let net = NetConfig::ib_fdr();
            let p = get_latency(GasMode::Pgas, size, net);
            let s = get_latency(GasMode::AgasSoftware, size, net);
            let n = get_latency(GasMode::AgasNetwork, size, net);
            (size, p, s, n)
        })
        .collect();
    for (size, p, s, n) in rows {
        println!(
            "{:>9} {:>12} {:>12} {:>12} {:>9.3}x",
            size,
            format!("{p}"),
            format!("{s}"),
            format!("{n}"),
            n.ps() as f64 / p.ps() as f64
        );
    }
}

fn e3() {
    header("E3", "put bandwidth vs transfer size, window 16 (Fig.)");
    println!(
        "{:>9} {:>12} {:>12} {:>12}",
        "size", "PGAS GB/s", "SW GB/s", "NET GB/s"
    );
    let rows: Vec<_> = SIZES
        .par_iter()
        .map(|&size| {
            let net = NetConfig::ib_fdr();
            (
                size,
                put_bandwidth(GasMode::Pgas, size, net),
                put_bandwidth(GasMode::AgasSoftware, size, net),
                put_bandwidth(GasMode::AgasNetwork, size, net),
            )
        })
        .collect();
    for (size, p, s, n) in rows {
        println!("{size:>9} {p:>12.3} {s:>12.3} {n:>12.3}");
    }
}

fn e4() {
    header("E4", "8-byte put message rate vs outstanding window (Fig.)");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "window", "PGAS Mop/s", "SW Mop/s", "NET Mop/s"
    );
    let rows: Vec<_> = WINDOWS
        .par_iter()
        .map(|&w| {
            let net = NetConfig::ib_fdr();
            (
                w,
                message_rate(GasMode::Pgas, w, net),
                message_rate(GasMode::AgasSoftware, w, net),
                message_rate(GasMode::AgasNetwork, w, net),
            )
        })
        .collect();
    for (w, p, s, n) in rows {
        println!("{w:>8} {p:>12.3} {s:>12.3} {n:>12.3}");
    }
}

fn e4b() {
    header(
        "E4b",
        "message-rate ceiling vs NIC queue pairs (AGAS-NET, window 128)",
    );
    println!("{:>7} {:>12}", "ports", "Mop/s");
    let rows: Vec<_> = [1usize, 2, 4, 8]
        .par_iter()
        .map(|&p| (p, message_rate_ports(p)))
        .collect();
    for (p, rate) in rows {
        println!("{p:>7} {rate:>12.3}");
    }
}

fn e5() {
    header("E5", "GUPS weak scaling (Fig.)");
    println!(
        "{:>6} {:>11} {:>11} {:>11} {:>16}",
        "locs", "PGAS MUPS", "SW MUPS", "NET MUPS", "SW cpu-s/Mupd"
    );
    let rows: Vec<_> = SCALES
        .par_iter()
        .map(|&n| {
            let net = NetConfig::ib_fdr();
            (
                n,
                gups_scaling(GasMode::Pgas, n, net),
                gups_scaling(GasMode::AgasSoftware, n, net),
                gups_scaling(GasMode::AgasNetwork, n, net),
            )
        })
        .collect();
    for (n, p, s, t) in rows {
        println!(
            "{:>6} {:>11.2} {:>11.2} {:>11.2} {:>16.3}",
            n, p.mups, s.mups, t.mups, s.cpu_per_mupdate
        );
    }
}

fn e6() {
    header("E6", "NIC translation-table capacity sensitivity (Fig.)");
    println!(
        "{:>11} {:>10} {:>10} {:>13}",
        "capacity", "MUPS", "hit rate", "sw fallbacks"
    );
    let rows: Vec<_> = CAPACITIES.par_iter().map(|&c| table_capacity(c)).collect();
    for r in rows {
        println!(
            "{:>11} {:>10.2} {:>9.1}% {:>13}",
            fmt_cap(r.capacity),
            r.mups,
            r.hit_rate * 100.0,
            r.sw_fallbacks
        );
    }
    let sw = gups_scaling(GasMode::AgasSoftware, 8, NetConfig::ib_fdr());
    println!(
        "{:>11} {:>10.2}   (software-AGAS floor)",
        "AGAS-SW", sw.mups
    );
}

fn e7() {
    header("E7", "block migration cost vs block size (Tab.)");
    println!("{:>10} {:>12} {:>12}", "block", "AGAS-SW", "AGAS-NET");
    let rows: Vec<_> = MIG_CLASSES
        .par_iter()
        .map(|&class| {
            let net = NetConfig::ib_fdr();
            (
                class,
                migration_cost(GasMode::AgasSoftware, class, net),
                migration_cost(GasMode::AgasNetwork, class, net),
            )
        })
        .collect();
    for (class, sw, net) in rows {
        println!(
            "{:>10} {:>12} {:>12}",
            format!("{} KiB", (1u64 << class) / 1024),
            format!("{sw}"),
            format!("{net}")
        );
    }
}

fn e8() {
    header("E8", "skewed access + migration rebalancing (Fig.)");
    println!(
        "{:<24} {:>12} {:>13} {:>11}",
        "configuration", "makespan", "reads/s", "migrations"
    );
    let n = 8;
    let configs: Vec<(&str, GasMode, bool)> = vec![
        ("PGAS (static)", GasMode::Pgas, false),
        ("AGAS-SW, no rebal.", GasMode::AgasSoftware, false),
        ("AGAS-SW + rebalance", GasMode::AgasSoftware, true),
        ("AGAS-NET, no rebal.", GasMode::AgasNetwork, false),
        ("AGAS-NET + rebalance", GasMode::AgasNetwork, true),
    ];
    let rows: Vec<_> = configs
        .par_iter()
        .map(|&(label, mode, rebal)| (label, skew_row(mode, rebal, n)))
        .collect();
    for (label, r) in rows {
        println!(
            "{:<24} {:>12} {:>13.0} {:>11}",
            label,
            format!("{}", r.elapsed),
            r.ops_per_sec,
            r.migrations
        );
    }
}

fn e9() {
    header("E9", "application proxy: 2-D halo-exchange stencil (Tab.)");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "locs", "PGAS/iter", "SW/iter", "NET/iter"
    );
    let rows: Vec<_> = [4usize, 16, 64]
        .par_iter()
        .map(|&n| {
            let net = NetConfig::ib_fdr();
            (
                n,
                stencil_row(GasMode::Pgas, n, net),
                stencil_row(GasMode::AgasSoftware, n, net),
                stencil_row(GasMode::AgasNetwork, n, net),
            )
        })
        .collect();
    for (n, p, s, t) in rows {
        println!(
            "{:>6} {:>14} {:>14} {:>14}",
            n,
            format!("{}", p.per_iter),
            format!("{}", s.per_iter),
            format!("{}", t.per_iter)
        );
    }
}

fn e9b() {
    header("E9b", "application proxy: 3-D face-exchange stencil (Tab.)");
    println!(
        "{:>6} {:>14} {:>14} {:>14}",
        "locs", "PGAS/iter", "SW/iter", "NET/iter"
    );
    let rows: Vec<_> = [4usize, 16]
        .par_iter()
        .map(|&n| {
            (
                n,
                stencil3d_row(GasMode::Pgas, n),
                stencil3d_row(GasMode::AgasSoftware, n),
                stencil3d_row(GasMode::AgasNetwork, n),
            )
        })
        .collect();
    for (n, p, s, t) in rows {
        println!(
            "{:>6} {:>14} {:>14} {:>14}",
            n,
            format!("{}", p.per_iter),
            format!("{}", s.per_iter),
            format!("{}", t.per_iter)
        );
    }
}

fn e10() {
    header("E10", "protocol operations per remote access (Tab.)");
    println!(
        "{:<10} {:<5} {:>9} {:>9} {:>6} {:>13} {:>11}",
        "mode", "op", "rdma", "messages", "ctrl", "CPU handlers", "NIC xlates"
    );
    for mode in GasMode::ALL {
        for (put, opname) in [(true, "put"), (false, "get")] {
            let f = protocol_footprint(mode, put);
            println!(
                "{:<10} {:<5} {:>9} {:>9} {:>6} {:>13} {:>11}",
                mode.label(),
                opname,
                f.rdma_ops,
                f.messages,
                f.ctrl,
                f.cpu_handlers,
                f.nic_xlates
            );
        }
    }
}

fn a1() {
    header(
        "A1",
        "ablation: registration cache (8 × 1 MiB rendezvous sends)",
    );
    let on = rcache_ablation(true);
    let off = rcache_ablation(false);
    println!("rcache on : {on}");
    println!(
        "rcache off: {off}  ({:.2}x slower)",
        off.ps() as f64 / on.ps() as f64
    );
}

fn a2() {
    header("A2", "ablation: eager/rendezvous threshold crossover");
    println!(
        "{:>9} {:>12} {:>12} {:>12}",
        "size", "thr=512", "thr=4096", "thr=32768"
    );
    let sizes = [256u32, 512, 1024, 4096, 8192, 32768, 65536];
    let rows: Vec<_> = sizes
        .par_iter()
        .map(|&s| {
            (
                s,
                eager_threshold_latency(512, s),
                eager_threshold_latency(4096, s),
                eager_threshold_latency(32768, s),
            )
        })
        .collect();
    for (s, a, b, c) in rows {
        println!(
            "{:>9} {:>12} {:>12} {:>12}",
            s,
            format!("{a}"),
            format!("{b}"),
            format!("{c}")
        );
    }
}

fn a3() {
    header(
        "A3",
        "ablation: stale access after migration — NIC forwarding vs NACK-only",
    );
    println!(
        "{:<14} {:>12} {:>12} {:>9} {:>7} {:>9}",
        "policy", "stale put", "fresh put", "forwards", "nacks", "retries"
    );
    for (label, fwd) in [("forwarding", true), ("NACK-only", false)] {
        let r = migration_race(fwd);
        println!(
            "{:<14} {:>12} {:>12} {:>9} {:>7} {:>9}",
            label,
            format!("{}", r.stale_put_latency),
            format!("{}", r.fresh_put_latency),
            r.forwards,
            r.nacks,
            r.retries
        );
    }
}

fn e10b() {
    header("E10b", "protocol footprint of one migration (Tab.)");
    println!(
        "{:<10} {:>9} {:>9} {:>7}",
        "mode", "messages", "dir ops", "moves"
    );
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let f = migration_footprint(mode);
        println!(
            "{:<10} {:>9} {:>9} {:>7}",
            mode.label(),
            f.messages,
            f.dir_ops,
            f.moves
        );
    }
}

fn e11() {
    header(
        "E11",
        "parcel network backend: PWC (one-sided) vs ISIR (two-sided) (Tab.)",
    );
    println!("{:>9} {:>12} {:>12}", "payload", "PWC", "ISIR");
    let rows: Vec<_> = [8u32, 64, 512, 4096, 32768, 262144]
        .par_iter()
        .map(|&p| {
            (
                p,
                parcel_latency(parcel_rt::Transport::Pwc, p),
                parcel_latency(parcel_rt::Transport::Isir, p),
            )
        })
        .collect();
    for (p, pwc, isir) in rows {
        println!(
            "{:>9} {:>12} {:>12}",
            p,
            format!("{pwc}"),
            format!("{isir}")
        );
    }
    let rp = parcel_rate(parcel_rt::Transport::Pwc);
    let ri = parcel_rate(parcel_rt::Transport::Isir);
    println!("sustained 32 B parcel rate: PWC {rp:.2} Mp/s, ISIR {ri:.2} Mp/s");
}

fn e12() {
    header(
        "E12",
        "fabric oversubscription: aggregate bandwidth of 4 disjoint streams",
    );
    println!("{:>8} {:>16}", "factor", "aggregate GB/s");
    let rows: Vec<_> = [1u64, 2, 4, 8]
        .par_iter()
        .map(|&k| (k, bisection_bandwidth(k)))
        .collect();
    for (k, bw) in rows {
        println!("{k:>8} {bw:>16.3}");
    }
}

fn e13() {
    header("E13", "message-driven BFS traversal rate (Tab.)");
    println!("{:>6} {:>14} {:>14}", "locs", "PWC MTEPS", "ISIR MTEPS");
    let rows: Vec<_> = [2usize, 4, 8, 16, 32]
        .par_iter()
        .map(|&n| {
            (
                n,
                bfs_teps(n, parcel_rt::Transport::Pwc),
                bfs_teps(n, parcel_rt::Transport::Isir),
            )
        })
        .collect();
    for (n, pwc, isir) in rows {
        println!("{:>6} {:>14.2} {:>14.2}", n, pwc / 1e6, isir / 1e6);
    }
}

fn e14() {
    header("E14", "parcel coalescing ablation (message aggregation)");
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "workload", "time", "messages", "batches"
    );
    let rows: Vec<(&str, CoalesceRow)> = vec![
        ("BFS/ib, no coal.", bfs_coalescing(false)),
        ("BFS/ib, coalesced", bfs_coalescing(true)),
        (
            "GUPS/ib, no coal.",
            gups_coalescing_on(false, NetConfig::ib_fdr()),
        ),
        (
            "GUPS/ib, coalesced",
            gups_coalescing_on(true, NetConfig::ib_fdr()),
        ),
        ("flood 2k, no coal.", parcel_flood(false, 2048)),
        ("flood 2k, coalesced", parcel_flood(true, 2048)),
    ];
    for (label, r) in rows {
        println!(
            "{:<22} {:>12} {:>12} {:>10}",
            label,
            format!("{}", r.elapsed),
            r.messages,
            r.batches
        );
    }
}

fn e15() {
    header("E15", "all-to-all transpose: aggregate bandwidth (Tab.)");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "factor", "PGAS GB/s", "SW GB/s", "NET GB/s"
    );
    let rows: Vec<_> = [1u64, 2, 4]
        .par_iter()
        .map(|&k| {
            (
                k,
                transpose_bandwidth(GasMode::Pgas, k),
                transpose_bandwidth(GasMode::AgasSoftware, k),
                transpose_bandwidth(GasMode::AgasNetwork, k),
            )
        })
        .collect();
    for (k, p, s, n) in rows {
        println!("{k:>8} {p:>12.3} {s:>12.3} {n:>12.3}");
    }
}

/// One machine-readable measurement row (`--json`).
struct PerfRow {
    id: String,
    series: String,
    sim: Time,
    wall_secs: f64,
    events: u64,
    xlate_lookups: u64,
    xlate_probes: u64,
    memo_hits: u64,
    amo_executed: u64,
    amo_nacked: u64,
    amo_forwarded: u64,
    window_widened: u64,
    window_narrowed: u64,
    doorbell_batch_raised: u64,
    doorbell_batch_lowered: u64,
    migration_ring_descs: u64,
    members_joined: u64,
    members_drained: u64,
    members_crashed: u64,
    blocks_rehomed: u64,
    blocks_recovered: u64,
    stale_xlate_dropped: u64,
}

impl PerfRow {
    fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Mean slots examined per translation lookup (1.0 = every lookup hit
    /// its home slot).
    fn probes_per_lookup(&self) -> f64 {
        if self.xlate_lookups > 0 {
            self.xlate_probes as f64 / self.xlate_lookups as f64
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"id\":\"{}\",\"series\":\"{}\",\"sim_time_ps\":{},",
                "\"wall_seconds\":{:.6},\"events\":{},\"events_per_sec\":{:.0},",
                "\"xlate_lookups\":{},\"xlate_probes\":{},\"memo_hits\":{},",
                "\"amo_executed\":{},\"amo_nacked\":{},\"amo_forwarded\":{},",
                "\"window_widened\":{},\"window_narrowed\":{},",
                "\"doorbell_batch_raised\":{},\"doorbell_batch_lowered\":{},",
                "\"migration_ring_descs\":{},",
                "\"members_joined\":{},\"members_drained\":{},",
                "\"members_crashed\":{},\"blocks_rehomed\":{},",
                "\"blocks_recovered\":{},\"stale_xlate_dropped\":{}}}"
            ),
            self.id,
            self.series,
            self.sim.ps(),
            self.wall_secs,
            self.events,
            self.events_per_sec(),
            self.xlate_lookups,
            self.xlate_probes,
            self.memo_hits,
            self.amo_executed,
            self.amo_nacked,
            self.amo_forwarded,
            self.window_widened,
            self.window_narrowed,
            self.doorbell_batch_raised,
            self.doorbell_batch_lowered,
            self.migration_ring_descs,
            self.members_joined,
            self.members_drained,
            self.members_crashed,
            self.blocks_rehomed,
            self.blocks_recovered,
            self.stale_xlate_dropped
        )
    }
}

/// Run `f`, measuring wall clock and the engine-telemetry delta it causes.
fn measure(id: &str, series: &str, f: impl FnOnce()) -> PerfRow {
    let before = telemetry::snapshot();
    let t = Instant::now();
    f();
    let wall_secs = t.elapsed().as_secs_f64();
    let d = telemetry::snapshot().since(before);
    PerfRow {
        id: id.into(),
        series: series.into(),
        sim: Time::from_ps(d.sim_ps),
        wall_secs,
        events: d.events,
        xlate_lookups: d.xlate_lookups,
        xlate_probes: d.xlate_probes,
        memo_hits: d.memo_hits,
        amo_executed: d.amo_executed,
        amo_nacked: d.amo_nacked,
        amo_forwarded: d.amo_forwarded,
        window_widened: d.window_widened,
        window_narrowed: d.window_narrowed,
        doorbell_batch_raised: d.doorbell_batch_raised,
        doorbell_batch_lowered: d.doorbell_batch_lowered,
        migration_ring_descs: d.migration_ring_descs,
        members_joined: d.members_joined,
        members_drained: d.members_drained,
        members_crashed: d.members_crashed,
        blocks_rehomed: d.blocks_rehomed,
        blocks_recovered: d.blocks_recovered,
        stale_xlate_dropped: d.stale_xlate_dropped,
    }
}

/// `ops` — freeze a mixed put/get/migration workload mid-flight and dump
/// the unified op table (DESIGN.md §3.2), then run to quiescence and
/// report the per-op outcome counters.
fn ops_dump(json: bool) {
    use agas::Distribution;

    header("ops", "in-flight op-table snapshot + outcome counters");
    let net = NetConfig {
        jitter_ns: 300,
        ..NetConfig::ib_fdr()
    };
    let mut rt = parcel_rt::Runtime::builder(4, GasMode::AgasNetwork)
        .net(net)
        .boot();
    let arr = rt.alloc(8, 13, Distribution::Cyclic);
    for i in 0..24u64 {
        let gva = arr.block(i % 8).with_offset((i / 8) * 128);
        rt.memput(((i + 1) % 4) as u32, gva, vec![i as u8 + 1; 128]);
        if i % 3 == 0 {
            rt.memget_cb(((i + 2) % 4) as u32, gva, 128, |_, _| {});
        }
    }
    rt.migrate(0, arr.block(2), 3);
    rt.migrate(1, arr.block(5), 0);

    // Freeze the simulation a few hundred events in: plenty of ops are
    // between issue and outcome, exactly what the dump is for.
    rt.eng.run_steps(220);
    let now = rt.now();
    let snaps: Vec<(u32, Vec<agas::OpSnapshot>)> = (0..rt.n())
        .map(|l| (l, rt.eng.state.gas[l as usize].op_snapshots()))
        .collect();
    let in_flight: usize = snaps.iter().map(|(_, s)| s.len()).sum();
    if !json {
        println!("-- frozen at {now} with {in_flight} op(s) in flight:");
        for (l, s) in &snaps {
            for snap in s {
                println!("  locality {l}: {}", snap.render(now));
            }
        }
    }

    rt.run();
    let outcomes = rt.eng.state.total_outcomes();
    let stats = rt.eng.state.total_gas_stats();
    if json {
        println!(
            concat!(
                "{{\"id\":\"ops\",\"in_flight_at_freeze\":{},",
                "\"completed\":{},\"nacked\":{},\"retried\":{},",
                "\"deadline_exceeded\":{},\"protocol_violations\":{},",
                "\"stale_completions\":{},\"ops_failed\":{}}}"
            ),
            in_flight,
            outcomes.completed,
            outcomes.nacked,
            outcomes.retried,
            outcomes.deadline_exceeded,
            outcomes.protocol_violations,
            stats.stale_completions,
            stats.ops_failed,
        );
    } else {
        println!("-- after quiescence:");
        println!("  outcomes: {outcomes}");
        println!(
            "  stale completions {} | ops failed {}",
            stats.stale_completions, stats.ops_failed
        );
    }
}

/// `chaos [seed]` — the fault-injection matrix (DESIGN.md §3.4): every GAS
/// mode under seeded fault mixes with migration churn, reporting
/// injection, recovery, and the history checker's verdict. Exits nonzero
/// if any cell fails its gate. Fully deterministic for a given seed,
/// including `--json` output (no wall-clock fields).
fn chaos(json: bool, seed: u64) {
    use netsim::FaultPlan;
    use workloads::chaos::{corrupt_mix, drop_mix, run_chaos, ChaosConfig};

    header(
        "chaos",
        &format!("fault-injection matrix: recovery + serializability (seed {seed})"),
    );
    let mixes: Vec<(&str, FaultPlan)> = vec![
        ("lossless", FaultPlan::lossless(9 ^ seed)),
        ("drop2", drop_mix(21 ^ seed, 0.02)),
        ("drop5", drop_mix(33 ^ seed, 0.05)),
        ("corrupt4", corrupt_mix(41 ^ seed, 0.04)),
    ];
    let cells: Vec<(GasMode, &str, FaultPlan)> = GasMode::ALL
        .iter()
        .flat_map(|&mode| {
            mixes
                .iter()
                .map(move |(label, plan)| (mode, *label, plan.clone()))
        })
        .collect();
    let rows: Vec<_> = cells
        .par_iter()
        .map(|(mode, label, plan)| {
            let r = run_chaos(&ChaosConfig {
                mode: *mode,
                plan: plan.clone(),
                seed,
                rounds: 20,
                churn: 3,
                ..ChaosConfig::default()
            });
            (*mode, *label, r)
        })
        .collect();
    if !json {
        println!(
            "{:<10} {:<9} {:>7} {:>5} {:>6} {:>8} {:>8} {:>6} {:>6} {:>7} {:>5} {:>5}",
            "mode",
            "mix",
            "dropped",
            "dup",
            "crpt",
            "retries",
            "dl-retry",
            "fwds",
            "nacks",
            "failed",
            "acct",
            "viol"
        );
    }
    for (mode, label, r) in &rows {
        if json {
            println!(
                concat!(
                    "{{\"id\":\"chaos\",\"series\":\"{}/{}\",\"seed\":{},",
                    "\"sim_time_ps\":{},\"events\":{},\"trace_hash\":{},",
                    "\"delivered\":{},\"dropped\":{},\"duplicated\":{},",
                    "\"corrupted\":{},\"corrupt_drops\":{},",
                    "\"retries\":{},\"deadline_retries\":{},\"sw_fallbacks\":{},",
                    "\"xlate_forwards\":{},\"nacks_sent\":{},",
                    "\"issued\":{},\"acked\":{},\"ops_failed\":{},",
                    "\"data_mismatches\":{},\"violations\":{}}}"
                ),
                mode.label(),
                label,
                seed,
                r.end.ps(),
                r.events,
                r.trace_hash,
                r.faults.delivered,
                r.faults.total_drops(),
                r.faults.duplicated,
                r.faults.corrupted,
                r.faults.corrupt_drops,
                r.gas.retries,
                r.gas.deadline_retries,
                r.gas.sw_fallbacks,
                r.net.xlate_forwards,
                r.net.nacks_sent,
                r.issued(),
                r.acked(),
                r.op_failures,
                r.data_mismatches,
                r.violations.len(),
            );
        } else {
            println!(
                "{:<10} {:<9} {:>7} {:>5} {:>6} {:>8} {:>8} {:>6} {:>6} {:>7} {:>5} {:>5}",
                mode.label(),
                label,
                r.faults.total_drops(),
                r.faults.duplicated,
                r.faults.corrupted + r.faults.corrupt_drops,
                r.gas.retries,
                r.gas.deadline_retries,
                r.net.xlate_forwards,
                r.net.nacks_sent,
                r.op_failures,
                if r.accounted() { "ok" } else { "LEAK" },
                r.violations.len()
            );
        }
    }
    let bad: Vec<_> = rows
        .iter()
        .filter(|(_, _, r)| !r.passed())
        .map(|(mode, label, _)| format!("{}/{}", mode.label(), label))
        .collect();
    if !bad.is_empty() {
        eprintln!("chaos cells FAILED: {}", bad.join(", "));
        std::process::exit(1);
    }
}

/// `membership [seed]` — the elastic membership plane (DESIGN.md §3.9):
/// every GAS mode runs the chaos driver's join → drain → crash schedule
/// under a lossless plan and a 2% drop mix, reporting the transition and
/// recovery counters plus the history checker's verdict. Exits nonzero if
/// any cell fails its gate: zero violations, full op accounting, a
/// nonzero re-homed slice, and (AGAS modes) nonzero crash recovery.
/// Deterministic for a given seed — the `--json` rows carry no
/// wall-clock fields.
fn membership(json: bool, seed: u64) {
    use netsim::FaultPlan;
    use workloads::chaos::{drop_mix, run_chaos, ChaosConfig};

    header(
        "membership",
        &format!("elastic membership: join / drain / crash under traffic (seed {seed})"),
    );
    let mixes: Vec<(&str, FaultPlan)> = vec![
        ("lossless", FaultPlan::lossless(9 ^ seed)),
        ("drop2", drop_mix(21 ^ seed, 0.02)),
    ];
    if !json {
        println!(
            "{:<10} {:<9} {:>6} {:>7} {:>7} {:>8} {:>9} {:>6} {:>7} {:>5} {:>5}",
            "mode",
            "mix",
            "joined",
            "drained",
            "crashed",
            "rehomed",
            "recovered",
            "stale",
            "failed",
            "acct",
            "viol"
        );
    }
    let mut bad: Vec<String> = Vec::new();
    // Sequential on purpose: each cell's membership telemetry is read as a
    // global-counter delta around its run.
    for mode in GasMode::ALL {
        for (label, plan) in &mixes {
            let before = telemetry::snapshot();
            let r = run_chaos(&ChaosConfig {
                mode,
                plan: plan.clone(),
                seed,
                rounds: 24,
                churn: 4,
                amos: true,
                membership: true,
                ..ChaosConfig::default()
            });
            let d = telemetry::snapshot().since(before);
            if json {
                println!(
                    concat!(
                        "{{\"id\":\"membership\",\"series\":\"{}/{}\",\"seed\":{},",
                        "\"sim_time_ps\":{},\"events\":{},\"trace_hash\":{},",
                        "\"members_joined\":{},\"members_drained\":{},",
                        "\"members_crashed\":{},\"blocks_rehomed\":{},",
                        "\"blocks_recovered\":{},\"stale_xlate_dropped\":{},",
                        "\"issued\":{},\"acked\":{},\"op_failures\":{},",
                        "\"violations\":{}}}"
                    ),
                    mode.label(),
                    label,
                    seed,
                    r.end.ps(),
                    r.events,
                    r.trace_hash,
                    d.members_joined,
                    d.members_drained,
                    d.members_crashed,
                    r.gas.blocks_rehomed,
                    r.gas.blocks_recovered,
                    r.gas.stale_xlate_dropped,
                    r.issued(),
                    r.acked(),
                    r.op_failures,
                    r.violations.len(),
                );
            } else {
                println!(
                    "{:<10} {:<9} {:>6} {:>7} {:>7} {:>8} {:>9} {:>6} {:>7} {:>5} {:>5}",
                    mode.label(),
                    label,
                    d.members_joined,
                    d.members_drained,
                    d.members_crashed,
                    r.gas.blocks_rehomed,
                    r.gas.blocks_recovered,
                    r.gas.stale_xlate_dropped,
                    r.op_failures,
                    if r.accounted() { "ok" } else { "LEAK" },
                    r.violations.len()
                );
            }
            let ok = r.passed()
                && d.members_joined == 1
                && d.members_drained == 1
                && r.gas.blocks_rehomed > 0
                && (!mode.supports_migration()
                    || (d.members_crashed == 1 && r.gas.blocks_recovered > 0));
            if !ok {
                bad.push(format!("{}/{}", mode.label(), label));
            }
        }
    }
    if !bad.is_empty() {
        eprintln!("membership cells FAILED: {}", bad.join(", "));
        std::process::exit(1);
    }
}

/// `amo [--ops N]` — the NIC-executed active-operation series (DESIGN.md
/// §3.6): contended fetch-add and CAS-retry throughput on one hot block,
/// each as an A/B between NIC-side execution (`agas-net`: translation +
/// op in one NIC visit) and the emulated round-trip (`agas-sw`: the
/// request bounces to the owner's CPU). `ns/op` is simulated round-trip
/// time per completed logical op — the headline comparison. Exits nonzero
/// if any cell leaks ops, or if the NIC/software telemetry split does not
/// match the mode (NIC mode must execute at the NIC; software mode must
/// never touch the NIC counters).
fn amo(json: bool, ops_per_loc: u64) {
    use agas::AmoPumpKind;

    header(
        "amo",
        &format!("NIC-executed active ops: contention series ({ops_per_loc} ops/locality)"),
    );
    let kinds = [AmoPumpKind::FetchAdd, AmoPumpKind::CasRetry];
    let modes = [GasMode::AgasSoftware, GasMode::AgasNetwork];
    // Cells run strictly serially: the NIC counters are process-wide
    // telemetry deltas, and concurrent cells would bleed into each other.
    let mut rows: Vec<AmoBenchRow> = Vec::new();
    for kind in kinds {
        for locs in [2usize, 4, 8, 16] {
            for mode in modes {
                let cfg = AmoBenchConfig {
                    localities: locs,
                    ops_per_loc,
                    ..AmoBenchConfig::default()
                };
                rows.push(amo_bench(&cfg, kind, mode));
            }
        }
    }
    if !json {
        println!(
            "{:<5} {:<9} {:>5} {:>7} {:>8} {:>9} {:>8} {:>9} {:>6} {:>5} {:>9} {:>10}",
            "kind",
            "mode",
            "locs",
            "ops",
            "retries",
            "ns/op",
            "ops/us",
            "nic-exec",
            "nacks",
            "fwd",
            "events",
            "sim time"
        );
    }
    for r in &rows {
        if json {
            println!(
                concat!(
                    "{{\"id\":\"amo\",\"series\":\"{}/{}\",\"localities\":{},",
                    "\"ops\":{},\"budget\":{},\"cas_retries\":{},\"amo_acks\":{},",
                    "\"op_failures\":{},\"events\":{},\"sim_time_ps\":{},",
                    "\"wall_seconds\":{:.6},\"ns_per_op\":{:.1},",
                    "\"ops_per_sim_us\":{:.3},\"trace_hash\":{},",
                    "\"amo_executed\":{},\"amo_nacked\":{},\"amo_forwarded\":{}}}"
                ),
                r.kind_label(),
                r.mode.label(),
                r.localities,
                r.ops,
                r.budget,
                r.cas_retries,
                r.amo_acks,
                r.op_failures,
                r.events,
                r.sim.ps(),
                r.wall_secs,
                r.ns_per_op(),
                r.ops_per_sim_us(),
                r.trace_hash,
                r.nic_executed,
                r.nic_nacked,
                r.nic_forwarded,
            );
        } else {
            println!(
                "{:<5} {:<9} {:>5} {:>7} {:>8} {:>9.1} {:>8.3} {:>9} {:>6} {:>5} {:>9} {:>10}",
                r.kind_label(),
                r.mode.label(),
                r.localities,
                r.ops,
                r.cas_retries,
                r.ns_per_op(),
                r.ops_per_sim_us(),
                r.nic_executed,
                r.nic_nacked,
                r.nic_forwarded,
                r.events,
                format!("{}", r.sim)
            );
        }
    }
    if !json {
        // The A/B in one line per shape: how much simulated round-trip
        // time the NIC-side execution saves at each contention level.
        for kind in kinds {
            for locs in [2usize, 4, 8, 16] {
                let find = |mode: GasMode| {
                    rows.iter()
                        .find(|r| r.kind == kind && r.mode == mode && r.localities == locs)
                        .expect("every cell ran")
                };
                let (sw, net) = (find(GasMode::AgasSoftware), find(GasMode::AgasNetwork));
                println!(
                    "-- {}/{locs} locs: sw {:.1} ns/op vs nic {:.1} ns/op ({:.2}x)",
                    sw.kind_label(),
                    sw.ns_per_op(),
                    net.ns_per_op(),
                    sw.ns_per_op() / net.ns_per_op().max(1e-9),
                );
            }
        }
    }
    let mut bad: Vec<String> = Vec::new();
    for r in &rows {
        let tag = format!("{}/{}/{}", r.kind_label(), r.mode.label(), r.localities);
        if !r.clean() {
            bad.push(format!(
                "{tag}: {} of {} ops finished, {} failed",
                r.ops, r.budget, r.op_failures
            ));
        }
        // Locality 0 is co-located with the hot block, so its share of the
        // budget commits locally; every *remote* op must hit a NIC.
        let remote = r.ops - r.budget / r.localities as u64;
        match r.mode {
            GasMode::AgasNetwork if r.nic_executed < remote => bad.push(format!(
                "{tag}: only {} of {} remote ops executed at a NIC",
                r.nic_executed, remote
            )),
            GasMode::AgasSoftware | GasMode::Pgas if r.nic_executed > 0 => bad.push(format!(
                "{tag}: emulated mode touched the NIC counters ({})",
                r.nic_executed
            )),
            _ => {}
        }
    }
    let cas_retries: u64 = rows
        .iter()
        .filter(|r| r.kind == AmoPumpKind::CasRetry)
        .map(|r| r.cas_retries)
        .sum();
    if cas_retries == 0 {
        bad.push("no CAS ever lost the race — the workload is not contended".into());
    }
    // The ring-enabled cell: AMOs issued through the submission rings must
    // share doorbells when several target the same responder.
    let ab = amo_ring_batching(64);
    if json {
        println!(
            concat!(
                "{{\"id\":\"amo\",\"series\":\"ring_batch\",\"amos\":{},",
                "\"amo_batched\":{},\"ring_doorbells\":{},\"sim_time_ps\":{},",
                "\"counter\":{}}}"
            ),
            ab.amos,
            ab.amo_batched,
            ab.doorbells,
            ab.elapsed.ps(),
            ab.counter,
        );
    } else {
        println!(
            "-- ring batching: {} of {} fetch-adds shared a doorbell ({} doorbells)",
            ab.amo_batched, ab.amos, ab.doorbells
        );
    }
    if ab.amo_batched == 0 {
        bad.push("ring_batch: concurrent AMOs never shared a ring doorbell".into());
    }
    if ab.counter != ab.amos {
        bad.push(format!(
            "ring_batch: counter {} after {} fetch-adds",
            ab.counter, ab.amos
        ));
    }
    if !bad.is_empty() {
        eprintln!("amo cells FAILED:\n  {}", bad.join("\n  "));
        std::process::exit(1);
    }
}

/// `ring [--ops N]` — the descriptor-ring issue-path series (DESIGN.md
/// §3.7): a doorbell-batching ladder (vectored `put_many` bursts through
/// the photon submission rings at increasing `doorbell_batch`), the
/// shm-vs-network crossover (intra-domain puts/gets short-circuit the NIC
/// with zero wire messages), and the AMO-batching cell. Exits nonzero if
/// rings fail to batch (descriptors per doorbell, occupancy), if an
/// intra-domain op touches the wire or loses to the network path, or if
/// concurrent AMOs never share a doorbell.
fn ring(json: bool, ops: u64) {
    header(
        "ring",
        &format!("descriptor-ring issue path: doorbell batching + shm crossover ({ops} ops)"),
    );
    // Every cell reads process-wide telemetry deltas: strictly serial.
    let rungs = [0usize, 1, 4, 16];
    let ladder: Vec<RingLadderRow> = rungs.iter().map(|&b| ring_ladder_row(b, ops)).collect();
    if !json {
        println!(
            "{:>6} {:>7} {:>12} {:>10} {:>9} {:>7} {:>8} {:>7} {:>8}",
            "batch", "ops", "sim time", "doorbells", "descs", "coal", "desc/db", "occ", "db/op"
        );
    }
    for r in &ladder {
        if json {
            println!(
                concat!(
                    "{{\"id\":\"ring\",\"series\":\"ladder/batch{}\",\"ops\":{},",
                    "\"sim_time_ps\":{},\"events\":{},\"messages\":{},",
                    "\"ring_doorbells\":{},\"ring_descs\":{},\"ring_coalesced\":{},",
                    "\"max_occupancy\":{},\"descs_per_doorbell\":{:.3},",
                    "\"doorbells_per_op\":{:.4}}}"
                ),
                r.batch,
                r.ops,
                r.elapsed.ps(),
                r.events,
                r.msgs,
                r.doorbells,
                r.descs,
                r.coalesced,
                r.max_occupancy,
                r.descs_per_doorbell(),
                r.doorbells_per_op(),
            );
        } else {
            println!(
                "{:>6} {:>7} {:>12} {:>10} {:>9} {:>7} {:>8.2} {:>7} {:>8.4}",
                if r.batch == 0 {
                    "off".into()
                } else {
                    r.batch.to_string()
                },
                r.ops,
                format!("{}", r.elapsed),
                r.doorbells,
                r.descs,
                r.coalesced,
                r.descs_per_doorbell(),
                r.max_occupancy,
                r.doorbells_per_op(),
            );
        }
    }
    let sizes = [8u32, 256, 4096, 65536];
    let cross: Vec<ShmCrossRow> = sizes.iter().map(|&s| shm_cross_row(s)).collect();
    if !json {
        println!(
            "{:>9} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
            "size", "net put", "shm put", "net get", "shm get", "speedup", "shm msgs"
        );
    }
    for c in &cross {
        if json {
            println!(
                concat!(
                    "{{\"id\":\"ring\",\"series\":\"shm_cross/{}\",",
                    "\"net_put_ps\":{},\"shm_put_ps\":{},",
                    "\"net_get_ps\":{},\"shm_get_ps\":{},",
                    "\"put_speedup\":{:.3},\"shm_msgs\":{},\"shm_ops\":{}}}"
                ),
                c.size,
                c.net_put.ps(),
                c.shm_put.ps(),
                c.net_get.ps(),
                c.shm_get.ps(),
                c.put_speedup(),
                c.shm_msgs,
                c.shm_ops,
            );
        } else {
            println!(
                "{:>9} {:>12} {:>12} {:>12} {:>12} {:>8.2}x {:>9}",
                c.size,
                format!("{}", c.net_put),
                format!("{}", c.shm_put),
                format!("{}", c.net_get),
                format!("{}", c.shm_get),
                c.put_speedup(),
                c.shm_msgs,
            );
        }
    }
    let ab = amo_ring_batching(64);
    if json {
        println!(
            concat!(
                "{{\"id\":\"ring\",\"series\":\"amo_batch\",\"amos\":{},",
                "\"amo_batched\":{},\"ring_doorbells\":{},\"sim_time_ps\":{},",
                "\"counter\":{}}}"
            ),
            ab.amos,
            ab.amo_batched,
            ab.doorbells,
            ab.elapsed.ps(),
            ab.counter,
        );
    } else {
        println!(
            "amo batching: {} fetch-adds, {} shared a doorbell ({} doorbells), counter {}",
            ab.amos, ab.amo_batched, ab.doorbells, ab.counter
        );
    }
    let mut bad: Vec<String> = Vec::new();
    let rung = |b: usize| ladder.iter().find(|r| r.batch == b).expect("rung ran");
    let (b1, b16) = (rung(1), rung(16));
    if b16.doorbells == 0 {
        bad.push("batch16: rings never rang a doorbell".into());
    }
    if b16.descs_per_doorbell() < 2.0 {
        bad.push(format!(
            "batch16: {:.2} descs/doorbell — descriptors are not batching",
            b16.descs_per_doorbell()
        ));
    }
    if b16.max_occupancy < 2 {
        bad.push(format!(
            "batch16: max ring occupancy {} — ops never queued behind each other",
            b16.max_occupancy
        ));
    }
    if b16.doorbells >= b1.doorbells {
        bad.push(format!(
            "batch16 rang {} doorbells vs batch1's {} — batching did not reduce doorbell events",
            b16.doorbells, b1.doorbells
        ));
    }
    for c in &cross {
        if c.shm_msgs != 0 {
            bad.push(format!(
                "shm_cross/{}: intra-domain ops sent {} wire messages (must be 0)",
                c.size, c.shm_msgs
            ));
        }
        if c.shm_ops != 2 {
            bad.push(format!(
                "shm_cross/{}: {} of 2 ops took the shm short-circuit",
                c.size, c.shm_ops
            ));
        }
        if c.shm_put >= c.net_put || c.shm_get >= c.net_get {
            bad.push(format!(
                "shm_cross/{}: load/store path not faster than the wire",
                c.size
            ));
        }
    }
    if ab.amo_batched == 0 {
        bad.push("amo_batch: concurrent AMOs never shared a ring doorbell".into());
    }
    if ab.counter != ab.amos {
        bad.push(format!(
            "amo_batch: counter {} after {} fetch-adds",
            ab.counter, ab.amos
        ));
    }
    if !bad.is_empty() {
        eprintln!("ring cells FAILED:\n  {}", bad.join("\n  "));
        std::process::exit(1);
    }
}

/// `parallel [--shards N] [--locs N] [--updates N]` — the sharded-engine
/// scaling series (DESIGN.md §3.5): the self-pumping GUPS workload on
/// network-managed AGAS over the FDR fabric, run on the sequential engine
/// and then at each lane count up to `--shards`. Wall-clock throughput
/// scales with lanes (given enough host cores); the simulated results —
/// trace hash, clock, event and update counts — must be bit-identical at
/// every lane count, and the process exits nonzero if they are not.
fn parallel(json: bool, max_shards: usize, cfg: &ParallelGupsConfig) {
    header(
        "parallel",
        &format!(
            "sharded-engine GUPS scaling, {} localities × {} updates (wall-clock)",
            cfg.localities, cfg.updates_per_loc
        ),
    );
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    // Runs are strictly serial: each one owns the machine while timed.
    let rows: Vec<ParallelGupsRow> = shard_ladder(max_shards)
        .into_iter()
        .map(|k| parallel_gups(cfg, k))
        .collect();
    let base = rows[0].events_per_sec();
    if !json {
        println!("(host has {cores} core(s); speedup needs cores >= shards)");
        println!(
            "{:>7} {:>11} {:>9} {:>13} {:>8} {:>9} {:>7} {:>11}",
            "shards", "events", "wall s", "events/sec", "speedup", "windows", "sync%", "util"
        );
    }
    for r in &rows {
        let speedup = if base > 0.0 {
            r.events_per_sec() / base
        } else {
            0.0
        };
        if json {
            let util = r
                .utilization
                .iter()
                .map(|u| format!("{u:.4}"))
                .collect::<Vec<_>>()
                .join(",");
            println!(
                concat!(
                    "{{\"id\":\"parallel\",\"series\":\"gups_parallel\",\"shards\":{},",
                    "\"localities\":{},\"host_cores\":{},\"single_core_caveat\":{},",
                    "\"updates\":{},\"events\":{},",
                    "\"sim_time_ps\":{},\"wall_seconds\":{:.6},\"events_per_sec\":{:.0},",
                    "\"speedup\":{:.4},\"trace_hash\":{},\"windows\":{},",
                    "\"sync_overhead\":{:.4},\"utilization\":[{}]}}"
                ),
                r.shards,
                r.localities,
                cores,
                cores < r.shards,
                r.updates,
                r.events,
                r.sim.ps(),
                r.wall_secs,
                r.events_per_sec(),
                speedup,
                r.trace_hash,
                r.windows,
                r.sync_overhead,
                util,
            );
        } else {
            let util = if r.utilization.is_empty() {
                "-".into()
            } else {
                let min = r.utilization.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = r.utilization.iter().cloned().fold(0.0f64, f64::max);
                format!("{min:.2}-{max:.2}")
            };
            println!(
                "{:>7} {:>11} {:>9.3} {:>13.0} {:>7.2}x {:>9} {:>6.1}% {:>11}",
                r.shards,
                r.events,
                r.wall_secs,
                r.events_per_sec(),
                speedup,
                r.windows,
                r.sync_overhead * 100.0,
                util,
            );
        }
    }
    let gold = &rows[0];
    let diverged: Vec<String> = rows
        .iter()
        .filter(|r| {
            (r.trace_hash, r.sim, r.events, r.updates)
                != (gold.trace_hash, gold.sim, gold.events, gold.updates)
        })
        .map(|r| format!("{} shards", r.shards))
        .collect();
    if !diverged.is_empty() {
        eprintln!(
            "parallel runs DIVERGED from the sequential trace: {}",
            diverged.join(", ")
        );
        std::process::exit(1);
    }
}

/// `adaptive` — static-vs-adaptive controller ladder (DESIGN.md §3.8):
/// the phased GUPS pump on the shm-domain FDR fabric across queue-depth
/// regimes × AGAS modes × lane counts, with the barrier-window
/// controller off and on, plus the burst-then-trickle ring A/B. Exits
/// nonzero if any adaptive schedule diverges from the sequential trace,
/// if the controller fails to engage (deep must widen, bursty must
/// narrow), if adaptive loses to static on the deep regime, or if the
/// ring controller fails to both raise and lower.
fn adaptive(json: bool) {
    header(
        "adaptive",
        "adaptive lookahead + doorbell controllers vs static presets",
    );
    let modes = [GasMode::AgasSoftware, GasMode::AgasNetwork];
    let mut rows: Vec<AdaptiveLadderRow> = Vec::new();
    // Strictly serial: each cell owns the machine while timed.
    for regime in Regime::ALL {
        for mode in modes {
            rows.push(adaptive_gups(regime, mode, 1, false));
            for shards in [2usize, 4, 8] {
                rows.push(adaptive_gups(regime, mode, shards, false));
                rows.push(adaptive_gups(regime, mode, shards, true));
            }
        }
    }
    if !json {
        println!(
            "{:<8} {:<9} {:>6} {:>9} {:>9} {:>9.9} {:>8} {:>7} {:>6} {:>6} {:>5} {:>4}",
            "regime",
            "mode",
            "shards",
            "adaptive",
            "events",
            "events/s",
            "windows",
            "serial",
            "widen",
            "narrow",
            "mult",
            "cap"
        );
    }
    for r in &rows {
        if json {
            println!(
                concat!(
                    "{{\"id\":\"adaptive\",\"series\":\"{}/{}\",\"shards\":{},",
                    "\"adaptive\":{},\"updates\":{},\"events\":{},",
                    "\"sim_time_ps\":{},\"wall_seconds\":{:.6},",
                    "\"events_per_sec\":{:.0},\"trace_hash\":{},\"windows\":{},",
                    "\"serial_windows\":{},\"window_widened\":{},",
                    "\"window_narrowed\":{},\"max_mult\":{},\"safe_cap\":{}}}"
                ),
                r.regime,
                mode_name(r.mode),
                r.shards,
                r.adaptive,
                r.updates,
                r.events,
                r.sim.ps(),
                r.wall_secs,
                r.events_per_sec(),
                r.trace_hash,
                r.windows,
                r.serial_windows,
                r.widened,
                r.narrowed,
                r.max_mult,
                r.safe_cap,
            );
        } else {
            println!(
                "{:<8} {:<9} {:>6} {:>9} {:>9} {:>9.0} {:>8} {:>7} {:>6} {:>6} {:>5} {:>4}",
                r.regime,
                mode_name(r.mode),
                r.shards,
                r.adaptive,
                r.events,
                r.events_per_sec(),
                r.windows,
                r.serial_windows,
                r.widened,
                r.narrowed,
                r.max_mult,
                r.safe_cap,
            );
        }
    }

    let ring_rows = [adaptive_ring_ab(false), adaptive_ring_ab(true)];
    for r in &ring_rows {
        if json {
            println!(
                concat!(
                    "{{\"id\":\"adaptive\",\"series\":\"ring_ab/{}\",",
                    "\"ops\":{},\"trickle_ops\":{},\"ring_doorbells\":{},",
                    "\"ring_descs\":{},\"doorbell_batch_raised\":{},",
                    "\"doorbell_batch_lowered\":{},\"doorbells_per_op\":{:.4},",
                    "\"burst_sim_ps\":{},\"trickle_latency_ps\":{},",
                    "\"final_eff_batch\":{}}}"
                ),
                if r.adaptive { "adaptive" } else { "static" },
                r.burst_ops,
                r.trickle_ops,
                r.doorbells,
                r.descs,
                r.batch_raised,
                r.batch_lowered,
                r.doorbells_per_op(),
                r.burst_elapsed.ps(),
                r.trickle_latency.ps(),
                r.final_eff_batch,
            );
        } else {
            println!(
                "-- ring_ab/{}: {:.3} doorbells/op, trickle {} /op, eff batch {} (raised {}, lowered {})",
                if r.adaptive { "adaptive" } else { "static" },
                r.doorbells_per_op(),
                r.trickle_latency,
                r.final_eff_batch,
                r.batch_raised,
                r.batch_lowered,
            );
        }
    }

    let mut bad: Vec<String> = Vec::new();
    for regime in Regime::ALL {
        for mode in modes {
            let cells: Vec<&AdaptiveLadderRow> = rows
                .iter()
                .filter(|r| r.regime == regime.name() && r.mode == mode)
                .collect();
            let gold = cells[0];
            // Gate 1: every cell (lane count × controller) replays the
            // sequential schedule bit-for-bit.
            for r in &cells[1..] {
                if (r.trace_hash, r.sim, r.events, r.updates)
                    != (gold.trace_hash, gold.sim, gold.events, gold.updates)
                {
                    bad.push(format!(
                        "{}/{} at {} shards (adaptive={}) diverged from the sequential trace",
                        r.regime,
                        mode_name(mode),
                        r.shards,
                        r.adaptive
                    ));
                }
            }
            for r in cells.iter().filter(|r| r.shards > 1) {
                let twin = cells
                    .iter()
                    .find(|t| t.shards == r.shards && t.adaptive != r.adaptive)
                    .expect("every rung ran both sides");
                let (ad, st) = if r.adaptive { (r, twin) } else { (twin, r) };
                if !r.adaptive {
                    continue; // handle each rung once
                }
                match regime {
                    Regime::Deep => {
                        // Gate 2: under deep queues the controller must
                        // widen to the fabric cap and cross strictly fewer
                        // barriers; wall throughput must at least hold
                        // (generous floor: the host may be 1-core).
                        if ad.widened == 0 || ad.max_mult < ad.safe_cap {
                            bad.push(format!(
                                "deep/{}/{}: controller never reached the safe cap (mult {} of {})",
                                mode_name(mode),
                                ad.shards,
                                ad.max_mult,
                                ad.safe_cap
                            ));
                        }
                        if ad.windows >= st.windows {
                            bad.push(format!(
                                "deep/{}/{}: adaptive crossed {} barriers, static {}",
                                mode_name(mode),
                                ad.shards,
                                ad.windows,
                                st.windows
                            ));
                        }
                        if ad.events_per_sec() < 0.8 * st.events_per_sec() {
                            bad.push(format!(
                                "deep/{}/{}: adaptive {:.0} ev/s vs static {:.0}",
                                mode_name(mode),
                                ad.shards,
                                ad.events_per_sec(),
                                st.events_per_sec()
                            ));
                        }
                    }
                    Regime::Bursty => {
                        // Gate 3: each burst's drain tail must walk the
                        // multiplier back down — widen *and* narrow.
                        if ad.widened == 0 || ad.narrowed == 0 {
                            bad.push(format!(
                                "bursty/{}/{}: widened {} / narrowed {} (controller never cycled)",
                                mode_name(mode),
                                ad.shards,
                                ad.widened,
                                ad.narrowed
                            ));
                        }
                    }
                    Regime::Shallow => {
                        // Gate 4: shallow windows must run serially rather
                        // than pay thread hand-offs for near-empty work.
                        if ad.serial_windows == 0 {
                            bad.push(format!(
                                "shallow/{}/{}: no serial windows",
                                mode_name(mode),
                                ad.shards
                            ));
                        }
                    }
                }
            }
        }
    }
    let (st, ad) = (&ring_rows[0], &ring_rows[1]);
    if ad.doorbells >= st.doorbells {
        bad.push(format!(
            "ring_ab: adaptive rang {} doorbells, static {}",
            ad.doorbells, st.doorbells
        ));
    }
    if ad.trickle_latency > st.trickle_latency {
        bad.push(format!(
            "ring_ab: adaptive trickle latency {} above static {}",
            ad.trickle_latency, st.trickle_latency
        ));
    }
    if ad.batch_raised == 0 || ad.batch_lowered == 0 {
        bad.push(format!(
            "ring_ab: AIMD never cycled (raised {}, lowered {})",
            ad.batch_raised, ad.batch_lowered
        ));
    }
    if st.batch_raised + st.batch_lowered != 0 {
        bad.push("ring_ab: static run touched the adaptive counters".into());
    }
    if !bad.is_empty() {
        for b in &bad {
            eprintln!("adaptive gate FAILED: {b}");
        }
        std::process::exit(1);
    }
}

/// Engine throughput on hot-path workloads (wall-clock events/sec).
fn perf(json: bool) {
    header(
        "perf",
        "engine wall-clock throughput (real time, not simulated)",
    );

    // Random-delay schedule/dispatch: the substrate microbench pattern,
    // repeated until the measurement is comfortably long.
    let dispatch = measure("perf", "dispatch_random", || {
        for rep in 0..40u64 {
            let mut eng = netsim::Engine::new(0u64, rep);
            for i in 0..10_000u64 {
                let d = netsim::rng::mix64(rep * 10_000 + i) % 1_000_000;
                eng.schedule(Time::from_ps(d), move |e| e.state = e.state.wrapping_add(i));
            }
            eng.run();
        }
    });

    // A self-rescheduling event chain: queue stays near-empty, measures
    // per-event fixed cost.
    let chain = measure("perf", "event_chain", || {
        let mut eng = netsim::Engine::new(0u64, 1);
        fn tick(e: &mut netsim::Engine<u64>) {
            e.state += 1;
            if e.state < 400_000 {
                e.schedule(Time::from_ns(1), tick);
            }
        }
        eng.schedule(Time::ZERO, tick);
        eng.run();
    });

    // A full runtime workload: parcel dispatch through the simulated NIC.
    let parcels = measure("perf", "parcel_rate_pwc", || {
        std::hint::black_box(parcel_rate(parcel_rt::Transport::Pwc));
    });

    // The translation fast path under fire: GUPS over the network-managed
    // mode drives every update through the NIC translation table and the
    // initiator owner caches, so the xlate_* and memo counters are hot.
    // (The runtime drops inside the closure, flushing batched counters
    // before the after-snapshot.)
    let gups = measure("perf", "gups_agas_net", || {
        std::hint::black_box(gups_scaling(GasMode::AgasNetwork, 8, NetConfig::ib_fdr()));
    });

    // Migration churn: the balancer moves hot blocks while every locality
    // hammers its own favourite, so initiators bounce, query the
    // directory, and then re-translate the same block back to back — the
    // owner-cache one-entry memo's target shape.
    let churn = measure("perf", "migration_churn", || {
        use std::rc::Rc;
        let mut rt = parcel_rt::Runtime::builder(4, GasMode::AgasNetwork)
            .seed(17)
            .boot();
        let data = rt.alloc(16, 13, agas::Distribution::Blocked);
        rt.start_balancer(parcel_rt::BalancerConfig {
            period: Time::from_us(100),
            moves_per_round: 2,
            min_heat: 4,
            ..parcel_rt::BalancerConfig::default()
        });
        let blocks = data.blocks.clone();
        let issue: Rc<workloads::driver::IssueFn> = Rc::new(move |eng, loc, _seq, ctx| {
            // Each locality chases one hot block (all start on loc 0):
            // repeated translations of the same key, bounced by the
            // balancer's migrations.
            let gva = blocks[(loc % 4) as usize];
            agas::ops::memget(eng, loc, gva, 512, ctx);
        });
        let n = rt.n();
        workloads::driver::pump_all(&mut rt.eng, n, 800, 8, issue, |_| {});
        rt.run();
    });

    // NIC-executed active operations: contended fetch-adds over the
    // network-managed mode, so the AMO commit path — and its telemetry
    // counters — run hot. (The emulated modes leave these at zero; see
    // `repro amo` for the full A/B.)
    let amo = measure("perf", "amo_agas_net", || {
        std::hint::black_box(amo_bench(
            &AmoBenchConfig::default(),
            agas::AmoPumpKind::FetchAdd,
            GasMode::AgasNetwork,
        ));
    });

    let rows = [dispatch, chain, parcels, gups, churn, amo];
    if json {
        for r in &rows {
            println!("{}", r.json());
        }
    } else {
        println!(
            "{:<18} {:>12} {:>10} {:>14} {:>14} {:>12} {:>8} {:>10} {:>9}",
            "series",
            "events",
            "wall s",
            "events/sec",
            "sim time",
            "xl lookups",
            "pr/lk",
            "memo hits",
            "amo exec"
        );
        for r in &rows {
            println!(
                "{:<18} {:>12} {:>10.3} {:>14.0} {:>14} {:>12} {:>8.2} {:>10} {:>9}",
                r.series,
                r.events,
                r.wall_secs,
                r.events_per_sec(),
                format!("{}", r.sim),
                r.xlate_lookups,
                r.probes_per_lookup(),
                r.memo_hits,
                r.amo_executed
            );
        }
    }
}

/// Pop `--name N` / `--name=N` from `args`, so flag values are never
/// mistaken for positional arguments (subcommand, chaos seed).
fn take_opt(args: &mut Vec<String>, name: &str) -> Option<u64> {
    if let Some(i) = args.iter().position(|a| a == name) {
        let v = args.get(i + 1).and_then(|v| v.parse().ok());
        args.drain(i..(i + 2).min(args.len()));
        return v;
    }
    let pfx = format!("{name}=");
    if let Some(i) = args.iter().position(|a| a.starts_with(&pfx)) {
        let v = args[i][pfx.len()..].parse().ok();
        args.remove(i);
        return v;
    }
    None
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let shards = take_opt(&mut args, "--shards").map(|n| n.max(1) as usize);
    let mut par_cfg = ParallelGupsConfig::default();
    if let Some(n) = take_opt(&mut args, "--locs") {
        par_cfg.localities = n.max(1) as usize;
    }
    if let Some(n) = take_opt(&mut args, "--updates") {
        par_cfg.updates_per_loc = n.max(1);
    }
    let ops_flag = take_opt(&mut args, "--ops");
    let amo_ops = ops_flag.map_or(AmoBenchConfig::default().ops_per_loc, |n| n.max(1));
    let ring_ops = ops_flag.map_or(2048, |n| n.max(1));
    let json = args.iter().any(|a| a == "--json");
    let what = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .cloned()
        .unwrap_or_else(|| "all".into());
    let experiments: Vec<(&str, fn())> = vec![
        ("e1", e1),
        ("e1b", e1b),
        ("e2", e2),
        ("e3", e3),
        ("e4", e4),
        ("e4b", e4b),
        ("e5", e5),
        ("e6", e6),
        ("e7", e7),
        ("e8", e8),
        ("e9", e9),
        ("e9b", e9b),
        ("e10", e10),
        ("e10b", e10b),
        ("e11", e11),
        ("e12", e12),
        ("e13", e13),
        ("e14", e14),
        ("e15", e15),
        ("a1", a1),
        ("a2", a2),
        ("a3", a3),
    ];
    println!(
        "nmvgas reconstructed evaluation — deterministic simulation results \
         (simulated time; see DESIGN.md §5 and EXPERIMENTS.md)"
    );
    let run_one = |name: &str, f: &fn()| {
        let row = measure(name, "experiment", f);
        if json {
            println!("{}", row.json());
        }
    };
    match what.as_str() {
        "perf" => {
            perf(json);
            if let Some(k) = shards {
                parallel(json, k, &par_cfg);
            }
        }
        "parallel" => parallel(json, shards.unwrap_or(8), &par_cfg),
        "adaptive" => adaptive(json),
        "amo" => amo(json, amo_ops),
        "ring" => ring(json, ring_ops),
        "ops" => ops_dump(json),
        "chaos" => {
            let seed = args
                .iter()
                .filter(|a| !a.starts_with('-'))
                .nth(1)
                .and_then(|a| a.parse().ok())
                .unwrap_or(101);
            chaos(json, seed);
        }
        "membership" => {
            let seed = args
                .iter()
                .filter(|a| !a.starts_with('-'))
                .nth(1)
                .and_then(|a| a.parse().ok())
                .unwrap_or(101);
            membership(json, seed);
        }
        "all" => {
            for (name, f) in &experiments {
                run_one(name, f);
            }
            perf(json);
            amo(json, amo_ops);
            ring(json, ring_ops);
            adaptive(json);
            if let Some(k) = shards {
                parallel(json, k, &par_cfg);
            }
            chaos(json, 101);
            membership(json, 101);
        }
        id => match experiments.iter().find(|(name, _)| *name == id) {
            Some((name, f)) => run_one(name, f),
            None => {
                eprintln!(
                    "unknown experiment {id:?}; use one of: all perf parallel adaptive amo ring ops chaos membership {}",
                    experiments
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                std::process::exit(2);
            }
        },
    }
}
