//! The NIC-executed active-operation series (`repro amo`, EXPERIMENTS.md).
//!
//! Drives the self-pumping AMO generator in [`SimWorld`] — every
//! completion immediately starts the completing locality's next logical
//! op — against a **single contended block** homed at locality 0, so
//! every initiator hammers the same eight words. Two workloads:
//!
//! * **Contended fetch-and-add** (`AmoPumpKind::FetchAdd`): one
//!   `FetchAdd { operand: 1 }` per logical op. The paper's headline AMO
//!   claim in kernel form — translation + op in one NIC visit, zero
//!   target-CPU events on the hot path.
//! * **CAS-retry increment** (`AmoPumpKind::CasRetry`): atomic read, then
//!   compare-and-swap `old → old + 1`, retrying with the NACK-carried
//!   fresh value until the swap lands. Measures how optimistic
//!   concurrency degrades under contention in each execution model.
//!
//! Each workload runs as an A/B between the NIC-executed path
//! (`AgasNetwork`: the responder NIC performs the op during translation;
//! [`netsim::telemetry`]'s `amo_executed` counts these) and the emulated
//! round-trip (`AgasSoftware`: the request is bounced to the owner's CPU
//! as a `SwAmo` message and executes as a software handler — the NIC
//! counters stay zero, which *is* the measurement). Simulated time is the
//! measurand; wall-clock is reported only as context.

use agas::{alloc_array, AmoPumpKind, Distribution, GasMode, SimWorld};
use netsim::{telemetry, Engine, NetConfig, Time};
use std::time::Instant;

/// Workload shape for one AMO contention series.
#[derive(Clone, Copy, Debug)]
pub struct AmoBenchConfig {
    /// Initiating localities (all target the one hot block).
    pub localities: usize,
    /// Logical ops per locality (a landed CAS = one logical op).
    pub ops_per_loc: u64,
    /// Hot-block size class (blocks of 2^class bytes).
    pub block_class: u8,
    /// Pump RNG seed (also the engine seed).
    pub seed: u64,
}

impl Default for AmoBenchConfig {
    fn default() -> AmoBenchConfig {
        AmoBenchConfig {
            localities: 8,
            ops_per_loc: 512,
            block_class: 13,
            seed: 47,
        }
    }
}

/// One measured point of the AMO series.
#[derive(Clone, Debug)]
pub struct AmoBenchRow {
    /// Which pump workload ran.
    pub kind: AmoPumpKind,
    /// Execution model under test (NIC-side vs. emulated).
    pub mode: GasMode,
    /// Initiating localities.
    pub localities: usize,
    /// Logical ops completed (must equal the armed budget: lossless wire).
    pub ops: u64,
    /// Logical ops armed across the cluster.
    pub budget: u64,
    /// CAS attempts that lost the race and were re-issued.
    pub cas_retries: u64,
    /// AMO completions delivered to initiators (FAA: = ops; CAS: read +
    /// every swap attempt).
    pub amo_acks: u64,
    /// Terminal op failures (must be zero on the lossless fabric).
    pub op_failures: u64,
    /// Events executed.
    pub events: u64,
    /// Execution trace hash (determinism witness across re-runs).
    pub trace_hash: u64,
    /// Final simulated clock.
    pub sim: Time,
    /// Wall-clock seconds (context only; the series measures `sim`).
    pub wall_secs: f64,
    /// AMOs executed at a NIC ([`telemetry`] delta; zero in software mode).
    pub nic_executed: u64,
    /// AMO requests NACKed back to initiators (telemetry delta).
    pub nic_nacked: u64,
    /// AMO requests re-injected through forwarding entries (telemetry delta).
    pub nic_forwarded: u64,
}

impl AmoBenchRow {
    /// Completed logical ops per simulated microsecond.
    pub fn ops_per_sim_us(&self) -> f64 {
        let us = self.sim.ps() as f64 / 1e6;
        if us > 0.0 {
            self.ops as f64 / us
        } else {
            0.0
        }
    }

    /// Mean simulated nanoseconds per completed logical op — the
    /// round-trip number the NIC-vs-emulated A/B compares.
    pub fn ns_per_op(&self) -> f64 {
        if self.ops > 0 {
            self.sim.ps() as f64 / 1e3 / self.ops as f64
        } else {
            0.0
        }
    }

    /// Short label for the pump workload.
    pub fn kind_label(&self) -> &'static str {
        match self.kind {
            AmoPumpKind::FetchAdd => "faa",
            AmoPumpKind::CasRetry => "cas",
        }
    }

    /// Everything finished and nothing failed.
    pub fn clean(&self) -> bool {
        self.ops == self.budget && self.op_failures == 0
    }
}

/// Run one (workload, mode, contenders) cell to quiescence.
pub fn amo_bench(cfg: &AmoBenchConfig, kind: AmoPumpKind, mode: GasMode) -> AmoBenchRow {
    let n = cfg.localities;
    let mut world = SimWorld::new(n, mode, NetConfig::ib_fdr());
    world.data.record_events = false;
    for l in 0..n as u32 {
        world.arm_amo(l, kind, cfg.ops_per_loc, cfg.seed);
    }
    let mut eng = Engine::new(world, cfg.seed);
    // One block homed at locality 0: every remote initiator's ops cross
    // the wire to the same responder, the worst-case contention shape.
    let arr = alloc_array(&mut eng, 1, cfg.block_class, Distribution::Single(0));
    eng.state.set_pump_blocks(arr.blocks.clone());
    let before = telemetry::snapshot();
    let t = Instant::now();
    for l in 0..n as u32 {
        SimWorld::amo_pump_prime(&mut eng, l);
    }
    eng.run();
    let wall_secs = t.elapsed().as_secs_f64();
    let d = telemetry::snapshot().since(before);
    AmoBenchRow {
        kind,
        mode,
        localities: n,
        ops: eng.state.amo_pump_completed(),
        budget: n as u64 * cfg.ops_per_loc,
        cas_retries: eng.state.amo_cas_retries(),
        amo_acks: eng.state.amo_acks(),
        op_failures: eng.state.op_failures(),
        events: eng.events_executed(),
        trace_hash: eng.trace_hash(),
        sim: eng.now(),
        wall_secs,
        nic_executed: d.amo_executed,
        nic_nacked: d.amo_nacked,
        nic_forwarded: d.amo_forwarded,
    }
}
