//! The adaptive-controller ladder (`repro adaptive`, EXPERIMENTS.md,
//! DESIGN.md §3.8).
//!
//! A/B of static presets against the seed-deterministic feedback
//! controllers, in two halves:
//!
//! * **Window ladder** — the self-pumping GUPS kernel on an FDR fabric
//!   with 4-locality [`ShmDomain`]s. The shared-memory short-circuit
//!   shrinks the conservative lookahead to the 90 ns load/store cost, so
//!   a static sharded run crosses a barrier every 90 ns of virtual time
//!   — while the fabric's `safe_window_cap` (wire latency / load-store
//!   cost ≈ 11) leaves the adaptive controller room to widen the window
//!   back out under deep queues, and its serial-execution hint absorbs
//!   the shallow windows a static schedule would hand to idle workers.
//!   Three regimes (shallow / deep / bursty) × both AGAS modes × a lane
//!   ladder, every cell checked bit-identical against the sequential
//!   reference trace.
//! * **Ring A/B** — a burst-then-trickle put kernel through the photon
//!   submission rings: the AIMD controller raises the effective doorbell
//!   batch while the burst outruns it (fewer doorbells per op) and
//!   halves it back down when the trickle's occupancy EWMA runs light
//!   (shorter moderation delay, lower per-op latency).
//!
//! Telemetry counters are process-wide deltas, so the ring kernels run
//! strictly serially. The window ladder measures wall-clock throughput
//! like `repro parallel`; simulated results must not depend on the
//! controller (same trace hash, same final clock, same update count).

use agas::{alloc_array, Distribution, GasMode, SimWorld};
use netsim::{
    telemetry, AdaptiveRing, AdaptiveWindow, Engine, NetConfig, RingConfig, ShardedEngine,
    ShmDomain, Time,
};
use parcel_rt::Runtime;
use photon::PhotonConfig;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// Queue-depth regime of one window-ladder series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regime {
    /// Few localities, tiny budgets: windows run near-empty, the serial
    /// hint is the only lever, and adaptive must stay within noise.
    Shallow,
    /// Many localities, several pump chains each: queues run deep and
    /// the controller should widen to the fabric cap and hold there.
    Deep,
    /// Deep phases separated by full drains: the controller must widen
    /// into each burst and narrow back down the tail, every phase.
    Bursty,
}

impl Regime {
    /// Every regime, ladder order.
    pub const ALL: [Regime; 3] = [Regime::Shallow, Regime::Deep, Regime::Bursty];

    /// Stable lower-case name (JSON rows, row ids).
    pub fn name(self) -> &'static str {
        match self {
            Regime::Shallow => "shallow",
            Regime::Deep => "deep",
            Regime::Bursty => "bursty",
        }
    }

    /// `(localities, updates_per_chain, chains_per_loc, phases)`.
    ///
    /// Locality counts are multiples of 32 so that every 4-locality shm
    /// domain falls inside one lane at every ladder rung (up to 8 lanes)
    /// — the partition under which widening past ×1 is provably safe.
    fn shape(self) -> (usize, u64, u64, u64) {
        match self {
            Regime::Shallow => (32, 8, 1, 1),
            Regime::Deep => (64, 48, 4, 1),
            Regime::Bursty => (64, 24, 2, 4),
        }
    }
}

/// The fabric every window-ladder cell runs on: FDR wire constants with
/// 4-locality shared-memory domains. `lookahead = 90 ns` (the domain
/// load/store cost), `safe_window_cap = 1 µs / 90 ns = 11`.
pub fn adaptive_fabric() -> NetConfig {
    NetConfig {
        shm: Some(ShmDomain::node(4)),
        ..NetConfig::ib_fdr()
    }
}

/// The controller tuning the ladder's adaptive cells run. Tighter than
/// [`AdaptiveWindow::default`]: the pump holds at most `chains × locs`
/// events pending, so the widen threshold sits between the shallow
/// regime's depth (~32) and the deep regime's (~256).
pub fn ladder_window_cfg() -> AdaptiveWindow {
    AdaptiveWindow {
        max_mult: 16, // clamped to the fabric's safe cap (11)
        widen_at: 96,
        narrow_at: 24,
        hysteresis: 2,
        serial_below: 6,
        ewma_shift: 2,
    }
}

/// One measured cell of the window ladder.
#[derive(Clone, Debug)]
pub struct AdaptiveLadderRow {
    /// Regime name (`shallow` / `deep` / `bursty`).
    pub regime: &'static str,
    /// GAS mode the pump ran over.
    pub mode: GasMode,
    /// Lane count (1 = the plain sequential engine, no threads).
    pub shards: usize,
    /// Was the window controller on?
    pub adaptive: bool,
    /// Pump puts completed (a pure function of the workload shape).
    pub updates: u64,
    /// Events executed.
    pub events: u64,
    /// Execution trace hash — must match the sequential reference.
    pub trace_hash: u64,
    /// Final simulated clock — must match the sequential reference.
    pub sim: Time,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Barrier windows crossed (0 when sequential).
    pub windows: u64,
    /// Windows the controller ran inline on the control thread.
    pub serial_windows: u64,
    /// Widening steps taken.
    pub widened: u64,
    /// Narrowing steps taken.
    pub narrowed: u64,
    /// Widest multiplier the controller reached (1 = never widened).
    pub max_mult: u32,
    /// The fabric's safe widening cap at this lane count.
    pub safe_cap: u32,
}

impl AdaptiveLadderRow {
    /// Wall-clock events per second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Mode names as they appear in JSON rows.
pub fn mode_name(mode: GasMode) -> &'static str {
    match mode {
        GasMode::AgasNetwork => "agas_network",
        GasMode::AgasSoftware => "agas_software",
        GasMode::Pgas => "pgas",
    }
}

/// Run one ladder cell: the phased GUPS pump at `shards` lanes (1 =
/// sequential engine), with the window controller on or off.
pub fn adaptive_gups(
    regime: Regime,
    mode: GasMode,
    shards: usize,
    adaptive: bool,
) -> AdaptiveLadderRow {
    let (locs, updates, chains, phases) = regime.shape();
    let seed = 42u64;
    let mut world = SimWorld::new(locs, mode, adaptive_fabric());
    world.data.record_events = false;
    let arm = |w: &mut SimWorld, phase: u64| {
        for l in 0..locs as u32 {
            w.arm_gups(l, updates * chains, seed ^ (phase << 16));
        }
    };
    if shards <= 1 {
        let mut eng = Engine::new(world, seed);
        let arr = alloc_array(&mut eng, locs as u64, 13, Distribution::Cyclic);
        eng.state.set_pump_blocks(arr.blocks.clone());
        let t = Instant::now();
        for phase in 0..phases {
            arm(&mut eng.state, phase);
            for l in 0..locs as u32 {
                for _ in 0..chains {
                    SimWorld::pump_prime(&mut eng, l);
                }
            }
            eng.run();
        }
        AdaptiveLadderRow {
            regime: regime.name(),
            mode,
            shards: 1,
            adaptive: false,
            updates: eng.state.pump_completed() + (phases - 1) * locs as u64 * updates * chains,
            events: eng.events_executed(),
            trace_hash: eng.trace_hash(),
            sim: eng.now(),
            wall_secs: t.elapsed().as_secs_f64(),
            windows: 0,
            serial_windows: 0,
            widened: 0,
            narrowed: 0,
            max_mult: 1,
            safe_cap: 1,
        }
    } else {
        let mut sh = ShardedEngine::new(world, seed, shards);
        if adaptive {
            sh.set_adaptive(ladder_window_cfg());
        }
        let arr = sh.drive(|e| alloc_array(e, locs as u64, 13, Distribution::Cyclic));
        sh.state().set_pump_blocks(arr.blocks.clone());
        let t = Instant::now();
        for phase in 0..phases {
            arm(sh.state(), phase);
            for l in 0..locs as u32 {
                sh.drive_at(l, move |e| {
                    for _ in 0..chains {
                        SimWorld::pump_prime(e, l);
                    }
                });
            }
            sh.run();
        }
        let wall_secs = t.elapsed().as_secs_f64();
        let stats = sh.stats().clone();
        AdaptiveLadderRow {
            regime: regime.name(),
            mode,
            shards,
            adaptive,
            updates: sh.state().pump_completed() + (phases - 1) * locs as u64 * updates * chains,
            events: sh.events_executed(),
            trace_hash: sh.trace_hash(),
            sim: sh.now(),
            wall_secs,
            windows: stats.windows,
            serial_windows: stats.serial_windows,
            widened: stats.widened,
            narrowed: stats.narrowed,
            max_mult: stats.max_mult_seen.max(1),
            safe_cap: sh.safe_window_cap(),
        }
    }
}

/// One side of the ring A/B.
#[derive(Clone, Debug)]
pub struct AdaptiveRingAbRow {
    /// Was the AIMD controller on?
    pub adaptive: bool,
    /// Configured (base) doorbell batch.
    pub base_batch: usize,
    /// Puts in the vectored burst phase.
    pub burst_ops: u64,
    /// Single spaced puts in the trickle phase.
    pub trickle_ops: u64,
    /// Ring doorbells rung across both phases (telemetry delta).
    pub doorbells: u64,
    /// Descriptors drained through rings.
    pub descs: u64,
    /// AIMD raise steps (telemetry `doorbell_batch_raised`).
    pub batch_raised: u64,
    /// AIMD lower steps (telemetry `doorbell_batch_lowered`).
    pub batch_lowered: u64,
    /// Simulated time the burst took to quiesce.
    pub burst_elapsed: Time,
    /// Mean simulated latency of one trickled put.
    pub trickle_latency: Time,
    /// Effective batch toward the hot peer after the trickle (floor when
    /// adaptive; the base batch when static).
    pub final_eff_batch: usize,
}

impl AdaptiveRingAbRow {
    /// Doorbell events per issued op across both phases.
    pub fn doorbells_per_op(&self) -> f64 {
        let ops = self.burst_ops + self.trickle_ops;
        if ops > 0 {
            self.doorbells as f64 / ops as f64
        } else {
            0.0
        }
    }
}

/// Burst-then-trickle puts through the photon submission rings, static
/// batch vs AIMD controller. Strictly serial (process-wide telemetry).
pub fn adaptive_ring_ab(adaptive: bool) -> AdaptiveRingAbRow {
    let base_batch = 8;
    let burst_ops = 256u64;
    let trickle_ops = 16u64;
    let pcfg = PhotonConfig {
        ring: Some(RingConfig {
            doorbell_batch: base_batch,
            doorbell_delay: Time::from_us(1),
            adaptive: adaptive.then(AdaptiveRing::default),
            ..RingConfig::default()
        }),
        ..PhotonConfig::default()
    };
    let mut rt = Runtime::builder(2, GasMode::AgasNetwork)
        .net(NetConfig::ib_fdr())
        .photon(pcfg)
        .boot();
    let arr = rt.alloc(8, 16, Distribution::Single(1));
    let blocks = arr.blocks.clone();
    let before = telemetry::snapshot();

    // Burst: one vectored issue, every descriptor aimed at locality 1.
    let t0 = rt.now();
    let puts: Vec<_> = (0..burst_ops)
        .map(|i| {
            let gva = blocks[(i % 8) as usize].with_offset((i / 8 % 1024) * 8);
            (gva, vec![1u8; 8], parcel_rt::NO_COMPLETION)
        })
        .collect();
    agas::ops::put_many(&mut rt.eng, 0, puts);
    rt.run();
    let burst_elapsed = rt.now() - t0;

    // Trickle: one put at a time, each run to quiescence, so every op
    // waits out the (effective) moderation delay alone in the ring.
    let mut trickle_total = Time::ZERO;
    for i in 0..trickle_ops {
        let gva = blocks[(i % 8) as usize].with_offset(4096 + i * 8);
        let t = Rc::new(RefCell::new(Time::ZERO));
        let t2 = t.clone();
        let t0 = rt.now();
        rt.memput_cb(0, gva, vec![2u8; 8], move |eng, _| {
            *t2.borrow_mut() = eng.now();
        });
        rt.run();
        trickle_total += *t.borrow() - t0;
    }
    rt.assert_quiescent();
    let d = telemetry::snapshot().since(before);
    let final_eff_batch = rt.eng.state.eps[0]
        .sub_ring_eff_batches()
        .iter()
        .find(|&&(peer, _)| peer == 1)
        .map_or(base_batch, |&(_, b)| b);
    AdaptiveRingAbRow {
        adaptive,
        base_batch,
        burst_ops,
        trickle_ops,
        doorbells: d.ring_doorbells,
        descs: d.ring_descs,
        batch_raised: d.doorbell_batch_raised,
        batch_lowered: d.doorbell_batch_lowered,
        burst_elapsed,
        trickle_latency: Time::from_ps(trickle_total.ps() / trickle_ops.max(1)),
        final_eff_batch,
    }
}
