//! The descriptor-ring issue-path series (`repro ring`, EXPERIMENTS.md).
//!
//! Two measurements over the shared [`netsim::ring`] layer:
//!
//! * **Doorbell-batching ladder** — a vectored burst of small puts
//!   ([`agas::ops::put_many`]) through the photon submission rings at
//!   increasing `doorbell_batch`, showing doorbell events per op falling
//!   as descriptors share drains (batch 0 = rings disabled, the per-op
//!   issue baseline).
//! * **Shm crossover** — the same single-op latency kernel run once over
//!   the network AGAS path and once inside a [`ShmDomain`], where
//!   co-located localities short-circuit the NIC with a load/store cost
//!   model and **zero wire messages**.
//!
//! Plus the AMO-batching cell backing the `repro amo` gate: multiple
//! fetch-adds to one responder must share a single ring doorbell
//! (telemetry `amo_batched`).
//!
//! Telemetry counters are process-wide deltas, so every kernel here runs
//! strictly serially (no rayon).

use agas::{Distribution, GasMode};
use netsim::{telemetry, AmoOp, NetConfig, RingConfig, ShmDomain, Time};
use parcel_rt::{Runtime, NO_COMPLETION};
use photon::PhotonConfig;
use std::cell::RefCell;
use std::rc::Rc;

fn class_for(size: u32) -> u8 {
    let needed = size.max(4096);
    (u32::BITS - (needed - 1).leading_zeros()) as u8
}

fn ring_photon(batch: usize, delay: Time) -> PhotonConfig {
    PhotonConfig {
        ring: Some(RingConfig {
            doorbell_batch: batch,
            doorbell_delay: delay,
            ..RingConfig::default()
        }),
        ..PhotonConfig::default()
    }
}

/// One rung of the doorbell-batching ladder.
#[derive(Clone, Debug)]
pub struct RingLadderRow {
    /// `doorbell_batch` setting (0 = rings disabled, per-op issue).
    pub batch: usize,
    /// 8-byte puts issued (one `put_many` burst).
    pub ops: u64,
    /// Simulated time to quiescence.
    pub elapsed: Time,
    /// Events executed (telemetry delta).
    pub events: u64,
    /// Wire messages sent.
    pub msgs: u64,
    /// Ring doorbells rung (submission + completion rings).
    pub doorbells: u64,
    /// Descriptors drained through rings.
    pub descs: u64,
    /// Descriptors that shared a drain with an earlier one.
    pub coalesced: u64,
    /// Deepest any of locality 0's rings got.
    pub max_occupancy: usize,
}

impl RingLadderRow {
    /// Mean descriptors per doorbell (1.0 = no batching).
    pub fn descs_per_doorbell(&self) -> f64 {
        if self.doorbells > 0 {
            self.descs as f64 / self.doorbells as f64
        } else {
            0.0
        }
    }

    /// Doorbell events per issued op — the headline reduction.
    pub fn doorbells_per_op(&self) -> f64 {
        if self.ops > 0 {
            self.doorbells as f64 / self.ops as f64
        } else {
            0.0
        }
    }
}

/// One ladder rung: a vectored burst of `ops` 8-byte puts from locality 0
/// to blocks homed at locality 1, issued in one [`agas::ops::put_many`]
/// call so every same-peer descriptor is eligible for the same doorbell.
pub fn ring_ladder_row(batch: usize, ops: u64) -> RingLadderRow {
    let pcfg = if batch == 0 {
        PhotonConfig::default()
    } else {
        ring_photon(batch, Time::from_us(1))
    };
    let mut rt = Runtime::builder(2, GasMode::AgasNetwork)
        .net(NetConfig::ib_fdr())
        .photon(pcfg)
        .boot();
    let arr = rt.alloc(8, 16, Distribution::Single(1));
    let blocks = arr.blocks.clone();
    let msgs0 = rt.counters().msgs_sent;
    let before = telemetry::snapshot();
    let t0 = rt.now();
    let puts: Vec<_> = (0..ops)
        .map(|i| {
            let gva = blocks[(i % 8) as usize].with_offset((i / 8 % 1024) * 8);
            (gva, vec![0u8; 8], NO_COMPLETION)
        })
        .collect();
    agas::ops::put_many(&mut rt.eng, 0, puts);
    rt.run();
    rt.assert_quiescent();
    let d = telemetry::snapshot().since(before);
    let stats = rt.eng.state.eps[0].ring_stats();
    RingLadderRow {
        batch,
        ops,
        elapsed: rt.now() - t0,
        events: d.events,
        msgs: rt.counters().msgs_sent - msgs0,
        doorbells: d.ring_doorbells,
        descs: d.ring_descs,
        coalesced: d.ring_coalesced,
        max_occupancy: stats.max_occupancy,
    }
}

/// One size point of the shm-vs-network crossover.
#[derive(Clone, Copy, Debug)]
pub struct ShmCrossRow {
    /// Transfer size in bytes.
    pub size: u32,
    /// Remote put latency over the network AGAS path.
    pub net_put: Time,
    /// Remote get latency over the network AGAS path.
    pub net_get: Time,
    /// Same put, initiator and home co-located in one [`ShmDomain`].
    pub shm_put: Time,
    /// Same get inside the domain.
    pub shm_get: Time,
    /// Wire messages the two intra-domain ops cost (the invariant: 0).
    pub shm_msgs: u64,
    /// Ops that took the load/store short-circuit (the invariant: 2).
    pub shm_ops: u64,
}

impl ShmCrossRow {
    /// How much faster the intra-domain put is.
    pub fn put_speedup(&self) -> f64 {
        self.net_put.ps() as f64 / self.shm_put.ps().max(1) as f64
    }
}

/// One remote put + get of `size` bytes, A/B between the network AGAS
/// path and an intra-domain shared-memory short-circuit.
pub fn shm_cross_row(size: u32) -> ShmCrossRow {
    let run = |shm: Option<ShmDomain>| {
        let net = NetConfig {
            shm,
            ..NetConfig::ib_fdr()
        };
        let mut rt = Runtime::builder(2, GasMode::AgasNetwork).net(net).boot();
        let arr = rt.alloc(2, class_for(size), Distribution::Cyclic);
        let msgs0 = rt.counters().msgs_sent;
        let t_put = Rc::new(RefCell::new(Time::ZERO));
        let t2 = t_put.clone();
        let t0 = rt.now();
        rt.memput_cb(0, arr.block(1), vec![7u8; size as usize], move |eng, _| {
            *t2.borrow_mut() = eng.now();
        });
        rt.run();
        let put = *t_put.borrow() - t0;
        let t_get = Rc::new(RefCell::new(Time::ZERO));
        let t3 = t_get.clone();
        let t1 = rt.now();
        rt.memget_cb(0, arr.block(1), size, move |eng, data| {
            assert!(data.iter().all(|&b| b == 7), "shm path corrupted data");
            *t3.borrow_mut() = eng.now();
        });
        rt.run();
        rt.assert_quiescent();
        let get = *t_get.borrow() - t1;
        let msgs = rt.counters().msgs_sent - msgs0;
        let shm_ops = rt.eng.state.total_gas_stats().shm_ops;
        (put, get, msgs, shm_ops)
    };
    let (net_put, net_get, _, _) = run(None);
    let (shm_put, shm_get, shm_msgs, shm_ops) = run(Some(ShmDomain::node(2)));
    ShmCrossRow {
        size,
        net_put,
        net_get,
        shm_put,
        shm_get,
        shm_msgs,
        shm_ops,
    }
}

/// The AMO-batching cell: concurrent fetch-adds from several initiators
/// to one hot block, issued through the photon rings.
#[derive(Clone, Copy, Debug)]
pub struct AmoRingRow {
    /// Fetch-adds issued.
    pub amos: u64,
    /// AMOs that shared a ring doorbell with another AMO to the same
    /// responder (telemetry `amo_batched`).
    pub amo_batched: u64,
    /// Ring doorbells rung.
    pub doorbells: u64,
    /// Simulated time to quiescence.
    pub elapsed: Time,
    /// Final value of the hot counter word (must equal `amos`).
    pub counter: u64,
}

/// Issue `per_initiator` fetch-adds from each of three remote localities
/// at the same hot word, all rung through the submission rings.
pub fn amo_ring_batching(per_initiator: u64) -> AmoRingRow {
    let mut rt = Runtime::builder(4, GasMode::AgasNetwork)
        .net(NetConfig::ib_fdr())
        .photon(ring_photon(16, Time::from_us(1)))
        .boot();
    let arr = rt.alloc(1, 13, Distribution::Single(0));
    let hot = arr.block(0);
    let before = telemetry::snapshot();
    let t0 = rt.now();
    for l in 1..4u32 {
        for _ in 0..per_initiator {
            rt.memamo(l, hot, AmoOp::FetchAdd { operand: 1 });
        }
    }
    rt.run();
    rt.assert_quiescent();
    let d = telemetry::snapshot().since(before);
    let counter = u64::from_le_bytes(rt.read_block(hot)[..8].try_into().unwrap());
    AmoRingRow {
        amos: 3 * per_initiator,
        amo_batched: d.amo_batched,
        doorbells: d.ring_doorbells,
        elapsed: rt.now() - t0,
        counter,
    }
}
