//! Experiment kernels for the reconstructed evaluation.
//!
//! Each function here regenerates the data behind one table/figure of
//! DESIGN.md §5 (experiments E1–E10, ablations A1–A3) and returns plain
//! data, so both the `repro` binary (which prints the paper-style rows)
//! and the criterion benches (which time the simulator itself) share one
//! implementation. All results are **simulated time** — the model's output,
//! deterministic for a given seed.

pub mod adaptive;
pub mod amo;
pub mod experiments;
pub mod parallel;
pub mod ring;

pub use adaptive::*;
pub use amo::*;
pub use experiments::*;
pub use parallel::*;
pub use ring::*;
