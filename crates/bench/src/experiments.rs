//! The experiment kernels (one per table/figure; see DESIGN.md §5).

use agas::{Distribution, GasMode};
use netsim::{NetConfig, Time};
use parcel_rt::Runtime;
use photon::PhotonConfig;
use std::cell::RefCell;
use std::rc::Rc;
use workloads::driver::IssueFn;
use workloads::gups::{self, GupsConfig};
use workloads::skew::{self, SkewConfig};
use workloads::stencil::{self, StencilConfig};

fn class_for(size: u32) -> u8 {
    let needed = size.max(4096);
    (u32::BITS - (needed - 1).leading_zeros()) as u8
}

/// E1 — one remote memput of `size` bytes: completion latency.
pub fn put_latency(mode: GasMode, size: u32, net: NetConfig) -> Time {
    let mut rt = Runtime::builder(2, mode).net(net).boot();
    let arr = rt.alloc(2, class_for(size), Distribution::Cyclic);
    let t_done = Rc::new(RefCell::new(Time::ZERO));
    let t2 = t_done.clone();
    let t0 = rt.now();
    rt.memput_cb(0, arr.block(1), vec![0u8; size as usize], move |eng, _| {
        *t2.borrow_mut() = eng.now();
    });
    rt.run();
    let done = *t_done.borrow();
    done - t0
}

/// E2 — one remote memget of `size` bytes: completion latency.
pub fn get_latency(mode: GasMode, size: u32, net: NetConfig) -> Time {
    let mut rt = Runtime::builder(2, mode).net(net).boot();
    let arr = rt.alloc(2, class_for(size), Distribution::Cyclic);
    let t_done = Rc::new(RefCell::new(Time::ZERO));
    let t2 = t_done.clone();
    let t0 = rt.now();
    rt.memget_cb(0, arr.block(1), size, move |eng, _| {
        *t2.borrow_mut() = eng.now();
    });
    rt.run();
    let done = *t_done.borrow();
    done - t0
}

/// E3 — pipelined puts of `size` bytes (window 16, 64 transfers):
/// achieved bandwidth in GB/s (decimal).
pub fn put_bandwidth(mode: GasMode, size: u32, net: NetConfig) -> f64 {
    let count = 64u64;
    let window = 16usize;
    let mut rt = Runtime::builder(2, mode).net(net).boot();
    // Enough distinct blocks to spread offsets (single target locality).
    let arr = rt.alloc(count, class_for(size), Distribution::Single(1));
    let blocks = arr.blocks.clone();
    let t0 = rt.now();
    let issue: Rc<IssueFn> = Rc::new(move |eng, loc, seq, ctx| {
        agas::ops::memput(
            eng,
            loc,
            blocks[seq as usize],
            vec![0u8; size as usize],
            ctx,
        );
    });
    workloads::driver::pump(&mut rt.eng, 0, count, window, issue, |_| {});
    rt.run();
    let elapsed = rt.now() - t0;
    (count * size as u64) as f64 / elapsed.as_secs_f64() / 1e9
}

/// E4 — 8-byte puts, `window` outstanding, 2048 ops: million ops/s.
pub fn message_rate(mode: GasMode, window: usize, net: NetConfig) -> f64 {
    let count = 2048u64;
    let mut rt = Runtime::builder(2, mode).net(net).boot();
    let arr = rt.alloc(8, 16, Distribution::Single(1));
    let blocks = arr.blocks.clone();
    let t0 = rt.now();
    let issue: Rc<IssueFn> = Rc::new(move |eng, loc, seq, ctx| {
        let b = blocks[(seq % 8) as usize].with_offset((seq / 8 % 1024) * 8);
        agas::ops::memput(eng, loc, b, vec![0u8; 8], ctx);
    });
    workloads::driver::pump(&mut rt.eng, 0, count, window, issue, |_| {});
    rt.run();
    let elapsed = rt.now() - t0;
    count as f64 / elapsed.as_secs_f64() / 1e6
}

/// One row of E5 — GUPS weak scaling.
#[derive(Clone, Copy, Debug)]
pub struct GupsRow {
    /// Localities.
    pub n: usize,
    /// Aggregate million updates per second.
    pub mups: f64,
    /// Mean update latency.
    pub mean_latency: Time,
    /// Target-CPU seconds consumed per million updates.
    pub cpu_per_mupdate: f64,
}

/// E5 — GUPS at `n` localities under `mode`.
pub fn gups_scaling(mode: GasMode, n: usize, net: NetConfig) -> GupsRow {
    let cfg = GupsConfig {
        cells_per_loc: 1 << 13,
        updates_per_loc: 1 << 10,
        window: 16,
        ..GupsConfig::default()
    };
    let mut rt = Runtime::builder(n, mode).net(net).boot();
    let table = gups::alloc_table(&mut rt, &cfg);
    let res = gups::run(&mut rt, &cfg, &table);
    let cpu = rt.counters().cpu_busy;
    GupsRow {
        n,
        mups: res.gups * 1e3,
        mean_latency: res.mean_latency,
        cpu_per_mupdate: cpu.as_secs_f64() / (res.updates as f64 / 1e6),
    }
}

/// One row of E6 — NIC translation-table capacity sensitivity.
#[derive(Clone, Copy, Debug)]
pub struct CapacityRow {
    /// Table capacity in entries (`usize::MAX` = unbounded).
    pub capacity: usize,
    /// Aggregate MUPS.
    pub mups: f64,
    /// NIC-table hit fraction.
    pub hit_rate: f64,
    /// Operations that fell back to the software path.
    pub sw_fallbacks: u64,
}

/// E6 — GUPS (8 localities, network-managed) with a capacity-limited NIC
/// translation table.
pub fn table_capacity(capacity: usize) -> CapacityRow {
    let net = NetConfig {
        xlate_capacity: capacity,
        ..NetConfig::ib_fdr()
    };
    // 32 KiB-cells per locality over 8 KiB blocks = 32 resident blocks per
    // NIC: capacities below that force eviction traffic.
    let cfg = GupsConfig {
        cells_per_loc: 1 << 15,
        updates_per_loc: 1 << 10,
        window: 16,
        block_class: 13,
        ..GupsConfig::default()
    };
    let mut rt = Runtime::builder(8, GasMode::AgasNetwork).net(net).boot();
    let table = gups::alloc_table(&mut rt, &cfg);
    let res = gups::run(&mut rt, &cfg, &table);
    let c = rt.counters();
    let lookups = c.xlate_hits + c.xlate_misses;
    CapacityRow {
        capacity,
        mups: res.gups * 1e3,
        hit_rate: if lookups == 0 {
            1.0
        } else {
            c.xlate_hits as f64 / lookups as f64
        },
        sw_fallbacks: rt.eng.state.total_gas_stats().sw_fallbacks,
    }
}

/// E7 — migrate one block of `1 << class` bytes (quiet cluster):
/// request-to-commit latency.
pub fn migration_cost(mode: GasMode, class: u8, net: NetConfig) -> Time {
    let mut rt = Runtime::builder(4, mode).net(net).boot();
    let arr = rt.alloc(1, class, Distribution::Single(1));
    let t_done = Rc::new(RefCell::new(Time::ZERO));
    let t2 = t_done.clone();
    let t0 = rt.now();
    rt.migrate_cb(0, arr.block(0), 2, move |eng, _| {
        *t2.borrow_mut() = eng.now();
    });
    rt.run();
    let done = *t_done.borrow();
    done - t0
}

/// Result of A3: what a stale initiator pays after a block moved.
#[derive(Clone, Copy, Debug)]
pub struct RaceRow {
    /// Latency of one put issued with a stale owner hint.
    pub stale_put_latency: Time,
    /// Fresh-hint put latency, for reference.
    pub fresh_put_latency: Time,
    /// NIC forwards taken by the stale put.
    pub forwards: u64,
    /// NACKs the stale put triggered.
    pub nacks: u64,
    /// Initiator retry cycles.
    pub retries: u64,
}

/// A3 — the cost of a *stale* one-sided access after migration: with NIC
/// forwarding the old owner's tombstone redirects it in hardware (one extra
/// hop); with NACK-only the initiator must re-resolve through the home.
pub fn migration_race(forwarding: bool) -> RaceRow {
    let net = NetConfig {
        nic_forwarding: forwarding,
        ..NetConfig::ib_fdr()
    };
    let mut rt = Runtime::builder(4, GasMode::AgasNetwork).net(net).boot();
    let arr = rt.alloc(2, 16, Distribution::Cyclic);
    let gva = arr.block(1);
    // Warm locality 0's owner hint, then move the block behind its back.
    rt.memput(0, gva, vec![0u8; 8]);
    rt.run();
    rt.migrate(1, gva, 3);
    rt.run();
    let c0 = rt.counters();
    let g0 = rt.eng.state.total_gas_stats();
    // The stale put: locality 0 still believes the old owner.
    let t_done = Rc::new(RefCell::new(Time::ZERO));
    let t2 = t_done.clone();
    let t0 = rt.now();
    rt.memput_cb(0, gva.with_offset(64), vec![1u8; 64], move |eng, _| {
        *t2.borrow_mut() = eng.now();
    });
    rt.run();
    let stale = *t_done.borrow() - t0;
    let c1 = rt.counters();
    let g1 = rt.eng.state.total_gas_stats();
    // A fresh put (hint now corrected) for reference.
    let t_done2 = Rc::new(RefCell::new(Time::ZERO));
    let t3 = t_done2.clone();
    let t1 = rt.now();
    rt.memput_cb(0, gva.with_offset(128), vec![1u8; 64], move |eng, _| {
        *t3.borrow_mut() = eng.now();
    });
    rt.run();
    let fresh = *t_done2.borrow() - t1;
    RaceRow {
        stale_put_latency: stale,
        fresh_put_latency: fresh,
        forwards: c1.xlate_forwards - c0.xlate_forwards,
        nacks: c1.nacks_sent - c0.nacks_sent,
        retries: g1.retries - g0.retries,
    }
}

/// E8 — one row of the skewed-access/rebalancing table.
pub fn skew_row(mode: GasMode, rebalance: bool, n: usize) -> skew::SkewResult {
    let cfg = SkewConfig {
        blocks: 64,
        read_bytes: 4096,
        ops_per_loc: 1 << 10,
        window: 16,
        theta: 1.05,
        rebalance_every: if rebalance { 512 } else { 0 },
        moves_per_round: 4,
        ..SkewConfig::default()
    };
    let mut rt = Runtime::builder(n, mode).boot();
    let data = skew::alloc_blocks(&mut rt, &cfg);
    skew::run(&mut rt, &cfg, &data)
}

/// E9 — one row of the stencil (application proxy) table.
pub fn stencil_row(mode: GasMode, n: usize, net: NetConfig) -> stencil::StencilResult {
    let cfg = StencilConfig {
        px: 8,
        py: 8,
        tile: 32,
        iters: 4,
        flop_time: Time::from_us(40),
    };
    let mut b = Runtime::builder(n, mode).net(net);
    stencil::register_actions(&mut b);
    let mut rt = b.boot();
    let tiles = stencil::alloc_tiles(&mut rt, &cfg);
    stencil::run(&mut rt, &cfg, &tiles)
}

/// E9b — the 3-D (LULESH-class) stencil variant: per-iteration time.
pub fn stencil3d_row(mode: GasMode, n: usize) -> workloads::stencil3d::Stencil3dResult {
    use workloads::stencil3d::{self, Stencil3dConfig};
    let cfg = Stencil3dConfig {
        px: 4,
        py: 2,
        pz: 2,
        tile: 16,
        iters: 3,
        flop_time: Time::from_us(60),
    };
    let mut b = Runtime::builder(n, mode);
    stencil3d::register_actions(&mut b);
    let mut rt = b.boot();
    let tiles = stencil3d::alloc_tiles(&mut rt, &cfg);
    stencil3d::run(&mut rt, &cfg, &tiles)
}

/// E10 — protocol footprint of one remote operation.
#[derive(Clone, Copy, Debug)]
pub struct FootprintRow {
    /// RDMA operations initiated.
    pub rdma_ops: u64,
    /// Two-sided messages sent.
    pub messages: u64,
    /// Control messages (acks/handshakes).
    pub ctrl: u64,
    /// Target-CPU handler executions.
    pub cpu_handlers: u64,
    /// NIC translations performed.
    pub nic_xlates: u64,
}

/// E10 — counters consumed by a single remote memput (`put=true`) or
/// memget of 256 B.
pub fn protocol_footprint(mode: GasMode, put: bool) -> FootprintRow {
    let mut rt = Runtime::builder(2, mode).boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    let before = rt.counters();
    if put {
        rt.memput(0, arr.block(1), vec![1u8; 256]);
    } else {
        rt.memget_cb(0, arr.block(1), 256, |_, _| {});
    }
    rt.run();
    let after = rt.counters();
    FootprintRow {
        rdma_ops: after.rdma_puts + after.rdma_gets - before.rdma_puts - before.rdma_gets,
        messages: after.msgs_sent - before.msgs_sent,
        ctrl: after.ctrl_sent - before.ctrl_sent,
        cpu_handlers: after.sw_handler_runs - before.sw_handler_runs,
        nic_xlates: after.xlate_hits - before.xlate_hits,
    }
}

/// A1 — eight 1 MiB rendezvous sends from one registered buffer, with the
/// registration cache enabled or disabled: total completion time.
pub fn rcache_ablation(enabled: bool) -> Time {
    let pcfg = PhotonConfig {
        rcache_enabled: enabled,
        ..PhotonConfig::default()
    };
    let mut rt = Runtime::builder(2, GasMode::AgasNetwork)
        .photon(pcfg)
        .boot();
    // A 2 MiB registered source buffer in locality 0's arena.
    let src = rt.eng.state.cluster.mem_mut(0).alloc_block(21).unwrap();
    let t0 = rt.now();
    for round in 0..8u64 {
        photon::post_recv(&mut rt.eng, 1, round);
        photon::send(
            &mut rt.eng,
            0,
            1,
            round,
            vec![0u8; 1 << 20],
            Some((src, 1 << 20)),
        );
        rt.run();
    }
    rt.now() - t0
}

/// A2 — two-sided message latency of `size` bytes under a given eager
/// threshold (the eager↔rendezvous crossover).
pub fn eager_threshold_latency(threshold: u32, size: u32) -> Time {
    let pcfg = PhotonConfig {
        eager_threshold: threshold,
        ..PhotonConfig::default()
    };
    let mut rt = Runtime::builder(2, GasMode::AgasNetwork)
        .photon(pcfg)
        .boot();
    photon::post_recv(&mut rt.eng, 1, 9);
    let t0 = rt.now();
    photon::send(&mut rt.eng, 0, 1, 9, vec![0u8; size as usize], None);
    rt.run();
    rt.now() - t0
}

/// The translation-cache sensitivity companion to E6: hit ratio of the
/// *source-side* owner cache under a capacity sweep (software AGAS).
pub fn owner_cache_capacity(capacity: usize) -> (f64, Time) {
    let gcfg = agas::GasConfig {
        cache_capacity: capacity,
        ..agas::GasConfig::default()
    };
    let cfg = GupsConfig {
        cells_per_loc: 1 << 12,
        updates_per_loc: 1 << 9,
        window: 8,
        ..GupsConfig::default()
    };
    let mut rt = Runtime::builder(8, GasMode::AgasSoftware)
        .gas_config(gcfg)
        .boot();
    let table = gups::alloc_table(&mut rt, &cfg);
    let res = gups::run(&mut rt, &cfg, &table);
    let (hits, misses) = rt
        .eng
        .state
        .gas
        .iter()
        .map(|g| g.cache.stats())
        .fold((0u64, 0u64), |(h, m), (h2, m2)| (h + h2, m + m2));
    let ratio = if hits + misses == 0 {
        1.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    (ratio, res.elapsed)
}

/// E11 — parcel round-trip (spawn → action → continuation) latency under a
/// given network backend and payload size.
pub fn parcel_latency(transport: parcel_rt::Transport, payload: u32) -> Time {
    let mut b = Runtime::builder(2, GasMode::AgasNetwork);
    let nop = b.register("nop", |eng, ctx| parcel_rt::reply(eng, &ctx, vec![]));
    let mut rt = b
        .rt_config(parcel_rt::RtConfig {
            transport,
            ..parcel_rt::RtConfig::default()
        })
        .boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    let fut = rt.new_future(0);
    let t0 = rt.now();
    rt.spawn(0, arr.block(1), nop, vec![0u8; payload as usize], Some(fut));
    let done = Rc::new(RefCell::new(Time::ZERO));
    let d2 = done.clone();
    rt.wait_lco(fut, move |eng, _| *d2.borrow_mut() = eng.now());
    rt.run();
    let t = *done.borrow();
    t - t0
}

/// E11 — sustained parcel rate (million parcels/s) under a backend.
pub fn parcel_rate(transport: parcel_rt::Transport) -> f64 {
    let count = 2048u64;
    let mut b = Runtime::builder(2, GasMode::AgasNetwork);
    let nop = b.register("nop", |_, _| {});
    let mut rt = b
        .rt_config(parcel_rt::RtConfig {
            transport,
            ..parcel_rt::RtConfig::default()
        })
        .boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    let t0 = rt.now();
    for _ in 0..count {
        rt.spawn(0, arr.block(1), nop, vec![0u8; 32], None);
    }
    rt.run();
    let elapsed = rt.now() - t0;
    count as f64 / elapsed.as_secs_f64() / 1e6
}

/// E12 — aggregate bandwidth of 4 disjoint pairwise streams (8 localities)
/// under a fabric oversubscription factor.
pub fn bisection_bandwidth(oversubscription: u64) -> f64 {
    let net = NetConfig {
        oversubscription,
        ..NetConfig::ib_fdr()
    };
    let size = 65_536u32;
    let count = 32u64;
    let mut rt = Runtime::builder(8, GasMode::Pgas).net(net).boot();
    let arr = rt.alloc(8 * count, class_for(size), Distribution::Cyclic);
    let blocks = arr.blocks.clone();
    let t0 = rt.now();
    let issue: Rc<IssueFn> = Rc::new(move |eng, loc, seq, ctx| {
        // Locality i streams to its partner i+4's blocks.
        let partner = (loc + 4) % 8;
        let b = blocks[(seq * 8 + partner as u64) as usize];
        agas::ops::memput(eng, loc, b, vec![0u8; size as usize], ctx);
    });
    for loc in 0..4u32 {
        workloads::driver::pump(&mut rt.eng, loc, count, 8, issue.clone(), |_| {});
    }
    rt.run();
    let elapsed = rt.now() - t0;
    (4 * count * size as u64) as f64 / elapsed.as_secs_f64() / 1e9
}

/// E13 — message-driven BFS: traversal rate vs localities and transport.
pub fn bfs_teps(n: usize, transport: parcel_rt::Transport) -> f64 {
    use workloads::bfs::{self, BfsConfig};
    let cfg = BfsConfig {
        vertices: 4096,
        chords: 3,
        block_class: 12,
        root: 0,
        seed: 2016,
    };
    let slot = std::rc::Rc::new(RefCell::new(None));
    let mut b = Runtime::builder(n, GasMode::AgasNetwork);
    bfs::register_actions(&mut b, slot.clone());
    let mut rt = b
        .rt_config(parcel_rt::RtConfig {
            transport,
            ..parcel_rt::RtConfig::default()
        })
        .boot();
    bfs::install(&mut rt, &cfg, &slot);
    let res = bfs::run(&mut rt, &cfg, &slot);
    res.teps
}

/// One row of E14 — parcel coalescing on/off for a parcel-heavy workload.
#[derive(Clone, Copy, Debug)]
pub struct CoalesceRow {
    /// Simulated completion time.
    pub elapsed: Time,
    /// Wire messages sent.
    pub messages: u64,
    /// Batches sent (0 when coalescing is off).
    pub batches: u64,
}

/// E14b compatibility wrapper (IB fabric).
pub fn gups_coalescing(coalesce: bool) -> CoalesceRow {
    gups_coalescing_on(coalesce, NetConfig::ib_fdr())
}

/// E14c — a parcel *flood*: every locality instantly spawns `k` small
/// fire-and-forget parcels round-robin at the others (a BFS-frontier-style
/// burst). Injection rate, not latency, binds — coalescing's home turf.
pub fn parcel_flood(coalesce: bool, k: u64) -> CoalesceRow {
    let n = 8usize;
    let mut b = Runtime::builder(n, GasMode::AgasNetwork);
    let sink = b.register("sink", |_, _| {});
    // Run on the commodity fabric, whose 300 ns per-message injection gap
    // is what aggregation amortizes (on IB the flood is CPU-bound and
    // coalescing only cuts the message count).
    let mut rt = b
        .net(NetConfig::ethernet_10g())
        .rt_config(parcel_rt::RtConfig {
            ring: coalesce.then(netsim::RingConfig::default),
            ..parcel_rt::RtConfig::default()
        })
        .boot();
    let arr = rt.alloc(n as u64 * 4, 12, Distribution::Cyclic);
    let t0 = rt.now();
    for loc in 0..n as u32 {
        for i in 0..k {
            let block = arr.block((i * 4 + loc as u64 * 7 + 1) % (n as u64 * 4));
            rt.spawn(loc, block, sink, vec![0u8; 24], None);
        }
    }
    rt.run();
    let stats = rt.eng.state.total_rt_stats();
    CoalesceRow {
        elapsed: rt.now() - t0,
        messages: rt.counters().msgs_sent,
        batches: stats.batches_sent,
    }
}

/// E14 — message-driven BFS with and without parcel coalescing.
pub fn bfs_coalescing(coalesce: bool) -> CoalesceRow {
    use workloads::bfs::{self, BfsConfig};
    let cfg = BfsConfig {
        vertices: 4096,
        chords: 3,
        block_class: 12,
        root: 0,
        seed: 2016,
    };
    let slot = std::rc::Rc::new(RefCell::new(None));
    let mut b = Runtime::builder(8, GasMode::AgasNetwork);
    bfs::register_actions(&mut b, slot.clone());
    let mut rt = b
        .rt_config(parcel_rt::RtConfig {
            ring: coalesce.then(netsim::RingConfig::default),
            ..parcel_rt::RtConfig::default()
        })
        .boot();
    bfs::install(&mut rt, &cfg, &slot);
    let res = bfs::run(&mut rt, &cfg, &slot);
    let stats = rt.eng.state.total_rt_stats();
    CoalesceRow {
        elapsed: res.elapsed,
        messages: rt.counters().msgs_sent,
        batches: stats.batches_sent,
    }
}

/// E14b — GUPS (action variant) with and without parcel coalescing, on a
/// chosen fabric (coalescing pays where per-message overhead binds).
pub fn gups_coalescing_on(coalesce: bool, net: NetConfig) -> CoalesceRow {
    let cfg = GupsConfig {
        cells_per_loc: 1 << 12,
        updates_per_loc: 1 << 10,
        window: 32,
        use_actions: true,
        ..GupsConfig::default()
    };
    let mut b = Runtime::builder(8, GasMode::AgasNetwork);
    gups::register_actions(&mut b);
    let mut rt = b
        .net(net)
        .rt_config(parcel_rt::RtConfig {
            ring: coalesce.then(|| netsim::RingConfig {
                doorbell_delay: Time::from_us(2),
                ..netsim::RingConfig::default()
            }),
            ..parcel_rt::RtConfig::default()
        })
        .boot();
    let table = gups::alloc_table(&mut rt, &cfg);
    let res = gups::run(&mut rt, &cfg, &table);
    let stats = rt.eng.state.total_rt_stats();
    CoalesceRow {
        elapsed: res.elapsed,
        messages: rt.counters().msgs_sent,
        batches: stats.batches_sent,
    }
}

/// E1b — latency *distribution* under load: mean and p99 of 8-byte puts
/// issued while GUPS background traffic saturates the same target.
pub fn loaded_latency(mode: GasMode) -> (Time, Time) {
    let cfg = GupsConfig {
        cells_per_loc: 1 << 12,
        updates_per_loc: 1 << 10,
        window: 24,
        ..GupsConfig::default()
    };
    let mut rt = Runtime::builder(4, mode).boot();
    let table = gups::alloc_table(&mut rt, &cfg);
    let _ = gups::run(&mut rt, &cfg, &table);
    // The histograms collected every initiator-side put during the run.
    let mut hist = netsim::LogHistogram::new();
    for g in &rt.eng.state.gas {
        hist.merge(&g.put_latency);
    }
    let mean = Time::from_ns(hist.mean() as u64);
    let p99 = Time::from_ns(hist.quantile(0.99).unwrap_or(0));
    (mean, p99)
}

/// E15 — all-to-all transpose: aggregate bandwidth per mode and fabric
/// oversubscription factor.
pub fn transpose_bandwidth(mode: GasMode, oversubscription: u64) -> f64 {
    use workloads::transpose::{self, TransposeConfig};
    let net = NetConfig {
        oversubscription,
        ..NetConfig::ib_fdr()
    };
    let mut rt = Runtime::builder(8, mode).net(net).boot();
    let cfg = TransposeConfig {
        block_class: 14,
        rounds: 1,
    };
    let arrays = transpose::setup(&mut rt, &cfg);
    let res = transpose::run(&mut rt, &cfg, &arrays);
    transpose::verify(&rt, &cfg, &arrays);
    res.aggregate_gbps
}

/// E4b — message-rate ceiling vs NIC queue pairs (network-managed mode,
/// window 128): the hardware-parallelism knob.
pub fn message_rate_ports(ports: usize) -> f64 {
    let net = NetConfig {
        nic_ports: ports,
        ..NetConfig::ib_fdr()
    };
    message_rate(GasMode::AgasNetwork, 128, net)
}

/// E10b — protocol footprint of one block migration (messages, directory
/// updates, CPU handler work at the endpoints).
#[derive(Clone, Copy, Debug)]
pub struct MigrationFootprint {
    /// Two-sided messages.
    pub messages: u64,
    /// Directory lookups+updates at the home.
    pub dir_ops: u64,
    /// Blocks moved (sanity: 1).
    pub moves: u64,
}

/// E10b — counters consumed by one quiet-cluster migration.
pub fn migration_footprint(mode: GasMode) -> MigrationFootprint {
    let mut rt = Runtime::builder(4, mode).boot();
    let arr = rt.alloc(1, 12, Distribution::Single(1));
    let before = rt.counters();
    rt.migrate(0, arr.block(0), 2);
    rt.run();
    let after = rt.counters();
    MigrationFootprint {
        messages: after.msgs_sent - before.msgs_sent,
        dir_ops: after.dir_lookups - before.dir_lookups,
        moves: after.migrations_in - before.migrations_in,
    }
}

/// Common size sweep used by E1/E2/E3.
pub const SIZES: [u32; 8] = [8, 64, 512, 4096, 16384, 65536, 262144, 1048576];

/// Window sweep used by E4.
pub const WINDOWS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Locality sweep used by E5.
pub const SCALES: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// Capacity sweep used by E6 (32 blocks resident per NIC at the E6 size).
pub const CAPACITIES: [usize; 6] = [usize::MAX, 64, 32, 16, 8, 4];

/// Block-size-class sweep used by E7 (4 KiB – 4 MiB).
pub const MIG_CLASSES: [u8; 6] = [12, 14, 16, 18, 20, 22];
