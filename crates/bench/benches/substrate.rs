//! Criterion microbenches of the simulation substrate itself (engine,
//! LRU, PRNG, memory arena) — the components every experiment's wall-clock
//! cost is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::engine::Engine;
use netsim::lru::LruMap;
use netsim::memory::Memory;
use netsim::rng::{mix64, Xoshiro256, Zipf};
use netsim::time::Time;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("schedule_run_10k", |b| {
        b.iter(|| {
            let mut eng = Engine::new(0u64, 1);
            for i in 0..10_000u64 {
                eng.schedule(Time::from_ps(mix64(i) % 1_000_000), move |e| {
                    e.state = e.state.wrapping_add(i);
                });
            }
            eng.run();
            black_box(eng.state)
        });
    });
    g.bench_function("event_chain_10k", |b| {
        b.iter(|| {
            let mut eng = Engine::new(0u64, 1);
            fn tick(e: &mut Engine<u64>) {
                e.state += 1;
                if e.state < 10_000 {
                    e.schedule(Time::from_ns(1), tick);
                }
            }
            eng.schedule(Time::ZERO, tick);
            eng.run();
            black_box(eng.state)
        });
    });
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru");
    g.bench_function("churn_64k_over_4k", |b| {
        b.iter(|| {
            let mut lru: LruMap<u64, u64> = LruMap::new(4096);
            for i in 0..65_536u64 {
                let k = mix64(i) % 16_384;
                if lru.get(&k).is_none() {
                    lru.insert(k, i);
                }
            }
            black_box(lru.len())
        });
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("xoshiro_1m", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256::seed_from_u64(9);
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        });
    });
    g.bench_function("zipf_sample_100k", |b| {
        let z = Zipf::new(10_000, 0.99);
        b.iter(|| {
            let mut rng = Xoshiro256::seed_from_u64(11);
            let mut acc = 0usize;
            for _ in 0..100_000 {
                acc = acc.wrapping_add(z.sample(&mut rng));
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory");
    g.bench_function("alloc_free_cycle", |b| {
        b.iter(|| {
            let mut m = Memory::new(1 << 26);
            let mut addrs = Vec::with_capacity(1024);
            for _ in 0..1024 {
                addrs.push(m.alloc_block(12).unwrap());
            }
            for a in addrs {
                m.free_block(a, 12);
            }
            black_box(m.footprint())
        });
    });
    g.finish();
}

criterion_group!(substrate, bench_engine, bench_lru, bench_rng, bench_memory);
criterion_main!(substrate);
