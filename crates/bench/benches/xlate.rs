//! A/B microbench for the translation fast path.
//!
//! `old/*` reconstructs the pre-flatmap implementation faithfully: an
//! `LruMap<u64, XlateEntry>` of live entries with a side `HashMap` of hit
//! counters and a second `HashMap` of forwarding tombstones — every hot
//! hit paid one SipHash bucket walk, one slab LRU touch, and one more
//! SipHash walk for the counter. `new/*` is the shipped
//! [`netsim::nic::XlateTable`] / [`netsim::flatmap::FlatTable`]: one
//! seeded-multiply probe sequence over inline slots, counter included.
//!
//! The acceptance criterion for the flatmap PR is `new/hot_hit` at least
//! 2x faster than `old/hot_hit`.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::flatmap::FlatTable;
use netsim::lru::LruMap;
use netsim::nic::{Xlate, XlateEntry, XlateTable};
use netsim::rng::mix64;
use std::collections::HashMap;
use std::hint::black_box;

const CAP: usize = 4096;
const WORKING_SET: u64 = 256; // dependent-access-sized hot set: every lookup hits
const LOOKUPS: u64 = 65_536;

/// Faithful replica of the old three-map NIC table (hot paths only).
struct OldXlate {
    live: LruMap<u64, XlateEntry>,
    forwards: HashMap<u64, u32>,
    hits: HashMap<u64, u64>,
}

impl OldXlate {
    fn new() -> OldXlate {
        OldXlate {
            live: LruMap::new(CAP),
            forwards: HashMap::new(),
            hits: HashMap::new(),
        }
    }

    #[inline]
    fn lookup(&mut self, k: u64) -> Xlate {
        if let Some(e) = self.live.get(&k) {
            let e = *e;
            *self.hits.entry(k).or_insert(0) += 1;
            return Xlate::Hit(e);
        }
        if let Some(&hop) = self.forwards.get(&k) {
            return Xlate::Forward(hop);
        }
        Xlate::Miss
    }

    fn install(&mut self, k: u64, e: XlateEntry) {
        self.forwards.remove(&k);
        self.live.insert(k, e);
    }

    fn take_hit_telemetry(&mut self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self.hits.drain().collect();
        out.sort_unstable();
        out
    }
}

fn entry(k: u64) -> XlateEntry {
    XlateEntry {
        base: k * 64,
        len: 64,
        generation: 1,
    }
}

fn bench_hot_hit(c: &mut Criterion) {
    let mut g = c.benchmark_group("xlate");
    // Pre-mixed key stream: the loops below measure the tables, not the
    // PRNG.
    let keys: Vec<u64> = (0..LOOKUPS).map(|i| mix64(i) % WORKING_SET).collect();

    // Hot hits: the case the paper's NIC table exists for.
    g.bench_function("old/hot_hit", |b| {
        let mut t = OldXlate::new();
        for k in 0..WORKING_SET {
            t.install(k, entry(k));
        }
        b.iter(|| {
            let mut sum = 0u64;
            for &k in &keys {
                if let Xlate::Hit(e) = t.lookup(black_box(k)) {
                    sum = sum.wrapping_add(e.base);
                }
            }
            black_box(sum)
        });
    });
    g.bench_function("new/hot_hit", |b| {
        let mut t = XlateTable::new(CAP);
        for k in 0..WORKING_SET {
            t.install(k, entry(k));
        }
        b.iter(|| {
            let mut sum = 0u64;
            for &k in &keys {
                if let Xlate::Hit(e) = t.lookup(black_box(k)) {
                    sum = sum.wrapping_add(e.base);
                }
            }
            black_box(sum)
        });
    });

    // Capacity churn: misses + installs + evictions mixed in, with the
    // balancer's periodic telemetry drain (which clears parked counters in
    // both implementations — without it neither side's hit-counter state
    // is bounded).
    g.bench_function("old/churn", |b| {
        b.iter(|| {
            let mut t = OldXlate::new();
            let mut hits = 0u64;
            for i in 0..LOOKUPS {
                let k = mix64(i) % (CAP as u64 * 4);
                match t.lookup(k) {
                    Xlate::Hit(_) => hits += 1,
                    _ => t.install(k, entry(k)),
                }
                if i % 8192 == 8191 {
                    black_box(t.take_hit_telemetry());
                }
            }
            black_box(hits)
        });
    });
    g.bench_function("new/churn", |b| {
        b.iter(|| {
            let mut t = XlateTable::new(CAP);
            let mut hits = 0u64;
            for i in 0..LOOKUPS {
                let k = mix64(i) % (CAP as u64 * 4);
                match t.lookup(k) {
                    Xlate::Hit(_) => hits += 1,
                    _ => {
                        t.install(k, entry(k));
                    }
                }
                if i % 8192 == 8191 {
                    black_box(t.take_hit_telemetry());
                }
            }
            black_box(hits)
        });
    });

    // The raw flat table vs the old pair-of-maps for a BTT-shaped load
    // (plain inserts, get-heavy, no LRU traffic).
    g.bench_function("old/btt_get", |b| {
        let mut m: HashMap<u64, XlateEntry> = HashMap::new();
        for k in 0..WORKING_SET {
            m.insert(k, entry(k));
        }
        b.iter(|| {
            let mut sum = 0u64;
            for &k in &keys {
                if let Some(e) = m.get(&black_box(k)) {
                    sum = sum.wrapping_add(e.base);
                }
            }
            black_box(sum)
        });
    });
    g.bench_function("new/btt_get", |b| {
        let mut m: FlatTable<XlateEntry> = FlatTable::with_seed(0xb77_5eed);
        for k in 0..WORKING_SET {
            m.insert(k, entry(k));
        }
        b.iter(|| {
            let mut sum = 0u64;
            for &k in &keys {
                if let Some(e) = m.get(black_box(k)) {
                    sum = sum.wrapping_add(e.base);
                }
            }
            black_box(sum)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_hot_hit);
criterion_main!(benches);
