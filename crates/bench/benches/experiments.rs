//! Criterion benches over the experiment kernels: one group per
//! table/figure of the reconstructed evaluation (DESIGN.md §5).
//!
//! Criterion measures the *simulator's* wall-clock here; the experiment
//! results themselves (simulated time) come from `repro` and are recorded
//! in EXPERIMENTS.md. Running both keeps the harness honest: the benches
//! execute exactly the kernels the tables are generated from.

use agas::GasMode;
use bench::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::NetConfig;
use std::hint::black_box;

fn bench_e1_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_put_latency");
    for mode in GasMode::ALL {
        for size in [8u32, 4096, 262144] {
            g.bench_with_input(BenchmarkId::new(mode.label(), size), &size, |b, &size| {
                b.iter(|| black_box(put_latency(mode, size, NetConfig::ib_fdr())));
            });
        }
    }
    g.finish();
}

fn bench_e2_get_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_get_latency");
    for mode in GasMode::ALL {
        g.bench_function(mode.label(), |b| {
            b.iter(|| black_box(get_latency(mode, 4096, NetConfig::ib_fdr())));
        });
    }
    g.finish();
}

fn bench_e3_bandwidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_bandwidth");
    g.sample_size(10);
    for mode in GasMode::ALL {
        g.bench_function(mode.label(), |b| {
            b.iter(|| black_box(put_bandwidth(mode, 65536, NetConfig::ib_fdr())));
        });
    }
    g.finish();
}

fn bench_e4_message_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_message_rate");
    g.sample_size(10);
    for mode in GasMode::ALL {
        g.bench_function(mode.label(), |b| {
            b.iter(|| black_box(message_rate(mode, 32, NetConfig::ib_fdr())));
        });
    }
    g.finish();
}

fn bench_e5_gups(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_gups");
    g.sample_size(10);
    for mode in GasMode::ALL {
        g.bench_with_input(BenchmarkId::new(mode.label(), 8), &8usize, |b, &n| {
            b.iter(|| black_box(gups_scaling(mode, n, NetConfig::ib_fdr())));
        });
    }
    g.finish();
}

fn bench_e6_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_table_capacity");
    g.sample_size(10);
    for cap in [usize::MAX, 256, 16] {
        let label = if cap == usize::MAX {
            "unbounded".into()
        } else {
            cap.to_string()
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(table_capacity(cap)));
        });
    }
    g.finish();
}

fn bench_e7_migration(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_migration_cost");
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        for class in [12u8, 20] {
            g.bench_with_input(
                BenchmarkId::new(mode.label(), 1u64 << class),
                &class,
                |b, &class| {
                    b.iter(|| black_box(migration_cost(mode, class, NetConfig::ib_fdr())));
                },
            );
        }
    }
    g.finish();
}

fn bench_e8_skew(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_skew_rebalance");
    g.sample_size(10);
    g.bench_function("pgas_static", |b| {
        b.iter(|| black_box(skew_row(GasMode::Pgas, false, 8)));
    });
    g.bench_function("net_rebalance", |b| {
        b.iter(|| black_box(skew_row(GasMode::AgasNetwork, true, 8)));
    });
    g.finish();
}

fn bench_e9_stencil(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_stencil");
    g.sample_size(10);
    for mode in GasMode::ALL {
        g.bench_function(mode.label(), |b| {
            b.iter(|| black_box(stencil_row(mode, 16, NetConfig::ib_fdr())));
        });
    }
    g.finish();
}

fn bench_e10_footprint(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_footprint");
    for mode in GasMode::ALL {
        g.bench_function(mode.label(), |b| {
            b.iter(|| black_box(protocol_footprint(mode, true)));
        });
    }
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("a1_rcache_on", |b| {
        b.iter(|| black_box(rcache_ablation(true)))
    });
    g.bench_function("a1_rcache_off", |b| {
        b.iter(|| black_box(rcache_ablation(false)))
    });
    g.bench_function("a2_eager_4096_at_8k", |b| {
        b.iter(|| black_box(eager_threshold_latency(4096, 8192)))
    });
    g.bench_function("a3_forwarding", |b| {
        b.iter(|| black_box(migration_race(true)))
    });
    g.bench_function("a3_nack_only", |b| {
        b.iter(|| black_box(migration_race(false)))
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.bench_function("e4b_ports_4", |b| {
        b.iter(|| black_box(message_rate_ports(4)))
    });
    g.bench_function("e11_parcel_pwc", |b| {
        b.iter(|| black_box(parcel_latency(parcel_rt::Transport::Pwc, 64)))
    });
    g.bench_function("e11_parcel_isir", |b| {
        b.iter(|| black_box(parcel_latency(parcel_rt::Transport::Isir, 64)))
    });
    g.bench_function("e12_bisection_4x", |b| {
        b.iter(|| black_box(bisection_bandwidth(4)))
    });
    g.bench_function("e13_bfs_8", |b| {
        b.iter(|| black_box(bfs_teps(8, parcel_rt::Transport::Pwc)))
    });
    g.bench_function("e14_flood_coalesced", |b| {
        b.iter(|| black_box(parcel_flood(true, 512)))
    });
    g.bench_function("e15_transpose_net", |b| {
        b.iter(|| black_box(transpose_bandwidth(GasMode::AgasNetwork, 1)))
    });
    g.bench_function("e1b_loaded_latency_net", |b| {
        b.iter(|| black_box(loaded_latency(GasMode::AgasNetwork)))
    });
    g.finish();
}

criterion_group!(
    experiments,
    bench_e1_latency,
    bench_e2_get_latency,
    bench_e3_bandwidth,
    bench_e4_message_rate,
    bench_e5_gups,
    bench_e6_capacity,
    bench_e7_migration,
    bench_e8_skew,
    bench_e9_stencil,
    bench_e10_footprint,
    bench_ablations,
    bench_extensions,
);
criterion_main!(experiments);
