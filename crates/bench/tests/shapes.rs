//! Shape-regression tests: the orderings and crossovers the evaluation
//! reports (EXPERIMENTS.md) are asserted here, so a cost-model or protocol
//! change that silently breaks a headline result fails CI instead of
//! shipping a wrong table.

use agas::GasMode;
use bench::*;
use netsim::{NetConfig, Time};

#[test]
fn e1_shape_net_tracks_pgas_sw_trails() {
    let net = NetConfig::ib_fdr();
    for size in [8u32, 4096, 262144] {
        let p = put_latency(GasMode::Pgas, size, net);
        let s = put_latency(GasMode::AgasSoftware, size, net);
        let n = put_latency(GasMode::AgasNetwork, size, net);
        assert!(n >= p, "size {size}");
        assert!(
            n - p <= Time::from_ns(100),
            "size {size}: NIC adder too big"
        );
        assert!(s > n, "size {size}: SW must trail NET");
    }
}

#[test]
fn e2_shape_holds_for_gets() {
    let net = NetConfig::ib_fdr();
    let p = get_latency(GasMode::Pgas, 4096, net);
    let s = get_latency(GasMode::AgasSoftware, 4096, net);
    let n = get_latency(GasMode::AgasNetwork, 4096, net);
    assert!(n >= p && n - p <= Time::from_ns(100));
    assert!(s > n);
}

#[test]
fn e3_bandwidth_converges_to_link() {
    let net = NetConfig::ib_fdr();
    let link = net.bandwidth_bytes_per_sec() / 1e9;
    for mode in GasMode::ALL {
        let bw = put_bandwidth(mode, 1 << 20, net);
        assert!(bw > link * 0.9, "{mode:?}: {bw} vs link {link}");
        assert!(bw <= link * 1.01, "{mode:?}: {bw} exceeds the wire");
    }
}

#[test]
fn e4_sw_flatlines_before_one_sided_modes() {
    let net = NetConfig::ib_fdr();
    let sw_32 = message_rate(GasMode::AgasSoftware, 32, net);
    let sw_128 = message_rate(GasMode::AgasSoftware, 128, net);
    let net_128 = message_rate(GasMode::AgasNetwork, 128, net);
    // SW stops scaling (CPU ceiling); NET keeps going well past it.
    assert!(sw_128 < sw_32 * 1.2, "SW kept scaling: {sw_32} -> {sw_128}");
    assert!(
        net_128 > sw_128 * 1.5,
        "NET ceiling not above SW: {net_128} vs {sw_128}"
    );
}

#[test]
fn e4b_ports_scale_message_rate() {
    let r1 = message_rate_ports(1);
    let r4 = message_rate_ports(4);
    assert!(r4 > r1 * 2.0, "ports didn't scale: {r1} -> {r4}");
}

#[test]
fn e5_gups_ordering_at_8_localities() {
    let net = NetConfig::ib_fdr();
    let p = gups_scaling(GasMode::Pgas, 8, net);
    let s = gups_scaling(GasMode::AgasSoftware, 8, net);
    let n = gups_scaling(GasMode::AgasNetwork, 8, net);
    assert!(n.mups > s.mups, "NET {} !> SW {}", n.mups, s.mups);
    assert!(n.mups > p.mups * 0.9, "NET too far below PGAS");
    assert!(s.cpu_per_mupdate > 0.1, "SW must burn target CPU");
    assert!(n.cpu_per_mupdate < 0.01, "NET must not burn target CPU");
}

#[test]
fn e6_capacity_cliff_and_fallback() {
    let full = table_capacity(usize::MAX);
    let starved = table_capacity(8);
    assert!(full.hit_rate > 0.999);
    assert!(starved.hit_rate < 0.5);
    assert!(starved.mups < full.mups / 2.0);
    assert!(starved.sw_fallbacks > 0, "fallback path never engaged");
}

#[test]
fn e7_migration_cost_scales_with_size() {
    let net = NetConfig::ib_fdr();
    let small = migration_cost(GasMode::AgasNetwork, 12, net);
    let big = migration_cost(GasMode::AgasNetwork, 20, net);
    // 256× the bytes: at least 20× the time (fixed costs amortize).
    assert!(big > small * 20, "small={small} big={big}");
}

#[test]
fn e8_mobility_beats_static_placement() {
    let pgas = skew_row(GasMode::Pgas, false, 8);
    let net = skew_row(GasMode::AgasNetwork, true, 8);
    assert!(net.migrations > 0);
    assert!(
        net.elapsed.ps() as f64 <= pgas.elapsed.ps() as f64 * 0.8,
        "rebalancing won less than 1.25x: {} vs {}",
        net.elapsed,
        pgas.elapsed
    );
}

#[test]
fn e10_footprints_are_structural() {
    let p = protocol_footprint(GasMode::Pgas, true);
    assert_eq!(
        (p.rdma_ops, p.messages, p.cpu_handlers, p.nic_xlates),
        (1, 0, 0, 0)
    );
    let n = protocol_footprint(GasMode::AgasNetwork, true);
    assert_eq!(
        (n.rdma_ops, n.messages, n.cpu_handlers, n.nic_xlates),
        (1, 0, 0, 1)
    );
    let s = protocol_footprint(GasMode::AgasSoftware, true);
    assert_eq!(s.rdma_ops, 0);
    assert_eq!(s.cpu_handlers, 1);
    assert!(s.messages >= 2);
}

#[test]
fn e11_pwc_beats_isir() {
    let pwc = parcel_latency(parcel_rt::Transport::Pwc, 64);
    let isir = parcel_latency(parcel_rt::Transport::Isir, 64);
    assert!(isir > pwc, "isir={isir} pwc={pwc}");
    // Above the eager threshold the gap includes a rendezvous handshake.
    let pwc_big = parcel_latency(parcel_rt::Transport::Pwc, 8192);
    let isir_big = parcel_latency(parcel_rt::Transport::Isir, 8192);
    assert!(
        isir_big > pwc_big + Time::from_us(1),
        "{isir_big} vs {pwc_big}"
    );
}

#[test]
fn e12_oversubscription_caps_aggregate_bandwidth() {
    let full = bisection_bandwidth(1);
    let eighth = bisection_bandwidth(8);
    assert!(full > eighth * 3.0, "full={full} eighth={eighth}");
    // 8:1 on 8 nodes = one link's worth.
    assert!(eighth < 7.5, "eighth={eighth} exceeds one link");
}

#[test]
fn e14_flood_coalescing_wins_where_rate_bound() {
    let plain = parcel_flood(false, 1024);
    let batched = parcel_flood(true, 1024);
    assert!(batched.messages * 4 < plain.messages);
    assert!(
        batched.elapsed < plain.elapsed,
        "coalescing lost on the rate-bound fabric: {} vs {}",
        batched.elapsed,
        plain.elapsed
    );
}

#[test]
fn a1_rcache_saves_time() {
    assert!(rcache_ablation(true) < rcache_ablation(false));
}

#[test]
fn a3_forwarding_beats_nack_for_stale_ops() {
    let fwd = migration_race(true);
    let nack = migration_race(false);
    assert!(fwd.stale_put_latency < nack.stale_put_latency);
    assert!(fwd.forwards >= 1);
    assert_eq!(fwd.nacks, 0);
    assert!(nack.nacks >= 1);
    assert_eq!(nack.forwards, 0);
}

#[test]
fn e1b_sw_has_the_fat_tail() {
    let (_, p99_net) = loaded_latency(GasMode::AgasNetwork);
    let (_, p99_sw) = loaded_latency(GasMode::AgasSoftware);
    assert!(p99_sw > p99_net, "sw p99 {p99_sw} !> net p99 {p99_net}");
}
