//! # workloads — benchmark applications over the nmvgas stack
//!
//! The workloads the reconstructed evaluation (DESIGN.md §5) runs:
//!
//! * [`gups`] — GUPS/RandomAccess uniform-random remote updates (E5, E6);
//! * [`stencil`] — 2-D halo-exchange application proxy (E9);
//! * [`chase`] — dependent pointer chase, the latency amplifier (used in
//!   E1/E2 verification and the parcel-forwarding comparison);
//! * [`skew`] — Zipf-skewed access with migration rebalancing (E8);
//! * [`bfs`] — message-driven breadth-first search (irregular graph class);
//! * [`lockfree`] — distributed lock-free structures (MPSC queue, hash
//!   map, work-stealing deque) built on NIC-executed active operations;
//! * [`driver`] — the windowed asynchronous-operation pumps all of them
//!   are built on.
//!
//! Every workload runs unmodified under all three [`agas::GasMode`]s; the
//! benchmark harness (`crates/bench`) sweeps modes and parameters.

pub mod bfs;
pub mod chaos;
pub mod chase;
pub mod driver;
pub mod gups;
pub mod lockfree;
pub mod skew;
pub mod sssp;
pub mod stencil;
pub mod stencil3d;
pub mod transpose;

pub use bfs::{BfsConfig, BfsResult, Graph};
pub use chaos::{corrupt_mix, drop_mix, run_chaos, ChaosConfig, ChaosReport};
pub use chase::{ChaseConfig, ChaseResult};
pub use gups::{GupsConfig, GupsResult};
pub use lockfree::{
    run_deque, run_hashmap, run_mpsc, DequeConfig, DequeReport, HashMapConfig, HashMapReport,
    MpscConfig, MpscReport,
};
pub use skew::{SkewConfig, SkewResult};
pub use sssp::{SsspConfig, SsspResult, WeightedGraph};
pub use stencil::{StencilConfig, StencilResult};
pub use stencil3d::{Stencil3dConfig, Stencil3dResult};
pub use transpose::{TransposeConfig, TransposeResult};
