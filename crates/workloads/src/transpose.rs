//! Distributed block transpose — the all-to-all exchange at the heart of
//! distributed FFTs and matrix redistribution.
//!
//! Every locality owns one row of an `n × n` tile matrix (Blocked
//! distribution) and writes tile `(i, j)` into the column-owner's receive
//! slot `(j, i)` with one-sided memputs. All `n(n−1)` remote transfers are
//! in flight at once: the workload that actually stresses *bisection*
//! bandwidth (experiment E12's application-level companion) rather than
//! any single link.

use agas::{Distribution, GlobalArray};
use netsim::rng::mix64;
use netsim::Time;
use parcel_rt::{Completion, Runtime};

/// Transpose configuration.
#[derive(Clone, Copy, Debug)]
pub struct TransposeConfig {
    /// Tile size class (tile = `1 << class` bytes).
    pub block_class: u8,
    /// Exchange rounds.
    pub rounds: u32,
}

impl Default for TransposeConfig {
    fn default() -> TransposeConfig {
        TransposeConfig {
            block_class: 14, // 16 KiB tiles
            rounds: 1,
        }
    }
}

/// Transpose outcome.
#[derive(Clone, Copy, Debug)]
pub struct TransposeResult {
    /// Simulated time for all rounds.
    pub elapsed: Time,
    /// Bytes moved across the fabric (remote tiles only).
    pub bytes_moved: u64,
    /// Aggregate achieved bandwidth, GB/s.
    pub aggregate_gbps: f64,
}

/// The send/recv tile matrices (row `i` of each homed at locality `i`).
pub struct TransposeArrays {
    /// Source tiles, row-major.
    pub send: GlobalArray,
    /// Destination tiles, row-major.
    pub recv: GlobalArray,
    /// Localities (the matrix is n × n).
    pub n: u32,
}

fn tile_fill(i: u32, j: u32, len: usize) -> Vec<u8> {
    let seed = mix64(((i as u64) << 32) | j as u64);
    (0..len)
        .map(|k| (seed.wrapping_add(k as u64) & 0xFF) as u8)
        .collect()
}

/// Allocate and initialize the tile matrices.
pub fn setup(rt: &mut Runtime, cfg: &TransposeConfig) -> TransposeArrays {
    let n = rt.n();
    let total = n as u64 * n as u64;
    let send = rt.alloc(total, cfg.block_class, Distribution::Blocked);
    let recv = rt.alloc(total, cfg.block_class, Distribution::Blocked);
    let len = 1usize << cfg.block_class;
    for i in 0..n {
        for j in 0..n {
            let idx = i as u64 * n as u64 + j as u64;
            rt.write_block(send.block(idx), 0, &tile_fill(i, j, len));
        }
    }
    TransposeArrays { send, recv, n }
}

/// Run the exchange; tiles land transposed in `recv`.
pub fn run(rt: &mut Runtime, cfg: &TransposeConfig, arrays: &TransposeArrays) -> TransposeResult {
    let n = arrays.n;
    let tile = 1u64 << cfg.block_class;
    let remote_tiles = n as u64 * (n as u64 - 1);
    let t0 = rt.now();
    for _round in 0..cfg.rounds {
        let gate = parcel_rt::new_and(&mut rt.eng, 0, n as u64 * n as u64);
        for i in 0..n {
            for j in 0..n {
                // Tile (i,j), owned by locality i, lands in recv (j,i),
                // owned by locality j.
                let src_idx = i as u64 * n as u64 + j as u64;
                let dst_idx = j as u64 * n as u64 + i as u64;
                let data = rt.read_block(arrays.send.block(src_idx));
                let ctx = rt.eng.state.new_completion(Completion::Lco(gate));
                agas::ops::memput(&mut rt.eng, i, arrays.recv.block(dst_idx), data, ctx);
            }
        }
        rt.run();
    }
    let elapsed = rt.now() - t0;
    let bytes_moved = remote_tiles * tile * cfg.rounds as u64;
    TransposeResult {
        elapsed,
        bytes_moved,
        aggregate_gbps: bytes_moved as f64 / elapsed.as_secs_f64() / 1e9,
    }
}

/// Check every received tile against the transposed fill pattern.
pub fn verify(rt: &Runtime, cfg: &TransposeConfig, arrays: &TransposeArrays) {
    let n = arrays.n;
    let len = 1usize << cfg.block_class;
    for i in 0..n {
        for j in 0..n {
            let idx = i as u64 * n as u64 + j as u64;
            let got = rt.read_block(arrays.recv.block(idx));
            // recv (i,j) must hold send (j,i)'s pattern.
            assert_eq!(got, tile_fill(j, i, len), "tile ({i},{j}) wrong");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agas::GasMode;

    fn small() -> TransposeConfig {
        TransposeConfig {
            block_class: 10,
            rounds: 1,
        }
    }

    #[test]
    fn transpose_is_correct_all_modes() {
        for mode in GasMode::ALL {
            let cfg = small();
            let mut rt = Runtime::builder(4, mode).boot();
            let arrays = setup(&mut rt, &cfg);
            let res = run(&mut rt, &cfg, &arrays);
            verify(&rt, &cfg, &arrays);
            assert!(res.aggregate_gbps > 0.0, "{mode:?}");
            rt.assert_quiescent();
        }
    }

    #[test]
    fn multiple_rounds_accumulate_time() {
        let one = {
            let mut rt = Runtime::builder(3, GasMode::Pgas).boot();
            let cfg = small();
            let a = setup(&mut rt, &cfg);
            run(&mut rt, &cfg, &a).elapsed
        };
        let three = {
            let mut rt = Runtime::builder(3, GasMode::Pgas).boot();
            let cfg = TransposeConfig {
                rounds: 3,
                ..small()
            };
            let a = setup(&mut rt, &cfg);
            run(&mut rt, &cfg, &a).elapsed
        };
        assert!(three > one * 2, "{one} vs {three}");
    }

    #[test]
    fn oversubscription_slows_the_exchange() {
        let bw = |factor: u64| {
            let net = netsim::NetConfig {
                oversubscription: factor,
                ..netsim::NetConfig::ib_fdr()
            };
            let mut rt = Runtime::builder(8, GasMode::Pgas).net(net).boot();
            let cfg = TransposeConfig {
                block_class: 14,
                rounds: 1,
            };
            let a = setup(&mut rt, &cfg);
            run(&mut rt, &cfg, &a).aggregate_gbps
        };
        let full = bw(1);
        let quarter = bw(4);
        assert!(full > quarter * 1.5, "full={full} quarter={quarter}");
    }

    #[test]
    fn transpose_survives_concurrent_migration() {
        // Migrate recv tiles while the exchange is in flight (AGAS-NET).
        let cfg = small();
        let mut rt = Runtime::builder(4, GasMode::AgasNetwork).boot();
        let arrays = setup(&mut rt, &cfg);
        let n = arrays.n;
        let gate = parcel_rt::new_and(&mut rt.eng, 0, n as u64 * n as u64);
        for i in 0..n {
            for j in 0..n {
                let src_idx = i as u64 * n as u64 + j as u64;
                let dst_idx = j as u64 * n as u64 + i as u64;
                let data = rt.read_block(arrays.send.block(src_idx));
                let ctx = rt.eng.state.new_completion(Completion::Lco(gate));
                agas::ops::memput(&mut rt.eng, i, arrays.recv.block(dst_idx), data, ctx);
            }
        }
        // Churn a few recv tiles mid-flight.
        for k in 0..4u64 {
            rt.migrate(0, arrays.recv.block(k * 3 % 16), (k % 4) as u32);
            rt.eng.run_steps(30);
        }
        rt.run();
        verify(&rt, &cfg, &arrays);
    }
}
