//! A 3-D face-exchange stencil — the LULESH-class proxy in its native
//! dimensionality (the 2-D variant in [`crate::stencil`] keeps tests
//! cheap; this one reproduces the 3-D surface-to-volume ratios of the
//! shock-hydro codes the paper's group ran).
//!
//! A `px × py × pz` grid of cubic tiles; each iteration every tile writes
//! its six faces (`T×T` cells each) into its neighbors' ghost slots with
//! one-sided memputs (periodic boundaries), a cluster-wide and-gate fires,
//! every tile runs a compute action, and the next iteration begins.
//!
//! Tile block layout (`u64` cells): `T³` interior, then six ghost faces of
//! `T²` cells (−x, +x, −y, +y, −z, +z).

use agas::{Distribution, GlobalArray};
use netsim::Time;
use parcel_rt::{ArgReader, Runtime, RuntimeBuilder};
use std::cell::RefCell;
use std::rc::Rc;

/// 3-D stencil configuration.
#[derive(Clone, Copy, Debug)]
pub struct Stencil3dConfig {
    /// Tile-grid extent in x (tiles).
    pub px: u32,
    /// Tile-grid extent in y.
    pub py: u32,
    /// Tile-grid extent in z.
    pub pz: u32,
    /// Tile edge length, in cells.
    pub tile: u32,
    /// Iterations.
    pub iters: u32,
    /// CPU time of one tile's compute step.
    pub flop_time: Time,
}

impl Default for Stencil3dConfig {
    fn default() -> Stencil3dConfig {
        Stencil3dConfig {
            px: 2,
            py: 2,
            pz: 2,
            tile: 16,
            iters: 3,
            flop_time: Time::from_us(60),
        }
    }
}

/// 3-D stencil outcome.
#[derive(Clone, Copy, Debug)]
pub struct Stencil3dResult {
    /// Iterations completed.
    pub iters: u32,
    /// Total simulated time.
    pub elapsed: Time,
    /// Mean time per iteration.
    pub per_iter: Time,
    /// Halo bytes per iteration (6 faces × tiles × T² × 8).
    pub halo_bytes_per_iter: u64,
}

impl Stencil3dConfig {
    /// Tiles in the grid.
    pub fn tiles(&self) -> u64 {
        self.px as u64 * self.py as u64 * self.pz as u64
    }

    /// Cells per tile block (interior + six ghost faces).
    pub fn cells_per_block(&self) -> u64 {
        let t = self.tile as u64;
        t * t * t + 6 * t * t
    }

    /// Block size class for a tile.
    pub fn block_class(&self) -> u8 {
        let bytes = self.cells_per_block() * 8;
        (64 - (bytes - 1).leading_zeros()) as u8
    }

    /// Byte offset of ghost face `f` (0..6: −x,+x,−y,+y,−z,+z).
    pub fn ghost_offset(&self, f: usize) -> u64 {
        let t = self.tile as u64;
        (t * t * t + f as u64 * t * t) * 8
    }

    fn tile_index(&self, x: i64, y: i64, z: i64) -> u64 {
        let x = x.rem_euclid(self.px as i64) as u64;
        let y = y.rem_euclid(self.py as i64) as u64;
        let z = z.rem_euclid(self.pz as i64) as u64;
        (z * self.py as u64 + y) * self.px as u64 + x
    }
}

/// Register the 3-D compute action (before boot).
pub fn register_actions(b: &mut RuntimeBuilder) {
    b.register("stencil3d_compute", |eng, ctx| {
        let mut r = ArgReader::new(&ctx.args);
        let flops = Time::from_ps(r.u64());
        let now = eng.now();
        let (_, finish) = eng.state.cpus[ctx.loc as usize].admit(now, flops);
        eng.state.cluster.loc_mut(ctx.loc).counters.cpu_busy += flops;
        let loc = ctx.loc;
        let cont = ctx.cont;
        eng.schedule_at(finish, move |eng| {
            if let Some(c) = cont {
                parcel_rt::lco_set(eng, loc, c, vec![]);
            }
        });
    });
}

/// Allocate the tile array (cyclic over localities).
pub fn alloc_tiles(rt: &mut Runtime, cfg: &Stencil3dConfig) -> GlobalArray {
    rt.alloc(cfg.tiles(), cfg.block_class(), Distribution::Cyclic)
}

/// Extract face `f` of tile `idx` as bytes (driver-side read, the memput
/// models the traffic).
fn face_bytes(
    rt: &Runtime,
    cfg: &Stencil3dConfig,
    tiles: &GlobalArray,
    idx: u64,
    f: usize,
) -> Vec<u8> {
    let t = cfg.tile as u64;
    let block = rt.read_block(tiles.block(idx));
    let cell = |x: u64, y: u64, z: u64| {
        let c = ((z * t + y) * t + x) as usize * 8;
        &block[c..c + 8]
    };
    let mut out = Vec::with_capacity((t * t) as usize * 8);
    for a in 0..t {
        for b in 0..t {
            let bytes = match f {
                0 => cell(0, a, b),     // −x face
                1 => cell(t - 1, a, b), // +x face
                2 => cell(a, 0, b),     // −y face
                3 => cell(a, t - 1, b), // +y face
                4 => cell(a, b, 0),     // −z face
                _ => cell(a, b, t - 1), // +z face
            };
            out.extend_from_slice(bytes);
        }
    }
    out
}

struct Loop3d {
    cfg: Stencil3dConfig,
    tiles: GlobalArray,
    compute: parcel_rt::ActionId,
    iter: u32,
    start: Time,
    result: Rc<RefCell<Option<Stencil3dResult>>>,
}

/// Run the 3-D stencil to completion.
pub fn run(rt: &mut Runtime, cfg: &Stencil3dConfig, tiles: &GlobalArray) -> Stencil3dResult {
    let compute = rt
        .eng
        .state
        .registry_lookup("stencil3d_compute")
        .expect("stencil3d requires register_actions() before boot");
    let result = Rc::new(RefCell::new(None));
    let st = Rc::new(RefCell::new(Loop3d {
        cfg: *cfg,
        tiles: tiles.clone(),
        compute,
        iter: 0,
        start: rt.now(),
        result: result.clone(),
    }));
    exchange(rt, st);
    rt.run();
    let out = result.borrow_mut().take();
    out.expect("stencil3d did not complete")
}

fn exchange(rt: &mut Runtime, st: Rc<RefCell<Loop3d>>) {
    let (cfg, tiles) = {
        let s = st.borrow();
        (s.cfg, s.tiles.clone())
    };
    let n_puts = cfg.tiles() * 6;
    let gate = parcel_rt::new_and(&mut rt.eng, 0, n_puts);
    // (dx,dy,dz, my face, their ghost slot): my −x face lands in my −x
    // neighbor's +x ghost, and so on.
    let routes: [(i64, i64, i64, usize, usize); 6] = [
        (-1, 0, 0, 0, 1),
        (1, 0, 0, 1, 0),
        (0, -1, 0, 2, 3),
        (0, 1, 0, 3, 2),
        (0, 0, -1, 4, 5),
        (0, 0, 1, 5, 4),
    ];
    for z in 0..cfg.pz as i64 {
        for y in 0..cfg.py as i64 {
            for x in 0..cfg.px as i64 {
                let idx = cfg.tile_index(x, y, z);
                let gva = tiles.block(idx);
                let owner = gva.home(); // cyclic allocation, never migrated here
                for (dx, dy, dz, face, ghost) in routes {
                    let nidx = cfg.tile_index(x + dx, y + dy, z + dz);
                    let data = face_bytes(rt, &cfg, &tiles, idx, face);
                    let dst = tiles.block(nidx).with_offset(cfg.ghost_offset(ghost));
                    let ctx = rt
                        .eng
                        .state
                        .new_completion(parcel_rt::Completion::Lco(gate));
                    agas::ops::memput(&mut rt.eng, owner, dst, data, ctx);
                }
            }
        }
    }
    // Compute phase after the gate, then recurse or finish. Driven from a
    // driver callback so the Runtime borrow is released in between.
    let st2 = st.clone();
    parcel_rt::attach_driver(&mut rt.eng, gate, move |eng, _| {
        let (cfg, tiles, compute) = {
            let s = st2.borrow();
            (s.cfg, s.tiles.clone(), s.compute)
        };
        let cgate = parcel_rt::new_and(eng, 0, cfg.tiles());
        for i in 0..cfg.tiles() {
            let gva = tiles.block(i);
            let owner = gva.home();
            let args = parcel_rt::ArgWriter::new().u64(cfg.flop_time.ps()).finish();
            parcel_rt::send_parcel(
                eng,
                owner,
                parcel_rt::Parcel {
                    target: gva,
                    action: compute,
                    args,
                    cont: Some(cgate),
                    src: owner,
                    hops: 0,
                },
            );
        }
        let st3 = st2.clone();
        parcel_rt::attach_driver(eng, cgate, move |eng, _| {
            let finished = {
                let mut s = st3.borrow_mut();
                s.iter += 1;
                s.iter >= s.cfg.iters
            };
            if finished {
                let s = st3.borrow();
                let elapsed = eng.now() - s.start;
                let t = s.cfg.tile as u64;
                *s.result.borrow_mut() = Some(Stencil3dResult {
                    iters: s.cfg.iters,
                    elapsed,
                    per_iter: elapsed / s.cfg.iters as u64,
                    halo_bytes_per_iter: s.cfg.tiles() * 6 * t * t * 8,
                });
            } else {
                // Next iteration's exchange, inline (no Runtime handle in
                // driver callbacks): replicate `exchange` on the engine.
                exchange_on_engine(eng, st3.clone());
            }
        });
    });
}

/// `exchange` for continuation contexts (driver callbacks hold the engine,
/// not the `Runtime`).
fn exchange_on_engine(eng: &mut netsim::Engine<parcel_rt::World>, st: Rc<RefCell<Loop3d>>) {
    // Reading tiles requires only `&World`; build a shim mirroring the
    // Runtime-based path.
    let (cfg, tiles) = {
        let s = st.borrow();
        (s.cfg, s.tiles.clone())
    };
    let n_puts = cfg.tiles() * 6;
    let gate = parcel_rt::new_and(eng, 0, n_puts);
    let routes: [(i64, i64, i64, usize, usize); 6] = [
        (-1, 0, 0, 0, 1),
        (1, 0, 0, 1, 0),
        (0, -1, 0, 2, 3),
        (0, 1, 0, 3, 2),
        (0, 0, -1, 4, 5),
        (0, 0, 1, 5, 4),
    ];
    let t = cfg.tile as u64;
    for z in 0..cfg.pz as i64 {
        for y in 0..cfg.py as i64 {
            for x in 0..cfg.px as i64 {
                let idx = cfg.tile_index(x, y, z);
                let gva = tiles.block(idx);
                let owner = gva.home();
                // Read the block straight from its (PGAS or resident) home.
                let key = gva.block_key();
                let base = match eng.state.mode {
                    agas::GasMode::Pgas => *eng.state.pgas_map.get(&key).unwrap(),
                    _ => eng.state.gas[owner as usize].btt.lookup(key).unwrap().base,
                };
                let block = eng
                    .state
                    .cluster
                    .mem(owner)
                    .read(base, (cfg.cells_per_block() * 8) as usize)
                    .unwrap()
                    .to_vec();
                let cell = |cx: u64, cy: u64, cz: u64| {
                    let c = ((cz * t + cy) * t + cx) as usize * 8;
                    block[c..c + 8].to_vec()
                };
                for (dx, dy, dz, face, ghost) in routes {
                    let nidx = cfg.tile_index(x + dx, y + dy, z + dz);
                    let mut data = Vec::with_capacity((t * t) as usize * 8);
                    for a in 0..t {
                        for b in 0..t {
                            let bytes = match face {
                                0 => cell(0, a, b),
                                1 => cell(t - 1, a, b),
                                2 => cell(a, 0, b),
                                3 => cell(a, t - 1, b),
                                4 => cell(a, b, 0),
                                _ => cell(a, b, t - 1),
                            };
                            data.extend_from_slice(&bytes);
                        }
                    }
                    let dst = tiles.block(nidx).with_offset(cfg.ghost_offset(ghost));
                    let ctx = eng.state.new_completion(parcel_rt::Completion::Lco(gate));
                    agas::ops::memput(eng, owner, dst, data, ctx);
                }
            }
        }
    }
    let st2 = st.clone();
    parcel_rt::attach_driver(eng, gate, move |eng, _| {
        let (cfg, tiles, compute) = {
            let s = st2.borrow();
            (s.cfg, s.tiles.clone(), s.compute)
        };
        let cgate = parcel_rt::new_and(eng, 0, cfg.tiles());
        for i in 0..cfg.tiles() {
            let gva = tiles.block(i);
            let owner = gva.home();
            let args = parcel_rt::ArgWriter::new().u64(cfg.flop_time.ps()).finish();
            parcel_rt::send_parcel(
                eng,
                owner,
                parcel_rt::Parcel {
                    target: gva,
                    action: compute,
                    args,
                    cont: Some(cgate),
                    src: owner,
                    hops: 0,
                },
            );
        }
        let st3 = st2.clone();
        parcel_rt::attach_driver(eng, cgate, move |eng, _| {
            let finished = {
                let mut s = st3.borrow_mut();
                s.iter += 1;
                s.iter >= s.cfg.iters
            };
            if finished {
                let s = st3.borrow();
                let elapsed = eng.now() - s.start;
                let t = s.cfg.tile as u64;
                *s.result.borrow_mut() = Some(Stencil3dResult {
                    iters: s.cfg.iters,
                    elapsed,
                    per_iter: elapsed / s.cfg.iters as u64,
                    halo_bytes_per_iter: s.cfg.tiles() * 6 * t * t * 8,
                });
            } else {
                exchange_on_engine(eng, st3.clone());
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use agas::GasMode;

    fn small() -> Stencil3dConfig {
        Stencil3dConfig {
            px: 2,
            py: 2,
            pz: 2,
            tile: 4,
            iters: 2,
            flop_time: Time::from_us(5),
        }
    }

    #[test]
    fn stencil3d_completes_all_modes() {
        for mode in GasMode::ALL {
            let cfg = small();
            let mut b = Runtime::builder(4, mode);
            register_actions(&mut b);
            let mut rt = b.boot();
            let tiles = alloc_tiles(&mut rt, &cfg);
            let res = run(&mut rt, &cfg, &tiles);
            assert_eq!(res.iters, 2, "{mode:?}");
            assert!(res.per_iter > Time::ZERO);
            rt.assert_quiescent();
        }
    }

    #[test]
    fn ghost_faces_carry_neighbor_cells() {
        let cfg = Stencil3dConfig {
            iters: 1,
            ..small()
        };
        let mut b = Runtime::builder(2, GasMode::AgasNetwork);
        register_actions(&mut b);
        let mut rt = b.boot();
        let tiles = alloc_tiles(&mut rt, &cfg);
        // Fill each tile's interior with its index.
        for i in 0..cfg.tiles() {
            for c in 0..(cfg.tile as u64).pow(3) {
                rt.write_block(tiles.block(i), c * 8, &(i + 7).to_le_bytes());
            }
        }
        let _ = run(&mut rt, &cfg, &tiles);
        // Tile 0's −x neighbor (periodic, px=2) is tile 1; its +x ghost of
        // ...wait: tile 0's −x face went into neighbor's +x ghost. Check
        // tile 0's own −x ghost (slot 0) holds its +x-neighbor's (tile 1)
        // cells instead: neighbor (x-1) = tile 1 writes its +x face into
        // tile 0's −x ghost? Routes: tile 1's +x face (face 1) lands in
        // tile (x+1)=0's −x ghost (slot 0). So tile 0 ghost 0 = 1+7 = 8.
        let t0 = rt.read_block(tiles.block(0));
        let off = cfg.ghost_offset(0) as usize;
        let v = u64::from_le_bytes(t0[off..off + 8].try_into().unwrap());
        assert_eq!(v, 8);
    }

    #[test]
    fn surface_to_volume_is_3d() {
        let cfg = small();
        // 6 faces of T² vs 4 edges of T: the 3-D proxy moves T× more halo
        // per tile than the 2-D one at equal edge length.
        assert_eq!(
            cfg.tiles() * 6 * (cfg.tile as u64).pow(2) * 8,
            8 * 6 * 16 * 8
        );
    }

    #[test]
    fn iterations_scale_time() {
        let cfg1 = Stencil3dConfig {
            iters: 1,
            ..small()
        };
        let cfg3 = Stencil3dConfig {
            iters: 3,
            ..small()
        };
        let t1 = {
            let mut b = Runtime::builder(4, GasMode::Pgas);
            register_actions(&mut b);
            let mut rt = b.boot();
            let tiles = alloc_tiles(&mut rt, &cfg1);
            run(&mut rt, &cfg1, &tiles).elapsed
        };
        let t3 = {
            let mut b = Runtime::builder(4, GasMode::Pgas);
            register_actions(&mut b);
            let mut rt = b.boot();
            let tiles = alloc_tiles(&mut rt, &cfg3);
            run(&mut rt, &cfg3, &tiles).elapsed
        };
        assert!(t3 > t1 * 2, "{t1} vs {t3}");
    }
}
