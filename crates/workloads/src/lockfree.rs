//! Distributed lock-free structures built on NIC-executed active
//! operations — the payoff workloads for the AMO subsystem.
//!
//! Three classics, each expressed purely in the AMO vocabulary (fetch-add
//! to claim, compare-and-swap to consume, masked-put to publish, gather to
//! scan) so that **every** memory interaction lands in the word-level
//! history the [`agas::check`] oracle verifies:
//!
//! * [`run_mpsc`] — a multi-producer single-consumer queue: producers
//!   fetch-add a shared tail to claim slots and masked-put their payloads;
//!   the consumer tombstones each slot with a CAS, so the checker's
//!   unique-consumption rule proves every element is delivered exactly
//!   once and in per-producer FIFO order.
//! * [`run_hashmap`] — an open-addressing hash table spread over the
//!   cluster: inserts are `CAS(empty → key)` probes, lookups are gathers
//!   over the probe window. Racing duplicate inserts resolve to exactly
//!   one table entry.
//! * [`run_deque`] — a work-stealing deque: the owner pops from the bottom
//!   (fetch-add −1), thieves claim from the top (fetch-add +1), and every
//!   task is settled by a `CAS(task → done)` that can succeed exactly
//!   once, however the index hints race.
//!
//! Every run function is self-contained chaos-style: it boots a runtime
//! with the retry/deadline machinery armed, applies a caller-supplied
//! [`FaultPlan`], runs to quiescence, and reports counts + history-checker
//! verdicts. All structure state lives in AMO words, disjoint from any
//! put/get byte traffic by construction.

use agas::check::{check_blocks, check_history, Violation};
use agas::{Distribution, GasConfig, GasMode, GlobalArray, Gva};
use netsim::rng::mix64;
use netsim::{AmoOp, AmoResult, Engine, FaultPlan, Time};
use parcel_rt::{decode_amo_result, Completion, Runtime, World};
use std::cell::RefCell;
use std::rc::Rc;

/// Issue an AMO from engine context with a decoded-result callback.
fn amo_cb(
    eng: &mut Engine<World>,
    loc: u32,
    gva: Gva,
    amo: AmoOp,
    cb: impl FnOnce(&mut Engine<World>, AmoResult) + 'static,
) {
    let ctx = eng
        .state
        .new_completion(Completion::Driver(Box::new(move |eng, data| {
            cb(eng, decode_amo_result(&data));
        })));
    agas::ops::memamo(eng, loc, gva, amo, ctx);
}

/// Boot a runtime with the lost-message recovery machinery armed (same
/// posture as the chaos driver: deadline sweep + retry + history).
fn boot(n: u32, mode: GasMode, seed: u64, plan: FaultPlan) -> Runtime {
    Runtime::builder(n as usize, mode)
        .seed(seed)
        .faults(plan)
        .gas_config(GasConfig {
            op_deadline: Some(Time::from_us(300)),
            sweep_interval: Time::from_us(30),
            retry_on_deadline: true,
            record_history: true,
            ..GasConfig::default()
        })
        .boot()
}

/// History + structural verdict over the structure's blocks.
fn verify(rt: &Runtime, blocks: &[Gva]) -> Vec<Violation> {
    let mut v = check_blocks(&rt.eng.state, blocks);
    v.extend(check_history(&rt.eng.state));
    v
}

// ---------------------------------------------------------------------------
// MPSC queue
// ---------------------------------------------------------------------------

/// MPSC queue configuration.
#[derive(Clone, Debug)]
pub struct MpscConfig {
    /// GAS implementation under test.
    pub mode: GasMode,
    /// Cluster size; locality 0 consumes, 1..n produce.
    pub localities: u32,
    /// Items each producer enqueues.
    pub items_per_producer: u64,
    /// Engine seed.
    pub seed: u64,
    /// Network fault plan.
    pub plan: FaultPlan,
}

impl Default for MpscConfig {
    fn default() -> MpscConfig {
        MpscConfig {
            mode: GasMode::AgasNetwork,
            localities: 4,
            items_per_producer: 40,
            seed: 1,
            plan: FaultPlan::lossless(1),
        }
    }
}

/// MPSC queue run outcome.
#[derive(Clone, Debug)]
pub struct MpscReport {
    /// Elements producers finished publishing.
    pub produced: u64,
    /// Elements the consumer tombstoned and delivered.
    pub consumed: u64,
    /// Consumer CAS attempts that lost (should be 0: single consumer).
    pub consume_conflicts: u64,
    /// Empty-slot polls the consumer burned.
    pub polls: u64,
    /// Delivered sequences were FIFO within every producer.
    pub fifo_per_producer: bool,
    /// GAS ops that failed terminally.
    pub op_failures: u64,
    /// History/structural violations (must be empty).
    pub violations: Vec<Violation>,
    /// Determinism witness.
    pub trace_hash: u64,
    /// Simulated end time.
    pub end: Time,
}

impl MpscReport {
    /// Full-delivery, clean-history verdict.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
            && self.consumed == self.produced
            && self.fifo_per_producer
            && self.op_failures == 0
    }
}

/// Consumed tombstone; distinct from 0 and from every produced value.
const MPSC_TOMB: u64 = u64::MAX;

/// The value producer `p` publishes for its `seq`-th element (nonzero,
/// globally unique).
fn mpsc_value(p: u32, seq: u64) -> u64 {
    (u64::from(p) << 32) | (seq + 1)
}

struct MpscState {
    queue: Gva,
    total: u64,
    next_head: u64,
    consumed: Vec<u64>,
    polls: u64,
    poll_budget: u64,
    conflicts: u64,
    produced: u64,
}

fn mpsc_slot(queue: Gva, idx: u64) -> Gva {
    queue.with_offset(64 + idx * 8)
}

fn mpsc_produce(eng: &mut Engine<World>, st: Rc<RefCell<MpscState>>, p: u32, seq: u64, items: u64) {
    if seq == items {
        return;
    }
    let queue = st.borrow().queue;
    // Claim a slot index on the shared tail, then publish into it.
    amo_cb(
        eng,
        p,
        queue,
        AmoOp::FetchAdd { operand: 1 },
        move |eng, r| {
            let slot = mpsc_slot(queue, r.old);
            let st2 = st.clone();
            amo_cb(
                eng,
                p,
                slot,
                AmoOp::MaskedPut {
                    mask: u64::MAX,
                    value: mpsc_value(p, seq),
                },
                move |eng, _| {
                    st2.borrow_mut().produced += 1;
                    mpsc_produce(eng, st2, p, seq + 1, items);
                },
            );
        },
    );
}

fn mpsc_consume(eng: &mut Engine<World>, st: Rc<RefCell<MpscState>>) {
    let (queue, head, done, over) = {
        let s = st.borrow();
        (
            s.queue,
            s.next_head,
            s.consumed.len() as u64 >= s.total,
            s.polls >= s.poll_budget,
        )
    };
    if done || over {
        return;
    }
    let slot = mpsc_slot(queue, head);
    // Atomic read; a published (nonzero) slot is then claimed by CAS.
    amo_cb(
        eng,
        0,
        slot,
        AmoOp::FetchAdd { operand: 0 },
        move |eng, r| {
            if r.old == 0 || r.old == MPSC_TOMB {
                // Not published yet — an in-flight producer may be a whole
                // deadline-retry window (~300us) away, so back off instead
                // of busy-spinning the budget down.
                st.borrow_mut().polls += 1;
                eng.schedule(Time::from_us(5), move |eng| mpsc_consume(eng, st));
                return;
            }
            let st2 = st.clone();
            amo_cb(
                eng,
                0,
                slot,
                AmoOp::CompareSwap {
                    expected: r.old,
                    desired: MPSC_TOMB,
                },
                move |eng, cas| {
                    {
                        let mut s = st2.borrow_mut();
                        if cas.applied {
                            s.consumed.push(cas.old);
                            s.next_head += 1;
                        } else {
                            s.conflicts += 1;
                        }
                    }
                    mpsc_consume(eng, st2);
                },
            );
        },
    );
}

/// Run the MPSC queue to quiescence and report.
pub fn run_mpsc(cfg: &MpscConfig) -> MpscReport {
    let n = cfg.localities;
    assert!(n >= 2, "mpsc needs at least one producer");
    let producers = u64::from(n - 1);
    let total = producers * cfg.items_per_producer;
    // Tail word + slots must fit one 8 KiB block.
    assert!(64 + total * 8 <= 1 << 13, "queue capacity exceeds block");

    let mut rt = boot(n, cfg.mode, cfg.seed, cfg.plan.clone());
    // One queue block, homed at the consumer.
    let arr = rt.alloc(1, 13, Distribution::Single(0));
    let queue = arr.block(0);

    let st = Rc::new(RefCell::new(MpscState {
        queue,
        total,
        next_head: 0,
        consumed: Vec::new(),
        polls: 0,
        poll_budget: total * 200,
        conflicts: 0,
        produced: 0,
    }));

    for p in 1..n {
        let st2 = st.clone();
        let items = cfg.items_per_producer;
        rt.eng.schedule(Time::ZERO, move |eng| {
            mpsc_produce(eng, st2, p, 0, items);
        });
    }
    let st2 = st.clone();
    rt.eng
        .schedule(Time::ZERO, move |eng| mpsc_consume(eng, st2));
    rt.run();

    let s = st.borrow();
    // Per-producer FIFO: consumed sequence numbers strictly increase.
    let mut last = vec![0u64; n as usize];
    let mut fifo = true;
    for v in &s.consumed {
        let p = (v >> 32) as usize;
        let seq = v & 0xffff_ffff;
        fifo &= seq > last[p];
        last[p] = seq;
    }
    MpscReport {
        produced: s.produced,
        consumed: s.consumed.len() as u64,
        consume_conflicts: s.conflicts,
        polls: s.polls,
        fifo_per_producer: fifo,
        op_failures: rt.eng.state.op_failures.len() as u64,
        violations: verify(&rt, &arr.blocks),
        trace_hash: rt.eng.trace_hash(),
        end: rt.now(),
    }
}

// ---------------------------------------------------------------------------
// Lock-free hash map
// ---------------------------------------------------------------------------

/// Hash map configuration.
#[derive(Clone, Debug)]
pub struct HashMapConfig {
    /// GAS implementation under test.
    pub mode: GasMode,
    /// Cluster size; every locality inserts and looks up.
    pub localities: u32,
    /// Private keys each locality inserts.
    pub keys_per_loc: u64,
    /// Keys every locality races to insert (duplicate-resolution test).
    pub shared_keys: u64,
    /// Table blocks (4 KiB, 512 entries each), spread cyclically.
    pub blocks: u64,
    /// Engine seed.
    pub seed: u64,
    /// Network fault plan.
    pub plan: FaultPlan,
}

impl Default for HashMapConfig {
    fn default() -> HashMapConfig {
        HashMapConfig {
            mode: GasMode::AgasNetwork,
            localities: 4,
            keys_per_loc: 24,
            shared_keys: 8,
            blocks: 4,
            seed: 1,
            plan: FaultPlan::lossless(1),
        }
    }
}

/// Hash map run outcome.
#[derive(Clone, Debug)]
pub struct HashMapReport {
    /// Insert attempts that claimed an empty slot.
    pub inserted: u64,
    /// Insert attempts that found their key already present.
    pub duplicates: u64,
    /// Inserts abandoned after the probe limit (table pressure).
    pub table_full: u64,
    /// Lookups that found their key.
    pub found: u64,
    /// Lookups that did not (must be 0).
    pub missing: u64,
    /// Distinct keys the final table scan counted.
    pub table_entries: u64,
    /// Expected distinct keys (successful inserts).
    pub expected_entries: u64,
    /// GAS ops that failed terminally.
    pub op_failures: u64,
    /// History/structural violations (must be empty).
    pub violations: Vec<Violation>,
    /// Determinism witness.
    pub trace_hash: u64,
    /// Simulated end time.
    pub end: Time,
}

impl HashMapReport {
    /// Exactly-once insertion, full lookup coverage, clean history.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
            && self.missing == 0
            && self.table_full == 0
            && self.table_entries == self.expected_entries
            && self.op_failures == 0
    }
}

const HM_WORDS_PER_BLOCK: u64 = 512; // 4 KiB block / 8
const HM_MAX_PROBES: u64 = 64;
const HM_GATHER: u64 = 8;

fn hm_slot(arr: &GlobalArray, blocks: u64, key: u64, probe: u64) -> Gva {
    let h = mix64(key);
    let block = h % blocks;
    let word = ((h >> 16) + probe) % HM_WORDS_PER_BLOCK;
    arr.block(block).with_offset(word * 8)
}

struct HmState {
    arr: GlobalArray,
    blocks: u64,
    inserted: u64,
    duplicates: u64,
    table_full: u64,
    found: u64,
    missing: u64,
}

fn hm_insert(eng: &mut Engine<World>, st: Rc<RefCell<HmState>>, loc: u32, key: u64, probe: u64) {
    let (slot, give_up) = {
        let s = st.borrow();
        (
            hm_slot(&s.arr, s.blocks, key, probe),
            probe >= HM_MAX_PROBES,
        )
    };
    if give_up {
        st.borrow_mut().table_full += 1;
        return;
    }
    amo_cb(
        eng,
        loc,
        slot,
        AmoOp::CompareSwap {
            expected: 0,
            desired: key,
        },
        move |eng, r| {
            if r.applied {
                st.borrow_mut().inserted += 1;
            } else if r.old == key {
                st.borrow_mut().duplicates += 1;
            } else {
                hm_insert(eng, st, loc, key, probe + 1);
            }
        },
    );
}

fn hm_lookup(eng: &mut Engine<World>, st: Rc<RefCell<HmState>>, loc: u32, key: u64, probe: u64) {
    if probe >= HM_MAX_PROBES {
        st.borrow_mut().missing += 1;
        return;
    }
    let (block_gva, offsets) = {
        let s = st.borrow();
        let h = mix64(key);
        let block = h % s.blocks;
        let offsets: Vec<u64> = (0..HM_GATHER)
            .map(|j| (((h >> 16) + probe + j) % HM_WORDS_PER_BLOCK) * 8)
            .collect();
        (s.arr.block(block), offsets)
    };
    amo_cb(
        eng,
        loc,
        block_gva,
        AmoOp::Gather { offsets },
        move |eng, r| {
            if r.values.contains(&key) {
                st.borrow_mut().found += 1;
            } else if r.values.contains(&0) {
                // An empty slot inside the probe window ends the chain:
                // the key cannot live beyond it.
                st.borrow_mut().missing += 1;
            } else {
                hm_lookup(eng, st, loc, key, probe + HM_GATHER);
            }
        },
    );
}

/// The `i`-th private key of locality `l` (nonzero, distinct from shared
/// keys by the locality tag).
fn hm_key(seed: u64, l: u32, i: u64) -> u64 {
    (mix64(seed ^ (u64::from(l) << 32) ^ i) | 1) ^ (u64::from(l + 1) << 56)
}

/// The `i`-th shared key every locality races to insert.
fn hm_shared_key(seed: u64, i: u64) -> u64 {
    mix64(seed ^ 0x5a5a_0000 ^ i) | 1
}

/// Run the hash map to quiescence and report.
pub fn run_hashmap(cfg: &HashMapConfig) -> HashMapReport {
    let n = cfg.localities;
    let capacity = cfg.blocks * HM_WORDS_PER_BLOCK;
    let load = u64::from(n) * cfg.keys_per_loc + cfg.shared_keys;
    assert!(load * 2 <= capacity, "keep load factor under 50%");

    let mut rt = boot(n, cfg.mode, cfg.seed, cfg.plan.clone());
    let arr = rt.alloc(cfg.blocks, 12, Distribution::Cyclic);
    let st = Rc::new(RefCell::new(HmState {
        arr: arr.clone(),
        blocks: cfg.blocks,
        inserted: 0,
        duplicates: 0,
        table_full: 0,
        found: 0,
        missing: 0,
    }));

    // Phase 1: all localities insert concurrently — private keys plus the
    // shared set everybody races for.
    for l in 0..n {
        for i in 0..cfg.keys_per_loc {
            let st2 = st.clone();
            let key = hm_key(cfg.seed, l, i);
            rt.eng
                .schedule(Time::ZERO, move |eng| hm_insert(eng, st2, l, key, 0));
        }
        for i in 0..cfg.shared_keys {
            let st2 = st.clone();
            let key = hm_shared_key(cfg.seed, i);
            rt.eng
                .schedule(Time::ZERO, move |eng| hm_insert(eng, st2, l, key, 0));
        }
    }
    rt.run();

    // Phase 2: every locality looks up its own keys and the shared set.
    for l in 0..n {
        for i in 0..cfg.keys_per_loc {
            let st2 = st.clone();
            let key = hm_key(cfg.seed, l, i);
            rt.eng
                .schedule(Time::ZERO, move |eng| hm_lookup(eng, st2, l, key, 0));
        }
        for i in 0..cfg.shared_keys {
            let st2 = st.clone();
            let key = hm_shared_key(cfg.seed, i);
            rt.eng
                .schedule(Time::ZERO, move |eng| hm_lookup(eng, st2, l, key, 0));
        }
    }
    rt.run();

    // Final audit: count distinct non-empty table entries directly.
    let mut table_entries = 0u64;
    for b in &arr.blocks {
        let bytes = rt.read_block(*b);
        table_entries += bytes
            .chunks_exact(8)
            .filter(|c| u64::from_le_bytes((*c).try_into().unwrap()) != 0)
            .count() as u64;
    }

    let s = st.borrow();
    HashMapReport {
        inserted: s.inserted,
        duplicates: s.duplicates,
        table_full: s.table_full,
        found: s.found,
        missing: s.missing,
        table_entries,
        expected_entries: s.inserted,
        op_failures: rt.eng.state.op_failures.len() as u64,
        violations: verify(&rt, &arr.blocks),
        trace_hash: rt.eng.trace_hash(),
        end: rt.now(),
    }
}

// ---------------------------------------------------------------------------
// Work-stealing deque
// ---------------------------------------------------------------------------

/// Work-stealing deque configuration.
#[derive(Clone, Debug)]
pub struct DequeConfig {
    /// GAS implementation under test.
    pub mode: GasMode,
    /// Cluster size; locality 0 owns the deque, 1..n steal.
    pub localities: u32,
    /// Tasks pushed before the race starts.
    pub tasks: u64,
    /// Engine seed.
    pub seed: u64,
    /// Network fault plan.
    pub plan: FaultPlan,
}

impl Default for DequeConfig {
    fn default() -> DequeConfig {
        DequeConfig {
            mode: GasMode::AgasNetwork,
            localities: 4,
            tasks: 64,
            seed: 1,
            plan: FaultPlan::lossless(1),
        }
    }
}

/// Work-stealing deque run outcome.
#[derive(Clone, Debug)]
pub struct DequeReport {
    /// Tasks the owner popped.
    pub popped: u64,
    /// Tasks thieves stole.
    pub stolen: u64,
    /// Settlement CAS attempts that lost the race.
    pub conflicts: u64,
    /// Tasks pushed.
    pub tasks: u64,
    /// GAS ops that failed terminally.
    pub op_failures: u64,
    /// History/structural violations (must be empty).
    pub violations: Vec<Violation>,
    /// Determinism witness.
    pub trace_hash: u64,
    /// Simulated end time.
    pub end: Time,
}

impl DequeReport {
    /// Every task claimed exactly once, clean history.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
            && self.popped + self.stolen == self.tasks
            && self.op_failures == 0
    }
}

/// Deque word layout inside one block.
const DQ_TOP: u64 = 0; // thieves fetch-add +1
const DQ_BOTTOM: u64 = 8; // owner fetch-adds −1
const DQ_TASK0: u64 = 64;

fn dq_task_val(i: u64) -> u64 {
    (1 << 40) | (i + 1)
}

fn dq_done_val(claimant: u32, i: u64) -> u64 {
    (2 << 40) | (u64::from(claimant) << 32) | (i + 1)
}

struct DqState {
    deque: Gva,
    tasks: u64,
    popped: u64,
    stolen: u64,
    conflicts: u64,
}

/// Attempt to settle task `i` for `claimant`; exactly one settle wins.
fn dq_settle(
    eng: &mut Engine<World>,
    st: Rc<RefCell<DqState>>,
    claimant: u32,
    i: u64,
    next: impl FnOnce(&mut Engine<World>, Rc<RefCell<DqState>>) + 'static,
) {
    let slot = {
        let s = st.borrow();
        s.deque.with_offset(DQ_TASK0 + i * 8)
    };
    amo_cb(
        eng,
        claimant,
        slot,
        AmoOp::CompareSwap {
            expected: dq_task_val(i),
            desired: dq_done_val(claimant, i),
        },
        move |eng, r| {
            {
                let mut s = st.borrow_mut();
                if r.applied {
                    if claimant == 0 {
                        s.popped += 1;
                    } else {
                        s.stolen += 1;
                    }
                } else {
                    s.conflicts += 1;
                }
            }
            next(eng, st);
        },
    );
}

/// Owner loop: decrement bottom, settle the uncovered index, repeat.
fn dq_owner(eng: &mut Engine<World>, st: Rc<RefCell<DqState>>) {
    let deque = st.borrow().deque;
    amo_cb(
        eng,
        0,
        deque.with_offset(DQ_BOTTOM),
        AmoOp::FetchAdd {
            operand: 1u64.wrapping_neg(),
        },
        move |eng, r| {
            if r.old == 0 || r.old > st.borrow().tasks {
                return; // deque exhausted (or wrapped past empty)
            }
            dq_settle(eng, st, 0, r.old - 1, dq_owner);
        },
    );
}

/// Thief loop: claim a top index, settle it, repeat until past the end.
fn dq_thief(eng: &mut Engine<World>, st: Rc<RefCell<DqState>>, thief: u32) {
    let (deque, tasks) = {
        let s = st.borrow();
        (s.deque, s.tasks)
    };
    amo_cb(
        eng,
        thief,
        deque.with_offset(DQ_TOP),
        AmoOp::FetchAdd { operand: 1 },
        move |eng, r| {
            if r.old >= tasks {
                return;
            }
            dq_settle(eng, st, thief, r.old, move |eng, st| {
                dq_thief(eng, st, thief)
            });
        },
    );
}

/// Run the work-stealing deque to quiescence and report.
pub fn run_deque(cfg: &DequeConfig) -> DequeReport {
    let n = cfg.localities;
    assert!(n >= 2, "deque needs at least one thief");
    assert!(DQ_TASK0 + cfg.tasks * 8 <= 1 << 13, "tasks exceed block");

    let mut rt = boot(n, cfg.mode, cfg.seed, cfg.plan.clone());
    let arr = rt.alloc(1, 13, Distribution::Single(0));
    let deque = arr.block(0);

    // Setup: owner publishes the tasks and the bottom index (scatter does
    // both words and tasks in two NIC visits).
    let writes: Vec<(u64, u64)> = (0..cfg.tasks)
        .map(|i| (DQ_TASK0 + i * 8, dq_task_val(i)))
        .collect();
    rt.memamo(0, deque, AmoOp::Scatter { writes });
    rt.memamo(
        0,
        deque,
        AmoOp::Scatter {
            writes: vec![(DQ_BOTTOM, cfg.tasks)],
        },
    );
    rt.run();

    let st = Rc::new(RefCell::new(DqState {
        deque,
        tasks: cfg.tasks,
        popped: 0,
        stolen: 0,
        conflicts: 0,
    }));
    let st2 = st.clone();
    rt.eng.schedule(Time::ZERO, move |eng| dq_owner(eng, st2));
    for thief in 1..n {
        let st2 = st.clone();
        rt.eng
            .schedule(Time::ZERO, move |eng| dq_thief(eng, st2, thief));
    }
    rt.run();

    let s = st.borrow();
    DequeReport {
        popped: s.popped,
        stolen: s.stolen,
        conflicts: s.conflicts,
        tasks: cfg.tasks,
        op_failures: rt.eng.state.op_failures.len() as u64,
        violations: verify(&rt, &arr.blocks),
        trace_hash: rt.eng.trace_hash(),
        end: rt.now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{corrupt_mix, drop_mix};

    #[test]
    fn mpsc_delivers_everything_all_modes() {
        for mode in GasMode::ALL {
            let r = run_mpsc(&MpscConfig {
                mode,
                ..MpscConfig::default()
            });
            assert!(r.passed(), "{mode:?}: {r:?}");
            assert_eq!(r.consumed, 120, "{mode:?}");
            assert_eq!(r.consume_conflicts, 0, "{mode:?}: single consumer");
        }
    }

    #[test]
    fn mpsc_survives_fault_matrix() {
        for seed in [3u64, 17, 29] {
            for plan in [drop_mix(seed, 0.03), corrupt_mix(seed, 0.03)] {
                let r = run_mpsc(&MpscConfig {
                    seed,
                    plan,
                    items_per_producer: 25,
                    ..MpscConfig::default()
                });
                assert!(r.passed(), "seed {seed}: {r:?}");
            }
        }
    }

    #[test]
    fn mpsc_is_deterministic() {
        let cfg = MpscConfig {
            plan: drop_mix(5, 0.02),
            seed: 5,
            ..MpscConfig::default()
        };
        let a = run_mpsc(&cfg);
        let b = run_mpsc(&cfg);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn hashmap_inserts_exactly_once_all_modes() {
        for mode in GasMode::ALL {
            let r = run_hashmap(&HashMapConfig {
                mode,
                ..HashMapConfig::default()
            });
            assert!(r.passed(), "{mode:?}: {r:?}");
            // 4 localities × 8 shared keys: 8 first inserts, 24 duplicates.
            assert_eq!(r.duplicates, 24, "{mode:?}");
            assert_eq!(r.expected_entries, 4 * 24 + 8, "{mode:?}");
        }
    }

    #[test]
    fn hashmap_survives_fault_matrix() {
        for seed in [7u64, 19, 31] {
            for plan in [drop_mix(seed, 0.03), corrupt_mix(seed, 0.03)] {
                let r = run_hashmap(&HashMapConfig {
                    seed,
                    plan,
                    keys_per_loc: 16,
                    ..HashMapConfig::default()
                });
                assert!(r.passed(), "seed {seed}: {r:?}");
            }
        }
    }

    #[test]
    fn deque_settles_every_task_once_all_modes() {
        for mode in GasMode::ALL {
            let r = run_deque(&DequeConfig {
                mode,
                ..DequeConfig::default()
            });
            assert!(r.passed(), "{mode:?}: {r:?}");
            assert!(r.stolen > 0, "{mode:?}: thieves never won");
            assert!(r.popped > 0, "{mode:?}: owner never won");
        }
    }

    #[test]
    fn deque_survives_fault_matrix() {
        for seed in [11u64, 23, 37] {
            for plan in [drop_mix(seed, 0.03), corrupt_mix(seed, 0.03)] {
                let r = run_deque(&DequeConfig {
                    seed,
                    plan,
                    tasks: 48,
                    ..DequeConfig::default()
                });
                assert!(r.passed(), "seed {seed}: {r:?}");
            }
        }
    }

    #[test]
    fn deque_is_deterministic() {
        let cfg = DequeConfig {
            plan: drop_mix(13, 0.02),
            seed: 13,
            ..DequeConfig::default()
        };
        let a = run_deque(&cfg);
        let b = run_deque(&cfg);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.end, b.end);
    }
}
