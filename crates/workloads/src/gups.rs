//! GUPS / RandomAccess: the paper's irregular-access stress workload.
//!
//! A global table of `u64`s is spread cyclically over the cluster; every
//! locality issues a stream of updates to *uniformly random* global
//! indices, keeping `window` in flight. Two variants:
//!
//! * **put variant** — each update is an 8-byte `memput` of a deterministic
//!   value. This is the mode-differentiating variant: PGAS/AGAS-NET serve
//!   updates with one-sided RDMA (no target CPU), AGAS-SW burns a target
//!   core per update and collapses (experiment E5).
//! * **action variant** — each update is a parcel whose action XORs the
//!   cell (true HPCC-RandomAccess semantics). Used for correctness: the
//!   final table checksum must be identical in every mode.

use crate::driver::{pump_all, IssueFn};
use agas::{Distribution, GlobalArray, Gva};
use netsim::rng::mix64;
use netsim::Time;
use parcel_rt::{ArgReader, ArgWriter, Runtime};
use std::cell::Cell;
use std::rc::Rc;

/// GUPS configuration.
#[derive(Clone, Copy, Debug)]
pub struct GupsConfig {
    /// Table cells (u64) per locality.
    pub cells_per_loc: u64,
    /// Updates issued per locality.
    pub updates_per_loc: u64,
    /// Outstanding updates per locality.
    pub window: usize,
    /// Block size class of table blocks.
    pub block_class: u8,
    /// Stream seed.
    pub seed: u64,
    /// `true` = action (XOR) variant, `false` = put variant.
    pub use_actions: bool,
}

impl Default for GupsConfig {
    fn default() -> GupsConfig {
        GupsConfig {
            cells_per_loc: 1 << 12,
            updates_per_loc: 1 << 10,
            window: 16,
            block_class: 13, // 8 KiB blocks = 1 Ki cells
            seed: 0x9E3779B9,
            use_actions: false,
        }
    }
}

/// GUPS outcome.
#[derive(Clone, Copy, Debug)]
pub struct GupsResult {
    /// Total updates applied.
    pub updates: u64,
    /// Simulated wall time of the update phase.
    pub elapsed: Time,
    /// Giga-updates per (simulated) second.
    pub gups: f64,
    /// Mean update latency implied by Little's law (elapsed×window/updates).
    pub mean_latency: Time,
}

fn table_gva(table: &GlobalArray, cell: u64) -> Gva {
    table.at_byte(cell * 8)
}

fn cell_for(seed: u64, loc: u32, seq: u64, total_cells: u64) -> u64 {
    mix64(seed ^ (loc as u64) << 32 ^ seq) % total_cells
}

fn value_for(loc: u32, seq: u64) -> u64 {
    mix64(((loc as u64) << 40) | seq)
}

/// Allocate the GUPS table for `rt`'s cluster.
pub fn alloc_table(rt: &mut Runtime, cfg: &GupsConfig) -> GlobalArray {
    let n = rt.n() as u64;
    let total_bytes = cfg.cells_per_loc * 8 * n;
    let n_blocks = total_bytes.div_ceil(1 << cfg.block_class);
    rt.alloc(n_blocks, cfg.block_class, Distribution::Cyclic)
}

/// Run GUPS on a booted runtime. Returns the performance result; the table
/// (for checksumming) is left in global memory.
pub fn run(rt: &mut Runtime, cfg: &GupsConfig, table: &GlobalArray) -> GupsResult {
    let n = rt.n();
    let total_cells = cfg.cells_per_loc * n as u64;
    let start = rt.now();

    let action = cfg.use_actions.then(|| {
        // The action table is fixed at boot; the XOR action must have been
        // registered via `register_actions`.
        rt.eng
            .state
            .registry_lookup("gups_xor")
            .expect("gups action variant requires register_actions() before boot")
    });

    let table2 = table.clone();
    let seed = cfg.seed;
    let use_actions = cfg.use_actions;
    let issue: Rc<IssueFn> = Rc::new(move |eng, loc, seq, ctx| {
        let cell = cell_for(seed, loc, seq, total_cells);
        let gva = table_gva(&table2, cell);
        let val = value_for(loc, seq);
        if use_actions {
            let args = ArgWriter::new().u64(val).finish();
            // Fire the pump completion when the action's continuation fires.
            let lco = parcel_rt::new_future(eng, loc);
            parcel_rt::attach_driver(eng, lco, move |eng, _| {
                parcel_rt::fire_completion(eng, ctx, Vec::new());
            });
            parcel_rt::send_parcel(
                eng,
                loc,
                parcel_rt::Parcel {
                    target: gva,
                    action: action.unwrap(),
                    args,
                    cont: Some(lco),
                    src: loc,
                    hops: 0,
                },
            );
        } else {
            agas::ops::memput(eng, loc, gva, val.to_le_bytes().to_vec(), ctx);
        }
    });

    let finished = Rc::new(Cell::new(false));
    let f2 = finished.clone();
    pump_all(
        &mut rt.eng,
        n,
        cfg.updates_per_loc,
        cfg.window,
        issue,
        move |_| f2.set(true),
    );
    rt.run();
    assert!(finished.get(), "GUPS did not drain");

    let elapsed = rt.now() - start;
    let updates = cfg.updates_per_loc * n as u64;
    let gups = updates as f64 / elapsed.as_secs_f64() / 1e9;
    let mean_latency = (elapsed.ps() * cfg.window as u64 * n as u64)
        .checked_div(updates)
        .map_or(Time::ZERO, Time::from_ps);
    GupsResult {
        updates,
        elapsed,
        gups,
        mean_latency,
    }
}

/// Register the GUPS XOR action (call on the builder before boot when using
/// the action variant).
pub fn register_actions(b: &mut parcel_rt::RuntimeBuilder) {
    b.register("gups_xor", |eng, ctx| {
        let mut r = ArgReader::new(&ctx.args);
        let val = r.u64();
        let phys = ctx.target_phys();
        eng.state
            .cluster
            .mem_mut(ctx.loc)
            .xor_u64(phys, val)
            .expect("gups cell out of bounds");
        parcel_rt::reply(eng, &ctx, vec![]);
    });
}

/// XOR-checksum the whole table (driver-side, after quiescence). Mode- and
/// schedule-independent for the action variant.
pub fn table_checksum(rt: &Runtime, table: &GlobalArray) -> u64 {
    let mut acc = 0u64;
    for gva in &table.blocks {
        let bytes = rt.read_block(*gva);
        for cell in bytes.chunks_exact(8) {
            acc ^= u64::from_le_bytes(cell.try_into().unwrap());
        }
    }
    acc
}

/// The checksum the action variant must produce: XOR of all issued values
/// (XOR is commutative/associative and each value hits exactly one cell).
pub fn expected_checksum(cfg: &GupsConfig, n: u32) -> u64 {
    let mut acc = 0u64;
    for loc in 0..n {
        for seq in 0..cfg.updates_per_loc {
            acc ^= value_for(loc, seq);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use agas::GasMode;

    #[test]
    fn gups_put_runs_all_modes() {
        for mode in GasMode::ALL {
            let cfg = GupsConfig {
                cells_per_loc: 512,
                updates_per_loc: 200,
                window: 8,
                ..GupsConfig::default()
            };
            let mut rt = Runtime::builder(4, mode).boot();
            let table = alloc_table(&mut rt, &cfg);
            let res = run(&mut rt, &cfg, &table);
            assert_eq!(res.updates, 800, "{mode:?}");
            assert!(res.gups > 0.0, "{mode:?}");
        }
    }

    #[test]
    fn gups_action_checksum_is_mode_independent() {
        let cfg = GupsConfig {
            cells_per_loc: 256,
            updates_per_loc: 150,
            window: 4,
            use_actions: true,
            ..GupsConfig::default()
        };
        let expect = expected_checksum(&cfg, 3);
        for mode in GasMode::ALL {
            let mut b = Runtime::builder(3, mode);
            register_actions(&mut b);
            let mut rt = b.boot();
            let table = alloc_table(&mut rt, &cfg);
            let res = run(&mut rt, &cfg, &table);
            assert_eq!(res.updates, 450);
            assert_eq!(table_checksum(&rt, &table), expect, "{mode:?}");
        }
    }

    #[test]
    fn sw_mode_is_slowest_for_puts() {
        let cfg = GupsConfig {
            cells_per_loc: 512,
            updates_per_loc: 400,
            window: 16,
            ..GupsConfig::default()
        };
        let mut times = Vec::new();
        for mode in GasMode::ALL {
            let mut rt = Runtime::builder(4, mode).boot();
            let table = alloc_table(&mut rt, &cfg);
            let res = run(&mut rt, &cfg, &table);
            times.push((mode, res.elapsed));
        }
        let pgas = times[0].1;
        let sw = times[1].1;
        let net = times[2].1;
        assert!(sw > net, "sw={sw} net={net}");
        assert!(net < pgas * 2, "net={net} pgas={pgas}");
    }
}
