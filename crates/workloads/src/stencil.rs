//! A 2-D halo-exchange stencil — the LULESH-class application proxy
//! (experiment E9).
//!
//! A `px × py` grid of tiles (one GAS block each, distributed cyclically)
//! iterates: every tile writes its four edges into its neighbors' ghost
//! slots with `memput` (periodic boundaries), a cluster-wide and-gate fires,
//! every tile runs a compute action (charging `flop_time` of CPU per tile),
//! and the next iteration begins. Surface-to-volume neighbor traffic +
//! bulk-synchronous steps: the communication pattern the paper's intro
//! class of applications (shock hydro, AMR) generates.
//!
//! Tile block layout (`u64` cells): `T×T` interior, then four ghost rows of
//! `T` cells each (N, S, W, E).

use agas::{Distribution, GasMode, GlobalArray, Gva};
use netsim::Time;
use parcel_rt::{ArgReader, Runtime, RuntimeBuilder};
use std::cell::RefCell;
use std::rc::Rc;

/// Stencil configuration.
#[derive(Clone, Copy, Debug)]
pub struct StencilConfig {
    /// Tile-grid width (tiles).
    pub px: u32,
    /// Tile-grid height (tiles).
    pub py: u32,
    /// Tile edge length, in cells.
    pub tile: u32,
    /// Iterations to run.
    pub iters: u32,
    /// CPU time of one tile's compute step.
    pub flop_time: Time,
}

impl Default for StencilConfig {
    fn default() -> StencilConfig {
        StencilConfig {
            px: 4,
            py: 4,
            tile: 32,
            iters: 4,
            flop_time: Time::from_us(20),
        }
    }
}

/// Stencil outcome.
#[derive(Clone, Copy, Debug)]
pub struct StencilResult {
    /// Iterations completed.
    pub iters: u32,
    /// Total simulated time.
    pub elapsed: Time,
    /// Mean time per iteration.
    pub per_iter: Time,
    /// Halo bytes moved per iteration (4 edges × tiles × T × 8).
    pub halo_bytes_per_iter: u64,
}

impl StencilConfig {
    /// Tiles in the grid.
    pub fn tiles(&self) -> u64 {
        self.px as u64 * self.py as u64
    }

    /// Cells per tile block (interior + 4 ghost edges).
    pub fn cells_per_block(&self) -> u64 {
        let t = self.tile as u64;
        t * t + 4 * t
    }

    /// Block size class for a tile.
    pub fn block_class(&self) -> u8 {
        let bytes = self.cells_per_block() * 8;
        (64 - (bytes - 1).leading_zeros()) as u8
    }

    fn ghost_offset(&self, edge: usize) -> u64 {
        let t = self.tile as u64;
        (t * t + edge as u64 * t) * 8
    }

    fn edge_cells_offset(&self, edge: usize) -> (u64, u64) {
        // Returns (start cell, stride) of the interior edge row/col.
        let t = self.tile as u64;
        match edge {
            0 => (0, 1),           // north row
            1 => ((t - 1) * t, 1), // south row
            2 => (0, t),           // west column
            _ => (t - 1, t),       // east column
        }
    }
}

/// Register the stencil compute action (before boot).
pub fn register_actions(b: &mut RuntimeBuilder) {
    b.register("stencil_compute", |eng, ctx| {
        // Charge the tile's compute time to this locality's workers, then
        // bump every interior cell (so iterations are observable) and reply.
        let mut r = ArgReader::new(&ctx.args);
        let flops = Time::from_ps(r.u64());
        let tile = r.u32() as u64;
        let now = eng.now();
        let (_, finish) = eng.state.cpus[ctx.loc as usize].admit(now, flops);
        eng.state.cluster.loc_mut(ctx.loc).counters.cpu_busy += flops;
        let base = ctx.base;
        let loc = ctx.loc;
        let ctx_cont = ctx.cont;
        eng.schedule_at(finish, move |eng| {
            let mem = eng.state.cluster.mem_mut(loc);
            for cell in 0..tile * tile {
                mem.xor_u64(base + cell * 8, 1).expect("tile cell OOB");
            }
            if let Some(cont) = ctx_cont {
                parcel_rt::lco_set(eng, loc, cont, vec![]);
            }
        });
    });
}

/// Allocate the tile array.
pub fn alloc_tiles(rt: &mut Runtime, cfg: &StencilConfig) -> GlobalArray {
    rt.alloc(cfg.tiles(), cfg.block_class(), Distribution::Cyclic)
}

struct LoopState {
    cfg: StencilConfig,
    tiles: GlobalArray,
    compute: parcel_rt::ActionId,
    iter: u32,
    start: Time,
    result: Rc<RefCell<Option<StencilResult>>>,
}

/// Run the stencil to completion; returns the measured result.
pub fn run(rt: &mut Runtime, cfg: &StencilConfig, tiles: &GlobalArray) -> StencilResult {
    let compute = rt
        .eng
        .state
        .registry_lookup("stencil_compute")
        .expect("stencil requires register_actions() before boot");
    let result = Rc::new(RefCell::new(None));
    let st = Rc::new(RefCell::new(LoopState {
        cfg: *cfg,
        tiles: tiles.clone(),
        compute,
        iter: 0,
        start: rt.now(),
        result: result.clone(),
    }));
    exchange_phase(&mut rt.eng, st);
    rt.run();
    let out = result.borrow_mut().take();
    out.expect("stencil did not complete")
}

fn tile_owner(eng: &netsim::Engine<parcel_rt::World>, gva: Gva) -> u32 {
    let key = gva.block_key();
    let w = &eng.state;
    match w.mode {
        GasMode::Pgas => gva.home(),
        _ => (0..w.cluster.len() as u32)
            .find(|&l| w.gas[l as usize].btt.is_resident(key))
            .expect("tile has no resident owner"),
    }
}

fn read_tile_edge(
    eng: &netsim::Engine<parcel_rt::World>,
    cfg: &StencilConfig,
    gva: Gva,
    edge: usize,
) -> Vec<u8> {
    let owner = tile_owner(eng, gva);
    let key = gva.block_key();
    let w = &eng.state;
    let base = match w.mode {
        GasMode::Pgas => *w.pgas_map.get(&key).unwrap(),
        _ => w.gas[owner as usize].btt.lookup(key).unwrap().base,
    };
    let (start, stride) = cfg.edge_cells_offset(edge);
    let t = cfg.tile as u64;
    let mem = w.cluster.mem(owner);
    let mut out = Vec::with_capacity(t as usize * 8);
    for i in 0..t {
        let cell = start + i * stride;
        out.extend_from_slice(mem.read(base + cell * 8, 8).unwrap());
    }
    out
}

/// One exchange phase: every tile memputs its 4 edges into its neighbors'
/// ghost slots; an and-gate over all puts gates the compute phase.
fn exchange_phase(eng: &mut netsim::Engine<parcel_rt::World>, st: Rc<RefCell<LoopState>>) {
    let (cfg, tiles) = {
        let s = st.borrow();
        (s.cfg, s.tiles.clone())
    };
    let (px, py) = (cfg.px as i64, cfg.py as i64);
    let n_puts = cfg.tiles() * 4;
    let gate = parcel_rt::new_and(eng, 0, n_puts);
    for ty in 0..py {
        for tx in 0..px {
            let tile_idx = (ty * px + tx) as u64;
            let gva = tiles.block(tile_idx);
            let owner = tile_owner(eng, gva);
            // (neighbor dx, dy, my edge, their ghost slot)
            // My north edge lands in my north neighbor's *south* ghost.
            let routes = [
                (0i64, -1i64, 0usize, 1usize),
                (0, 1, 1, 0),
                (-1, 0, 2, 3),
                (1, 0, 3, 2),
            ];
            for (dx, dy, my_edge, their_ghost) in routes {
                let nx = (tx + dx).rem_euclid(px);
                let ny = (ty + dy).rem_euclid(py);
                let neighbor = tiles.block((ny * px + nx) as u64);
                let edge_bytes = read_tile_edge(eng, &cfg, gva, my_edge);
                let dst = neighbor.with_offset(cfg.ghost_offset(their_ghost));
                let ctx = eng.state.new_completion(parcel_rt::Completion::Lco(gate));
                agas::ops::memput(eng, owner, dst, edge_bytes, ctx);
            }
        }
    }
    let st2 = st.clone();
    parcel_rt::attach_driver(eng, gate, move |eng, _| compute_phase(eng, st2));
}

fn compute_phase(eng: &mut netsim::Engine<parcel_rt::World>, st: Rc<RefCell<LoopState>>) {
    let (cfg, tiles, compute) = {
        let s = st.borrow();
        (s.cfg, s.tiles.clone(), s.compute)
    };
    let gate = parcel_rt::new_and(eng, 0, cfg.tiles());
    for i in 0..cfg.tiles() {
        let gva = tiles.block(i);
        let owner = tile_owner(eng, gva);
        let args = parcel_rt::ArgWriter::new()
            .u64(cfg.flop_time.ps())
            .u32(cfg.tile)
            .finish();
        parcel_rt::send_parcel(
            eng,
            owner,
            parcel_rt::Parcel {
                target: gva,
                action: compute,
                args,
                cont: Some(gate),
                src: owner,
                hops: 0,
            },
        );
    }
    let st2 = st.clone();
    parcel_rt::attach_driver(eng, gate, move |eng, _| iteration_done(eng, st2));
}

fn iteration_done(eng: &mut netsim::Engine<parcel_rt::World>, st: Rc<RefCell<LoopState>>) {
    let finished = {
        let mut s = st.borrow_mut();
        s.iter += 1;
        s.iter >= s.cfg.iters
    };
    if finished {
        let s = st.borrow();
        let elapsed = eng.now() - s.start;
        let per_iter = elapsed / s.cfg.iters as u64;
        let halo = s.cfg.tiles() * 4 * s.cfg.tile as u64 * 8;
        *s.result.borrow_mut() = Some(StencilResult {
            iters: s.cfg.iters,
            elapsed,
            per_iter,
            halo_bytes_per_iter: halo,
        });
    } else {
        exchange_phase(eng, st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StencilConfig {
        StencilConfig {
            px: 3,
            py: 2,
            tile: 8,
            iters: 3,
            flop_time: Time::from_us(5),
        }
    }

    #[test]
    fn stencil_completes_all_modes() {
        for mode in GasMode::ALL {
            let cfg = small();
            let mut b = Runtime::builder(3, mode);
            register_actions(&mut b);
            let mut rt = b.boot();
            let tiles = alloc_tiles(&mut rt, &cfg);
            let res = run(&mut rt, &cfg, &tiles);
            assert_eq!(res.iters, 3, "{mode:?}");
            assert!(res.per_iter > Time::ZERO, "{mode:?}");
        }
    }

    #[test]
    fn compute_step_bumps_cells() {
        let cfg = small();
        let mut b = Runtime::builder(2, GasMode::AgasNetwork);
        register_actions(&mut b);
        let mut rt = b.boot();
        let tiles = alloc_tiles(&mut rt, &cfg);
        let _ = run(&mut rt, &cfg, &tiles);
        // 3 iterations of xor(1): every interior cell ends at 1 (3 flips).
        let block = rt.read_block(tiles.block(0));
        let cell0 = u64::from_le_bytes(block[0..8].try_into().unwrap());
        assert_eq!(cell0, 1);
    }

    #[test]
    fn ghosts_hold_neighbor_edges() {
        let cfg = StencilConfig {
            iters: 1,
            ..small()
        };
        let mut b = Runtime::builder(2, GasMode::AgasSoftware);
        register_actions(&mut b);
        let mut rt = b.boot();
        let tiles = alloc_tiles(&mut rt, &cfg);
        // Make tiles distinguishable: write tile index into every cell of
        // each tile's interior before running.
        for i in 0..cfg.tiles() {
            for c in 0..(cfg.tile as u64 * cfg.tile as u64) {
                rt.write_block(tiles.block(i), c * 8, &(i + 100).to_le_bytes());
            }
        }
        let _ = run(&mut rt, &cfg, &tiles);
        // Tile 0's north neighbor (periodic) is tile at (0, py-1) = index 3.
        // Tile 0's north ghost (edge slot 0) was written by that neighbor's
        // south edge — all cells held (3+100) before compute.
        let t0 = rt.read_block(tiles.block(0));
        let ghost_n = cfg.ghost_offset(0) as usize;
        let v = u64::from_le_bytes(t0[ghost_n..ghost_n + 8].try_into().unwrap());
        let north_neighbor = (cfg.py as u64 - 1) * cfg.px as u64;
        assert_eq!(v, north_neighbor + 100);
    }

    #[test]
    fn per_iteration_time_is_stable() {
        let cfg = StencilConfig {
            iters: 6,
            ..small()
        };
        let mut b = Runtime::builder(3, GasMode::Pgas);
        register_actions(&mut b);
        let mut rt = b.boot();
        let tiles = alloc_tiles(&mut rt, &cfg);
        let res = run(&mut rt, &cfg, &tiles);
        // Compute dominates: per-iter should be within 3x of flop_time.
        assert!(res.per_iter >= cfg.flop_time);
        assert!(res.per_iter < cfg.flop_time * 10, "{}", res.per_iter);
    }
}
