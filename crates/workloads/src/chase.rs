//! Distributed pointer chase: a dependent chain of remote accesses.
//!
//! A global array of `u64` cells encodes a random permutation cycle; the
//! walker follows `hops` links, each hop requiring the previous hop's
//! result. Nothing pipelines, so total time ÷ hops is the *full* remote
//! access latency of the active GAS mode — the sharpest translation-cost
//! amplifier available (the `memget` variant), and a parcel-forwarding
//! microbenchmark (the parcel variant, where the chase moves to the data
//! instead of pulling the data to the chase).

use agas::{Distribution, GlobalArray};
use netsim::rng::Xoshiro256;
use netsim::Time;
use parcel_rt::{ArgReader, ArgWriter, Runtime, RuntimeBuilder};
use std::cell::RefCell;
use std::rc::Rc;

/// Pointer-chase configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChaseConfig {
    /// Total cells in the global ring.
    pub cells: u64,
    /// Hops to walk.
    pub hops: u64,
    /// Block size class.
    pub block_class: u8,
    /// Permutation seed.
    pub seed: u64,
}

impl Default for ChaseConfig {
    fn default() -> ChaseConfig {
        ChaseConfig {
            cells: 1 << 10,
            hops: 256,
            block_class: 12,
            seed: 0xC4A5E,
        }
    }
}

/// Pointer-chase outcome.
#[derive(Clone, Copy, Debug)]
pub struct ChaseResult {
    /// Hops completed.
    pub hops: u64,
    /// Total simulated time.
    pub elapsed: Time,
    /// Mean latency per hop.
    pub per_hop: Time,
    /// Final cell index reached (correctness check).
    pub final_cell: u64,
}

/// Allocate the ring and write a seeded random cycle into it (driver-time
/// setup; charges no simulated time).
pub fn build_ring(rt: &mut Runtime, cfg: &ChaseConfig) -> GlobalArray {
    let total_bytes = cfg.cells * 8;
    let n_blocks = total_bytes.div_ceil(1 << cfg.block_class);
    let arr = rt.alloc(n_blocks, cfg.block_class, Distribution::Cyclic);
    // Sattolo's algorithm: a single cycle visiting every cell.
    let mut perm: Vec<u64> = (0..cfg.cells).collect();
    let mut rng = Xoshiro256::seed_from_u64(cfg.seed);
    for i in (1..perm.len()).rev() {
        let j = rng.next_below(i as u64) as usize;
        perm.swap(i, j);
    }
    let mut next = vec![0u64; cfg.cells as usize];
    for i in 0..perm.len() {
        next[perm[i] as usize] = perm[(i + 1) % perm.len()];
    }
    for (cell, &nxt) in next.iter().enumerate() {
        let gva = arr.at_byte(cell as u64 * 8);
        rt.write_block(gva.block_base(), gva.offset(), &nxt.to_le_bytes());
    }
    arr
}

/// Compute the expected cell after `hops` hops from cell 0 (oracle).
pub fn expected_final(rt: &Runtime, ring: &GlobalArray, cfg: &ChaseConfig) -> u64 {
    let mut cur = 0u64;
    for _ in 0..cfg.hops {
        let gva = ring.at_byte(cur * 8);
        let block = rt.read_block(gva.block_base());
        let off = gva.offset() as usize;
        cur = u64::from_le_bytes(block[off..off + 8].try_into().unwrap());
    }
    cur
}

/// Walk the ring with dependent `memget`s issued from locality 0.
pub fn run_memget(rt: &mut Runtime, cfg: &ChaseConfig, ring: &GlobalArray) -> ChaseResult {
    let start = rt.now();
    let result: Rc<RefCell<Option<u64>>> = Rc::new(RefCell::new(None));

    struct Walk {
        ring: GlobalArray,
        remaining: u64,
        cur: u64,
        out: Rc<RefCell<Option<u64>>>,
    }
    fn step(eng: &mut netsim::Engine<parcel_rt::World>, st: Rc<RefCell<Walk>>) {
        let (gva, done) = {
            let s = st.borrow();
            if s.remaining == 0 {
                (agas::Gva::NULL, true)
            } else {
                (s.ring.at_byte(s.cur * 8), false)
            }
        };
        if done {
            let s = st.borrow();
            *s.out.borrow_mut() = Some(s.cur);
            return;
        }
        let st2 = st.clone();
        let ctx = eng
            .state
            .new_completion(parcel_rt::Completion::Driver(Box::new(move |eng, data| {
                let next = u64::from_le_bytes(data.try_into().unwrap());
                {
                    let mut s = st2.borrow_mut();
                    s.cur = next;
                    s.remaining -= 1;
                }
                step(eng, st2.clone());
            })));
        agas::ops::memget(eng, 0, gva, 8, ctx);
    }

    let st = Rc::new(RefCell::new(Walk {
        ring: ring.clone(),
        remaining: cfg.hops,
        cur: 0,
        out: result.clone(),
    }));
    step(&mut rt.eng, st);
    rt.run();
    let final_cell = result.borrow().expect("chase did not finish");
    let elapsed = rt.now() - start;
    ChaseResult {
        hops: cfg.hops,
        elapsed,
        per_hop: elapsed / cfg.hops.max(1),
        final_cell,
    }
}

/// Register the parcel-chase action (before boot).
pub fn register_actions(b: &mut RuntimeBuilder, ring_slot: Rc<RefCell<Option<GlobalArray>>>) {
    b.register("chase_hop", move |eng, ctx| {
        let mut r = ArgReader::new(&ctx.args);
        let remaining = r.u64();
        let done_lco = r.gva();
        // Read the next link from the pinned target cell.
        let phys = ctx.target_phys();
        let next = u64::from_le_bytes(
            eng.state
                .cluster
                .mem(ctx.loc)
                .read(phys, 8)
                .unwrap()
                .try_into()
                .unwrap(),
        );
        if remaining == 0 {
            // The link in the final cell is the cell the walk ends on.
            parcel_rt::lco_set(eng, ctx.loc, done_lco, next.to_le_bytes().to_vec());
            return;
        }
        let ring = ring_slot.borrow().clone().expect("ring not installed");
        let target = ring.at_byte(next * 8);
        let args = ArgWriter::new().u64(remaining - 1).gva(done_lco).finish();
        parcel_rt::send_parcel(
            eng,
            ctx.loc,
            parcel_rt::Parcel {
                target,
                action: eng.state.registry_lookup("chase_hop").unwrap(),
                args,
                cont: None,
                src: ctx.loc,
                hops: 0,
            },
        );
    });
}

/// Walk the ring by *moving the computation*: a chain of parcels, each
/// reading its cell locally and spawning the next hop.
pub fn run_parcels(rt: &mut Runtime, cfg: &ChaseConfig, ring: &GlobalArray) -> ChaseResult {
    let start = rt.now();
    let done = rt.new_future(0);
    let chase = rt
        .eng
        .state
        .registry_lookup("chase_hop")
        .expect("parcel chase requires register_actions() before boot");
    let args = ArgWriter::new().u64(cfg.hops - 1).gva(done).finish();
    let target = ring.at_byte(0);
    rt.spawn(0, target, chase, args, None);
    let out: Rc<RefCell<Option<u64>>> = Rc::new(RefCell::new(None));
    let o2 = out.clone();
    rt.wait_lco(done, move |_, v| {
        *o2.borrow_mut() = Some(u64::from_le_bytes(v.try_into().unwrap()));
    });
    rt.run();
    let final_cell = out.borrow().expect("parcel chase did not finish");
    let elapsed = rt.now() - start;
    ChaseResult {
        hops: cfg.hops,
        elapsed,
        per_hop: elapsed / cfg.hops.max(1),
        final_cell,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agas::GasMode;

    fn small() -> ChaseConfig {
        ChaseConfig {
            cells: 128,
            hops: 40,
            block_class: 9, // 64 cells per block
            seed: 7,
        }
    }

    #[test]
    fn memget_chase_follows_the_cycle() {
        for mode in GasMode::ALL {
            let cfg = small();
            let mut rt = Runtime::builder(4, mode).boot();
            let ring = build_ring(&mut rt, &cfg);
            let expect = expected_final(&rt, &ring, &cfg);
            let res = run_memget(&mut rt, &cfg, &ring);
            assert_eq!(res.final_cell, expect, "{mode:?}");
            assert!(res.per_hop > Time::ZERO);
        }
    }

    #[test]
    fn parcel_chase_matches_memget_chase() {
        let cfg = small();
        for mode in GasMode::ALL {
            let slot = Rc::new(RefCell::new(None));
            let mut b = Runtime::builder(4, mode);
            register_actions(&mut b, slot.clone());
            let mut rt = b.boot();
            let ring = build_ring(&mut rt, &cfg);
            *slot.borrow_mut() = Some(ring.clone());
            let expect = expected_final(&rt, &ring, &cfg);
            let res = run_parcels(&mut rt, &cfg, &ring);
            assert_eq!(res.final_cell, expect, "{mode:?}");
        }
    }

    #[test]
    fn dependent_chain_costs_scale_with_hops() {
        let mut rt = Runtime::builder(4, GasMode::AgasNetwork).boot();
        let cfg_short = ChaseConfig {
            hops: 10,
            ..small()
        };
        let ring = build_ring(&mut rt, &cfg_short);
        let short = run_memget(&mut rt, &cfg_short, &ring);

        let mut rt2 = Runtime::builder(4, GasMode::AgasNetwork).boot();
        let cfg_long = ChaseConfig {
            hops: 40,
            ..small()
        };
        let ring2 = build_ring(&mut rt2, &cfg_long);
        let long = run_memget(&mut rt2, &cfg_long, &ring2);
        // 4x the hops: at least ~3x the time (local/remote hop mix varies
        // along the walk, so leave slack).
        assert!(
            long.elapsed > short.elapsed * 2,
            "{} vs {}",
            long.elapsed,
            short.elapsed
        );
    }

    #[test]
    fn sw_pays_more_per_hop_than_net() {
        let cfg = small();
        let per_hop = |mode| {
            let mut rt = Runtime::builder(4, mode).boot();
            let ring = build_ring(&mut rt, &cfg);
            run_memget(&mut rt, &cfg, &ring).per_hop
        };
        let sw = per_hop(GasMode::AgasSoftware);
        let net = per_hop(GasMode::AgasNetwork);
        assert!(sw > net, "sw={sw} net={net}");
    }
}
