//! Skewed global access with migration-based rebalancing (experiment E8).
//!
//! The data is allocated **blocked**, so the Zipf-hot blocks all start on
//! locality 0 — the naive-placement hotspot the paper's AGAS exists to fix.
//! Every locality then streams Zipf-distributed `memget`s at the blocks.
//! A driver-side rebalancer (standing in for HPX-5's load-balancing policy)
//! periodically migrates the hottest blocks away from the most-loaded
//! locality:
//!
//! * **PGAS** — placement is frozen; locality 0's NIC serializes the hot
//!   traffic forever;
//! * **AGAS-SW** — blocks can move, but every remote access also burns
//!   target CPU, so relief is partial;
//! * **AGAS-NET** — blocks move *and* accesses stay one-sided: the fabric's
//!   aggregate bandwidth is finally usable.

use crate::driver::{pump_all, IssueFn};
use agas::{Distribution, GlobalArray};
use netsim::rng::{Xoshiro256, Zipf};
use netsim::Time;
use parcel_rt::Runtime;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Skew workload configuration.
#[derive(Clone, Copy, Debug)]
pub struct SkewConfig {
    /// Number of data blocks.
    pub blocks: u64,
    /// Block size class.
    pub block_class: u8,
    /// Bytes read per access.
    pub read_bytes: u32,
    /// Accesses issued per locality.
    pub ops_per_loc: u64,
    /// Outstanding accesses per locality.
    pub window: usize,
    /// Zipf exponent (0 = uniform; ~0.99 = heavy skew).
    pub theta: f64,
    /// Rebalance after this many completed accesses cluster-wide
    /// (`0` disables rebalancing).
    pub rebalance_every: u64,
    /// Blocks migrated per rebalance round.
    pub moves_per_round: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for SkewConfig {
    fn default() -> SkewConfig {
        SkewConfig {
            blocks: 64,
            block_class: 13,
            read_bytes: 64,
            ops_per_loc: 1 << 10,
            window: 8,
            theta: 0.99,
            rebalance_every: 512,
            moves_per_round: 4,
            seed: 0x5EED,
        }
    }
}

/// Skew workload outcome.
#[derive(Clone, Copy, Debug)]
pub struct SkewResult {
    /// Total accesses completed.
    pub ops: u64,
    /// Simulated makespan.
    pub elapsed: Time,
    /// Accesses per simulated second.
    pub ops_per_sec: f64,
    /// Migrations the rebalancer performed.
    pub migrations: u64,
}

struct Balancer {
    owners: Vec<u32>,
    heat: Vec<u64>,
    completed: u64,
    migrations: u64,
}

/// Allocate the skewed data set (blocked: hot blocks all start at loc 0).
pub fn alloc_blocks(rt: &mut Runtime, cfg: &SkewConfig) -> GlobalArray {
    rt.alloc(cfg.blocks, cfg.block_class, Distribution::Blocked)
}

/// Run the skewed-access workload.
pub fn run(rt: &mut Runtime, cfg: &SkewConfig, data: &GlobalArray) -> SkewResult {
    let n = rt.n();
    let mode = rt.mode();
    let start = rt.now();
    let zipf = Rc::new(Zipf::new(cfg.blocks as usize, cfg.theta));
    let rngs: Rc<RefCell<Vec<Xoshiro256>>> = Rc::new(RefCell::new(
        (0..n)
            .map(|l| Xoshiro256::seed_from_u64(cfg.seed ^ (l as u64) << 17))
            .collect(),
    ));
    let balancer = Rc::new(RefCell::new(Balancer {
        owners: data
            .blocks
            .iter()
            .enumerate()
            .map(|(i, _)| Distribution::Blocked.home(i as u64, cfg.blocks, n))
            .collect(),
        heat: vec![0; cfg.blocks as usize],
        completed: 0,
        migrations: 0,
    }));

    let data2 = data.clone();
    let cfgc = *cfg;
    let bal2 = balancer.clone();
    let issue: Rc<IssueFn> = Rc::new(move |eng, loc, _seq, ctx| {
        let block_idx = {
            let mut rngs = rngs.borrow_mut();
            zipf.sample(&mut rngs[loc as usize]) as u64
        };
        {
            let mut b = bal2.borrow_mut();
            b.heat[block_idx as usize] += 1;
            b.completed += 1;
            let due = cfgc.rebalance_every > 0
                && mode.supports_migration()
                && b.completed.is_multiple_of(cfgc.rebalance_every);
            if due {
                rebalance(eng, &mut b, &data2, &cfgc, loc);
            }
        }
        let gva = data2.block(block_idx);
        agas::ops::memget(eng, loc, gva, cfgc.read_bytes, ctx);
    });

    let finished = Rc::new(Cell::new(false));
    let f2 = finished.clone();
    pump_all(
        &mut rt.eng,
        n,
        cfg.ops_per_loc,
        cfg.window,
        issue,
        move |_| f2.set(true),
    );
    rt.run();
    assert!(finished.get(), "skew workload did not drain");

    let elapsed = rt.now() - start;
    let ops = cfg.ops_per_loc * n as u64;
    let migrations = balancer.borrow().migrations;
    SkewResult {
        ops,
        elapsed,
        ops_per_sec: ops as f64 / elapsed.as_secs_f64(),
        migrations,
    }
}

/// Greedy rebalance: move the hottest blocks off the most-loaded locality
/// toward the least-loaded one.
fn rebalance(
    eng: &mut netsim::Engine<parcel_rt::World>,
    b: &mut Balancer,
    data: &GlobalArray,
    cfg: &SkewConfig,
    from_loc: u32,
) {
    let n = eng.state.n_localities();
    for _ in 0..cfg.moves_per_round {
        // Per-locality heat.
        let mut load = vec![0u64; n as usize];
        for (i, &owner) in b.owners.iter().enumerate() {
            load[owner as usize] += b.heat[i];
        }
        let hottest_loc = (0..n).max_by_key(|&l| load[l as usize]).unwrap();
        let coolest_loc = (0..n).min_by_key(|&l| load[l as usize]).unwrap();
        if hottest_loc == coolest_loc || load[hottest_loc as usize] == 0 {
            break;
        }
        // Hottest block currently on the hottest locality.
        let candidate = (0..cfg.blocks as usize)
            .filter(|&i| b.owners[i] == hottest_loc)
            .max_by_key(|&i| b.heat[i]);
        let Some(block_idx) = candidate else { break };
        if b.heat[block_idx] == 0 {
            break;
        }
        b.owners[block_idx] = coolest_loc;
        b.migrations += 1;
        agas::migrate::migrate_block(
            eng,
            from_loc,
            data.block(block_idx as u64),
            coolest_loc,
            parcel_rt::NO_COMPLETION,
        );
        // Decay so later rounds see fresh traffic.
        b.heat[block_idx] /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agas::GasMode;

    fn small() -> SkewConfig {
        SkewConfig {
            blocks: 16,
            block_class: 12,
            read_bytes: 64,
            ops_per_loc: 300,
            window: 4,
            theta: 0.99,
            rebalance_every: 200,
            moves_per_round: 2,
            seed: 3,
        }
    }

    #[test]
    fn skew_completes_all_modes() {
        for mode in GasMode::ALL {
            let cfg = small();
            let mut rt = Runtime::builder(4, mode).boot();
            let data = alloc_blocks(&mut rt, &cfg);
            let res = run(&mut rt, &cfg, &data);
            assert_eq!(res.ops, 1200, "{mode:?}");
            if mode == GasMode::Pgas {
                assert_eq!(res.migrations, 0);
            }
        }
    }

    #[test]
    fn rebalancing_moves_blocks_in_agas_modes() {
        for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
            let cfg = small();
            let mut rt = Runtime::builder(4, mode).boot();
            let data = alloc_blocks(&mut rt, &cfg);
            let res = run(&mut rt, &cfg, &data);
            assert!(res.migrations > 0, "{mode:?}");
            // Ownership actually spread beyond locality 0.
            let owners: std::collections::HashSet<u32> = data
                .blocks
                .iter()
                .map(|g| {
                    (0..4u32)
                        .find(|&l| rt.eng.state.gas[l as usize].btt.is_resident(g.block_key()))
                        .unwrap()
                })
                .collect();
            assert!(owners.len() > 2, "{mode:?}: owners {owners:?}");
        }
    }

    #[test]
    fn migration_beats_static_placement_under_skew() {
        // AGAS-NET with rebalancing should finish faster than PGAS when the
        // hot set is concentrated (blocked placement + heavy Zipf) and the
        // reads are big enough to saturate the hot locality's NIC port.
        let cfg = SkewConfig {
            ops_per_loc: 800,
            read_bytes: 4096,
            window: 16,
            theta: 1.1,
            rebalance_every: 256,
            moves_per_round: 4,
            ..small()
        };
        let time_for = |mode, rebalance: bool| {
            let cfg = SkewConfig {
                rebalance_every: if rebalance { cfg.rebalance_every } else { 0 },
                ..cfg
            };
            let mut rt = Runtime::builder(4, mode).boot();
            let data = alloc_blocks(&mut rt, &cfg);
            run(&mut rt, &cfg, &data).elapsed
        };
        let pgas = time_for(GasMode::Pgas, false);
        let net = time_for(GasMode::AgasNetwork, true);
        assert!(net < pgas, "net={net} pgas={pgas}");
    }
}
