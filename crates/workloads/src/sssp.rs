//! Chaotic-relaxation single-source shortest paths — the distributed-graph
//! problem this research group studied across runtimes (Firoz et al.,
//! ICPADS'15/PASC'16), here in its purest message-driven form.
//!
//! Like [`crate::bfs`] but with weighted edges and *no ordering at all*
//! (no Δ-stepping, no priority): every improvement propagates immediately
//! as parcels. Wasteful in relaxations, maximally asynchronous, and exactly
//! the workload whose "runtime considerations" those papers measured.
//! Termination is network quiescence; correctness is convergence to the
//! Dijkstra fixed point regardless of message order (including under wire
//! jitter and block migration).

use crate::bfs::Graph;
use agas::{Distribution, GlobalArray};
use netsim::Time;
use parcel_rt::{ArgReader, ArgWriter, Runtime, RuntimeBuilder};
use std::cell::RefCell;
use std::rc::Rc;

/// Unreached-vertex label.
pub const INFINITY: u64 = u64::MAX;

/// A weighted graph: structure plus one weight per CSR edge slot.
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    /// The structure.
    pub graph: Graph,
    /// Weight of edge `edges[i]`, in `1..=max_weight`.
    pub weights: Vec<u32>,
}

impl WeightedGraph {
    /// Weighted small-world graph with deterministic weights.
    ///
    /// Weights are symmetric: edge (v,w) carries the same weight in both
    /// directions (derived from the unordered pair), so the graph is a
    /// well-defined undirected weighted graph.
    pub fn small_world(n: u32, chords: u32, max_weight: u32, seed: u64) -> WeightedGraph {
        assert!(max_weight >= 1);
        let graph = Graph::small_world(n, chords, seed);
        let weights = (0..graph.edges.len())
            .map(|i| {
                // Derive from the unordered endpoint pair for symmetry.
                let v = graph.offsets.partition_point(|&o| o as usize <= i) as u32 - 1;
                let w = graph.edges[i];
                let (a, b) = if v < w { (v, w) } else { (w, v) };
                (netsim::rng::mix64(((a as u64) << 32 | b as u64) ^ seed) % max_weight as u64)
                    as u32
                    + 1
            })
            .collect();
        WeightedGraph { graph, weights }
    }

    /// Weighted neighbors of `v`: `(neighbor, weight)`.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.graph.offsets[v as usize] as usize;
        let hi = self.graph.offsets[v as usize + 1] as usize;
        (lo..hi).map(move |i| (self.graph.edges[i], self.weights[i]))
    }

    /// Dijkstra oracle.
    pub fn dijkstra(&self, root: u32) -> Vec<u64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = self.graph.n() as usize;
        let mut dist = vec![INFINITY; n];
        let mut heap = BinaryHeap::new();
        dist[root as usize] = 0;
        heap.push(Reverse((0u64, root)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for (w, wt) in self.neighbors(v) {
                let nd = d + wt as u64;
                if nd < dist[w as usize] {
                    dist[w as usize] = nd;
                    heap.push(Reverse((nd, w)));
                }
            }
        }
        dist
    }
}

/// SSSP configuration.
#[derive(Clone, Copy, Debug)]
pub struct SsspConfig {
    /// Vertices.
    pub vertices: u32,
    /// Random chords per vertex.
    pub chords: u32,
    /// Maximum edge weight.
    pub max_weight: u32,
    /// Label block size class.
    pub block_class: u8,
    /// Source vertex.
    pub root: u32,
    /// Graph seed.
    pub seed: u64,
}

impl Default for SsspConfig {
    fn default() -> SsspConfig {
        SsspConfig {
            vertices: 512,
            chords: 2,
            max_weight: 8,
            block_class: 12,
            root: 0,
            seed: 0x555,
        }
    }
}

/// SSSP outcome.
#[derive(Clone, Copy, Debug)]
pub struct SsspResult {
    /// Simulated time to quiescence.
    pub elapsed: Time,
    /// Relax actions executed (label-correcting overshoot included).
    pub relaxations: u64,
    /// Overshoot ratio: relaxations ÷ vertices (1.0 would be optimal).
    pub overshoot: f64,
}

/// Shared state for the relax action.
pub struct SsspState {
    /// The replicated weighted graph.
    pub graph: WeightedGraph,
    /// Distributed labels.
    pub labels: GlobalArray,
    /// Relaxation counter.
    pub relaxations: std::cell::Cell<u64>,
}

/// Register the SSSP relax action (before boot).
pub fn register_actions(b: &mut RuntimeBuilder, slot: Rc<RefCell<Option<SsspState>>>) {
    b.register("sssp_relax", move |eng, ctx| {
        let mut r = ArgReader::new(&ctx.args);
        let vertex = r.u32();
        let dist = r.u64();
        let (neighbors, labels): (Vec<(u32, u32)>, GlobalArray) = {
            let st = slot.borrow();
            let st = st.as_ref().expect("SSSP state not installed");
            st.relaxations.set(st.relaxations.get() + 1);
            (st.graph.neighbors(vertex).collect(), st.labels.clone())
        };
        let phys = ctx.target_phys();
        let mem = eng.state.cluster.mem_mut(ctx.loc);
        let cur = u64::from_le_bytes(mem.read(phys, 8).unwrap().try_into().unwrap());
        if dist >= cur {
            return;
        }
        mem.write(phys, &dist.to_le_bytes()).unwrap();
        let relax = eng.state.registry_lookup("sssp_relax").unwrap();
        for (w, wt) in neighbors {
            let target = labels.at_byte(w as u64 * 8);
            let args = ArgWriter::new().u32(w).u64(dist + wt as u64).finish();
            parcel_rt::send_parcel(
                eng,
                ctx.loc,
                parcel_rt::Parcel {
                    target,
                    action: relax,
                    args,
                    cont: None,
                    src: ctx.loc,
                    hops: 0,
                },
            );
        }
    });
}

/// Allocate labels and install shared state.
pub fn install(rt: &mut Runtime, cfg: &SsspConfig, slot: &Rc<RefCell<Option<SsspState>>>) {
    let graph = WeightedGraph::small_world(cfg.vertices, cfg.chords, cfg.max_weight, cfg.seed);
    let bytes = cfg.vertices as u64 * 8;
    let n_blocks = bytes.div_ceil(1 << cfg.block_class);
    let labels = rt.alloc(n_blocks, cfg.block_class, Distribution::Cyclic);
    for v in 0..cfg.vertices as u64 {
        let gva = labels.at_byte(v * 8);
        rt.write_block(gva.block_base(), gva.offset(), &INFINITY.to_le_bytes());
    }
    *slot.borrow_mut() = Some(SsspState {
        graph,
        labels,
        relaxations: std::cell::Cell::new(0),
    });
}

/// Run SSSP from the configured root.
pub fn run(
    rt: &mut Runtime,
    cfg: &SsspConfig,
    slot: &Rc<RefCell<Option<SsspState>>>,
) -> SsspResult {
    let relax = rt
        .eng
        .state
        .registry_lookup("sssp_relax")
        .expect("SSSP requires register_actions() before boot");
    let target = slot
        .borrow()
        .as_ref()
        .unwrap()
        .labels
        .at_byte(cfg.root as u64 * 8);
    let t0 = rt.now();
    rt.spawn(
        0,
        target,
        relax,
        ArgWriter::new().u32(cfg.root).u64(0).finish(),
        None,
    );
    rt.run();
    let elapsed = rt.now() - t0;
    let relaxations = slot.borrow().as_ref().unwrap().relaxations.get();
    SsspResult {
        elapsed,
        relaxations,
        overshoot: relaxations as f64 / cfg.vertices as f64,
    }
}

/// Read the converged labels (driver-side).
pub fn read_labels(rt: &Runtime, slot: &Rc<RefCell<Option<SsspState>>>) -> Vec<u64> {
    let st = slot.borrow();
    let st = st.as_ref().unwrap();
    let n = st.graph.graph.n() as u64;
    (0..n)
        .map(|v| {
            let gva = st.labels.at_byte(v * 8);
            let block = rt.read_block(gva.block_base());
            let off = gva.offset() as usize;
            u64::from_le_bytes(block[off..off + 8].try_into().unwrap())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use agas::GasMode;

    fn small() -> SsspConfig {
        SsspConfig {
            vertices: 128,
            chords: 2,
            max_weight: 6,
            block_class: 9,
            root: 3,
            seed: 17,
        }
    }

    #[test]
    fn weights_are_symmetric_and_bounded() {
        let g = WeightedGraph::small_world(80, 2, 9, 5);
        for v in 0..80u32 {
            for (w, wt) in g.neighbors(v) {
                assert!((1..=9).contains(&wt));
                let back = g.neighbors(w).find(|&(x, _)| x == v).unwrap();
                assert_eq!(back.1, wt, "asymmetric weight on ({v},{w})");
            }
        }
    }

    #[test]
    fn sssp_converges_to_dijkstra_all_modes() {
        for mode in GasMode::ALL {
            let cfg = small();
            let slot = Rc::new(RefCell::new(None));
            let mut b = Runtime::builder(4, mode);
            register_actions(&mut b, slot.clone());
            let mut rt = b.boot();
            install(&mut rt, &cfg, &slot);
            let res = run(&mut rt, &cfg, &slot);
            let got = read_labels(&rt, &slot);
            let expect = slot.borrow().as_ref().unwrap().graph.dijkstra(cfg.root);
            assert_eq!(got, expect, "{mode:?}");
            assert!(res.overshoot >= 1.0, "{mode:?}");
        }
    }

    #[test]
    fn sssp_converges_under_jitter_and_migration() {
        let cfg = small();
        let slot = Rc::new(RefCell::new(None));
        let mut b = Runtime::builder(4, GasMode::AgasNetwork);
        register_actions(&mut b, slot.clone());
        let mut rt = b
            .net(netsim::NetConfig {
                jitter_ns: 800,
                ..netsim::NetConfig::ib_fdr()
            })
            .boot();
        install(&mut rt, &cfg, &slot);
        let relax = rt.eng.state.registry_lookup("sssp_relax").unwrap();
        let target = slot
            .borrow()
            .as_ref()
            .unwrap()
            .labels
            .at_byte(cfg.root as u64 * 8);
        rt.spawn(
            0,
            target,
            relax,
            ArgWriter::new().u32(cfg.root).u64(0).finish(),
            None,
        );
        let blocks = slot.borrow().as_ref().unwrap().labels.blocks.clone();
        for (i, gva) in blocks.iter().enumerate() {
            rt.migrate(0, *gva, ((i as u32) * 3 + 1) % 4);
            rt.eng.run_steps(100);
        }
        rt.run();
        let got = read_labels(&rt, &slot);
        let expect = slot.borrow().as_ref().unwrap().graph.dijkstra(cfg.root);
        assert_eq!(got, expect);
    }

    #[test]
    fn chaotic_relaxation_overshoots_but_converges() {
        // With weights, unordered relaxation does extra work (the ICPADS'15
        // observation); the answer is still exact.
        let cfg = SsspConfig {
            max_weight: 16,
            ..small()
        };
        let slot = Rc::new(RefCell::new(None));
        let mut b = Runtime::builder(4, GasMode::Pgas);
        register_actions(&mut b, slot.clone());
        let mut rt = b.boot();
        install(&mut rt, &cfg, &slot);
        let res = run(&mut rt, &cfg, &slot);
        assert!(res.overshoot > 1.0);
        let got = read_labels(&rt, &slot);
        let expect = slot.borrow().as_ref().unwrap().graph.dijkstra(cfg.root);
        assert_eq!(got, expect);
    }
}
