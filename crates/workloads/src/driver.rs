//! Driver-side asynchronous operation pumps.
//!
//! Benchmark drivers keep a fixed *window* of operations in flight per
//! locality: each completion immediately issues the next operation. This is
//! the standard way message-driven benchmarks (GUPS, message-rate tests)
//! are written, and it is what saturates NICs and CPUs in the simulator.

use netsim::{Engine, LocalityId, OpId};
use parcel_rt::{Completion, World};
use std::cell::RefCell;
use std::rc::Rc;

/// Issues one operation: receives the engine, the issuing locality, the
/// operation's sequence number, and the completion `ctx` the operation must
/// eventually fire (pass it as the GAS op ctx, or fire it manually).
pub type IssueFn = dyn Fn(&mut Engine<World>, LocalityId, u64, OpId);

/// Runs once after the pump's final completion.
type DoneFn = Box<dyn FnOnce(&mut Engine<World>)>;

struct PumpState {
    loc: LocalityId,
    next: u64,
    total: u64,
    outstanding: usize,
    issue: Rc<IssueFn>,
    on_done: Option<DoneFn>,
}

/// Run `total` operations from `loc`, keeping up to `window` in flight.
/// `issue` starts one op and must arrange for its `ctx` completion to fire
/// exactly once. `on_done` runs after the final completion.
pub fn pump(
    eng: &mut Engine<World>,
    loc: LocalityId,
    total: u64,
    window: usize,
    issue: Rc<IssueFn>,
    on_done: impl FnOnce(&mut Engine<World>) + 'static,
) {
    assert!(window >= 1, "pump needs a window of at least 1");
    if total == 0 {
        eng.schedule(netsim::Time::ZERO, on_done);
        return;
    }
    let st = Rc::new(RefCell::new(PumpState {
        loc,
        next: 0,
        total,
        outstanding: 0,
        issue,
        on_done: Some(Box::new(on_done)),
    }));
    let initial = window.min(total as usize);
    for _ in 0..initial {
        issue_one(eng, st.clone());
    }
}

fn issue_one(eng: &mut Engine<World>, st: Rc<RefCell<PumpState>>) {
    let (loc, seq, issue) = {
        let mut s = st.borrow_mut();
        debug_assert!(s.next < s.total);
        let seq = s.next;
        s.next += 1;
        s.outstanding += 1;
        (s.loc, seq, s.issue.clone())
    };
    let st2 = st.clone();
    let ctx = eng
        .state
        .new_completion(Completion::Driver(Box::new(move |eng, _| {
            advance(eng, st2);
        })));
    issue(eng, loc, seq, ctx);
}

fn advance(eng: &mut Engine<World>, st: Rc<RefCell<PumpState>>) {
    let (more, done_now) = {
        let mut s = st.borrow_mut();
        s.outstanding -= 1;
        let more = s.next < s.total;
        let finished = !more && s.outstanding == 0;
        (
            more,
            finished.then(|| s.on_done.take().expect("pump finished twice")),
        )
    };
    if more {
        issue_one(eng, st);
    }
    if let Some(cb) = done_now {
        cb(eng);
    }
}

/// Convenience: run one pump per locality and invoke `all_done` when every
/// locality's pump has drained.
pub fn pump_all(
    eng: &mut Engine<World>,
    n_locs: u32,
    total_per_loc: u64,
    window: usize,
    issue: Rc<IssueFn>,
    all_done: impl FnOnce(&mut Engine<World>) + 'static,
) {
    let remaining = Rc::new(RefCell::new(n_locs));
    let all_done = Rc::new(RefCell::new(Some(
        Box::new(all_done) as Box<dyn FnOnce(&mut Engine<World>)>
    )));
    for loc in 0..n_locs {
        let remaining = remaining.clone();
        let all_done = all_done.clone();
        pump(eng, loc, total_per_loc, window, issue.clone(), move |eng| {
            *remaining.borrow_mut() -= 1;
            if *remaining.borrow() == 0 {
                let cb = all_done.borrow_mut().take().expect("all_done fired twice");
                cb(eng);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agas::{Distribution, GasMode};
    use parcel_rt::Runtime;
    use std::cell::Cell;

    #[test]
    fn pump_runs_exact_count() {
        let mut rt = Runtime::builder(2, GasMode::AgasNetwork).boot();
        let arr = rt.alloc(2, 12, Distribution::Cyclic);
        let issued = Rc::new(Cell::new(0u64));
        let i2 = issued.clone();
        let gva = arr.block(1);
        let issue: Rc<IssueFn> = Rc::new(move |eng, loc, _seq, ctx| {
            i2.set(i2.get() + 1);
            agas::ops::memput(eng, loc, gva, vec![1u8; 8], ctx);
        });
        let done = Rc::new(Cell::new(false));
        let d2 = done.clone();
        pump(&mut rt.eng, 0, 25, 4, issue, move |_| d2.set(true));
        rt.run();
        assert_eq!(issued.get(), 25);
        assert!(done.get());
    }

    #[test]
    fn pump_zero_total_fires_done() {
        let mut rt = Runtime::builder(1, GasMode::Pgas).boot();
        let done = Rc::new(Cell::new(false));
        let d2 = done.clone();
        let issue: Rc<IssueFn> = Rc::new(|_, _, _, _| panic!("must not issue"));
        pump(&mut rt.eng, 0, 0, 4, issue, move |_| d2.set(true));
        rt.run();
        assert!(done.get());
    }

    #[test]
    fn window_limits_outstanding() {
        // With window 1 and a high-latency fabric, ops strictly serialize:
        // total time ≈ n × per-op latency.
        let mut rt = Runtime::builder(2, GasMode::AgasNetwork).boot();
        let arr = rt.alloc(2, 12, Distribution::Cyclic);
        let gva = arr.block(1);
        let issue: Rc<IssueFn> = Rc::new(move |eng, loc, _seq, ctx| {
            agas::ops::memput(eng, loc, gva, vec![1u8; 8], ctx);
        });
        pump(&mut rt.eng, 0, 10, 1, issue.clone(), |_| {});
        rt.run();
        let serial = rt.now();

        let mut rt2 = Runtime::builder(2, GasMode::AgasNetwork).boot();
        let arr2 = rt2.alloc(2, 12, Distribution::Cyclic);
        let gva2 = arr2.block(1);
        let issue2: Rc<IssueFn> = Rc::new(move |eng, loc, _seq, ctx| {
            agas::ops::memput(eng, loc, gva2, vec![1u8; 8], ctx);
        });
        pump(&mut rt2.eng, 0, 10, 10, issue2, |_| {});
        rt2.run();
        let pipelined = rt2.now();
        assert!(pipelined < serial, "pipelined={pipelined} serial={serial}");
        let _ = gva;
    }

    #[test]
    fn pump_all_waits_for_every_locality() {
        let mut rt = Runtime::builder(4, GasMode::AgasNetwork).boot();
        let arr = rt.alloc(8, 12, Distribution::Cyclic);
        let done = Rc::new(Cell::new(false));
        let d2 = done.clone();
        let blocks = arr.blocks.clone();
        let issue: Rc<IssueFn> = Rc::new(move |eng, loc, seq, ctx| {
            let gva = blocks[((seq + loc as u64) % 8) as usize];
            agas::ops::memput(eng, loc, gva, vec![2u8; 8], ctx);
        });
        pump_all(&mut rt.eng, 4, 12, 3, issue, move |_| d2.set(true));
        rt.run();
        assert!(done.get());
        assert_eq!(rt.eng.state.total_gas_stats().puts, 48);
    }
}
