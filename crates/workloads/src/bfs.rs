//! Message-driven breadth-first search — the irregular-application class
//! (distributed graph algorithms) that motivated HPX-5's runtime group.
//!
//! Label-correcting BFS in the message-driven idiom: a `relax(v, depth)`
//! parcel is sent *to vertex v's label* (a cell in a distributed GAS
//! array). The action compares-and-lowers the label and, on improvement,
//! spawns relax parcels to every neighbor. No barriers, no frontier
//! structure: termination is network quiescence (the engine running dry),
//! exactly how a message-driven runtime detects it.
//!
//! The graph *structure* (adjacency) is replicated read-only data, like the
//! program text; the *labels* are distributed mutable GAS state — so label
//! blocks can migrate mid-traversal and the algorithm must still converge.

use agas::{Distribution, GlobalArray};
use netsim::rng::Xoshiro256;
use netsim::Time;
use parcel_rt::{ArgReader, ArgWriter, Runtime, RuntimeBuilder};
use std::cell::RefCell;
use std::rc::Rc;

/// Unreached-vertex label.
pub const INFINITY: u64 = u64::MAX;

/// A replicated undirected graph structure (CSR).
#[derive(Clone, Debug)]
pub struct Graph {
    /// CSR row offsets (`n + 1` entries).
    pub offsets: Vec<u32>,
    /// CSR adjacency.
    pub edges: Vec<u32>,
}

impl Graph {
    /// Number of vertices.
    pub fn n(&self) -> u32 {
        self.offsets.len() as u32 - 1
    }

    /// Number of (directed) edges.
    pub fn m(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// A connected "small-world" graph: a ring plus `chords` random chords
    /// per vertex. Deterministic for a seed; always connected (the ring).
    pub fn small_world(n: u32, chords: u32, seed: u64) -> Graph {
        assert!(n >= 2);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
        for v in 0..n {
            let w = (v + 1) % n;
            adj[v as usize].push(w);
            adj[w as usize].push(v);
        }
        for v in 0..n {
            for _ in 0..chords {
                let w = rng.next_below(n as u64) as u32;
                if w != v {
                    adj[v as usize].push(w);
                    adj[w as usize].push(v);
                }
            }
        }
        let mut offsets = Vec::with_capacity(n as usize + 1);
        let mut edges = Vec::new();
        offsets.push(0);
        for v in 0..n {
            adj[v as usize].sort_unstable();
            adj[v as usize].dedup();
            edges.extend_from_slice(&adj[v as usize]);
            offsets.push(edges.len() as u32);
        }
        Graph { offsets, edges }
    }

    /// Sequential BFS oracle.
    pub fn bfs_oracle(&self, root: u32) -> Vec<u64> {
        let mut dist = vec![INFINITY; self.n() as usize];
        let mut queue = std::collections::VecDeque::new();
        dist[root as usize] = 0;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if dist[w as usize] == INFINITY {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }
}

/// BFS configuration.
#[derive(Clone, Copy, Debug)]
pub struct BfsConfig {
    /// Vertices.
    pub vertices: u32,
    /// Random chords per vertex (graph density knob).
    pub chords: u32,
    /// Label-array block size class.
    pub block_class: u8,
    /// Root vertex.
    pub root: u32,
    /// Graph seed.
    pub seed: u64,
}

impl Default for BfsConfig {
    fn default() -> BfsConfig {
        BfsConfig {
            vertices: 1024,
            chords: 2,
            block_class: 12,
            root: 0,
            seed: 0xB_F5,
        }
    }
}

/// BFS outcome.
#[derive(Clone, Copy, Debug)]
pub struct BfsResult {
    /// Simulated traversal time.
    pub elapsed: Time,
    /// Relax actions executed.
    pub relaxations: u64,
    /// Traversed edges per second (TEPS; edges = graph edges, every BFS
    /// touches each at least once from one side).
    pub teps: f64,
}

/// Everything the relax action needs, installed after boot.
pub struct BfsState {
    /// The replicated graph.
    pub graph: Graph,
    /// The distributed label array.
    pub labels: GlobalArray,
    /// Relaxation counter.
    pub relaxations: std::cell::Cell<u64>,
}

/// Register the BFS relax action (before boot). The state slot is filled
/// after allocation via [`install`].
pub fn register_actions(b: &mut RuntimeBuilder, slot: Rc<RefCell<Option<BfsState>>>) {
    b.register("bfs_relax", move |eng, ctx| {
        let mut r = ArgReader::new(&ctx.args);
        let vertex = r.u32();
        let depth = r.u64();
        let (neighbors, labels) = {
            let st = slot.borrow();
            let st = st.as_ref().expect("BFS state not installed");
            st.relaxations.set(st.relaxations.get() + 1);
            (st.graph.neighbors(vertex).to_vec(), st.labels.clone())
        };
        // The label cell is inside the pinned target block.
        let phys = ctx.target_phys();
        let mem = eng.state.cluster.mem_mut(ctx.loc);
        let cur = u64::from_le_bytes(mem.read(phys, 8).unwrap().try_into().unwrap());
        if depth >= cur {
            return; // no improvement: the wave dies here
        }
        mem.write(phys, &depth.to_le_bytes()).unwrap();
        // Propagate to all neighbors.
        let relax = eng.state.registry_lookup("bfs_relax").unwrap();
        for w in neighbors {
            let target = labels.at_byte(w as u64 * 8);
            let args = ArgWriter::new().u32(w).u64(depth + 1).finish();
            parcel_rt::send_parcel(
                eng,
                ctx.loc,
                parcel_rt::Parcel {
                    target,
                    action: relax,
                    args,
                    cont: None,
                    src: ctx.loc,
                    hops: 0,
                },
            );
        }
    });
}

/// Allocate the label array (all `INFINITY`) and install the shared state.
pub fn install(rt: &mut Runtime, cfg: &BfsConfig, slot: &Rc<RefCell<Option<BfsState>>>) {
    let graph = Graph::small_world(cfg.vertices, cfg.chords, cfg.seed);
    let bytes = cfg.vertices as u64 * 8;
    let n_blocks = bytes.div_ceil(1 << cfg.block_class);
    let labels = rt.alloc(n_blocks, cfg.block_class, Distribution::Cyclic);
    for v in 0..cfg.vertices as u64 {
        let gva = labels.at_byte(v * 8);
        rt.write_block(gva.block_base(), gva.offset(), &INFINITY.to_le_bytes());
    }
    *slot.borrow_mut() = Some(BfsState {
        graph,
        labels,
        relaxations: std::cell::Cell::new(0),
    });
}

/// Run BFS from the configured root; the engine running dry is the
/// termination detection.
pub fn run(rt: &mut Runtime, cfg: &BfsConfig, slot: &Rc<RefCell<Option<BfsState>>>) -> BfsResult {
    let relax = rt
        .eng
        .state
        .registry_lookup("bfs_relax")
        .expect("BFS requires register_actions() before boot");
    let (target, m) = {
        let st = slot.borrow();
        let st = st.as_ref().expect("BFS state not installed");
        (st.labels.at_byte(cfg.root as u64 * 8), st.graph.m())
    };
    let t0 = rt.now();
    let args = ArgWriter::new().u32(cfg.root).u64(0).finish();
    rt.spawn(0, target, relax, args, None);
    rt.run();
    let elapsed = rt.now() - t0;
    let relaxations = slot.borrow().as_ref().unwrap().relaxations.get();
    BfsResult {
        elapsed,
        relaxations,
        teps: m as f64 / elapsed.as_secs_f64(),
    }
}

/// Read the computed labels back (driver-side).
pub fn read_labels(rt: &Runtime, slot: &Rc<RefCell<Option<BfsState>>>) -> Vec<u64> {
    let st = slot.borrow();
    let st = st.as_ref().unwrap();
    let n = st.graph.n() as u64;
    let mut out = Vec::with_capacity(n as usize);
    for v in 0..n {
        let gva = st.labels.at_byte(v * 8);
        let block = rt.read_block(gva.block_base());
        let off = gva.offset() as usize;
        out.push(u64::from_le_bytes(block[off..off + 8].try_into().unwrap()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use agas::GasMode;

    fn small() -> BfsConfig {
        BfsConfig {
            vertices: 200,
            chords: 2,
            block_class: 9, // 64 labels per block
            root: 7,
            seed: 99,
        }
    }

    #[test]
    fn graph_generator_is_connected_and_symmetric() {
        let g = Graph::small_world(100, 1, 3);
        assert_eq!(g.n(), 100);
        // Symmetry: w in adj(v) iff v in adj(w).
        for v in 0..100u32 {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w).contains(&v), "{v} -> {w} not symmetric");
            }
        }
        // Connectivity: oracle reaches everything.
        let dist = g.bfs_oracle(0);
        assert!(dist.iter().all(|&d| d != INFINITY));
    }

    #[test]
    fn bfs_matches_oracle_all_modes() {
        for mode in GasMode::ALL {
            let cfg = small();
            let slot = Rc::new(RefCell::new(None));
            let mut b = Runtime::builder(4, mode);
            register_actions(&mut b, slot.clone());
            let mut rt = b.boot();
            install(&mut rt, &cfg, &slot);
            let res = run(&mut rt, &cfg, &slot);
            let got = read_labels(&rt, &slot);
            let expect = slot.borrow().as_ref().unwrap().graph.bfs_oracle(cfg.root);
            assert_eq!(got, expect, "{mode:?}");
            assert!(res.relaxations >= cfg.vertices as u64, "{mode:?}");
            assert!(res.teps > 0.0);
        }
    }

    #[test]
    fn bfs_survives_migration_storm() {
        let cfg = small();
        let slot = Rc::new(RefCell::new(None));
        let mut b = Runtime::builder(4, GasMode::AgasNetwork);
        register_actions(&mut b, slot.clone());
        let mut rt = b.boot();
        install(&mut rt, &cfg, &slot);
        // Launch the traversal, then immediately churn every label block.
        let relax = rt.eng.state.registry_lookup("bfs_relax").unwrap();
        let target = slot
            .borrow()
            .as_ref()
            .unwrap()
            .labels
            .at_byte(cfg.root as u64 * 8);
        rt.spawn(
            0,
            target,
            relax,
            ArgWriter::new().u32(cfg.root).u64(0).finish(),
            None,
        );
        let blocks = slot.borrow().as_ref().unwrap().labels.blocks.clone();
        for (i, gva) in blocks.iter().enumerate() {
            rt.migrate(0, *gva, ((i as u32) + 1) % 4);
            rt.eng.run_steps(50);
        }
        rt.run();
        let got = read_labels(&rt, &slot);
        let expect = slot.borrow().as_ref().unwrap().graph.bfs_oracle(cfg.root);
        assert_eq!(got, expect, "migration corrupted the traversal");
    }

    #[test]
    fn bfs_works_over_isir_transport() {
        let cfg = small();
        let slot = Rc::new(RefCell::new(None));
        let mut b = Runtime::builder(3, GasMode::AgasSoftware);
        register_actions(&mut b, slot.clone());
        let mut rt = b
            .rt_config(parcel_rt::RtConfig {
                transport: parcel_rt::Transport::Isir,
                ..parcel_rt::RtConfig::default()
            })
            .boot();
        install(&mut rt, &cfg, &slot);
        run(&mut rt, &cfg, &slot);
        let got = read_labels(&rt, &slot);
        let expect = slot.borrow().as_ref().unwrap().graph.bfs_oracle(cfg.root);
        assert_eq!(got, expect);
    }

    #[test]
    fn denser_graph_relaxes_more() {
        let run_with = |chords| {
            let cfg = BfsConfig { chords, ..small() };
            let slot = Rc::new(RefCell::new(None));
            let mut b = Runtime::builder(4, GasMode::Pgas);
            register_actions(&mut b, slot.clone());
            let mut rt = b.boot();
            install(&mut rt, &cfg, &slot);
            run(&mut rt, &cfg, &slot).relaxations
        };
        assert!(run_with(4) > run_with(1));
    }
}
