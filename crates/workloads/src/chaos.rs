//! Chaos driver: a history-checked workload run under network fault
//! injection (DESIGN.md §3.4).
//!
//! The driver boots a full runtime with a [`FaultPlan`] installed on the
//! cluster's fault plane, turns on the GAS recovery machinery
//! (`op_deadline` + `retry_on_deadline`) and the per-locality operation
//! history, then drives rounds of remote puts/gets — optionally with
//! migration churn and rendezvous-sized parcels — and reports everything a
//! correctness gate needs: completion accounting, injection counters,
//! recovery counters, and the serializability verdict of the committed
//! history checker.
//!
//! Two properties make the workload safe under every fault class:
//!
//! * **Slot-idempotent writes.** Each locality owns one 8-byte slot per
//!   block and always writes the same value to it (derived from
//!   `(block, slot)`, never from the round). A duplicated or retried put
//!   request that re-applies its bytes late is therefore harmless, and the
//!   checker's legal value set for a slot is exactly {zeros, slot value}.
//! * **No unrecoverable protocols under loss.** Parcels have no retransmit
//!   layer, so spawns are off by default and meant for corruption-focused
//!   plans (where the checksum path, not delivery, is under test);
//!   migration traffic bypasses the fault plane by design.

use agas::check::{check_blocks, check_history, Violation};
use agas::{Distribution, GasConfig, GasMode, GasStats, Gva};
use netsim::rng::mix64;
use netsim::{Counters, FaultPlan, FaultRates, FaultStats, OutcomeCounters, Time};
use parcel_rt::{ArgWriter, RtConfig, Runtime, Transport};
use photon::PhotonConfig;
use std::cell::Cell;
use std::rc::Rc;

/// Chaos run configuration.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// GAS implementation under test.
    pub mode: GasMode,
    /// Cluster size.
    pub localities: u32,
    /// Engine seed (the fault plane has its own seed inside `plan`).
    pub plan: FaultPlan,
    /// Engine seed.
    pub seed: u64,
    /// Issue rounds (each round: one put + one get per locality).
    pub rounds: u64,
    /// Global array size in blocks (4 KiB each).
    pub blocks: u64,
    /// Migrate one block every `churn` rounds (0 = no churn; ignored under
    /// PGAS).
    pub churn: u64,
    /// Send a rendezvous-sized parcel every other round over the ISIR
    /// transport, exercising the payload-corruption / checksum path. Only
    /// sensible with drop-free plans: parcels have no retransmit.
    pub spawns: bool,
    /// Issue one NIC-executed fetch-add per locality per round against a
    /// rotating block's AMO words (offsets 0..64, disjoint from the put/get
    /// slot table), exercising the AMO request/completion classes and the
    /// responder replay cache under faults.
    pub amos: bool,
    /// Photon endpoint tuning for the run; set `ring` to drive every op
    /// through the descriptor-ring issue path under the fault plane.
    pub photon: PhotonConfig,
    /// Run the elastic-membership schedule (requires `localities >= 4`):
    /// the last locality starts `Joining` and joins (taking a slice of
    /// locality 0's directory shard) at ¼ of the rounds; locality 2 drains
    /// at ½ while traffic keeps flowing; locality 1 crashes at ¾ (after a
    /// quiescence point — migration completions carry no deadline, so the
    /// driver only kills a node at a migration-quiescent boundary) and its
    /// blocks are recovered zero-filled at the survivors. Under PGAS the
    /// schedule is metadata-only (the joiner joins, then leaves; static
    /// placement cannot evacuate or recover blocks, so nothing crashes).
    pub membership: bool,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            mode: GasMode::AgasNetwork,
            localities: 4,
            plan: FaultPlan::lossless(1),
            seed: 1,
            rounds: 24,
            blocks: 8,
            churn: 4,
            spawns: false,
            amos: false,
            photon: PhotonConfig::default(),
            membership: false,
        }
    }
}

/// Everything a chaos gate asserts on.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Mode the cell ran under.
    pub mode: GasMode,
    /// Engine seed.
    pub seed: u64,
    /// Puts issued by the driver.
    pub puts_issued: u64,
    /// Gets issued by the driver.
    pub gets_issued: u64,
    /// Migrations issued by the driver.
    pub migrations_issued: u64,
    /// Rendezvous parcels spawned by the driver.
    pub spawns_issued: u64,
    /// NIC-executed AMOs issued by the driver.
    pub amos_issued: u64,
    /// Put completions delivered to the driver.
    pub put_acks: u64,
    /// Get completions delivered to the driver.
    pub get_acks: u64,
    /// Migration completions delivered to the driver.
    pub migration_acks: u64,
    /// Parcel continuations that fired (a corrupted parcel never replies).
    pub spawn_replies: u64,
    /// AMO completions delivered to the driver.
    pub amo_acks: u64,
    /// Ops that exhausted their retry budget and failed cleanly.
    pub op_failures: u64,
    /// Gets whose data was neither zeros nor the slot's one legal value.
    pub data_mismatches: u64,
    /// ISIR parcels discarded by the wire checksum.
    pub corrupt_parcels: u64,
    /// Aggregate GAS stats (includes `retries` and `deadline_retries`).
    pub gas: GasStats,
    /// Aggregate per-op outcome counters.
    pub outcomes: OutcomeCounters,
    /// Aggregate NIC/network counters (forwards, NACKs, …).
    pub net: Counters,
    /// What the fault plane actually injected.
    pub faults: FaultStats,
    /// Structural + serializability violations (must be empty).
    pub violations: Vec<Violation>,
    /// Trace hash after quiescence (determinism witness).
    pub trace_hash: u64,
    /// Simulated end time.
    pub end: Time,
    /// Total events executed over the whole run.
    pub events: u64,
}

impl ChaosReport {
    /// Driver-side async ops issued (spawns excluded — they complete via
    /// LCO continuations, not op completions).
    pub fn issued(&self) -> u64 {
        self.puts_issued + self.gets_issued + self.migrations_issued + self.amos_issued
    }

    /// Completions that came back.
    pub fn acked(&self) -> u64 {
        self.put_acks + self.get_acks + self.migration_acks + self.amo_acks
    }

    /// Every issued op either completed or failed cleanly — nothing was
    /// silently lost.
    pub fn accounted(&self) -> bool {
        self.acked() + self.op_failures == self.issued()
    }

    /// The run's correctness verdict: consistent history, full accounting,
    /// no driver-visible data corruption.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.accounted() && self.data_mismatches == 0
    }
}

/// Drop-heavy mix: drops, duplicates, and delay spikes at rate `p`, no
/// payload corruption. The recovery path under test is deadline retry.
pub fn drop_mix(seed: u64, p: f64) -> FaultPlan {
    FaultPlan {
        seed,
        rates: FaultRates {
            drop: p,
            dup: p / 2.0,
            corrupt: 0.0,
            delay_p: p,
            delay_min_ns: 200,
            delay_max_ns: 4_000,
        },
        link_rates: Vec::new(),
        flaps: Vec::new(),
        partitions: Vec::new(),
    }
}

/// Corruption-heavy mix: corrupt draws and delay spikes at rate `p`, plus
/// light duplication, no outright drops. The paths under test are the
/// request-corruption CRC drop (recovered by deadline retry) and the parcel
/// checksum.
pub fn corrupt_mix(seed: u64, p: f64) -> FaultPlan {
    FaultPlan {
        seed,
        rates: FaultRates {
            drop: 0.0,
            dup: p / 2.0,
            corrupt: p,
            delay_p: p,
            delay_min_ns: 200,
            delay_max_ns: 4_000,
        },
        link_rates: Vec::new(),
        flaps: Vec::new(),
        partitions: Vec::new(),
    }
}

/// The single legal non-zero value of `(block, slot)` — every put to the
/// slot writes exactly this, so duplicated/retried applications are
/// idempotent.
fn slot_value(block: u64, slot: u32) -> u64 {
    mix64(0xC0A5_u64 ^ (block << 8) ^ slot as u64)
}

/// Byte offset of locality `slot`'s private slot inside each block.
fn slot_offset(slot: u32) -> u64 {
    64 + slot as u64 * 8
}

/// Run one chaos cell to quiescence and collect the report.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let n = cfg.localities;
    assert!(n >= 2, "chaos needs remote traffic");
    assert!(
        slot_offset(n - 1) + 8 <= 1 << 12,
        "localities must fit the per-block slot table"
    );
    let mut b = Runtime::builder(n as usize, cfg.mode)
        .seed(cfg.seed)
        .photon(cfg.photon)
        .faults(cfg.plan.clone())
        .gas_config(GasConfig {
            op_deadline: Some(Time::from_us(300)),
            sweep_interval: Time::from_us(30),
            retry_on_deadline: true,
            record_history: true,
            ..GasConfig::default()
        });
    if cfg.spawns {
        // ISIR serializes parcels onto the wire, which is what gives the
        // corruption path (and the checksum that catches it) something to
        // chew on.
        b = b.rt_config(RtConfig {
            transport: Transport::Isir,
            ..RtConfig::default()
        });
    }
    let spawn_replies = Rc::new(Cell::new(0u64));
    let sr = spawn_replies.clone();
    let touch = b.register("chaos_touch", move |eng, ctx| {
        sr.set(sr.get() + 1);
        parcel_rt::reply(eng, &ctx, vec![]);
    });
    let mut rt = b.boot();
    let arr = rt.alloc(cfg.blocks, 12, Distribution::Cyclic);

    // Membership schedule: who transitions, and when (see the field doc).
    let (joiner, drainee, crashee) = (n - 1, 2u32, 1u32);
    let drainee = if cfg.mode.supports_migration() {
        drainee
    } else {
        joiner // PGAS: the joiner leaves again; nothing can evacuate
    };
    let r_join = cfg.rounds / 4;
    let r_drain = cfg.rounds / 2;
    let r_crash = cfg.rounds * 3 / 4;
    if cfg.membership {
        assert!(n >= 4, "the membership schedule needs 4 localities");
        assert!(cfg.rounds >= 8, "the membership schedule needs >= 8 rounds");
        agas::membership::mark(&mut rt.eng, joiner, agas::MemberState::Joining);
    }
    // Is locality `l` issuing driver traffic this round? Joining members
    // issue nothing until they join; drained/crashed members issue nothing
    // from their transition round on. (Traffic *to* their blocks keeps
    // flowing — that is the point of the exercise.)
    let participates = |l: u32, round: u64| -> bool {
        if !cfg.membership {
            return true;
        }
        (l != joiner || round >= r_join)
            && (l != drainee || round < r_drain)
            && (!cfg.mode.supports_migration() || l != crashee || round < r_crash)
    };

    let put_acks = Rc::new(Cell::new(0u64));
    let get_acks = Rc::new(Cell::new(0u64));
    let migration_acks = Rc::new(Cell::new(0u64));
    let amo_acks = Rc::new(Cell::new(0u64));
    let data_mismatches = Rc::new(Cell::new(0u64));
    let mut puts_issued = 0u64;
    let mut gets_issued = 0u64;
    let mut migrations_issued = 0u64;
    let mut spawns_issued = 0u64;
    let mut amos_issued = 0u64;

    for round in 0..cfg.rounds {
        if cfg.membership {
            if round == r_join {
                agas::membership::join(&mut rt.eng, joiner, 0);
            }
            if round == r_drain {
                agas::membership::drain(&mut rt.eng, drainee);
            }
            if round == r_crash && cfg.mode.supports_migration() {
                // Quiesce first: migration completions carry no deadline,
                // so an in-flight hand-off severed mid-protocol would hang
                // its requester forever. (The drain above also finishes
                // here — the evacuation pump runs until the node is Left.)
                rt.run();
                // Make sure the victim holds at least one block, so the
                // crash always has home-directory state to recover.
                let acks = migration_acks.clone();
                rt.migrate_cb(0, arr.block(0), crashee, move |_, _| {
                    acks.set(acks.get() + 1)
                });
                migrations_issued += 1;
                rt.run();
                agas::membership::crash(&mut rt.eng, crashee);
                // Let teardown + survivor notices execute so the next
                // round's traffic routes through the updated views.
                rt.eng.run_steps(64);
            }
        }
        for l in 0..n {
            if !participates(l, round) {
                continue;
            }
            // Writer: locality l refreshes its own slot of a rotating block.
            let wb = (round + 3 * l as u64) % cfg.blocks;
            let val = slot_value(wb, l);
            let acks = put_acks.clone();
            rt.memput_cb(
                l,
                arr.block(wb).with_offset(slot_offset(l)),
                val.to_le_bytes().to_vec(),
                move |_, _| acks.set(acks.get() + 1),
            );
            puts_issued += 1;

            // Reader: locality l audits another locality's slot. Anything
            // other than zeros (slot never written yet) or the slot's one
            // legal value is corruption the checker must also flag.
            let rb = (round + 5 * l as u64 + 1) % cfg.blocks;
            let owner = (l + 1) % n;
            let expect = slot_value(rb, owner);
            let acks = get_acks.clone();
            let bad = data_mismatches.clone();
            rt.memget_cb(
                l,
                arr.block(rb).with_offset(slot_offset(owner)),
                8,
                move |_, data| {
                    acks.set(acks.get() + 1);
                    let got = u64::from_le_bytes(data[..8].try_into().unwrap());
                    if got != 0 && got != expect {
                        bad.set(bad.get() + 1);
                    }
                },
            );
            gets_issued += 1;
        }

        if cfg.amos {
            for l in 0..n {
                if !participates(l, round) {
                    continue;
                }
                // Counter: locality l fetch-adds a rotating block's AMO
                // word. Words live at offsets 0..64, strictly below the
                // put/get slot table, so the word-level oracle sees every
                // observation and nothing aliases byte traffic.
                let ab = (round + 7 * l as u64) % cfg.blocks;
                let word = (round + l as u64) % 8;
                let acks = amo_acks.clone();
                rt.memamo_cb(
                    l,
                    arr.block(ab).with_offset(word * 8),
                    netsim::AmoOp::FetchAdd { operand: 1 },
                    move |_, _| acks.set(acks.get() + 1),
                );
                amos_issued += 1;
            }
        }

        if cfg.churn > 0 && round % cfg.churn == 0 && cfg.mode.supports_migration() {
            let k = round / cfg.churn;
            let req = (k % n as u64) as u32;
            let dst = ((k + 1) % n as u64) as u32;
            // Churn only between issuing members (migrating *to* a
            // draining or departed locality would no-op anyway).
            if participates(req, round) && participates(dst, round) {
                let acks = migration_acks.clone();
                rt.migrate_cb(req, arr.block(k % cfg.blocks), dst, move |_, _| {
                    acks.set(acks.get() + 1)
                });
                migrations_issued += 1;
            }
        }

        if cfg.spawns && round % 2 == 0 {
            // Above the eager threshold: forces the rendezvous data
            // transfer the fault plane is allowed to corrupt in place.
            let from = (round % n as u64) as u32;
            let args = ArgWriter::new().bytes(&vec![0x5A; 8192]).finish();
            rt.spawn(from, rt.anchor((from + 1) % n), touch, args, None);
            spawns_issued += 1;
        }

        rt.eng.run_steps(64);
    }
    rt.run();
    let events = rt.eng.events_executed();

    let world = &rt.eng.state;
    let mut violations = check_blocks(world, &arr.blocks);
    violations.extend(check_history(world));
    let anchors: Vec<Gva> = (0..n).map(|l| rt.anchor(l)).collect();
    violations.extend(check_blocks(world, &anchors));

    ChaosReport {
        mode: cfg.mode,
        seed: cfg.seed,
        puts_issued,
        gets_issued,
        migrations_issued,
        spawns_issued,
        amos_issued,
        put_acks: put_acks.get(),
        get_acks: get_acks.get(),
        migration_acks: migration_acks.get(),
        spawn_replies: spawn_replies.get(),
        amo_acks: amo_acks.get(),
        op_failures: world.op_failures.len() as u64,
        data_mismatches: data_mismatches.get(),
        corrupt_parcels: world.corrupt_parcels,
        gas: world.total_gas_stats(),
        outcomes: world.total_outcomes(),
        net: world.cluster.total_counters(),
        faults: world
            .cluster
            .faults
            .as_ref()
            .map(|f| f.stats)
            .unwrap_or_default(),
        violations,
        trace_hash: rt.eng.trace_hash(),
        end: rt.now(),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_chaos_is_fully_acked_in_every_mode() {
        for mode in GasMode::ALL {
            let r = run_chaos(&ChaosConfig {
                mode,
                rounds: 12,
                ..ChaosConfig::default()
            });
            assert!(r.passed(), "{mode:?}: {r:?}");
            assert_eq!(r.op_failures, 0, "{mode:?}");
            assert_eq!(r.faults.total_drops(), 0, "{mode:?}");
            assert_eq!(r.acked(), r.issued(), "{mode:?}");
        }
    }

    #[test]
    fn dropped_messages_are_recovered_by_deadline_retry() {
        let r = run_chaos(&ChaosConfig {
            plan: drop_mix(7, 0.05),
            rounds: 16,
            ..ChaosConfig::default()
        });
        assert!(r.passed(), "{r:?}");
        assert!(
            r.faults.dropped > 0,
            "plan injected nothing: {:?}",
            r.faults
        );
        assert!(
            r.gas.deadline_retries > 0,
            "drops must exercise the sweep-retry path: {:?}",
            r.gas
        );
    }

    #[test]
    fn amo_traffic_is_fully_acked_and_checked() {
        for mode in GasMode::ALL {
            let r = run_chaos(&ChaosConfig {
                mode,
                rounds: 12,
                amos: true,
                ..ChaosConfig::default()
            });
            assert!(r.passed(), "{mode:?}: {r:?}");
            assert_eq!(r.amo_acks, r.amos_issued, "{mode:?}");
            assert_eq!(r.gas.amos, r.amos_issued, "{mode:?}");
        }
    }

    #[test]
    fn chaos_is_deterministic() {
        let cfg = ChaosConfig {
            plan: drop_mix(3, 0.02),
            rounds: 10,
            ..ChaosConfig::default()
        };
        let a = run_chaos(&cfg);
        let b = run_chaos(&cfg);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.end, b.end);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.acked(), b.acked());
    }

    #[test]
    fn membership_schedule_runs_lossless_in_every_mode() {
        for mode in GasMode::ALL {
            let r = run_chaos(&ChaosConfig {
                mode,
                membership: true,
                amos: true,
                ..ChaosConfig::default()
            });
            assert!(r.passed(), "{mode:?}: {r:?}");
            assert!(r.gas.blocks_rehomed > 0, "{mode:?}: join re-homed nothing");
            if mode.supports_migration() {
                assert!(
                    r.gas.blocks_recovered > 0,
                    "{mode:?}: crash recovered nothing: {:?}",
                    r.gas
                );
            }
        }
    }

    #[test]
    fn corrupted_parcels_are_caught_by_the_wire_checksum() {
        let r = run_chaos(&ChaosConfig {
            plan: corrupt_mix(11, 0.2),
            rounds: 20,
            spawns: true,
            churn: 0,
            ..ChaosConfig::default()
        });
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.accounted(), "{r:?}");
        assert!(
            r.corrupt_parcels > 0,
            "no parcel ever failed its checksum: {r:?}"
        );
        assert!(r.spawn_replies < r.spawns_issued);
    }
}
