//! # nmvgas — Network-Managed Virtual Global Address Space
//!
//! Facade crate for the reproduction of *Network-Managed Virtual Global
//! Address Space for Message-driven Runtimes* (Kulkarni, Dalessandro,
//! Kissel, Lumsdaine, Sterling, Swany — HPDC 2016). Re-exports the whole
//! stack:
//!
//! * [`netsim`] — deterministic cluster/NIC simulator (the hardware
//!   substitute, including the NIC-resident translation table);
//! * [`photon`] — the Photon RMA middleware reproduction (PWC, rendezvous,
//!   registration cache);
//! * [`agas`] — the paper's contribution: PGAS / software-AGAS /
//!   network-managed-AGAS behind one API, with block migration;
//! * [`parcel_rt`] — the HPX-5-style message-driven runtime (parcels,
//!   actions, LCOs, schedulers);
//! * [`workloads`] — GUPS, halo-exchange stencil, pointer chase, and
//!   skewed-access benchmarks.
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the system inventory and experiment index.

pub use agas;
pub use netsim;
pub use parcel_rt;
pub use photon;
pub use workloads;

pub use agas::{Distribution, GasConfig, GasMode, GlobalArray, Gva};
pub use netsim::{NetConfig, Time};
pub use parcel_rt::{ArgReader, ArgWriter, ReduceOp, RtConfig, Runtime, RuntimeBuilder};
