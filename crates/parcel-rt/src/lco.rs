//! Local control objects (LCOs) — the runtime's synchronization primitives.
//!
//! HPX-5 style: an LCO is a small global object with *trigger* semantics.
//! Setting it (possibly remotely, via an LCO-set parcel) may fire waiting
//! continuations. Three kinds:
//!
//! * **future** — set once with a value; waiters receive the value;
//! * **and-gate** — triggers after `n` sets (values ignored);
//! * **reduce** — accumulates `n` little-endian `u64` contributions with a
//!   [`ReduceOp`]; waiters receive the accumulated value.
//!
//! LCOs occupy the reserved GVA size class [`LCO_CLASS`]; they live at
//! their home locality and never migrate, so routing is pure address
//! arithmetic in every GAS mode.

use crate::parcel::{ActionId, Parcel, ACTION_LCO_SET};
use crate::sched;
use crate::world::{RtWorld, World};
use agas::Gva;
use netsim::{Engine, LocalityId};

/// The GVA size class reserved for LCOs (8-byte blocks, never in the BTT).
pub const LCO_CLASS: u8 = 3;

/// Reduction operators over `u64` contributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Wrapping sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise xor.
    Xor,
}

impl ReduceOp {
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Xor => a ^ b,
        }
    }

    fn identity(self) -> u64 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Min => u64::MAX,
            ReduceOp::Max => 0,
            ReduceOp::Xor => 0,
        }
    }
}

enum LcoKind {
    Future,
    And {
        remaining: u64,
    },
    Reduce {
        remaining: u64,
        op: ReduceOp,
        acc: u64,
    },
    Gather {
        remaining: u64,
        parts: Vec<(u32, Vec<u8>)>,
    },
}

enum Waiter {
    /// Spawn this parcel with the LCO value appended to `prefix` args.
    Parcel {
        target: Gva,
        action: ActionId,
        prefix: Vec<u8>,
        cont: Option<Gva>,
    },
    /// Invoke a driver callback (benchmark harness / example drivers).
    Driver(u64),
}

/// One LCO's state, stored at its home locality.
pub struct LcoState {
    kind: LcoKind,
    value: Option<Vec<u8>>,
    waiters: Vec<Waiter>,
}

impl LcoState {
    /// Has the LCO triggered?
    pub fn is_set(&self) -> bool {
        self.value.is_some()
    }

    /// The triggered value (empty for and-gates).
    pub fn value(&self) -> Option<&[u8]> {
        self.value.as_deref()
    }
}

fn new_lco<W: RtWorld>(eng: &mut Engine<W>, loc: LocalityId, kind: LcoKind) -> Gva {
    let rt = &mut eng.state.rt(loc);
    let seq = rt.next_lco_seq;
    rt.next_lco_seq += 1;
    let gva = Gva::new(loc, LCO_CLASS, seq, 0);
    eng.state.rt(loc).lcos.insert(
        gva.0,
        LcoState {
            kind,
            value: None,
            waiters: Vec::new(),
        },
    );
    gva
}

/// Create a future at `loc`.
pub fn new_future<W: RtWorld>(eng: &mut Engine<W>, loc: LocalityId) -> Gva {
    new_lco(eng, loc, LcoKind::Future)
}

/// Create an and-gate at `loc` that triggers after `n` sets.
pub fn new_and<W: RtWorld>(eng: &mut Engine<W>, loc: LocalityId, n: u64) -> Gva {
    assert!(n > 0, "and-gate needs at least one input");
    new_lco(eng, loc, LcoKind::And { remaining: n })
}

/// Create a reduce LCO at `loc` over `n` contributions.
pub fn new_reduce<W: RtWorld>(eng: &mut Engine<W>, loc: LocalityId, n: u64, op: ReduceOp) -> Gva {
    assert!(n > 0, "reduction needs at least one input");
    new_lco(
        eng,
        loc,
        LcoKind::Reduce {
            remaining: n,
            op,
            acc: op.identity(),
        },
    )
}

/// Create a gather LCO at `loc` over `n` rank-prefixed contributions
/// (see [`set_gather`] / [`decode_gather`]).
pub fn new_gather<W: RtWorld>(eng: &mut Engine<W>, loc: LocalityId, n: u64) -> Gva {
    assert!(n > 0, "gather needs at least one input");
    new_lco(
        eng,
        loc,
        LcoKind::Gather {
            remaining: n,
            parts: Vec::new(),
        },
    )
}

/// Contribute `value` from `rank` to a gather LCO.
pub fn set_gather<W: RtWorld>(
    eng: &mut Engine<W>,
    from: LocalityId,
    lco: Gva,
    rank: u32,
    value: &[u8],
) {
    let mut buf = Vec::with_capacity(value.len() + 4);
    buf.extend_from_slice(&rank.to_le_bytes());
    buf.extend_from_slice(value);
    lco_set(eng, from, lco, buf);
}

/// Decode a fired gather LCO's value into `(rank, bytes)` pairs, ordered
/// by rank.
pub fn decode_gather(bytes: &[u8]) -> Vec<(u32, Vec<u8>)> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let rank = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
        out.push((rank, bytes[pos + 8..pos + 8 + len].to_vec()));
        pos += 8 + len;
    }
    out
}

/// Set/contribute to `lco` from `from`. Remote sets travel as parcels.
pub fn lco_set<W: RtWorld>(eng: &mut Engine<W>, from: LocalityId, lco: Gva, value: Vec<u8>) {
    debug_assert_eq!(lco.class(), LCO_CLASS, "lco_set on a non-LCO address");
    let home = lco.home();
    if home == from {
        // Local set still pays a small scheduler cost for determinism with
        // the remote path's handler charge.
        let service = eng.state.rtcfg().lco_op;
        let now = eng.now();
        let (_, finish) = eng.state.cpu(from).admit(now, service);
        eng.state.cluster().loc_mut(from).counters.cpu_busy += service;
        eng.schedule_at(finish, move |eng| apply(eng, home, lco, value));
    } else {
        sched::send_parcel(
            eng,
            from,
            Parcel {
                target: lco,
                action: ACTION_LCO_SET,
                args: value,
                cont: None,
                src: from,
                hops: 0,
            },
        );
    }
}

/// Apply a set at the LCO's home (called by the scheduler for LCO parcels).
pub(crate) fn apply<W: RtWorld>(eng: &mut Engine<W>, loc: LocalityId, lco: Gva, value: Vec<u8>) {
    eng.state.rt(loc).stats.lco_ops += 1;
    let state = eng
        .state
        .rt(loc)
        .lcos
        .get_mut(&lco.0)
        .unwrap_or_else(|| panic!("set of unknown LCO {lco:?}"));
    let fired: Option<Vec<u8>> = match &mut state.kind {
        LcoKind::Future => {
            assert!(state.value.is_none(), "future {lco:?} set twice");
            Some(value)
        }
        LcoKind::And { remaining } => {
            assert!(*remaining > 0, "and-gate {lco:?} over-set");
            *remaining -= 1;
            (*remaining == 0).then(Vec::new)
        }
        LcoKind::Reduce { remaining, op, acc } => {
            assert!(*remaining > 0, "reduce {lco:?} over-set");
            let contribution = u64::from_le_bytes(
                value
                    .as_slice()
                    .try_into()
                    .expect("reduce contribution must be 8 bytes"),
            );
            *acc = op.apply(*acc, contribution);
            *remaining -= 1;
            (*remaining == 0).then(|| acc.to_le_bytes().to_vec())
        }
        LcoKind::Gather { remaining, parts } => {
            assert!(*remaining > 0, "gather {lco:?} over-set");
            assert!(value.len() >= 4, "gather contribution missing rank prefix");
            let rank = u32::from_le_bytes(value[..4].try_into().unwrap());
            parts.push((rank, value[4..].to_vec()));
            *remaining -= 1;
            (*remaining == 0).then(|| {
                parts.sort_by_key(|&(r, _)| r);
                let mut buf = Vec::new();
                for (r, data) in parts.iter() {
                    buf.extend_from_slice(&r.to_le_bytes());
                    buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
                    buf.extend_from_slice(data);
                }
                buf
            })
        }
    };
    if let Some(v) = fired {
        state.value = Some(v.clone());
        let waiters = std::mem::take(&mut state.waiters);
        fire(eng, loc, waiters, v);
    }
}

fn fire<W: RtWorld>(eng: &mut Engine<W>, loc: LocalityId, waiters: Vec<Waiter>, value: Vec<u8>) {
    for w in waiters {
        match w {
            Waiter::Parcel {
                target,
                action,
                mut prefix,
                cont,
            } => {
                prefix.extend_from_slice(&value);
                sched::send_parcel(
                    eng,
                    loc,
                    Parcel {
                        target,
                        action,
                        args: prefix,
                        cont,
                        src: loc,
                        hops: 0,
                    },
                );
            }
            Waiter::Driver(id) => {
                W::notify_driver(eng, loc, id, value.clone());
            }
        }
    }
}

/// When `lco` triggers, spawn `action` at `target` with `prefix ++ value`
/// as arguments. Must be called at the LCO's home locality (driver code can
/// always do this; actions receive LCO homes explicitly).
pub fn attach_parcel<W: RtWorld>(
    eng: &mut Engine<W>,
    lco: Gva,
    target: Gva,
    action: ActionId,
    prefix: Vec<u8>,
    cont: Option<Gva>,
) {
    let loc = lco.home();
    let state = eng
        .state
        .rt(loc)
        .lcos
        .get_mut(&lco.0)
        .unwrap_or_else(|| panic!("attach to unknown LCO {lco:?}"));
    if let Some(v) = state.value.clone() {
        let mut args = prefix;
        args.extend_from_slice(&v);
        sched::send_parcel(
            eng,
            loc,
            Parcel {
                target,
                action,
                args,
                cont,
                src: loc,
                hops: 0,
            },
        );
    } else {
        state.waiters.push(Waiter::Parcel {
            target,
            action,
            prefix,
            cont,
        });
    }
}

/// When `lco` triggers, notify driver slot `id` through
/// [`RtWorld::notify_driver`] — immediately if the LCO already fired.
/// The world decides what a slot means: the classic [`crate::World`] maps
/// it to a boxed callback, the sharded world records `(id, value)` for
/// post-run inspection.
pub fn attach_driver_slot<W: RtWorld>(eng: &mut Engine<W>, lco: Gva, id: u64) {
    let loc = lco.home();
    let ready = eng
        .state
        .rt(loc)
        .lcos
        .get(&lco.0)
        .unwrap_or_else(|| panic!("wait on unknown LCO {lco:?}"))
        .value
        .clone();
    if let Some(v) = ready {
        W::notify_driver(eng, loc, id, v);
    } else {
        eng.state
            .rt(loc)
            .lcos
            .get_mut(&lco.0)
            .unwrap()
            .waiters
            .push(Waiter::Driver(id));
    }
}

/// When `lco` triggers, invoke `cb` with the value (driver-side waiting —
/// how benchmarks and examples observe completion).
pub fn attach_driver(
    eng: &mut Engine<World>,
    lco: Gva,
    cb: impl FnOnce(&mut Engine<World>, Vec<u8>) + 'static,
) {
    let id = eng.state.next_driver_cb;
    eng.state.next_driver_cb += 1;
    eng.state.driver_cbs.insert(id, Box::new(cb));
    attach_driver_slot(eng, lco, id);
}

/// Inspect an LCO's state (driver/diagnostics).
pub fn peek<W: RtWorld>(world: &W, lco: Gva) -> Option<&LcoState> {
    world.rt_ref(lco.home()).lcos.get(&lco.0)
}
