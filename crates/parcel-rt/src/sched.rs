//! The per-locality parcel scheduler.
//!
//! Arriving parcels are routed (local execute vs. forward toward the
//! block's owner), charged against the locality's worker pool, pinned
//! against their target block, and run. The worker pool is *shared* with
//! the GAS software handlers — in software-AGAS mode remote memory traffic
//! and application actions fight for the same cores, which is precisely
//! the contention the network-managed design removes.
//!
//! Everything here is generic over [`RtWorld`], so the same scheduler
//! drives the classic single-threaded [`crate::World`] and the lane-safe
//! [`crate::ShardWorld`] running under a
//! [`ShardedEngine`](netsim::ShardedEngine).

use crate::lco::{self, LCO_CLASS};
use crate::parcel::{ActionCtx, Parcel, ACTION_LCO_SET};
use crate::world::{RtWorld, Transport, PARCEL_TAG};

use netsim::{send_user, Desc, Engine, LocalityId, PushOutcome, Time, TraceKind};

const MAX_PARCEL_HOPS: u8 = 64;

/// Inject `parcel` from `from`: route it toward the believed owner of its
/// target and send (loop-back when the first hop is local).
pub fn send_parcel<W: RtWorld>(eng: &mut Engine<W>, from: LocalityId, parcel: Parcel) {
    eng.state.rt(from).stats.parcels_sent += 1;
    let first_hop = if parcel.target.class() == LCO_CLASS {
        parcel.target.home()
    } else {
        match agas::ops::route(&mut eng.state, from, parcel.target) {
            agas::ops::Route::Local { .. } => from,
            agas::ops::Route::Forward(next) => next,
        }
    };
    transmit(eng, from, first_hop, parcel);
}

/// Put a parcel on the wire toward `next` using the configured transport.
pub(crate) fn transmit<W: RtWorld>(
    eng: &mut Engine<W>,
    from: LocalityId,
    next: LocalityId,
    parcel: Parcel,
) {
    match eng.state.rtcfg().transport {
        Transport::Pwc => {
            if from != next && eng.state.rt(from).parcel_rings.is_some() {
                ring_submit(eng, from, next, parcel);
                return;
            }
            let wire = parcel.wire_size();
            send_user(eng, from, next, wire, W::wrap_parcel(parcel));
        }
        Transport::Isir => {
            // Serialize and go through the tag-matching two-sided path
            // (eager/rendezvous + credits), as an MPI-backed runtime would.
            let bytes = parcel.encode();
            photon::send(eng, from, next, PARCEL_TAG, bytes, None);
        }
    }
}

/// Post `parcel` as a descriptor into `from`'s submission ring toward
/// `next`, ringing the doorbell when the batch threshold trips and arming
/// the moderation timer when the ring transitions from empty.
fn ring_submit<W: RtWorld>(
    eng: &mut Engine<W>,
    from: LocalityId,
    next: LocalityId,
    parcel: Parcel,
) {
    let now = eng.now();
    let desc = Desc {
        bytes: parcel.wire_size(),
        item: parcel,
        kind: "parcel",
        enqueued: now,
    };
    let rings = eng
        .state
        .rt(from)
        .parcel_rings
        .as_mut()
        .expect("ring_submit without rings configured");
    match rings.push(next, desc) {
        PushOutcome::Flush => ring_doorbell(eng, from, next),
        PushOutcome::Armed(epoch) => {
            // The adaptive controller may have shrunk the effective batch
            // — and with it the moderation delay — since construction.
            let delay = eng
                .state
                .rt(from)
                .parcel_rings
                .as_ref()
                .expect("rings vanished")
                .effective_delay(next);
            eng.schedule_at_loc(now + delay, from, move |eng| {
                let due = eng
                    .state
                    .rt(from)
                    .parcel_rings
                    .as_ref()
                    .is_some_and(|r| r.timer_due(next, epoch));
                if due {
                    ring_doorbell(eng, from, next);
                }
            });
        }
        PushOutcome::Buffered => {}
    }
}

/// Ring the doorbell: drain `from`'s submission ring toward `next` and send
/// the whole batch as one wire message (summed payloads + one shared header).
fn ring_doorbell<W: RtWorld>(eng: &mut Engine<W>, from: LocalityId, next: LocalityId) {
    let descs = eng
        .state
        .rt(from)
        .parcel_rings
        .as_mut()
        .expect("doorbell without rings configured")
        .drain(next);
    if descs.is_empty() {
        return;
    }
    eng.state.rt(from).stats.batches_sent += 1;
    let now = eng.now();
    eng.state.cluster().tracer.record(
        now,
        TraceKind::Doorbell {
            at: from,
            peer: next,
            descs: descs.len() as u32,
        },
    );
    let wire: u32 = descs.iter().map(|d| d.bytes).sum();
    let parcels: Vec<Parcel> = descs.into_iter().map(|d| d.item).collect();
    send_user(eng, from, next, wire, W::wrap_batch(parcels));
}

/// A parcel arrived at `dst` (called from the world's packet dispatch).
pub fn parcel_arrive<W: RtWorld>(
    eng: &mut Engine<W>,
    _src: LocalityId,
    dst: LocalityId,
    parcel: Parcel,
) {
    // LCO parcels: handled at the LCO's home with a light CPU charge.
    if parcel.target.class() == LCO_CLASS {
        let home = parcel.target.home();
        if home != dst {
            forward(eng, dst, parcel, home);
            return;
        }
        debug_assert_eq!(parcel.action, ACTION_LCO_SET, "non-set parcel at an LCO");
        let service = eng.state.rtcfg().lco_op;
        let now = eng.now();
        let (_, finish) = eng.state.cpu(dst).admit(now, service);
        eng.state.cluster().loc_mut(dst).counters.cpu_busy += service;
        let (lco, value) = (parcel.target, parcel.args);
        eng.schedule_at(finish, move |eng| lco::apply(eng, dst, lco, value));
        return;
    }
    match agas::ops::route(&mut eng.state, dst, parcel.target) {
        agas::ops::Route::Local { .. } => {
            // Charge the action dispatch + argument handling to a worker.
            let (base_cost, per_byte) = {
                let c = eng.state.rtcfg();
                (c.action_base, c.recv_per_byte_ps)
            };
            let service = base_cost + Time::from_ps(parcel.args.len() as u64 * per_byte);
            let now = eng.now();
            let (_, finish) = eng.state.cpu(dst).admit(now, service);
            eng.state.cluster().loc_mut(dst).counters.cpu_busy += service;
            let prof = eng
                .state
                .rt(dst)
                .action_profile
                .entry(parcel.action.0)
                .or_insert((0, Time::ZERO));
            prof.0 += 1;
            prof.1 += service;
            eng.schedule_at(finish, move |eng| execute(eng, dst, parcel));
        }
        agas::ops::Route::Forward(next) => {
            // Owner-cache hints are only trusted for the first hops; a
            // parcel still bouncing re-routes through the authoritative
            // home (stale caches can otherwise ping-pong it forever).
            let home = parcel.target.home();
            let next = if parcel.hops >= 2 && dst != home && next != home {
                home
            } else {
                next
            };
            forward(eng, dst, parcel, next);
        }
    }
}

fn forward<W: RtWorld>(eng: &mut Engine<W>, at: LocalityId, mut parcel: Parcel, next: LocalityId) {
    assert!(
        parcel.hops < MAX_PARCEL_HOPS,
        "parcel to {:?} forwarded {} times (routing loop?)",
        parcel.target,
        parcel.hops
    );
    parcel.hops += 1;
    eng.state.rt(at).stats.parcels_forwarded += 1;
    // A long chase means the target block is churning: back off so the
    // migration can commit instead of racing our retransmissions.
    let delay = if parcel.hops > 4 {
        Time::from_ns(500) * (1u64 << (parcel.hops as u64 - 4).min(12))
    } else {
        Time::ZERO
    };
    let now = eng.now();
    eng.schedule_at_loc(now + delay, at, move |eng| {
        transmit(eng, at, next, parcel);
    });
}

/// Run the action: pin the target block, invoke the handler, unpin.
fn execute<W: RtWorld>(eng: &mut Engine<W>, dst: LocalityId, parcel: Parcel) {
    let Some((base, class)) = agas::ops::pin(&mut eng.state, dst, parcel.target) else {
        // The block moved while the parcel queued; chase it.
        parcel_arrive(eng, dst, dst, parcel);
        return;
    };
    eng.state.rt(dst).stats.parcels_executed += 1;
    let target = parcel.target;
    let ctx = ActionCtx {
        loc: dst,
        target,
        base,
        class,
        args: parcel.args,
        cont: parcel.cont,
        src: parcel.src,
    };
    W::run_action(eng, parcel.action, ctx);
    agas::ops::unpin(eng, dst, target);
}

/// Send `value` to an action's continuation LCO, if it has one. The usual
/// last line of an action that produces a result.
pub fn reply<W: RtWorld>(eng: &mut Engine<W>, ctx: &ActionCtx, value: Vec<u8>) {
    if let Some(cont) = ctx.cont {
        lco::lco_set(eng, ctx.loc, cont, value);
    }
}
