//! A tiny self-contained wire codec for action arguments.
//!
//! Parcels carry byte payloads; actions decode them with `ArgReader` and
//! drivers encode them with `ArgWriter`. Little-endian, length-prefixed,
//! no external dependencies — the format only has to be consistent inside
//! one simulation, but keeping it explicit makes payload sizes (and thus
//! wire costs) honest.

use agas::Gva;

/// Encodes arguments into a byte payload.
#[derive(Default)]
pub struct ArgWriter {
    buf: Vec<u8>,
}

impl ArgWriter {
    /// Fresh, empty writer.
    pub fn new() -> ArgWriter {
        ArgWriter::default()
    }

    /// Append a `u8`.
    pub fn u8(mut self, v: u8) -> Self {
        self.buf.push(v);
        self
    }

    /// Append a `u32`.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64`.
    pub fn f64(mut self, v: f64) -> Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a global address.
    pub fn gva(self, v: Gva) -> Self {
        self.u64(v.0)
    }

    /// Append a length-prefixed byte slice.
    pub fn bytes(mut self, v: &[u8]) -> Self {
        self.buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(v);
        self
    }

    /// Finish, yielding the payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Decodes arguments from a byte payload. Panics on malformed input —
/// payloads are produced by [`ArgWriter`] in the same process, so a decode
/// failure is a programming error, not an I/O condition.
pub struct ArgReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ArgReader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> ArgReader<'a> {
        ArgReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Next `u8`.
    pub fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Next `u32`.
    pub fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().unwrap())
    }

    /// Next `u64`.
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Next `f64`.
    pub fn f64(&mut self) -> f64 {
        f64::from_le_bytes(self.take(8).try_into().unwrap())
    }

    /// Next global address.
    pub fn gva(&mut self) -> Gva {
        Gva(self.u64())
    }

    /// Next length-prefixed byte slice.
    pub fn bytes(&mut self) -> &'a [u8] {
        let len = self.u32() as usize;
        self.take(len)
    }

    /// Everything not yet consumed.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// FNV-1a over `bytes`, truncated to 32 bits: the end-to-end parcel
/// checksum appended by `Parcel::encode` and verified by
/// `Parcel::try_decode`. Strong enough to catch the fault plane's
/// byte-flips; cheap enough to charge no simulated time.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let g = Gva::new(3, 10, 7, 5);
        let payload = ArgWriter::new()
            .u8(9)
            .u32(70_000)
            .u64(1 << 40)
            .f64(2.5)
            .gva(g)
            .bytes(b"hello")
            .finish();
        let mut r = ArgReader::new(&payload);
        assert_eq!(r.u8(), 9);
        assert_eq!(r.u32(), 70_000);
        assert_eq!(r.u64(), 1 << 40);
        assert_eq!(r.f64(), 2.5);
        assert_eq!(r.gva(), g);
        assert_eq!(r.bytes(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn rest_consumes_tail() {
        let payload = ArgWriter::new().u8(1).bytes(b"xyz").finish();
        let mut r = ArgReader::new(&payload);
        assert_eq!(r.u8(), 1);
        assert_eq!(r.rest(), &[3, 0, 0, 0, b'x', b'y', b'z']);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn empty_bytes() {
        let payload = ArgWriter::new().bytes(b"").finish();
        let mut r = ArgReader::new(&payload);
        assert_eq!(r.bytes(), b"");
    }

    #[test]
    #[should_panic]
    fn overread_panics() {
        let payload = ArgWriter::new().u8(1).finish();
        let mut r = ArgReader::new(&payload);
        r.u8();
        r.u8();
    }

    #[test]
    fn checksum_detects_single_byte_flips() {
        let base = b"the quick brown parcel".to_vec();
        let sum = checksum(&base);
        assert_eq!(sum, checksum(&base), "deterministic");
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 0x40;
            assert_ne!(checksum(&flipped), sum, "flip at {i} undetected");
        }
        assert_ne!(checksum(b""), checksum(&[0]));
    }
}
