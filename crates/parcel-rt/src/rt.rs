//! The runtime façade: boot, action registration, and the driver-facing
//! asynchronous API (spawn / memput / memget / migrate / LCO waiting).
//!
//! A `Runtime` wraps the deterministic engine; "programs" are driver code
//! that registers actions, allocates global arrays, injects initial
//! parcels/operations, and runs the engine to quiescence, reading results
//! out of LCOs, driver callbacks, or global memory.

use crate::collective::{self, Collectives};
use crate::lco::{self, ReduceOp};
use crate::parcel::{ActionCtx, ActionId, ActionRegistry, Parcel};
use crate::sched;
use crate::world::{Completion, Msg, RtConfig, World, NO_COMPLETION};
use agas::{alloc_array, Distribution, GasConfig, GasMode, GlobalArray, Gva};
use netsim::{Engine, FaultPlan, FaultPlane, LocalityId, NetConfig, Time};
use photon::PhotonConfig;

/// Configures and boots a [`Runtime`].
pub struct RuntimeBuilder {
    n: usize,
    seed: u64,
    mode: GasMode,
    net: NetConfig,
    photon: PhotonConfig,
    gas: GasConfig,
    rt: RtConfig,
    mem_limit: usize,
    registry: ActionRegistry,
    faults: Option<FaultPlan>,
}

impl RuntimeBuilder {
    /// Start configuring a cluster of `n` localities under `mode`.
    pub fn new(n: usize, mode: GasMode) -> RuntimeBuilder {
        RuntimeBuilder {
            n,
            seed: 0xC0FFEE,
            mode,
            net: NetConfig::ib_fdr(),
            photon: PhotonConfig::default(),
            gas: GasConfig::default(),
            rt: RtConfig::default(),
            mem_limit: 1 << 30,
            registry: ActionRegistry::new(),
            faults: None,
        }
    }

    /// Set the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the network cost model.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Replace the Photon middleware configuration.
    pub fn photon(mut self, cfg: PhotonConfig) -> Self {
        self.photon = cfg;
        self
    }

    /// Replace the GAS cost configuration.
    pub fn gas_config(mut self, cfg: GasConfig) -> Self {
        self.gas = cfg;
        self
    }

    /// Replace the runtime scheduler configuration.
    pub fn rt_config(mut self, cfg: RtConfig) -> Self {
        self.rt = cfg;
        self
    }

    /// Cap each locality's arena.
    pub fn mem_limit(mut self, bytes: usize) -> Self {
        self.mem_limit = bytes;
        self
    }

    /// Install a network fault plan. Every faultable message then passes
    /// through the seed-deterministic fault plane; `FaultPlan::lossless`
    /// plans are draw-free and perturb no schedule.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Register an action (must happen before boot; ids are uniform
    /// cluster-wide, as in any SPMD runtime).
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&mut Engine<World>, ActionCtx) + 'static,
    ) -> ActionId {
        self.registry.register(name, f)
    }

    /// Boot the cluster.
    pub fn boot(mut self) -> Runtime {
        let collectives = collective::install(&mut self.registry);
        let mut world = World::new(
            self.n,
            self.mode,
            self.net,
            self.photon,
            self.gas,
            self.rt,
            self.registry,
            self.mem_limit,
        );
        if let Some(plan) = self.faults {
            world.cluster.faults = Some(FaultPlane::new(plan));
        }
        let mut eng = Engine::new(world, self.seed);
        if self.rt.transport == crate::world::Transport::Isir {
            // Arm the tag-matching engine: one standing wildcard-class
            // receive per locality, re-posted on every delivery.
            for loc in 0..self.n as u32 {
                photon::post_recv(&mut eng, loc, crate::world::PARCEL_TAG);
            }
        }
        let anchors = collective::alloc_anchors(&mut eng);
        Runtime {
            eng,
            collectives,
            anchors,
        }
    }
}

/// A booted simulated runtime.
pub struct Runtime {
    /// The engine (public: drivers inspect `eng.state` freely).
    pub eng: Engine<World>,
    /// Installed collective actions.
    pub collectives: Collectives,
    /// One anchor block per locality (targets for locality-addressed
    /// parcels such as broadcasts).
    pub anchors: GlobalArray,
}

impl Runtime {
    /// Shorthand for [`RuntimeBuilder::new`].
    pub fn builder(n: usize, mode: GasMode) -> RuntimeBuilder {
        RuntimeBuilder::new(n, mode)
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.eng.now()
    }

    /// Run to quiescence; returns events executed.
    pub fn run(&mut self) -> u64 {
        self.eng.run()
    }

    /// Number of localities.
    pub fn n(&self) -> u32 {
        self.eng.state.n_localities()
    }

    /// The active GAS mode.
    pub fn mode(&self) -> GasMode {
        self.eng.state.mode
    }

    /// The anchor GVA of locality `loc` (a per-locality parcel target).
    pub fn anchor(&self, loc: LocalityId) -> Gva {
        self.anchors.block(loc as u64)
    }

    /// Collectively allocate a global array.
    pub fn alloc(&mut self, n_blocks: u64, class: u8, dist: Distribution) -> GlobalArray {
        alloc_array(&mut self.eng, n_blocks, class, dist)
    }

    /// Spawn a parcel from `from`.
    pub fn spawn(
        &mut self,
        from: LocalityId,
        target: Gva,
        action: ActionId,
        args: Vec<u8>,
        cont: Option<Gva>,
    ) {
        sched::send_parcel(
            &mut self.eng,
            from,
            Parcel {
                target,
                action,
                args,
                cont,
                src: from,
                hops: 0,
            },
        );
    }

    /// Asynchronous global write; `cb` runs on completion.
    pub fn memput_cb(
        &mut self,
        loc: LocalityId,
        gva: Gva,
        data: Vec<u8>,
        cb: impl FnOnce(&mut Engine<World>, Vec<u8>) + 'static,
    ) {
        let ctx = self
            .eng
            .state
            .new_completion(Completion::Driver(Box::new(cb)));
        agas::ops::memput(&mut self.eng, loc, gva, data, ctx);
    }

    /// Asynchronous global write that sets `lco` when remotely visible.
    pub fn memput_lco(&mut self, loc: LocalityId, gva: Gva, data: Vec<u8>, lco: Gva) {
        let ctx = self.eng.state.new_completion(Completion::Lco(lco));
        agas::ops::memput(&mut self.eng, loc, gva, data, ctx);
    }

    /// Fire-and-forget global write.
    pub fn memput(&mut self, loc: LocalityId, gva: Gva, data: Vec<u8>) {
        agas::ops::memput(&mut self.eng, loc, gva, data, NO_COMPLETION);
    }

    /// Asynchronous NIC-executed atomic; `cb` receives the encoded
    /// [`netsim::AmoResult`] (see [`crate::world::encode_amo_result`]).
    pub fn memamo_cb(
        &mut self,
        loc: LocalityId,
        gva: Gva,
        amo: netsim::AmoOp,
        cb: impl FnOnce(&mut Engine<World>, Vec<u8>) + 'static,
    ) {
        let ctx = self
            .eng
            .state
            .new_completion(Completion::Driver(Box::new(cb)));
        agas::ops::memamo(&mut self.eng, loc, gva, amo, ctx);
    }

    /// Fire-and-forget NIC-executed atomic.
    pub fn memamo(&mut self, loc: LocalityId, gva: Gva, amo: netsim::AmoOp) {
        agas::ops::memamo(&mut self.eng, loc, gva, amo, NO_COMPLETION);
    }

    /// Asynchronous global read; `cb` receives the data.
    pub fn memget_cb(
        &mut self,
        loc: LocalityId,
        gva: Gva,
        len: u32,
        cb: impl FnOnce(&mut Engine<World>, Vec<u8>) + 'static,
    ) {
        let ctx = self
            .eng
            .state
            .new_completion(Completion::Driver(Box::new(cb)));
        agas::ops::memget(&mut self.eng, loc, gva, len, ctx);
    }

    /// Request a block migration; `cb` runs when committed.
    pub fn migrate_cb(
        &mut self,
        from: LocalityId,
        gva: Gva,
        dst: LocalityId,
        cb: impl FnOnce(&mut Engine<World>, Vec<u8>) + 'static,
    ) {
        let ctx = self
            .eng
            .state
            .new_completion(Completion::Driver(Box::new(cb)));
        agas::migrate::migrate_block(&mut self.eng, from, gva, dst, ctx);
    }

    /// Fire-and-forget migration.
    pub fn migrate(&mut self, from: LocalityId, gva: Gva, dst: LocalityId) {
        agas::migrate::migrate_block(&mut self.eng, from, gva, dst, NO_COMPLETION);
    }

    /// Start the periodic load-balancer service (AGAS modes only).
    pub fn start_balancer(&mut self, cfg: crate::balancer::BalancerConfig) {
        crate::balancer::start(&mut self.eng, cfg);
    }

    /// Free a global block at runtime; `cb` runs when the owner released
    /// the storage and the home retired the record. The caller must ensure
    /// no operations are in flight against the block.
    pub fn free_block_cb(
        &mut self,
        from: LocalityId,
        gva: Gva,
        cb: impl FnOnce(&mut Engine<World>, Vec<u8>) + 'static,
    ) {
        let ctx = self
            .eng
            .state
            .new_completion(Completion::Driver(Box::new(cb)));
        agas::migrate::free_block(&mut self.eng, from, gva, ctx);
    }

    /// Write a byte range that may span multiple blocks of `array`
    /// (split into per-block memputs; `cb` runs when all are visible).
    pub fn memput_range_cb(
        &mut self,
        loc: LocalityId,
        array: &GlobalArray,
        start_byte: u64,
        data: &[u8],
        cb: impl FnOnce(&mut Engine<World>, Vec<u8>) + 'static,
    ) {
        let chunks = array.chunks(start_byte, data.len() as u64);
        let gate = lco::new_and(&mut self.eng, loc, chunks.len() as u64);
        lco::attach_driver(&mut self.eng, gate, cb);
        let mut off = 0usize;
        for (gva, len) in chunks {
            let piece = data[off..off + len as usize].to_vec();
            off += len as usize;
            let ctx = self.eng.state.new_completion(Completion::Lco(gate));
            agas::ops::memput(&mut self.eng, loc, gva, piece, ctx);
        }
    }

    /// Read a byte range that may span multiple blocks of `array`; `cb`
    /// receives the reassembled bytes.
    pub fn memget_range_cb(
        &mut self,
        loc: LocalityId,
        array: &GlobalArray,
        start_byte: u64,
        len: u64,
        cb: impl FnOnce(&mut Engine<World>, Vec<u8>) + 'static,
    ) {
        use std::cell::RefCell;
        use std::rc::Rc;
        let chunks = array.chunks(start_byte, len);
        let n = chunks.len();
        let parts: Rc<RefCell<Vec<Option<Vec<u8>>>>> = Rc::new(RefCell::new(vec![None; n]));
        let remaining = Rc::new(std::cell::Cell::new(n));
        let cb = Rc::new(RefCell::new(Some(
            Box::new(cb) as Box<dyn FnOnce(&mut Engine<World>, Vec<u8>)>
        )));
        for (i, (gva, clen)) in chunks.into_iter().enumerate() {
            let parts = parts.clone();
            let remaining = remaining.clone();
            let cb = cb.clone();
            self.memget_cb(loc, gva, clen as u32, move |eng, data| {
                parts.borrow_mut()[i] = Some(data);
                remaining.set(remaining.get() - 1);
                if remaining.get() == 0 {
                    let assembled: Vec<u8> = parts
                        .borrow_mut()
                        .iter_mut()
                        .flat_map(|p| p.take().unwrap())
                        .collect();
                    let cb = cb.borrow_mut().take().expect("range get fired twice");
                    cb(eng, assembled);
                }
            });
        }
    }

    /// Global-to-global copy: a memget chained into a memput. The ranges
    /// must each stay within one block; `cb` runs when the destination
    /// write is remotely visible.
    pub fn memcpy_cb(
        &mut self,
        loc: LocalityId,
        src: Gva,
        dst: Gva,
        len: u32,
        cb: impl FnOnce(&mut Engine<World>, Vec<u8>) + 'static,
    ) {
        let put_ctx = self
            .eng
            .state
            .new_completion(Completion::Driver(Box::new(cb)));
        let get_ctx =
            self.eng
                .state
                .new_completion(Completion::Driver(Box::new(move |eng, data| {
                    agas::ops::memput(eng, loc, dst, data, put_ctx);
                })));
        agas::ops::memget(&mut self.eng, loc, src, len, get_ctx);
    }

    /// Create a future LCO at `loc`.
    pub fn new_future(&mut self, loc: LocalityId) -> Gva {
        lco::new_future(&mut self.eng, loc)
    }

    /// Create an and-gate LCO at `loc` over `n` inputs.
    pub fn new_and(&mut self, loc: LocalityId, n: u64) -> Gva {
        lco::new_and(&mut self.eng, loc, n)
    }

    /// Create a reduce LCO at `loc` over `n` `u64` contributions.
    pub fn new_reduce(&mut self, loc: LocalityId, n: u64, op: ReduceOp) -> Gva {
        lco::new_reduce(&mut self.eng, loc, n, op)
    }

    /// Driver-side wait: `cb` runs (with the LCO value) when `lco` fires.
    pub fn wait_lco(&mut self, lco: Gva, cb: impl FnOnce(&mut Engine<World>, Vec<u8>) + 'static) {
        lco::attach_driver(&mut self.eng, lco, cb);
    }

    /// Broadcast `action` (with `args`) to every locality's anchor via a
    /// binomial tree rooted at `root`. Each delivery contributes to `done`
    /// if provided.
    pub fn broadcast(
        &mut self,
        root: LocalityId,
        action: ActionId,
        args: Vec<u8>,
        done: Option<Gva>,
    ) {
        collective::broadcast(self, root, action, args, done);
    }

    /// Read `len` bytes at a physical location in `loc`'s arena
    /// (driver-side inspection of results).
    pub fn read_local(&self, loc: LocalityId, addr: netsim::PhysAddr, len: usize) -> Vec<u8> {
        self.eng
            .state
            .cluster
            .mem(loc)
            .read(addr, len)
            .expect("driver read out of bounds")
            .to_vec()
    }

    /// Read the contents of an entire global block (driver-side; the block
    /// must be resident wherever the directory says it is).
    pub fn read_block(&self, gva: Gva) -> Vec<u8> {
        let key = gva.block_key();
        let w = &self.eng.state;
        match w.mode {
            GasMode::Pgas => {
                let base = *w.pgas_map.get(&key).expect("unknown block");
                self.read_local(gva.home(), base, 1 << gva.class())
            }
            _ => {
                let owner = (0..w.cluster.len() as u32)
                    .find(|&l| w.gas[l as usize].btt.is_resident(key))
                    .expect("no resident owner");
                let e = w.gas[owner as usize].btt.lookup(key).unwrap();
                self.read_local(owner, e.base, 1 << e.class)
            }
        }
    }

    /// Write bytes directly into a global block at `offset` (driver-side
    /// *setup* utility: bypasses the network and charges no simulated time;
    /// never use it to model application traffic).
    pub fn write_block(&mut self, gva: Gva, offset: u64, bytes: &[u8]) {
        let key = gva.block_key();
        let w = &mut self.eng.state;
        let (owner, base) = match w.mode {
            GasMode::Pgas => {
                let base = *w.pgas_map.get(&key).expect("unknown block");
                (gva.home(), base)
            }
            _ => {
                let owner = (0..w.cluster.len() as u32)
                    .find(|&l| w.gas[l as usize].btt.is_resident(key))
                    .expect("no resident owner");
                (owner, w.gas[owner as usize].btt.lookup(key).unwrap().base)
            }
        };
        w.cluster
            .mem_mut(owner)
            .write(base + offset, bytes)
            .expect("driver write out of bounds");
    }

    /// Assert the cluster is truly quiescent: no pending GAS operations,
    /// no descriptors sitting in any submission/completion ring (parcel
    /// rings and photon endpoint rings alike), no outstanding PWC ops, no
    /// undelivered completions. Call after `run()` in tests/drivers to
    /// catch protocol leaks early. On failure one unified report lists
    /// every stuck item — GAS ops with kind, GVA, age, attempts, and last
    /// protocol state; ring descriptors with kind, peer, bytes, and age —
    /// followed by the adaptive-controller state ([`Self::controller_report`])
    /// so a hang can be attributed to a mistuned batching controller at a
    /// glance.
    pub fn assert_quiescent(&self) {
        let w = &self.eng.state;
        let now = self.eng.now();
        let mut stuck = Vec::new();
        for l in 0..w.cluster.len() as u32 {
            for s in w.gas[l as usize].op_snapshots() {
                stuck.push(format!("  locality {l}: {}", s.render(now)));
            }
            if let Some(rings) = &w.rt[l as usize].parcel_rings {
                for d in rings.snapshots(now) {
                    stuck.push(format!("  locality {l}: {}", d.render()));
                }
            }
            for d in w.gas[l as usize].ctrl_ring_snapshots(now) {
                stuck.push(format!("  locality {l}: {}", d.render()));
            }
            for d in w.eps[l as usize].ring_snapshots(l, now) {
                stuck.push(format!("  locality {l}: {}", d.render()));
            }
        }
        let membership: String = (0..w.cluster.len() as u32)
            .filter_map(|l| {
                w.gas[l as usize]
                    .member
                    .render()
                    .map(|m| format!("  locality {l} view: {m}\n"))
            })
            .collect();
        assert!(
            stuck.is_empty(),
            "{} GAS op(s)/ring descriptor(s) still in flight after run():\n{}\n{}{}",
            stuck.len(),
            stuck.join("\n"),
            membership,
            self.controller_report()
        );
        for l in 0..w.cluster.len() as u32 {
            assert_eq!(
                w.eps[l as usize].outstanding_ops(),
                0,
                "locality {l}: outstanding PWC ops"
            );
        }
        assert!(
            w.completions.is_empty(),
            "{} completions never fired",
            w.completions.len()
        );
    }

    /// Render the feedback-controller state: the effective barrier-window
    /// multiplier and every ring's effective doorbell batch. The sequential
    /// runtime always reports a ×1 window (adaptive lookahead lives in
    /// [`netsim::ShardedEngine`]); per-ring lines appear only where an AIMD
    /// controller is attached and list `(peer, effective batch)` pairs.
    pub fn controller_report(&self) -> String {
        let w = &self.eng.state;
        let mut out = vec![
            "controller state:".to_string(),
            "  window multiplier: x1 (sequential engine)".to_string(),
        ];
        for l in 0..w.cluster.len() as u32 {
            let parcel = w.rt[l as usize]
                .parcel_rings
                .as_ref()
                .map_or_else(Vec::new, netsim::RingSet::eff_batches);
            if !parcel.is_empty() {
                out.push(format!("  locality {l}: parcel ring eff_batch {parcel:?}"));
            }
            let ctrl = w.gas[l as usize].ctrl_ring_eff_batches();
            if !ctrl.is_empty() {
                out.push(format!("  locality {l}: ctrl ring eff_batch {ctrl:?}"));
            }
        }
        if out.len() == 2 {
            out.push("  (no adaptive ring controllers attached)".to_string());
        }
        out.join("\n")
    }

    /// Cluster-wide hardware counters.
    pub fn counters(&self) -> netsim::Counters {
        self.eng.state.cluster.total_counters()
    }

    /// Send a raw two-sided message (exposed for transport experiments).
    pub fn raw_send(&mut self, src: LocalityId, dst: LocalityId, bytes: u32, msg: Msg) {
        netsim::send_user(&mut self.eng, src, dst, bytes, msg);
    }
}
