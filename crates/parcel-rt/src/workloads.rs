//! Canonical parcel workloads for the sharded runtime.
//!
//! Three small message-driven programs — a ping-pong, a divide-and-conquer
//! reduction spray, and a BFS-style spawn tree — written as lane-safe
//! `fn`-pointer actions over [`ShardWorld`], runnable on the sequential
//! [`Engine`] and on the [`ShardedEngine`] at any lane count. Each returns
//! a [`WorkloadResult`] carrying both the application answer (checked
//! against a pure reference recursion) and the full `(trace_hash, now)`
//! schedule witness, so tests can assert *lane-count independence*: the
//! same program at 1/2/4/8 lanes — adaptive windows on or off — must
//! reproduce the sequential schedule bit-for-bit.
//!
//! All three address parcels to a cyclically distributed **anchor array**
//! (one block per locality). Anchors are the first allocation of their
//! class on every home, so they share `(class, seq)` and an action can
//! derive a peer's anchor from its own `ctx.target` — the same trick
//! [`crate::collective`] uses for its broadcast tree.

use crate::codec::{ArgReader, ArgWriter};
use crate::lco::{self, ReduceOp};
use crate::parcel::{ActionCtx, ActionId, Parcel};
use crate::sched;
use crate::shard_world::ShardWorld;
use crate::world::{RtConfig, Transport};
use agas::{alloc_array, Distribution, GasMode, GlobalArray, Gva};
use netsim::{AdaptiveWindow, Engine, LocalityId, NetConfig, RingConfig, ShardedEngine};

/// Size class of the per-locality anchor blocks.
pub const ANCHOR_CLASS: u8 = 12;

/// Action ids fixed by [`install`]'s registration order.
pub const PING: ActionId = ActionId(0);
/// See [`PING`].
pub const SPRAY: ActionId = ActionId(1);
/// See [`PING`].
pub const BFS: ActionId = ActionId(2);

/// How to build and drive one workload run.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Localities.
    pub n: usize,
    /// GAS mode (the paper's software/network comparison axis).
    pub mode: GasMode,
    /// Fabric model.
    pub net: NetConfig,
    /// Engine seed.
    pub seed: u64,
    /// `None` = sequential engine; `Some(k)` = `ShardedEngine` at `k` lanes.
    pub lanes: Option<usize>,
    /// Adaptive lookahead windows (sharded runs only).
    pub adaptive: Option<AdaptiveWindow>,
    /// Parcel submission rings (coalescing doorbells), if any.
    pub ring: Option<RingConfig>,
}

impl WorkloadSpec {
    /// A small default cluster: `n` localities, ideal fabric, seed 42,
    /// sequential engine, no rings.
    pub fn new(n: usize, mode: GasMode) -> WorkloadSpec {
        WorkloadSpec {
            n,
            mode,
            net: NetConfig::ideal(),
            seed: 42,
            lanes: None,
            adaptive: None,
            ring: None,
        }
    }
}

/// What one workload run produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadResult {
    /// The application answer (from the result LCO).
    pub value: u64,
    /// The reference answer the run must match.
    pub expected: u64,
    /// Folded `(time, seq)` execution-order witness.
    pub trace_hash: u64,
    /// Completion time, picoseconds.
    pub now_ps: u64,
    /// Parcels executed cluster-wide.
    pub parcels_executed: u64,
}

impl WorkloadResult {
    /// Did the run compute the reference answer?
    pub fn correct(&self) -> bool {
        self.value == self.expected
    }
}

/// One workload harness: the same `ShardWorld` program driven either by
/// the sequential engine or by the sharded one.
#[allow(clippy::large_enum_variant)] // one per run; not worth a heap hop
pub enum Harness {
    /// Sequential control.
    Seq(Engine<ShardWorld>),
    /// Sharded run.
    Shard(ShardedEngine<ShardWorld>),
}

impl Harness {
    /// Wrap `world` per the spec's `lanes` / `adaptive` choices.
    pub fn new(world: ShardWorld, spec: &WorkloadSpec) -> Harness {
        match spec.lanes {
            None => Harness::Seq(Engine::new(world, spec.seed)),
            Some(k) => {
                let mut s = ShardedEngine::new(world, spec.seed, k);
                if let Some(cfg) = spec.adaptive {
                    s.set_adaptive(cfg);
                }
                Harness::Shard(s)
            }
        }
    }

    /// Run driver code (allocations, seed parcels) attributed to `loc`.
    pub fn drive_at<R>(
        &mut self,
        loc: LocalityId,
        f: impl FnOnce(&mut Engine<ShardWorld>) -> R,
    ) -> R {
        match self {
            Harness::Seq(e) => f(e),
            Harness::Shard(s) => s.drive_at(loc, f),
        }
    }

    /// Run driver code on the control engine (locality-neutral).
    pub fn drive<R>(&mut self, f: impl FnOnce(&mut Engine<ShardWorld>) -> R) -> R {
        match self {
            Harness::Seq(e) => f(e),
            Harness::Shard(s) => s.drive(f),
        }
    }

    /// Drain the event queue; returns `(trace_hash, now_ps)`.
    pub fn finish(&mut self) -> (u64, u64) {
        match self {
            Harness::Seq(e) => {
                e.run();
                (e.trace_hash(), e.now().ps())
            }
            Harness::Shard(s) => {
                s.run();
                (s.trace_hash(), s.now().ps())
            }
        }
    }

    /// Read-only world access (after a run).
    pub fn world_ref(&self) -> &ShardWorld {
        match self {
            Harness::Seq(e) => &e.state,
            Harness::Shard(s) => s.state_ref(),
        }
    }
}

/// Register the three workload actions; ids must match the constants.
pub fn install(world: &mut ShardWorld) {
    let ping = world.register("ping", ping_action);
    let spray = world.register("spray", spray_action);
    let bfs = world.register("bfs", bfs_action);
    assert_eq!((ping, spray, bfs), (PING, SPRAY, BFS), "action table drift");
}

/// The anchor of locality `loc`, derived from the anchor an action ran at.
fn anchor_of(ctx: &ActionCtx, loc: LocalityId) -> Gva {
    Gva::new(loc, ctx.target.class(), ctx.target.seq(), 0)
}

fn send(
    eng: &mut Engine<ShardWorld>,
    from: LocalityId,
    target: Gva,
    action: ActionId,
    args: Vec<u8>,
) {
    sched::send_parcel(
        eng,
        from,
        Parcel {
            target,
            action,
            args,
            cont: None,
            src: from,
            hops: 0,
        },
    );
}

fn build(spec: &WorkloadSpec) -> (Harness, GlobalArray) {
    let rtcfg = RtConfig {
        transport: Transport::Pwc,
        ring: spec.ring,
        ..RtConfig::default()
    };
    let mut world = ShardWorld::new(spec.n, spec.mode, spec.net, rtcfg);
    install(&mut world);
    let mut h = Harness::new(world, spec);
    let n = spec.n as u64;
    let anchors = h.drive(|e| alloc_array(e, n, ANCHOR_CLASS, Distribution::Cyclic));
    let seq0 = anchors.block(0).seq();
    assert!(
        anchors.blocks.iter().all(|g| g.seq() == seq0),
        "anchors must share (class, seq) so actions can derive peers"
    );
    (h, anchors)
}

fn collect(mut h: Harness, lco: Gva, expected: u64) -> WorkloadResult {
    let (trace_hash, now_ps) = h.finish();
    let w = h.world_ref();
    let value = lco::peek(w, lco)
        .and_then(|s| s.value())
        .map(|v| u64::from_le_bytes(v.try_into().expect("workload LCO value must be 8 bytes")))
        .expect("workload result LCO never fired");
    WorkloadResult {
        value,
        expected,
        trace_hash,
        now_ps,
        parcels_executed: h.world_ref().total_rt_stats().parcels_executed,
    }
}

// ---------------------------------------------------------------- ping-pong

/// args: `[remaining u64][acc u64][peer anchor][done future]`. Each hop
/// folds the executing locality into `acc`; the last hop fires `done`.
fn ping_action(eng: &mut Engine<ShardWorld>, ctx: ActionCtx) {
    let mut r = ArgReader::new(&ctx.args);
    let remaining = r.u64();
    let acc = r.u64();
    let peer = r.gva();
    let done = r.gva();
    let acc = acc.wrapping_mul(31).wrapping_add(ctx.loc as u64 + 1);
    if remaining == 0 {
        lco::lco_set(eng, ctx.loc, done, acc.to_le_bytes().to_vec());
        return;
    }
    let args = ArgWriter::new()
        .u64(remaining - 1)
        .u64(acc)
        .gva(ctx.target)
        .gva(done)
        .finish();
    send(eng, ctx.loc, peer, PING, args);
}

/// Reference recursion for [`ping_pong`]: the bounce visits localities
/// `1, 0, 1, 0, …` for `hops + 1` executions.
pub fn ping_expect(hops: u64) -> u64 {
    let mut acc = 0u64;
    let mut loc = 1u64;
    for _ in 0..=hops {
        acc = acc.wrapping_mul(31).wrapping_add(loc + 1);
        loc = 1 - loc;
    }
    acc
}

/// Bounce a parcel `hops` times between the anchors of localities 0 and 1.
pub fn ping_pong(spec: &WorkloadSpec, hops: u64) -> WorkloadResult {
    assert!(spec.n >= 2, "ping-pong needs two localities");
    let (mut h, anchors) = build(spec);
    let (a0, a1) = (anchors.block(0), anchors.block(1));
    let done = h.drive_at(0, move |e| {
        let done = lco::new_future(e, 0);
        let args = ArgWriter::new().u64(hops).u64(0).gva(a0).gva(done).finish();
        send(e, 0, a1, PING, args);
        done
    });
    collect(h, done, ping_expect(hops))
}

// ------------------------------------------------------------ spray-reduce

/// args: `[lo u32][hi u32][reduce lco]`. The action at anchor `lo`
/// contributes `lo² + 1` to the reduction, then splits the rest of
/// `[lo, hi)` between two child anchors.
fn spray_action(eng: &mut Engine<ShardWorld>, ctx: ActionCtx) {
    let mut r = ArgReader::new(&ctx.args);
    let lo = r.u32();
    let hi = r.u32();
    let reduce = r.gva();
    let me = lo as u64;
    lco::lco_set(eng, ctx.loc, reduce, (me * me + 1).to_le_bytes().to_vec());
    let (a, b) = (lo + 1, hi);
    if a < b {
        let mid = (a + b).div_ceil(2);
        let args = ArgWriter::new().u32(a).u32(mid).gva(reduce).finish();
        send(eng, ctx.loc, anchor_of(&ctx, a), SPRAY, args);
        if mid < b {
            let args = ArgWriter::new().u32(mid).u32(b).gva(reduce).finish();
            send(eng, ctx.loc, anchor_of(&ctx, mid), SPRAY, args);
        }
    }
}

/// Divide-and-conquer spray over all localities, summing `i² + 1` into a
/// reduce LCO at locality 0.
pub fn spray_reduce(spec: &WorkloadSpec) -> WorkloadResult {
    let n = spec.n as u64;
    let (mut h, anchors) = build(spec);
    let root = anchors.block(0);
    let lco = h.drive_at(0, move |e| {
        let lco = lco::new_reduce(e, 0, n, ReduceOp::Sum);
        let args = ArgWriter::new().u32(0).u32(n as u32).gva(lco).finish();
        send(e, 0, root, SPRAY, args);
        lco
    });
    let expected = (0..n).map(|i| i * i + 1).sum();
    collect(h, lco, expected)
}

// ---------------------------------------------------------------- bfs-tree

/// args: `[lo u32][hi u32][depth u64][reduce lco]`. Marks the visit by
/// writing `depth + 1` into the anchor's first word, contributes `depth`
/// to the reduction, and recurses with `depth + 1`.
fn bfs_action(eng: &mut Engine<ShardWorld>, ctx: ActionCtx) {
    let mut r = ArgReader::new(&ctx.args);
    let lo = r.u32();
    let hi = r.u32();
    let depth = r.u64();
    let reduce = r.gva();
    let phys = ctx.target_phys();
    eng.state
        .data
        .cluster
        .mem_mut(ctx.loc)
        .write(phys, &(depth + 1).to_le_bytes())
        .expect("anchor word write failed");
    lco::lco_set(eng, ctx.loc, reduce, depth.to_le_bytes().to_vec());
    let (a, b) = (lo + 1, hi);
    if a < b {
        let mid = (a + b).div_ceil(2);
        let args = ArgWriter::new()
            .u32(a)
            .u32(mid)
            .u64(depth + 1)
            .gva(reduce)
            .finish();
        send(eng, ctx.loc, anchor_of(&ctx, a), BFS, args);
        if mid < b {
            let args = ArgWriter::new()
                .u32(mid)
                .u32(b)
                .u64(depth + 1)
                .gva(reduce)
                .finish();
            send(eng, ctx.loc, anchor_of(&ctx, mid), BFS, args);
        }
    }
}

/// Reference depth sum for [`bfs_tree`]'s spawn tree over `[lo, hi)`.
pub fn bfs_expect(lo: u32, hi: u32, depth: u64) -> u64 {
    let mut sum = depth;
    let (a, b) = (lo + 1, hi);
    if a < b {
        let mid = (a + b).div_ceil(2);
        sum += bfs_expect(a, mid, depth + 1);
        if mid < b {
            sum += bfs_expect(mid, b, depth + 1);
        }
    }
    sum
}

/// BFS-style spawn tree over all localities: each visit stamps its depth
/// into the local anchor and the reduction sums all depths.
pub fn bfs_tree(spec: &WorkloadSpec) -> WorkloadResult {
    let n = spec.n as u64;
    let (mut h, anchors) = build(spec);
    let root = anchors.block(0);
    let lco = h.drive_at(0, move |e| {
        let lco = lco::new_reduce(e, 0, n, ReduceOp::Sum);
        let args = ArgWriter::new()
            .u32(0)
            .u32(n as u32)
            .u64(0)
            .gva(lco)
            .finish();
        send(e, 0, root, BFS, args);
        lco
    });
    collect(h, lco, bfs_expect(0, spec.n as u32, 0))
}
