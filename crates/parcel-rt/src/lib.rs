//! # parcel-rt — a message-driven runtime over the network-managed GAS
//!
//! A reconstruction of the HPX-5 execution model the paper's address space
//! serves: **parcels** (active messages addressed to *global data*, not to
//! ranks), a per-locality scheduler with a bounded worker pool, and **LCOs**
//! (futures / and-gates / reductions) for synchronization, all over the
//! [`agas`] global address space and [`photon`] RMA middleware on the
//! [`netsim`] simulated cluster.
//!
//! The runtime is where the paper's comparison becomes visible end-to-end:
//! parcels and software-AGAS traffic contend for the *same* worker pool, so
//! moving address translation into the NIC frees exactly the cores the
//! application needs.
//!
//! ```
//! use parcel_rt::Runtime;
//! use agas::{GasMode, Distribution};
//!
//! let mut b = Runtime::builder(4, GasMode::AgasNetwork);
//! let bump = b.register("bump", |eng, ctx| {
//!     // Flip a bit in the first u64 of the target block.
//!     let phys = ctx.target_phys();
//!     eng.state.cluster.mem_mut(ctx.loc).xor_u64(phys, 1).unwrap();
//!     parcel_rt::reply(eng, &ctx, vec![]);
//! });
//! let mut rt = b.boot();
//! let arr = rt.alloc(4, 12, Distribution::Cyclic);
//! let done = rt.new_and(0, 4);
//! for i in 0..4 {
//!     rt.spawn(0, arr.block(i), bump, vec![], Some(done));
//! }
//! let fired = std::rc::Rc::new(std::cell::Cell::new(false));
//! let f2 = fired.clone();
//! rt.wait_lco(done, move |_, _| f2.set(true));
//! rt.run();
//! assert!(fired.get());
//! ```

pub mod balancer;
pub mod codec;
pub mod collective;
pub mod lco;
pub mod parcel;
pub mod rt;
pub mod sched;
pub mod shard_world;
pub mod workloads;
pub mod world;

pub use balancer::{BalancerConfig, BalancerStats};
pub use codec::{ArgReader, ArgWriter};
pub use collective::{barrier, gather_ranks};
pub use lco::{
    attach_driver, attach_driver_slot, attach_parcel, decode_gather, lco_set, new_and, new_future,
    new_gather, new_reduce, peek, set_gather, ReduceOp,
};
pub use netsim::RingConfig;
pub use parcel::{ActionCtx, ActionFn, ActionId, ActionRegistry, Parcel};
pub use rt::{Runtime, RuntimeBuilder};
pub use sched::{reply, send_parcel};
pub use shard_world::{lco_ctx, ShardAction, ShardMsg, ShardRtData, ShardRtLoc, ShardWorld};
pub use world::{
    decode_amo_result, encode_amo_result, fire_completion, Completion, Msg, RtConfig, RtLocal,
    RtStats, RtWorld, Transport, World, NO_COMPLETION, PARCEL_TAG,
};
