//! A `Send` world for the parcel runtime, runnable on both the sequential
//! [`Engine`] and the sharded [`ShardedEngine`](netsim::ShardedEngine).
//!
//! The classic [`World`](crate::World) keeps boxed-closure actions behind
//! an `Rc` and driver callbacks in a shared map — fine sequentially,
//! unusable across shard lanes. `ShardWorld` is its lane-safe twin, built
//! the way [`agas::SimWorld`] mirrors the integration `World`:
//!
//! * actions are plain `fn` pointers (`Send + Sync`, registered before
//!   boot, read-only at event time);
//! * driver notifications are recorded into a per-locality list instead of
//!   invoking a closure — drivers read results after `run()` via
//!   [`crate::lco::peek`] or [`ShardWorld::fired`];
//! * GAS completions are LCO-only: a completion handle *is* the LCO's raw
//!   GVA bits ([`lco_ctx`]), so there is no shared completion table at all.
//!
//! The scheduler and LCO layers are the very same generic code the classic
//! world runs ([`crate::sched`], [`crate::lco`] over
//! [`crate::world::RtWorld`]), so a workload replayed here
//! schedules the same protocol traffic — and the sharded engine contracts
//! to reproduce the sequential `(time, seq)` order bit-for-bit at any lane
//! count, adaptive windows included.

use crate::lco;
use crate::parcel::{ActionCtx, ActionId, Parcel};
use crate::world::{RtConfig, RtLocal, RtStats, RtWorld, Transport};
use agas::{GasConfig, GasLocal, GasMode, GasMsg, GasWorld, Gva, PgasMap};
use netsim::shard::ShardMap;
use netsim::{
    AmoResult, Cluster, Engine, Envelope, LocalityId, NackReason, NetConfig, OpError, OpId, OpKind,
    Packet, Protocol, ServerPool, SharedState, SplitWorld,
};
use photon::{PhotonConfig, PhotonEndpoint, PhotonMsg, PhotonWorld};
use std::collections::HashMap;

/// Wire message for the sharded runtime world.
#[derive(Debug)]
pub enum ShardMsg {
    /// Photon middleware traffic.
    Photon(PhotonMsg),
    /// GAS protocol traffic.
    Gas(GasMsg),
    /// An application parcel.
    Parcel(Parcel),
    /// A coalesced batch of parcels for one destination.
    ParcelBatch(Vec<Parcel>),
}

/// A lane-safe action body: a plain `fn` pointer (no captures, `Send`).
pub type ShardAction = fn(&mut Engine<ShardWorld>, ActionCtx);

/// Driver-visible per-locality record (owned by the locality's lane).
#[derive(Default)]
pub struct ShardRtLoc {
    /// Driver-slot firings observed here: `(slot id, LCO value)` in
    /// firing order (see [`crate::lco::attach_driver_slot`]).
    pub fired: Vec<(u64, Vec<u8>)>,
    /// Terminal GAS op failures delivered here.
    pub op_failures: u64,
}

/// Backing storage of a [`ShardWorld`]; lanes alias it via [`SharedState`].
pub struct ShardRtData {
    /// The simulated cluster.
    pub cluster: Cluster,
    /// Per-locality photon endpoints.
    pub eps: Vec<PhotonEndpoint>,
    /// Per-locality GAS state.
    pub gas: Vec<GasLocal>,
    /// Per-locality CPU worker pools.
    pub cpus: Vec<ServerPool>,
    /// The replicated PGAS placement registry (read-only at event time).
    pub pgas: PgasMap,
    /// The active GAS mode.
    pub mode: GasMode,
    /// Per-locality runtime state.
    pub rt: Vec<RtLocal>,
    /// Runtime tuning.
    pub rtcfg: RtConfig,
    /// The action table: registered before boot, read-only at event time.
    pub actions: Vec<(&'static str, ShardAction)>,
    /// Per-locality driver records.
    pub locs: Vec<ShardRtLoc>,
}

/// The world handle: owner on the control engine, alias on each lane.
pub struct ShardWorld {
    /// Shared backing storage.
    pub data: SharedState<ShardRtData>,
}

impl ShardWorld {
    /// Build a sharded-runtime world. Only the PWC transport is supported
    /// (ISIR's standing receives are armed through driver code the sharded
    /// boot path does not run).
    pub fn new(n: usize, mode: GasMode, net: NetConfig, rtcfg: RtConfig) -> ShardWorld {
        assert_eq!(
            rtcfg.transport,
            Transport::Pwc,
            "ShardWorld supports the PWC transport only"
        );
        ShardWorld {
            data: SharedState::new(ShardRtData {
                cluster: Cluster::new(n, net, 1 << 28),
                eps: (0..n)
                    .map(|_| PhotonEndpoint::new(PhotonConfig::default()))
                    .collect(),
                gas: (0..n)
                    .map(|_| GasLocal::new(GasConfig::default()))
                    .collect(),
                cpus: (0..n).map(|_| ServerPool::new(rtcfg.workers)).collect(),
                pgas: PgasMap::new(),
                mode,
                rt: (0..n)
                    .map(|_| RtLocal {
                        lcos: HashMap::new(),
                        stats: RtStats::default(),
                        action_profile: HashMap::new(),
                        next_lco_seq: 0,
                        parcel_rings: rtcfg.ring.map(netsim::RingSet::new),
                    })
                    .collect(),
                rtcfg,
                actions: Vec::new(),
                locs: (0..n).map(|_| ShardRtLoc::default()).collect(),
            }),
        }
    }

    /// Register an action before boot; ids are uniform cluster-wide.
    pub fn register(&mut self, name: &'static str, f: ShardAction) -> ActionId {
        let id = ActionId(self.data.actions.len() as u32);
        self.data.actions.push((name, f));
        id
    }

    /// Number of localities.
    pub fn n_localities(&self) -> u32 {
        self.data.cluster.len() as u32
    }

    /// All driver-slot firings across the cluster, ordered by slot id.
    pub fn fired(&self) -> Vec<(u64, Vec<u8>)> {
        let mut out: Vec<(u64, Vec<u8>)> = self
            .data
            .locs
            .iter()
            .flat_map(|l| l.fired.iter().cloned())
            .collect();
        out.sort_by_key(|&(id, _)| id);
        out
    }

    /// Terminal op failures across the cluster.
    pub fn op_failures(&self) -> u64 {
        self.data.locs.iter().map(|l| l.op_failures).sum()
    }

    /// Aggregate runtime stats across localities.
    pub fn total_rt_stats(&self) -> RtStats {
        let mut total = RtStats::default();
        for r in &self.data.rt {
            total.parcels_sent += r.stats.parcels_sent;
            total.parcels_executed += r.stats.parcels_executed;
            total.parcels_forwarded += r.stats.parcels_forwarded;
            total.lco_ops += r.stats.lco_ops;
            total.batches_sent += r.stats.batches_sent;
        }
        total
    }
}

/// Encode an LCO as a GAS completion handle: the handle *is* the LCO's
/// raw GVA bits. An LCO GVA can never be the all-ones [`OpId::NONE`]
/// sentinel, so the encoding is unambiguous.
pub fn lco_ctx(lco: Gva) -> OpId {
    debug_assert_eq!(lco.class(), lco::LCO_CLASS);
    OpId::from_raw(lco.0)
}

/// Fire the LCO a GAS completion handle names. The set is issued *from*
/// the completing locality (the lane that owns the event), so a remote
/// LCO home is reached through a normal parcel — never by a cross-lane
/// state write.
fn complete(eng: &mut Engine<ShardWorld>, loc: LocalityId, ctx: OpId, data: Vec<u8>) {
    if ctx.is_none() {
        return;
    }
    let lco = Gva(ctx.raw());
    lco::lco_set(eng, loc, lco, data);
}

impl Protocol for ShardWorld {
    type Msg = ShardMsg;

    fn cluster(&mut self) -> &mut Cluster {
        &mut self.data.cluster
    }

    fn cluster_ref(&self) -> &Cluster {
        &self.data.cluster
    }

    fn deliver(eng: &mut Engine<Self>, env: Envelope<ShardMsg>) {
        match env.packet {
            Packet::User(ShardMsg::Photon(p)) => photon::handle_msg(eng, env.src, env.dst, p),
            Packet::User(ShardMsg::Gas(g)) => agas::ops::handle_msg(eng, env.src, env.dst, g),
            Packet::User(ShardMsg::Parcel(p)) => {
                crate::sched::parcel_arrive(eng, env.src, env.dst, p);
            }
            Packet::User(ShardMsg::ParcelBatch(batch)) => {
                for p in batch {
                    crate::sched::parcel_arrive(eng, env.src, env.dst, p);
                }
            }
            other => photon::handle_completion(eng, env.src, env.dst, other),
        }
    }
}

impl PhotonWorld for ShardWorld {
    fn endpoint(&mut self, loc: LocalityId) -> &mut PhotonEndpoint {
        &mut self.data.eps[loc as usize]
    }
    fn wrap(msg: PhotonMsg) -> ShardMsg {
        ShardMsg::Photon(msg)
    }
    fn pwc_complete(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId) {
        agas::ops::on_pwc_complete(eng, loc, ctx);
    }
    fn pwc_remote(_eng: &mut Engine<Self>, _loc: LocalityId, _tag: u64, _len: u32) {}
    fn pwc_failed(
        eng: &mut Engine<Self>,
        loc: LocalityId,
        ctx: OpId,
        kind: OpKind,
        reason: NackReason,
        block: u64,
    ) {
        agas::ops::on_pwc_failed(eng, loc, ctx, kind, reason, block);
    }
    fn recv_complete(
        _eng: &mut Engine<Self>,
        _loc: LocalityId,
        _src: LocalityId,
        _tag: u64,
        _data: Vec<u8>,
    ) {
    }
    fn send_complete(_eng: &mut Engine<Self>, _loc: LocalityId, _send_id: u64) {}
    fn xlate_miss_local(eng: &mut Engine<Self>, loc: LocalityId, block: u64) {
        agas::ops::on_xlate_miss(eng, loc, block);
    }
    fn pwc_amo_complete(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, result: AmoResult) {
        agas::ops::on_pwc_amo_complete(eng, loc, ctx, result);
    }
}

impl GasWorld for ShardWorld {
    fn gas(&mut self, loc: LocalityId) -> &mut GasLocal {
        &mut self.data.gas[loc as usize]
    }
    fn gas_ref(&self, loc: LocalityId) -> &GasLocal {
        &self.data.gas[loc as usize]
    }
    fn gas_mode(&self) -> GasMode {
        self.data.mode
    }
    fn pgas(&mut self) -> &mut PgasMap {
        &mut self.data.pgas
    }
    fn cpu(&mut self, loc: LocalityId) -> &mut ServerPool {
        &mut self.data.cpus[loc as usize]
    }
    fn wrap_gas(msg: GasMsg) -> ShardMsg {
        ShardMsg::Gas(msg)
    }
    fn gas_put_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId) {
        complete(eng, loc, ctx, Vec::new());
    }
    fn gas_get_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, data: Vec<u8>) {
        complete(eng, loc, ctx, data);
    }
    fn gas_amo_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, result: AmoResult) {
        complete(eng, loc, ctx, crate::world::encode_amo_result(&result));
    }
    fn gas_migrate_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, block: u64) {
        complete(eng, loc, ctx, block.to_le_bytes().to_vec());
    }
    fn gas_free_done(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, block: u64) {
        complete(eng, loc, ctx, block.to_le_bytes().to_vec());
    }
    fn gas_op_failed(
        eng: &mut Engine<Self>,
        loc: LocalityId,
        _ctx: OpId,
        _gva: Gva,
        _err: OpError,
    ) {
        eng.state.data.locs[loc as usize].op_failures += 1;
    }
}

impl RtWorld for ShardWorld {
    fn rt(&mut self, loc: LocalityId) -> &mut RtLocal {
        &mut self.data.rt[loc as usize]
    }
    fn rt_ref(&self, loc: LocalityId) -> &RtLocal {
        &self.data.rt[loc as usize]
    }
    fn rtcfg(&self) -> RtConfig {
        self.data.rtcfg
    }
    fn wrap_parcel(p: Parcel) -> ShardMsg {
        ShardMsg::Parcel(p)
    }
    fn wrap_batch(b: Vec<Parcel>) -> ShardMsg {
        ShardMsg::ParcelBatch(b)
    }
    fn run_action(eng: &mut Engine<Self>, id: ActionId, ctx: ActionCtx) {
        // The table is read-only after boot; copy the `fn` pointer out so
        // the call doesn't hold a borrow of the world.
        let f = eng.state.data.actions[id.0 as usize].1;
        f(eng, ctx);
    }
    fn notify_driver(eng: &mut Engine<Self>, loc: LocalityId, id: u64, value: Vec<u8>) {
        eng.state.data.locs[loc as usize].fired.push((id, value));
    }
}

// SAFETY: identical partitioning argument to `agas::SimWorld` — every
// mutable field is per-locality (`eps[loc]`, `gas[loc]`, `cpus[loc]`,
// `rt[loc]`, `locs[loc]`, plus the locality's NIC/memory/counters inside
// `cluster`), and an event delivered at `loc` only touches `loc`'s slice,
// which belongs to the executing lane: parcels execute at the locality
// that owns the pinned block, LCO sets apply at the LCO's home, driver
// notifications record at the LCO's home, and GAS completions fire at the
// initiating locality. The shared structures (`pgas`, `mode`, `rtcfg`,
// `actions`, cluster-wide config) are read-only at event time — actions
// and the PGAS map are populated during the drive phase, and sharded
// workloads must not issue runtime frees. Cross-locality effects travel
// exclusively as messages through netsim's `defer_wire` tails.
unsafe impl SplitWorld for ShardWorld {
    fn lane_handle(&mut self, _lane: u32, _map: ShardMap) -> ShardWorld {
        ShardWorld {
            // SAFETY: `ShardedEngine` drops lane handles before the owner.
            data: unsafe { self.data.alias() },
        }
    }
}
