//! The in-runtime load balancer — AGAS's reason to exist, running as a
//! periodic *runtime service* rather than benchmark driver code.
//!
//! Every `period` of virtual time, the policy:
//!
//! 1. drains per-block access telemetry from each locality — the NIC
//!    translation table's hit counters (network-managed mode) plus the
//!    software handlers' heat map (software mode);
//! 2. computes per-locality load and, while the hottest locality carries
//!    more than `imbalance_ratio ×` the coolest's load, migrates its
//!    hottest blocks toward the coolest locality (up to `moves_per_round`);
//! 3. reschedules itself — and stops after `idle_rounds_to_stop` rounds
//!    with no traffic, so simulations still quiesce.
//!
//! Telemetry gathering is modeled as free (a real implementation
//! piggybacks it on existing collectives); the migrations themselves run
//! the full protocol and pay full cost.

use crate::world::World;
use agas::GasMode;
use netsim::{Engine, LocalityId, Time};
use std::collections::HashMap;

/// Balancer policy parameters.
#[derive(Clone, Copy, Debug)]
pub struct BalancerConfig {
    /// Interval between policy rounds.
    pub period: Time,
    /// Maximum migrations per round.
    pub moves_per_round: usize,
    /// Only act when `hottest load > imbalance_ratio × coolest load`.
    pub imbalance_ratio: f64,
    /// Ignore blocks with fewer hits than this in a round.
    pub min_heat: u64,
    /// Stop after this many consecutive rounds with no observed traffic.
    pub idle_rounds_to_stop: u32,
}

impl Default for BalancerConfig {
    fn default() -> BalancerConfig {
        BalancerConfig {
            period: Time::from_us(200),
            moves_per_round: 4,
            imbalance_ratio: 1.5,
            min_heat: 8,
            idle_rounds_to_stop: 2,
        }
    }
}

/// Cumulative balancer statistics (stored in the world).
#[derive(Clone, Copy, Debug, Default)]
pub struct BalancerStats {
    /// Policy rounds executed.
    pub rounds: u64,
    /// Migrations requested.
    pub migrations: u64,
}

/// Start the balancer service. Call once after boot (and after the GAS
/// mode is known — it refuses to run under PGAS, where nothing can move).
pub fn start(eng: &mut Engine<World>, cfg: BalancerConfig) {
    assert!(
        eng.state.mode.supports_migration(),
        "the balancer needs a mobile GAS (AGAS mode)"
    );
    eng.schedule(cfg.period, move |eng| round(eng, cfg, 0));
}

/// Drain this round's telemetry: block → (hits, owner).
fn drain_telemetry(eng: &mut Engine<World>) -> HashMap<u64, (u64, LocalityId)> {
    let n = eng.state.n_localities();
    let mut heat: HashMap<u64, (u64, LocalityId)> = HashMap::new();
    for loc in 0..n {
        let nic_hits = eng
            .state
            .cluster
            .loc_mut(loc)
            .nic
            .xlate
            .take_hit_telemetry();
        for (block, hits) in nic_hits {
            let e = heat.entry(block).or_insert((0, loc));
            e.0 += hits;
            e.1 = loc;
        }
        let sw_heat = std::mem::take(&mut eng.state.gas[loc as usize].heat);
        for (block, hits) in sw_heat {
            let e = heat.entry(block).or_insert((0, loc));
            e.0 += hits;
            e.1 = loc;
        }
    }
    // Telemetry is attributed to wherever the hits were observed; a block
    // that migrated mid-round may appear under its old owner — the
    // migration protocol routes the move request correctly regardless.
    heat
}

fn round(eng: &mut Engine<World>, cfg: BalancerConfig, idle_rounds: u32) {
    eng.state.balancer_stats.rounds += 1;
    let n = eng.state.n_localities();
    let heat = drain_telemetry(eng);
    let total: u64 = heat.values().map(|&(h, _)| h).sum();
    if total == 0 {
        let idle = idle_rounds + 1;
        if idle < cfg.idle_rounds_to_stop {
            eng.schedule(cfg.period, move |eng| round(eng, cfg, idle));
        }
        return;
    }

    // Per-locality load and per-locality hottest blocks.
    let mut load = vec![0u64; n as usize];
    let mut by_owner: HashMap<LocalityId, Vec<(u64, u64)>> = HashMap::new();
    for (&block, &(hits, owner)) in &heat {
        load[owner as usize] += hits;
        by_owner.entry(owner).or_default().push((hits, block));
    }

    let mut moves = 0usize;
    while moves < cfg.moves_per_round {
        let hottest = (0..n).max_by_key(|&l| (load[l as usize], l)).unwrap();
        let coolest = (0..n).min_by_key(|&l| (load[l as usize], l)).unwrap();
        let hot_load = load[hottest as usize];
        let cool_load = load[coolest as usize];
        if hottest == coolest
            || (hot_load as f64) <= (cool_load.max(1) as f64) * cfg.imbalance_ratio
        {
            break;
        }
        let candidates = by_owner.entry(hottest).or_default();
        candidates.sort_unstable();
        let Some((hits, block)) = candidates.pop() else {
            break;
        };
        if hits < cfg.min_heat {
            break;
        }
        load[hottest as usize] -= hits;
        load[coolest as usize] += hits;
        eng.state.balancer_stats.migrations += 1;
        agas::migrate::migrate_block(
            eng,
            hottest,
            agas::Gva(block),
            coolest,
            crate::world::NO_COMPLETION,
        );
        moves += 1;
    }
    eng.schedule(cfg.period, move |eng| round(eng, cfg, 0));
}

/// Convenience: the heat source active under `mode` (documentation aid).
pub fn telemetry_source(mode: GasMode) -> &'static str {
    match mode {
        GasMode::Pgas => "none (static placement)",
        GasMode::AgasSoftware => "software handler heat map",
        GasMode::AgasNetwork => "NIC translation-table hit counters",
    }
}
