//! The concrete simulated world: cluster + Photon endpoints + GAS state +
//! runtime schedulers, with all the protocol glue traits implemented.

use crate::lco::LcoState;
use crate::parcel::{ActionRegistry, Parcel};
use crate::sched;
use agas::{GasConfig, GasLocal, GasMode, GasMsg, GasWorld, PgasMap};
use netsim::{
    AmoResult, Cluster, Engine, Envelope, LocalityId, NackReason, NetConfig, OpError, OpId, OpKind,
    OpTable, Packet, Protocol, RingConfig, RingSet, ServerPool, Time,
};
use photon::{PhotonConfig, PhotonEndpoint, PhotonMsg, PhotonWorld};
use std::collections::HashMap;
use std::rc::Rc;

/// Marker for GAS operations that need no completion notification.
pub const NO_COMPLETION: OpId = OpId::NONE;

/// The Photon tag class parcels travel under on the ISIR transport.
pub const PARCEL_TAG: u64 = 0x5041_5243; // "PARC"

/// Which network backend carries parcels — HPX-5's `--hpx-network` knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Photon put-with-completion semantics: parcels are delivered straight
    /// into pre-registered eager buffers with NIC-level completion (the
    /// default, and the backend the paper's design assumes).
    Pwc,
    /// ISIR (MPI-like) two-sided backend: parcels are serialized, sent
    /// through the tag-matching engine with eager/rendezvous protocol and
    /// credit flow control, matched against pre-posted receives, and
    /// copied out at the target.
    Isir,
}

/// Runtime (scheduler) tuning parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtConfig {
    /// Parcel network backend.
    pub transport: Transport,
    /// Per-destination parcel submission rings (PWC transport only; `None`
    /// sends every parcel immediately). Parcels post as descriptors into
    /// the shared [`netsim::ring`] layer and one doorbell per drain sends
    /// the whole batch as a single wire message — the message-aggregation
    /// optimization the AM++/HPX graph papers lean on, now expressed on
    /// the same rings photon issues through.
    pub ring: Option<RingConfig>,
    /// Worker threads per locality (the CPU pool shared by actions and GAS
    /// software handlers).
    pub workers: usize,
    /// Fixed dispatch cost of running one action.
    pub action_base: Time,
    /// Per-argument-byte handling cost (ps/B).
    pub recv_per_byte_ps: u64,
    /// Cost of applying an LCO operation.
    pub lco_op: Time,
}

impl Default for RtConfig {
    fn default() -> RtConfig {
        RtConfig {
            transport: Transport::Pwc,
            ring: None,
            workers: 4,
            action_base: Time::from_ns(800),
            recv_per_byte_ps: 25,
            lco_op: Time::from_ns(300),
        }
    }
}

/// Per-locality runtime statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RtStats {
    /// Parcels injected from this locality.
    pub parcels_sent: u64,
    /// Actions executed here.
    pub parcels_executed: u64,
    /// Parcels forwarded onward (stale routing / migrated targets).
    pub parcels_forwarded: u64,
    /// LCO operations applied here.
    pub lco_ops: u64,
    /// Coalesced batches injected from this locality.
    pub batches_sent: u64,
}

/// Per-locality runtime state.
pub struct RtLocal {
    /// LCOs homed here, keyed by raw GVA bits.
    pub lcos: HashMap<u64, LcoState>,
    /// Statistics.
    pub stats: RtStats,
    /// Per-action profile: action id → (executions, CPU time charged) —
    /// the APEX-style instrumentation HPX-5 shipped.
    pub action_profile: HashMap<u32, (u64, Time)>,
    pub(crate) next_lco_seq: u64,
    /// Per-destination parcel submission rings (present when
    /// [`RtConfig::ring`] is set).
    pub(crate) parcel_rings: Option<RingSet<Parcel>>,
}

impl RtLocal {
    fn new(ring: Option<RingConfig>) -> RtLocal {
        RtLocal {
            lcos: HashMap::new(),
            stats: RtStats::default(),
            action_profile: HashMap::new(),
            next_lco_seq: 0,
            parcel_rings: ring.map(RingSet::new),
        }
    }

    /// Parcels currently buffered in this locality's submission rings.
    pub fn ring_occupancy(&self) -> usize {
        self.parcel_rings.as_ref().map_or(0, RingSet::occupancy)
    }

    /// Pooled ring counters for this locality's parcel rings.
    pub fn ring_stats(&self) -> netsim::RingStats {
        self.parcel_rings
            .as_ref()
            .map_or_else(Default::default, RingSet::stats)
    }
}

/// World hooks the parcel scheduler and LCO layer need beyond
/// [`GasWorld`]: runtime state, the action table, and the driver
/// notification channel. Implemented by the classic single-threaded
/// [`World`] (closure actions, driver callbacks) and by the lane-safe
/// [`crate::ShardWorld`] (fn-pointer actions, recorded notifications) —
/// one scheduler/LCO implementation serves both.
pub trait RtWorld: GasWorld {
    /// Per-locality runtime state.
    fn rt(&mut self, loc: LocalityId) -> &mut RtLocal;
    /// Shared access to per-locality runtime state (diagnostics).
    fn rt_ref(&self, loc: LocalityId) -> &RtLocal;
    /// Runtime tuning (uniform across the cluster).
    fn rtcfg(&self) -> RtConfig;
    /// Embed a parcel into the world's wire enum.
    fn wrap_parcel(p: Parcel) -> Self::Msg;
    /// Embed a coalesced parcel batch into the world's wire enum.
    fn wrap_batch(b: Vec<Parcel>) -> Self::Msg;
    /// Invoke the registered action body (the table's representation is
    /// the world's business: boxed closures here, `fn` pointers in the
    /// sharded world).
    fn run_action(
        eng: &mut Engine<Self>,
        id: crate::parcel::ActionId,
        ctx: crate::parcel::ActionCtx,
    );
    /// An LCO a driver was waiting on (slot `id`, see
    /// [`crate::lco::attach_driver_slot`]) fired with `value`.
    fn notify_driver(eng: &mut Engine<Self>, loc: LocalityId, id: u64, value: Vec<u8>);
}

/// The wire message enum: everything that travels between localities.
#[derive(Debug)]
pub enum Msg {
    /// Photon middleware control.
    Photon(PhotonMsg),
    /// GAS protocol (software accesses, directory, migration).
    Gas(GasMsg),
    /// Application parcels.
    Parcel(Parcel),
    /// A coalesced batch of parcels for one destination.
    ParcelBatch(Vec<Parcel>),
}

/// A driver callback invoked with an operation's result bytes.
pub type DriverCb = Box<dyn FnOnce(&mut Engine<World>, Vec<u8>)>;

/// What to do when a GAS operation completes.
pub enum Completion {
    /// Set this LCO with the operation's result.
    Lco(agas::Gva),
    /// Invoke a driver callback with the result.
    Driver(DriverCb),
}

/// The complete simulated world.
pub struct World {
    /// The hardware substrate.
    pub cluster: Cluster,
    /// Photon endpoints, one per locality.
    pub eps: Vec<PhotonEndpoint>,
    /// GAS state, one per locality.
    pub gas: Vec<GasLocal>,
    /// Worker pools, one per locality.
    pub cpus: Vec<ServerPool>,
    /// The replicated PGAS placement registry.
    pub pgas_map: PgasMap,
    /// The active GAS mode.
    pub mode: GasMode,
    /// Runtime state, one per locality.
    pub rt: Vec<RtLocal>,
    /// Runtime tuning.
    pub rtcfg: RtConfig,
    /// The (shared) action table.
    pub registry: Rc<ActionRegistry>,
    /// Load-balancer service statistics.
    pub balancer_stats: crate::balancer::BalancerStats,
    /// GAS operations that failed terminally (deadline exceeded, retries
    /// exhausted): `(completion handle, target GVA, error)`. Drivers and
    /// tests inspect this to distinguish recovery from silent loss.
    pub op_failures: Vec<(OpId, agas::Gva, OpError)>,
    /// Completions/failures naming an unknown or already-fired handle.
    pub stale_completions: u64,
    /// ISIR parcels discarded because their checksum failed (corrupted in
    /// flight by the fault plane).
    pub corrupt_parcels: u64,
    pub(crate) completions: OpTable<Completion>,
    pub(crate) driver_cbs: HashMap<u64, DriverCb>,
    pub(crate) next_driver_cb: u64,
}

impl World {
    /// Assemble a world. Most callers use [`crate::rt::RuntimeBuilder`].
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        mode: GasMode,
        net: NetConfig,
        photon_cfg: PhotonConfig,
        gas_cfg: GasConfig,
        rtcfg: RtConfig,
        registry: ActionRegistry,
        mem_limit: usize,
    ) -> World {
        World {
            cluster: Cluster::new(n, net, mem_limit),
            eps: (0..n).map(|_| PhotonEndpoint::new(photon_cfg)).collect(),
            gas: (0..n).map(|_| GasLocal::new(gas_cfg)).collect(),
            cpus: (0..n).map(|_| ServerPool::new(rtcfg.workers)).collect(),
            pgas_map: PgasMap::new(),
            mode,
            rt: (0..n).map(|_| RtLocal::new(rtcfg.ring)).collect(),
            rtcfg,
            registry: Rc::new(registry),
            balancer_stats: crate::balancer::BalancerStats::default(),
            op_failures: Vec::new(),
            stale_completions: 0,
            corrupt_parcels: 0,
            completions: OpTable::new(),
            driver_cbs: HashMap::new(),
            next_driver_cb: 0,
        }
    }

    /// Register a completion, returning the typed handle to pass to a GAS
    /// op. The handle is generational: a stale or duplicate firing is
    /// counted and dropped rather than corrupting a reused slot.
    pub fn new_completion(&mut self, c: Completion) -> OpId {
        self.completions.insert(c)
    }

    /// Number of localities.
    pub fn n_localities(&self) -> u32 {
        self.cluster.len() as u32
    }

    /// Look up a registered action id by name.
    pub fn registry_lookup(&self, name: &str) -> Option<crate::parcel::ActionId> {
        (0..self.registry.len() as u32)
            .map(crate::parcel::ActionId)
            .find(|&id| self.registry.name(id) == name)
    }

    /// Aggregate per-action profile across localities:
    /// `(name, executions, cpu time)` sorted by cpu time, heaviest first.
    pub fn action_profile(&self) -> Vec<(String, u64, Time)> {
        let mut agg: HashMap<u32, (u64, Time)> = HashMap::new();
        for r in &self.rt {
            for (&id, &(n, t)) in &r.action_profile {
                let e = agg.entry(id).or_insert((0, Time::ZERO));
                e.0 += n;
                e.1 += t;
            }
        }
        let mut out: Vec<(String, u64, Time)> = agg
            .into_iter()
            .map(|(id, (n, t))| {
                (
                    self.registry.name(crate::parcel::ActionId(id)).to_string(),
                    n,
                    t,
                )
            })
            .collect();
        out.sort_by_key(|&(_, _, t)| std::cmp::Reverse(t));
        out
    }

    /// Aggregate runtime stats across localities.
    pub fn total_rt_stats(&self) -> RtStats {
        let mut total = RtStats::default();
        for r in &self.rt {
            total.parcels_sent += r.stats.parcels_sent;
            total.parcels_executed += r.stats.parcels_executed;
            total.parcels_forwarded += r.stats.parcels_forwarded;
            total.lco_ops += r.stats.lco_ops;
            total.batches_sent += r.stats.batches_sent;
        }
        total
    }

    /// Aggregate GAS stats across localities.
    pub fn total_gas_stats(&self) -> agas::GasStats {
        let mut total = agas::GasStats::default();
        for g in &self.gas {
            let s = g.stats;
            total.puts += s.puts;
            total.gets += s.gets;
            total.amos += s.amos;
            total.local_ops += s.local_ops;
            total.remote_ops += s.remote_ops;
            total.retries += s.retries;
            total.dir_queries += s.dir_queries;
            total.sw_puts_handled += s.sw_puts_handled;
            total.sw_gets_handled += s.sw_gets_handled;
            total.sw_amos_handled += s.sw_amos_handled;
            total.amo_replays += s.amo_replays;
            total.sw_fallbacks += s.sw_fallbacks;
            total.migrations_started += s.migrations_started;
            total.migrations_done += s.migrations_done;
            total.stale_completions += s.stale_completions;
            total.protocol_violations += s.protocol_violations;
            total.deadline_exceeded += s.deadline_exceeded;
            total.deadline_retries += s.deadline_retries;
            total.ops_failed += s.ops_failed;
            total.shm_ops += s.shm_ops;
            total.shm_bytes += s.shm_bytes;
            total.blocks_rehomed += s.blocks_rehomed;
            total.blocks_recovered += s.blocks_recovered;
            total.stale_xlate_dropped += s.stale_xlate_dropped;
        }
        total
    }

    /// Aggregate op-outcome counters across localities.
    pub fn total_outcomes(&self) -> netsim::OutcomeCounters {
        let mut total = netsim::OutcomeCounters::default();
        for g in &self.gas {
            total.merge(&g.outcomes);
        }
        total
    }
}

/// Fire a registered completion by hand (driver utilities that bridge
/// LCO waits into completion ctxs use this).
pub fn fire_completion(eng: &mut Engine<World>, ctx: OpId, data: Vec<u8>) {
    complete(eng, ctx, data);
}

fn complete(eng: &mut Engine<World>, ctx: OpId, data: Vec<u8>) {
    if ctx.is_none() {
        return;
    }
    match eng.state.completions.remove(ctx) {
        Ok(Completion::Lco(lco)) => {
            // Completion fires at the LCO's home directly; the op's network
            // round trip already paid the latency.
            crate::lco::lco_set(eng, lco.home(), lco, data);
        }
        Ok(Completion::Driver(cb)) => cb(eng, data),
        // Fired twice, or after a terminal failure reclaimed the handle:
        // the generation check catches it; count and drop.
        Err(_) => eng.state.stale_completions += 1,
    }
}

impl Protocol for World {
    type Msg = Msg;
    fn cluster(&mut self) -> &mut Cluster {
        &mut self.cluster
    }
    fn cluster_ref(&self) -> &Cluster {
        &self.cluster
    }
    fn deliver(eng: &mut Engine<Self>, env: Envelope<Msg>) {
        match env.packet {
            Packet::User(Msg::Photon(p)) => photon::handle_msg(eng, env.src, env.dst, p),
            Packet::User(Msg::Gas(g)) => agas::ops::handle_msg(eng, env.src, env.dst, g),
            Packet::User(Msg::Parcel(p)) => sched::parcel_arrive(eng, env.src, env.dst, p),
            Packet::User(Msg::ParcelBatch(batch)) => {
                for p in batch {
                    sched::parcel_arrive(eng, env.src, env.dst, p);
                }
            }
            other => photon::handle_completion(eng, env.src, env.dst, other),
        }
    }
}

impl PhotonWorld for World {
    fn endpoint(&mut self, loc: LocalityId) -> &mut PhotonEndpoint {
        &mut self.eps[loc as usize]
    }
    fn wrap(msg: PhotonMsg) -> Msg {
        Msg::Photon(msg)
    }
    fn pwc_complete(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId) {
        agas::ops::on_pwc_complete(eng, loc, ctx);
    }
    fn pwc_remote(_eng: &mut Engine<Self>, _loc: LocalityId, _tag: u64, _len: u32) {}
    fn pwc_failed(
        eng: &mut Engine<Self>,
        loc: LocalityId,
        ctx: OpId,
        kind: OpKind,
        reason: NackReason,
        block: u64,
    ) {
        agas::ops::on_pwc_failed(eng, loc, ctx, kind, reason, block);
    }
    fn recv_complete(
        eng: &mut Engine<Self>,
        loc: LocalityId,
        src: LocalityId,
        tag: u64,
        data: Vec<u8>,
    ) {
        if tag == PARCEL_TAG {
            debug_assert_eq!(eng.state.rtcfg.transport, Transport::Isir);
            // Re-arm the matching engine, then hand the parcel on.
            photon::post_recv(eng, loc, PARCEL_TAG);
            match Parcel::try_decode(&data) {
                Some(parcel) => sched::parcel_arrive(eng, src, loc, parcel),
                // Corrupted in flight: a real transport would drop the
                // frame at the CRC; count it so chaos runs prove the
                // checksum is live.
                None => eng.state.corrupt_parcels += 1,
            }
        }
        // Other tags: raw two-sided traffic driven by benchmark/driver
        // code through the photon API; nothing for the runtime to do.
    }
    fn send_complete(_eng: &mut Engine<Self>, _loc: LocalityId, _send_id: u64) {}
    fn xlate_miss_local(eng: &mut Engine<Self>, loc: LocalityId, block: u64) {
        agas::ops::on_xlate_miss(eng, loc, block);
    }
    fn pwc_amo_complete(eng: &mut Engine<Self>, loc: LocalityId, ctx: OpId, result: AmoResult) {
        agas::ops::on_pwc_amo_complete(eng, loc, ctx, result);
    }
}

impl RtWorld for World {
    fn rt(&mut self, loc: LocalityId) -> &mut RtLocal {
        &mut self.rt[loc as usize]
    }
    fn rt_ref(&self, loc: LocalityId) -> &RtLocal {
        &self.rt[loc as usize]
    }
    fn rtcfg(&self) -> RtConfig {
        self.rtcfg
    }
    fn wrap_parcel(p: Parcel) -> Msg {
        Msg::Parcel(p)
    }
    fn wrap_batch(b: Vec<Parcel>) -> Msg {
        Msg::ParcelBatch(b)
    }
    fn run_action(
        eng: &mut Engine<Self>,
        id: crate::parcel::ActionId,
        ctx: crate::parcel::ActionCtx,
    ) {
        let registry = eng.state.registry.clone();
        registry.get(id)(eng, ctx);
    }
    fn notify_driver(eng: &mut Engine<Self>, _loc: LocalityId, id: u64, value: Vec<u8>) {
        let cb = eng
            .state
            .driver_cbs
            .remove(&id)
            .expect("driver waiter vanished");
        eng.schedule(Time::ZERO, move |eng| cb(eng, value));
    }
}

/// Decode completion bytes produced by [`encode_amo_result`]. Panics on a
/// malformed buffer — completions are generated in-process, never by the
/// (faultable) wire.
pub fn decode_amo_result(data: &[u8]) -> AmoResult {
    let old = u64::from_le_bytes(data[..8].try_into().unwrap());
    let applied = data[8] != 0;
    let values = data[9..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    AmoResult {
        old,
        applied,
        values,
    }
}

/// Wire an [`AmoResult`] into completion bytes: `old` (8 LE bytes),
/// `applied` (1 byte), then each gathered value (8 LE bytes apiece).
pub fn encode_amo_result(result: &AmoResult) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + 8 * result.values.len());
    out.extend_from_slice(&result.old.to_le_bytes());
    out.push(u8::from(result.applied));
    for v in &result.values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

impl GasWorld for World {
    fn gas(&mut self, loc: LocalityId) -> &mut GasLocal {
        &mut self.gas[loc as usize]
    }
    fn gas_ref(&self, loc: LocalityId) -> &GasLocal {
        &self.gas[loc as usize]
    }
    fn gas_mode(&self) -> GasMode {
        self.mode
    }
    fn pgas(&mut self) -> &mut PgasMap {
        &mut self.pgas_map
    }
    fn cpu(&mut self, loc: LocalityId) -> &mut ServerPool {
        &mut self.cpus[loc as usize]
    }
    fn wrap_gas(msg: GasMsg) -> Msg {
        Msg::Gas(msg)
    }
    fn gas_put_done(eng: &mut Engine<Self>, _loc: LocalityId, ctx: OpId) {
        complete(eng, ctx, Vec::new());
    }
    fn gas_get_done(eng: &mut Engine<Self>, _loc: LocalityId, ctx: OpId, data: Vec<u8>) {
        complete(eng, ctx, data);
    }
    fn gas_migrate_done(eng: &mut Engine<Self>, _loc: LocalityId, ctx: OpId, block: u64) {
        complete(eng, ctx, block.to_le_bytes().to_vec());
    }
    fn gas_amo_done(eng: &mut Engine<Self>, _loc: LocalityId, ctx: OpId, result: AmoResult) {
        complete(eng, ctx, encode_amo_result(&result));
    }
    fn gas_free_done(eng: &mut Engine<Self>, _loc: LocalityId, ctx: OpId, block: u64) {
        complete(eng, ctx, block.to_le_bytes().to_vec());
    }
    fn gas_op_failed(
        eng: &mut Engine<Self>,
        _loc: LocalityId,
        ctx: OpId,
        gva: agas::Gva,
        err: OpError,
    ) {
        // The operation will never produce data: retire its completion so
        // quiescence does not report a phantom leak, and record the typed
        // failure for the driver.
        if !ctx.is_none() {
            let _ = eng.state.completions.remove(ctx);
        }
        eng.state.op_failures.push((ctx, gva, err));
    }
}
