//! Parcels and actions.
//!
//! A *parcel* is the unit of work transfer in a message-driven runtime
//! (HPX-5's term): it names a global address to act on, an action to run
//! there, argument bytes, and an optional continuation LCO that receives
//! the action's result. Parcels move **to the data**: if the target block
//! has migrated, the parcel is forwarded rather than failed.

use crate::world::World;
use agas::Gva;
use netsim::{Engine, LocalityId, PhysAddr};

/// Identifies a registered action (uniform across all localities).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ActionId(pub u32);

/// The reserved pseudo-action carried by LCO-set parcels.
pub const ACTION_LCO_SET: ActionId = ActionId(u32::MAX);

/// Bytes of parcel header on the wire (target + action + continuation +
/// source), added to the payload when computing serialization cost.
pub const PARCEL_HEADER_BYTES: u32 = 24;

/// A unit of message-driven work.
#[derive(Debug)]
pub struct Parcel {
    /// The global address the action operates on.
    pub target: Gva,
    /// The action to execute at the target.
    pub action: ActionId,
    /// Argument payload.
    pub args: Vec<u8>,
    /// LCO that receives the action's reply, if any.
    pub cont: Option<Gva>,
    /// The locality that created the parcel.
    pub src: LocalityId,
    /// Forwarding hops consumed so far.
    pub hops: u8,
}

impl Parcel {
    /// Wire footprint: payload plus the parcel header.
    pub fn wire_size(&self) -> u32 {
        self.args.len() as u32 + PARCEL_HEADER_BYTES
    }

    /// Serialize for a byte-oriented transport (the ISIR backend). A
    /// trailing FNV-1a checksum covers header and payload, so corruption
    /// anywhere in flight is detected at [`Parcel::try_decode`].
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.args.len() + 32);
        out.extend_from_slice(&self.target.0.to_le_bytes());
        out.extend_from_slice(&self.action.0.to_le_bytes());
        out.extend_from_slice(&self.cont.map_or(0, |g| g.0).to_le_bytes());
        out.extend_from_slice(&self.src.to_le_bytes());
        out.push(self.hops);
        out.extend_from_slice(&self.args);
        let sum = crate::codec::checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Inverse of [`Parcel::encode`]; `None` if the buffer is truncated or
    /// fails its checksum (a corrupted delivery).
    pub fn try_decode(bytes: &[u8]) -> Option<Parcel> {
        if bytes.len() < 29 {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let sum = u32::from_le_bytes(tail.try_into().unwrap());
        if crate::codec::checksum(body) != sum {
            return None;
        }
        let target = Gva(u64::from_le_bytes(body[0..8].try_into().unwrap()));
        let action = ActionId(u32::from_le_bytes(body[8..12].try_into().unwrap()));
        let cont_raw = u64::from_le_bytes(body[12..20].try_into().unwrap());
        let src = u32::from_le_bytes(body[20..24].try_into().unwrap());
        let hops = body[24];
        Some(Parcel {
            target,
            action,
            args: body[25..].to_vec(),
            cont: (cont_raw != 0).then_some(Gva(cont_raw)),
            src,
            hops,
        })
    }

    /// [`Parcel::try_decode`] for callers that know the bytes are intact.
    pub fn decode(bytes: &[u8]) -> Parcel {
        Parcel::try_decode(bytes).expect("corrupt or truncated parcel")
    }
}

/// Everything an executing action sees.
pub struct ActionCtx {
    /// The locality the action runs at.
    pub loc: LocalityId,
    /// The parcel's target address.
    pub target: Gva,
    /// Physical base of the (pinned) target block in the local arena.
    pub base: PhysAddr,
    /// Size class of the target block.
    pub class: u8,
    /// Argument payload.
    pub args: Vec<u8>,
    /// Continuation LCO, if the sender wants the reply.
    pub cont: Option<Gva>,
    /// The sending locality.
    pub src: LocalityId,
}

impl ActionCtx {
    /// Physical address of the parcel's exact target byte.
    pub fn target_phys(&self) -> PhysAddr {
        self.base + self.target.offset()
    }
}

/// The action function type. Actions run to completion (no blocking);
/// asynchrony is expressed with further parcels and LCOs.
pub type ActionFn = Box<dyn Fn(&mut Engine<World>, ActionCtx)>;

/// The table of registered actions, identical on every locality (actions
/// are registered before boot, as in any SPMD runtime).
#[derive(Default)]
pub struct ActionRegistry {
    fns: Vec<ActionFn>,
    names: Vec<String>,
}

impl ActionRegistry {
    /// Empty registry.
    pub fn new() -> ActionRegistry {
        ActionRegistry::default()
    }

    /// Register `f` under `name`, returning its id.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&mut Engine<World>, ActionCtx) + 'static,
    ) -> ActionId {
        let id = ActionId(self.fns.len() as u32);
        self.fns.push(Box::new(f));
        self.names.push(name.to_string());
        id
    }

    /// Look up an action body.
    pub fn get(&self, id: ActionId) -> &ActionFn {
        &self.fns[id.0 as usize]
    }

    /// Look up an action's registered name (diagnostics).
    pub fn name(&self, id: ActionId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of registered actions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_sequential_ids() {
        let mut r = ActionRegistry::new();
        let a = r.register("a", |_, _| {});
        let b = r.register("b", |_, _| {});
        assert_eq!(a, ActionId(0));
        assert_eq!(b, ActionId(1));
        assert_eq!(r.name(a), "a");
        assert_eq!(r.name(b), "b");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn wire_size_includes_header() {
        let p = Parcel {
            target: Gva::new(0, 6, 0, 0),
            action: ActionId(0),
            args: vec![0; 100],
            cont: None,
            src: 0,
            hops: 0,
        };
        assert_eq!(p.wire_size(), 124);
    }

    #[test]
    fn encode_decode_round_trips_and_is_checksummed() {
        let p = Parcel {
            target: Gva::new(3, 10, 7, 5),
            action: ActionId(12),
            args: vec![9u8; 40],
            cont: Some(Gva::new(1, 10, 2, 0)),
            src: 2,
            hops: 3,
        };
        let bytes = p.encode();
        // header 25 + args 40 + checksum 4
        assert_eq!(bytes.len(), 69);
        let q = Parcel::decode(&bytes);
        assert_eq!(q.target, p.target);
        assert_eq!(q.action, p.action);
        assert_eq!(q.args, p.args);
        assert_eq!(q.cont, p.cont);
        assert_eq!(q.src, p.src);
        assert_eq!(q.hops, p.hops);
    }

    #[test]
    fn try_decode_rejects_any_single_byte_flip() {
        let p = Parcel {
            target: Gva::new(0, 8, 1, 16),
            action: ActionId(4),
            args: vec![0xAB; 16],
            cont: None,
            src: 1,
            hops: 0,
        };
        let bytes = p.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                Parcel::try_decode(&bad).is_none(),
                "flip at byte {i} slipped past the checksum"
            );
        }
        assert!(Parcel::try_decode(&bytes[..10]).is_none(), "truncated");
        assert!(Parcel::try_decode(&bytes).is_some());
    }

    #[test]
    fn ctx_target_phys_adds_offset() {
        let ctx = ActionCtx {
            loc: 0,
            target: Gva::new(0, 10, 0, 40),
            base: 0x1000,
            class: 10,
            args: vec![],
            cont: None,
            src: 0,
        };
        assert_eq!(ctx.target_phys(), 0x1000 + 40);
    }
}
