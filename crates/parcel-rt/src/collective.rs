//! Collective operations: binomial-tree broadcast and LCO-based reduction.
//!
//! Broadcasts ride ordinary parcels targeted at per-locality *anchor*
//! blocks (one block per locality, allocated at boot), so they exercise the
//! same GAS routing as application traffic.

use crate::codec::{ArgReader, ArgWriter};
use crate::parcel::{ActionId, ActionRegistry, Parcel};
use crate::rt::Runtime;
use crate::sched;
use crate::world::World;
use agas::{alloc_array, Distribution, GlobalArray, Gva};
use netsim::{Engine, LocalityId};

/// Handles to the built-in collective actions.
#[derive(Clone, Copy, Debug)]
pub struct Collectives {
    /// The broadcast-relay action.
    pub relay: ActionId,
    /// A no-op action that just fires its continuation (barriers).
    pub nop: ActionId,
    /// An action that replies with its locality id, rank-prefixed
    /// (gather of ranks; also a liveness probe).
    pub rank_probe: ActionId,
}

/// Size class of the per-locality anchor blocks.
pub const ANCHOR_CLASS: u8 = 6;

/// Register built-in collective actions (called by the runtime builder).
pub fn install(registry: &mut ActionRegistry) -> Collectives {
    let relay = registry.register("__bcast_relay", relay_action);
    let nop = registry.register("__nop", |eng, ctx| {
        sched::reply(eng, &ctx, vec![]);
    });
    let rank_probe = registry.register("__rank_probe", |eng, ctx| {
        if let Some(cont) = ctx.cont {
            crate::lco::set_gather(eng, ctx.loc, cont, ctx.loc, &ctx.loc.to_le_bytes());
        }
    });
    Collectives {
        relay,
        nop,
        rank_probe,
    }
}

/// Allocate the per-locality anchor array (called at boot).
pub fn alloc_anchors(eng: &mut Engine<World>) -> GlobalArray {
    let n = eng.state.n_localities() as u64;
    alloc_array(eng, n, ANCHOR_CLASS, Distribution::Cyclic)
}

/// Relay payload layout: rank, n, root, inner action, done LCO (0 = none),
/// anchors base seq, then the inner args as `bytes`.
fn relay_action(eng: &mut Engine<World>, ctx: crate::parcel::ActionCtx) {
    let mut r = ArgReader::new(&ctx.args);
    let rank = r.u32();
    let n = r.u32();
    let root = r.u32();
    let inner = ActionId(r.u32());
    let done = r.gva();
    let inner_args = r.bytes().to_vec();
    let loc = ctx.loc;

    // Binomial tree over virtual ranks (rank 0 = root): children of rank r
    // are r + 2^k for 2^k > r.
    let mut k = 1u32;
    while k <= rank {
        k <<= 1;
    }
    while rank + k < n {
        let child_rank = rank + k;
        let child_loc = (root + child_rank) % n;
        let child_anchor = anchor_of(eng, child_loc);
        let args = ArgWriter::new()
            .u32(child_rank)
            .u32(n)
            .u32(root)
            .u32(inner.0)
            .gva(done)
            .bytes(&inner_args)
            .finish();
        sched::send_parcel(
            eng,
            loc,
            Parcel {
                target: child_anchor,
                action: eng.state.registry_relay_id(),
                args,
                cont: None,
                src: loc,
                hops: 0,
            },
        );
        k <<= 1;
    }
    // Run the inner action locally at this locality's anchor.
    let my_anchor = anchor_of(eng, loc);
    let cont = (!done.is_null()).then_some(done);
    sched::send_parcel(
        eng,
        loc,
        Parcel {
            target: my_anchor,
            action: inner,
            args: inner_args,
            cont,
            src: loc,
            hops: 0,
        },
    );
}

fn anchor_of(_eng: &Engine<World>, loc: LocalityId) -> Gva {
    // Anchors are the first cyclic class-ANCHOR_CLASS allocation: block i is
    // homed at locality i with seq 0.
    Gva::new(loc, ANCHOR_CLASS, 0, 0)
}

/// Broadcast `action` to every locality's anchor via a binomial tree
/// rooted at `root`. If `done` is a (non-null) LCO, every local delivery's
/// reply contributes to it (size it with `n` inputs).
pub fn broadcast(
    rt: &mut Runtime,
    root: LocalityId,
    action: ActionId,
    args: Vec<u8>,
    done: Option<Gva>,
) {
    let n = rt.n();
    let relay = rt.collectives.relay;
    let payload = ArgWriter::new()
        .u32(0)
        .u32(n)
        .u32(root)
        .u32(action.0)
        .gva(done.unwrap_or(Gva::NULL))
        .bytes(&args)
        .finish();
    let target = rt.anchor(root);
    rt.spawn(root, target, relay, payload, None);
}

/// Driver-side barrier: broadcast a no-op to every locality and wait for
/// all completions; `cb` runs once the whole cluster processed it.
pub fn barrier(rt: &mut Runtime, cb: impl FnOnce(&mut Engine<World>, Vec<u8>) + 'static) {
    let n = rt.n() as u64;
    let nop = rt.collectives.nop;
    let gate = crate::lco::new_and(&mut rt.eng, 0, n);
    broadcast(rt, 0, nop, Vec::new(), Some(gate));
    crate::lco::attach_driver(&mut rt.eng, gate, cb);
}

/// Driver-side gather of every locality's id (a cluster liveness probe);
/// `cb` receives the decoded `(rank, bytes)` list.
pub fn gather_ranks(
    rt: &mut Runtime,
    cb: impl FnOnce(&mut Engine<World>, Vec<(u32, Vec<u8>)>) + 'static,
) {
    let n = rt.n() as u64;
    let probe = rt.collectives.rank_probe;
    let gather = crate::lco::new_gather(&mut rt.eng, 0, n);
    broadcast(rt, 0, probe, Vec::new(), Some(gather));
    crate::lco::attach_driver(&mut rt.eng, gather, move |eng, bytes| {
        cb(eng, crate::lco::decode_gather(&bytes));
    });
}

impl World {
    pub(crate) fn registry_relay_id(&self) -> ActionId {
        self.registry_lookup("__bcast_relay")
            .expect("collectives not installed")
    }
}
