//! End-to-end runtime tests: parcels, actions, LCOs, collectives, and the
//! interaction of all of it with the three GAS modes.

use agas::{Distribution, GasMode};
use parcel_rt::{ArgReader, ArgWriter, ReduceOp, Runtime};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

#[test]
fn spawn_executes_action_at_block_owner() {
    for mode in GasMode::ALL {
        let mut b = Runtime::builder(4, mode);
        let ran_at = Rc::new(Cell::new(u32::MAX));
        let ran_at2 = ran_at.clone();
        let probe = b.register("probe", move |_eng, ctx| {
            ran_at2.set(ctx.loc);
        });
        let mut rt = b.boot();
        let arr = rt.alloc(4, 12, Distribution::Cyclic);
        rt.spawn(0, arr.block(2), probe, vec![], None);
        rt.run();
        assert_eq!(ran_at.get(), 2, "{mode:?}: action ran at wrong locality");
    }
}

#[test]
fn action_mutates_target_block() {
    for mode in GasMode::ALL {
        let mut b = Runtime::builder(2, mode);
        let add = b.register("add", |eng, ctx| {
            let mut r = ArgReader::new(&ctx.args);
            let v = r.u64();
            let phys = ctx.target_phys();
            eng.state.cluster.mem_mut(ctx.loc).xor_u64(phys, v).unwrap();
        });
        let mut rt = b.boot();
        let arr = rt.alloc(2, 12, Distribution::Cyclic);
        rt.spawn(
            0,
            arr.block(1).with_offset(16),
            add,
            ArgWriter::new().u64(0xFF).finish(),
            None,
        );
        rt.run();
        let block = rt.read_block(arr.block(1));
        assert_eq!(
            u64::from_le_bytes(block[16..24].try_into().unwrap()),
            0xFF,
            "{mode:?}"
        );
    }
}

#[test]
fn continuation_sets_future_with_reply() {
    let mut b = Runtime::builder(3, GasMode::AgasNetwork);
    let echo = b.register("echo", |eng, ctx| {
        let v = ctx.args.clone();
        parcel_rt::reply(eng, &ctx, v);
    });
    let mut rt = b.boot();
    let arr = rt.alloc(3, 10, Distribution::Cyclic);
    let fut = rt.new_future(0);
    rt.spawn(0, arr.block(2), echo, b"ping".to_vec(), Some(fut));
    let got = Rc::new(RefCell::new(Vec::new()));
    let got2 = got.clone();
    rt.wait_lco(fut, move |_, v| *got2.borrow_mut() = v);
    rt.run();
    assert_eq!(&*got.borrow(), b"ping");
}

#[test]
fn and_gate_counts_inputs() {
    let mut b = Runtime::builder(4, GasMode::AgasSoftware);
    let nop = b.register("nop", |eng, ctx| parcel_rt::reply(eng, &ctx, vec![]));
    let mut rt = b.boot();
    let arr = rt.alloc(8, 10, Distribution::Cyclic);
    let gate = rt.new_and(0, 8);
    for i in 0..8 {
        rt.spawn(0, arr.block(i), nop, vec![], Some(gate));
    }
    let fired_at = Rc::new(Cell::new(false));
    let f = fired_at.clone();
    rt.wait_lco(gate, move |_, _| f.set(true));
    rt.run();
    assert!(fired_at.get());
}

#[test]
fn reduce_lco_accumulates() {
    for op in [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max, ReduceOp::Xor] {
        let mut b = Runtime::builder(4, GasMode::AgasNetwork);
        let contribute = b.register("contribute", |eng, ctx| {
            let mut r = ArgReader::new(&ctx.args);
            let v = r.u64();
            parcel_rt::reply(eng, &ctx, v.to_le_bytes().to_vec());
        });
        let mut rt = b.boot();
        let arr = rt.alloc(4, 10, Distribution::Cyclic);
        let red = rt.new_reduce(0, 4, op);
        let inputs = [5u64, 9, 2, 12];
        for (i, &v) in inputs.iter().enumerate() {
            rt.spawn(
                0,
                arr.block(i as u64),
                contribute,
                ArgWriter::new().u64(v).finish(),
                Some(red),
            );
        }
        let result = Rc::new(Cell::new(0u64));
        let r2 = result.clone();
        rt.wait_lco(red, move |_, v| {
            r2.set(u64::from_le_bytes(v.try_into().unwrap()));
        });
        rt.run();
        let expect = match op {
            ReduceOp::Sum => 28,
            ReduceOp::Min => 2,
            ReduceOp::Max => 12,
            ReduceOp::Xor => 5 ^ 9 ^ 2 ^ 12,
        };
        assert_eq!(result.get(), expect, "{op:?}");
    }
}

#[test]
fn broadcast_reaches_every_locality() {
    for n in [1usize, 2, 5, 8] {
        let mut b = Runtime::builder(n, GasMode::AgasNetwork);
        let hits = Rc::new(RefCell::new(vec![0u32; n]));
        let h = hits.clone();
        let mark = b.register("mark", move |eng, ctx| {
            h.borrow_mut()[ctx.loc as usize] += 1;
            parcel_rt::reply(eng, &ctx, vec![]);
        });
        let mut rt = b.boot();
        let done = rt.new_and(0, n as u64);
        rt.broadcast(0, mark, vec![], Some(done));
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        rt.wait_lco(done, move |_, _| f.set(true));
        rt.run();
        assert!(fired.get(), "n={n}");
        assert!(
            hits.borrow().iter().all(|&c| c == 1),
            "n={n}: {:?}",
            hits.borrow()
        );
    }
}

#[test]
fn parcels_chase_migrating_blocks() {
    for mode in [GasMode::AgasSoftware, GasMode::AgasNetwork] {
        let mut b = Runtime::builder(4, mode);
        let count = Rc::new(Cell::new(0u32));
        let c2 = count.clone();
        let bump = b.register("bump", move |eng, ctx| {
            c2.set(c2.get() + 1);
            let phys = ctx.target_phys();
            eng.state.cluster.mem_mut(ctx.loc).xor_u64(phys, 1).unwrap();
            parcel_rt::reply(eng, &ctx, vec![]);
        });
        let mut rt = b.boot();
        let arr = rt.alloc(2, 12, Distribution::Cyclic);
        let gva = arr.block(1);
        let done = rt.new_and(0, 40);
        // Interleave parcels and migrations.
        for round in 0..4u32 {
            for _ in 0..10 {
                rt.spawn(
                    0,
                    gva.with_offset(8 * (round as u64 % 4)),
                    bump,
                    vec![],
                    Some(done),
                );
            }
            rt.migrate(2, gva, round % 4);
        }
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        rt.wait_lco(done, move |_, _| f.set(true));
        rt.run();
        assert!(fired.get(), "{mode:?}");
        assert_eq!(count.get(), 40, "{mode:?}: parcels lost or duplicated");
    }
}

#[test]
fn sw_mode_consumes_target_cpu_but_net_mode_does_not() {
    // The paper's core claim at runtime level: drive remote memputs at a
    // busy locality and compare CPU consumption.
    let run = |mode| {
        let mut rt = Runtime::builder(2, mode).boot();
        let arr = rt.alloc(2, 16, Distribution::Cyclic);
        for i in 0..100u64 {
            rt.memput(0, arr.block(1).with_offset(i * 64), vec![1u8; 64]);
        }
        rt.run();
        rt.eng.state.cluster.loc(1).counters.cpu_busy
    };
    let sw = run(GasMode::AgasSoftware);
    let net = run(GasMode::AgasNetwork);
    assert_eq!(net.ps(), 0, "NET mode must not touch the target CPU");
    assert!(
        sw > netsim::Time::from_us(10),
        "SW mode must burn target CPU: {sw}"
    );
}

#[test]
fn memput_lco_signals_completion() {
    let mut rt = Runtime::builder(2, GasMode::AgasNetwork).boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    let lco = rt.new_future(0);
    rt.memput_lco(0, arr.block(1), vec![3u8; 32], lco);
    let fired = Rc::new(Cell::new(false));
    let f = fired.clone();
    rt.wait_lco(lco, move |_, _| f.set(true));
    rt.run();
    assert!(fired.get());
    assert_eq!(rt.read_block(arr.block(1))[..32], vec![3u8; 32][..]);
}

#[test]
fn memget_cb_returns_data() {
    let mut rt = Runtime::builder(2, GasMode::Pgas).boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    rt.memput(0, arr.block(1).with_offset(4), vec![0xEE; 8]);
    rt.run();
    let got = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    rt.memget_cb(0, arr.block(1).with_offset(4), 8, move |_, d| {
        *g.borrow_mut() = d
    });
    rt.run();
    assert_eq!(&*got.borrow(), &vec![0xEE; 8]);
}

#[test]
fn runtime_stats_accumulate() {
    let mut b = Runtime::builder(3, GasMode::AgasNetwork);
    let nop = b.register("nop", |_, _| {});
    let mut rt = b.boot();
    let arr = rt.alloc(3, 10, Distribution::Cyclic);
    for i in 0..30 {
        rt.spawn(0, arr.block(i % 3), nop, vec![], None);
    }
    rt.run();
    let stats = rt.eng.state.total_rt_stats();
    assert_eq!(stats.parcels_sent, 30);
    assert_eq!(stats.parcels_executed, 30);
}

#[test]
fn determinism_across_identical_runs() {
    let build_and_run = || {
        let mut b = Runtime::builder(4, GasMode::AgasNetwork);
        let bump = b.register("bump", |eng, ctx| {
            let phys = ctx.target_phys();
            eng.state.cluster.mem_mut(ctx.loc).xor_u64(phys, 7).unwrap();
        });
        let mut rt = b.seed(77).boot();
        let arr = rt.alloc(8, 12, Distribution::Cyclic);
        for i in 0..50u64 {
            rt.spawn((i % 4) as u32, arr.block(i % 8), bump, vec![], None);
            if i % 7 == 0 {
                rt.migrate(0, arr.block(i % 8), ((i / 7) % 4) as u32);
            }
        }
        rt.run();
        (rt.eng.trace_hash(), rt.now())
    };
    assert_eq!(build_and_run(), build_and_run());
}

#[test]
fn single_locality_cluster_works() {
    let mut b = Runtime::builder(1, GasMode::AgasNetwork);
    let nop = b.register("nop", |eng, ctx| parcel_rt::reply(eng, &ctx, vec![1]));
    let mut rt = b.boot();
    let arr = rt.alloc(2, 10, Distribution::Cyclic);
    let fut = rt.new_future(0);
    rt.spawn(0, arr.block(1), nop, vec![], Some(fut));
    let fired = Rc::new(Cell::new(false));
    let f = fired.clone();
    rt.wait_lco(fut, move |_, _| f.set(true));
    rt.run();
    assert!(fired.get());
}

#[test]
fn memcpy_moves_bytes_between_blocks() {
    for mode in GasMode::ALL {
        let mut rt = Runtime::builder(4, mode).boot();
        let arr = rt.alloc(4, 12, Distribution::Cyclic);
        rt.memput(0, arr.block(1).with_offset(32), vec![0xAB; 64]);
        rt.run();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        rt.memcpy_cb(
            2,
            arr.block(1).with_offset(32),
            arr.block(3).with_offset(128),
            64,
            move |_, _| f.set(true),
        );
        rt.run();
        assert!(fired.get(), "{mode:?}");
        let dst = rt.read_block(arr.block(3));
        assert_eq!(&dst[128..192], &[0xAB; 64][..], "{mode:?}");
    }
}

#[test]
fn runtime_free_block_releases() {
    let mut rt = Runtime::builder(3, GasMode::AgasNetwork).boot();
    let arr = rt.alloc(3, 12, Distribution::Cyclic);
    let fired = Rc::new(Cell::new(false));
    let f = fired.clone();
    rt.free_block_cb(0, arr.block(2), move |_, _| f.set(true));
    rt.run();
    assert!(fired.get());
    assert!(!rt.eng.state.gas[2]
        .btt
        .is_resident(arr.block(2).block_key()));
}

#[test]
fn range_ops_span_blocks() {
    for mode in GasMode::ALL {
        let mut rt = Runtime::builder(4, mode).boot();
        let arr = rt.alloc(8, 10, Distribution::Cyclic); // 1 KiB blocks
                                                         // 3000-byte pattern crossing three block boundaries.
        let data: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        rt.memput_range_cb(0, &arr, 500, &data, move |_, _| f.set(true));
        rt.run();
        assert!(fired.get(), "{mode:?}");
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        rt.memget_range_cb(2, &arr, 500, 3000, move |_, d| *g.borrow_mut() = d);
        rt.run();
        assert_eq!(&*got.borrow(), &data, "{mode:?}");
    }
}

#[test]
fn range_ops_single_block_degenerate() {
    let mut rt = Runtime::builder(2, GasMode::AgasNetwork).boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    let fired = Rc::new(Cell::new(false));
    let f = fired.clone();
    rt.memput_range_cb(0, &arr, 4096 + 10, &[9u8; 100], move |_, _| f.set(true));
    rt.run();
    assert!(fired.get());
    let got = Rc::new(RefCell::new(Vec::new()));
    let g = got.clone();
    rt.memget_range_cb(0, &arr, 4096 + 10, 100, move |_, d| *g.borrow_mut() = d);
    rt.run();
    assert_eq!(&*got.borrow(), &vec![9u8; 100]);
}

#[test]
fn latency_histograms_populate() {
    let mut rt = Runtime::builder(2, GasMode::AgasNetwork).boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    for i in 0..20u64 {
        rt.memput(0, arr.block(1).with_offset(i * 8), vec![1u8; 8]);
    }
    rt.run();
    rt.memget_cb(0, arr.block(1), 8, |_, _| {});
    rt.run();
    let g = &rt.eng.state.gas[0];
    assert_eq!(g.put_latency.count(), 20);
    assert_eq!(g.get_latency.count(), 1);
    // Remote 8 B puts on the FDR fabric land in the ~2-4 us band.
    let mean_ns = g.put_latency.mean();
    assert!((1_000.0..10_000.0).contains(&mean_ns), "mean {mean_ns} ns");
}

#[test]
fn action_profile_accounts_cpu() {
    let mut b = Runtime::builder(3, GasMode::AgasNetwork);
    let light = b.register("light", |_, _| {});
    let heavy = b.register("heavy", |eng, ctx| {
        let now = eng.now();
        let dur = netsim::Time::from_us(50);
        let (_, _f) = eng.state.cpus[ctx.loc as usize].admit(now, dur);
        eng.state.cluster.loc_mut(ctx.loc).counters.cpu_busy += dur;
    });
    let mut rt = b.boot();
    let arr = rt.alloc(3, 10, Distribution::Cyclic);
    for i in 0..12 {
        rt.spawn(0, arr.block(i % 3), light, vec![], None);
    }
    for i in 0..3 {
        rt.spawn(0, arr.block(i), heavy, vec![], None);
    }
    rt.run();
    let profile = rt.eng.state.action_profile();
    let get = |name: &str| profile.iter().find(|(n, _, _)| n == name).cloned();
    let (_, light_n, _) = get("light").expect("light profiled");
    let (_, heavy_n, _) = get("heavy").expect("heavy profiled");
    assert_eq!(light_n, 12);
    assert_eq!(heavy_n, 3);
    // Dispatch cost is profiled per execution (the heavy action's extra
    // CPU is charged inside the handler, visible in cluster counters).
    assert!(rt.counters().cpu_busy >= netsim::Time::from_us(150));
}

#[test]
#[should_panic(expected = "crosses a block boundary")]
fn memput_across_blocks_panics() {
    let mut rt = Runtime::builder(2, GasMode::Pgas).boot();
    let arr = rt.alloc(2, 10, Distribution::Cyclic);
    rt.memput(0, arr.block(0).with_offset(1000), vec![0u8; 100]);
}

#[test]
#[should_panic(expected = "migration requested under PGAS")]
fn migrate_under_pgas_panics() {
    let mut rt = Runtime::builder(2, GasMode::Pgas).boot();
    let arr = rt.alloc(2, 10, Distribution::Cyclic);
    rt.migrate(0, arr.block(0), 1);
}

#[test]
#[should_panic(expected = "set twice")]
fn future_double_set_panics() {
    let mut rt = Runtime::builder(1, GasMode::AgasNetwork).boot();
    let fut = rt.new_future(0);
    parcel_rt::lco_set(&mut rt.eng, 0, fut, vec![1]);
    parcel_rt::lco_set(&mut rt.eng, 0, fut, vec![2]);
    rt.run();
}

#[test]
fn cray_fabric_is_faster_for_small_puts() {
    let lat = |net: netsim::NetConfig| {
        let mut rt = Runtime::builder(2, GasMode::AgasNetwork).net(net).boot();
        let arr = rt.alloc(2, 12, Distribution::Cyclic);
        let t = Rc::new(Cell::new(netsim::Time::ZERO));
        let t2 = t.clone();
        rt.memput_cb(0, arr.block(1), vec![1u8; 8], move |eng, _| {
            t2.set(eng.now())
        });
        rt.run();
        t.get()
    };
    assert!(lat(netsim::NetConfig::cray_gemini()) < lat(netsim::NetConfig::ib_fdr()));
}
