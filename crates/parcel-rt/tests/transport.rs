//! The two parcel network backends (HPX-5's `--hpx-network` knob):
//! PWC (one-sided delivery) vs ISIR (two-sided tag matching).

use agas::{Distribution, GasMode};
use netsim::Time;
use parcel_rt::{ArgReader, ArgWriter, Parcel, RtConfig, Runtime, Transport};
use std::cell::Cell;
use std::rc::Rc;

fn isir() -> RtConfig {
    RtConfig {
        transport: Transport::Isir,
        ..RtConfig::default()
    }
}

#[test]
fn parcel_codec_round_trips() {
    let p = Parcel {
        target: agas::Gva::new(3, 12, 9, 100),
        action: parcel_rt::ActionId(7),
        args: vec![1, 2, 3, 4, 5],
        cont: Some(agas::Gva::new(0, 3, 4, 0)),
        src: 2,
        hops: 5,
    };
    let q = Parcel::decode(&p.encode());
    assert_eq!(q.target, p.target);
    assert_eq!(q.action, p.action);
    assert_eq!(q.args, p.args);
    assert_eq!(q.cont, p.cont);
    assert_eq!(q.src, p.src);
    assert_eq!(q.hops, p.hops);
}

#[test]
fn parcel_codec_none_continuation() {
    let p = Parcel {
        target: agas::Gva::new(0, 6, 0, 0),
        action: parcel_rt::ActionId(0),
        args: vec![],
        cont: None,
        src: 0,
        hops: 0,
    };
    let q = Parcel::decode(&p.encode());
    assert_eq!(q.cont, None);
    assert!(q.args.is_empty());
}

#[test]
fn isir_transport_delivers_parcels() {
    for mode in GasMode::ALL {
        let mut b = Runtime::builder(4, mode);
        let count = Rc::new(Cell::new(0u32));
        let c2 = count.clone();
        let bump = b.register("bump", move |eng, ctx| {
            c2.set(c2.get() + 1);
            let phys = ctx.target_phys();
            eng.state.cluster.mem_mut(ctx.loc).xor_u64(phys, 1).unwrap();
            parcel_rt::reply(eng, &ctx, vec![]);
        });
        let mut rt = b.rt_config(isir()).boot();
        let arr = rt.alloc(8, 12, Distribution::Cyclic);
        let done = rt.new_and(0, 24);
        for i in 0..24u64 {
            rt.spawn((i % 4) as u32, arr.block(i % 8), bump, vec![], Some(done));
        }
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        rt.wait_lco(done, move |_, _| f.set(true));
        rt.run();
        assert!(fired.get(), "{mode:?}");
        assert_eq!(count.get(), 24, "{mode:?}");
    }
}

#[test]
fn isir_large_parcels_take_rendezvous() {
    let mut b = Runtime::builder(2, GasMode::AgasNetwork);
    let got = Rc::new(Cell::new(0usize));
    let g2 = got.clone();
    let sink = b.register("sink", move |eng, ctx| {
        let mut r = ArgReader::new(&ctx.args);
        g2.set(r.bytes().len());
        parcel_rt::reply(eng, &ctx, vec![]);
    });
    let mut rt = b.rt_config(isir()).boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    let payload = vec![7u8; 100_000];
    let fut = rt.new_future(0);
    rt.spawn(
        0,
        arr.block(1),
        sink,
        ArgWriter::new().bytes(&payload).finish(),
        Some(fut),
    );
    let fired = Rc::new(Cell::new(false));
    let f = fired.clone();
    rt.wait_lco(fut, move |_, _| f.set(true));
    rt.run();
    assert!(fired.get());
    assert_eq!(got.get(), 100_000);
    // The payload crossed the eager threshold: rendezvous must have run.
    assert!(rt.eng.state.eps[0].stats.rdv_sends >= 1);
}

#[test]
fn isir_parcels_chase_migrating_blocks() {
    let mut b = Runtime::builder(4, GasMode::AgasNetwork);
    let count = Rc::new(Cell::new(0u32));
    let c2 = count.clone();
    let bump = b.register("bump", move |eng, ctx| {
        c2.set(c2.get() + 1);
        parcel_rt::reply(eng, &ctx, vec![]);
    });
    let mut rt = b.rt_config(isir()).boot();
    let arr = rt.alloc(2, 12, Distribution::Cyclic);
    let done = rt.new_and(0, 20);
    for round in 0..4u32 {
        for _ in 0..5 {
            rt.spawn(0, arr.block(1), bump, vec![], Some(done));
        }
        rt.migrate(2, arr.block(1), round % 4);
    }
    let fired = Rc::new(Cell::new(false));
    let f = fired.clone();
    rt.wait_lco(done, move |_, _| f.set(true));
    rt.run();
    assert!(fired.get());
    assert_eq!(count.get(), 20);
}

#[test]
fn pwc_transport_has_lower_parcel_latency() {
    // The paper's premise for building on Photon: one-sided delivery beats
    // two-sided matching for small parcels.
    let latency = |transport| {
        let mut b = Runtime::builder(2, GasMode::AgasNetwork);
        let nop = b.register("nop", |eng, ctx| parcel_rt::reply(eng, &ctx, vec![]));
        let mut rt = b
            .rt_config(RtConfig {
                transport,
                ..RtConfig::default()
            })
            .boot();
        let arr = rt.alloc(2, 12, Distribution::Cyclic);
        let fut = rt.new_future(0);
        let t0 = rt.now();
        rt.spawn(0, arr.block(1), nop, vec![0u8; 64], Some(fut));
        let done = Rc::new(Cell::new(Time::ZERO));
        let d2 = done.clone();
        rt.wait_lco(fut, move |eng, _| d2.set(eng.now()));
        rt.run();
        done.get() - t0
    };
    let pwc = latency(Transport::Pwc);
    let isir = latency(Transport::Isir);
    assert!(isir > pwc, "isir={isir} pwc={pwc}");
}

#[test]
fn transports_agree_on_results() {
    // Same program, both backends: identical final memory state.
    let run = |transport| {
        let mut b = Runtime::builder(3, GasMode::AgasSoftware);
        workloads::gups::register_actions(&mut b);
        let mut rt = b
            .rt_config(RtConfig {
                transport,
                ..RtConfig::default()
            })
            .boot();
        let cfg = workloads::gups::GupsConfig {
            cells_per_loc: 256,
            updates_per_loc: 100,
            window: 4,
            use_actions: true,
            ..workloads::gups::GupsConfig::default()
        };
        let table = workloads::gups::alloc_table(&mut rt, &cfg);
        workloads::gups::run(&mut rt, &cfg, &table);
        workloads::gups::table_checksum(&rt, &table)
    };
    assert_eq!(run(Transport::Pwc), run(Transport::Isir));
}
